"""The uHD level-only image encoder (paper Fig. 2).

Pixel ``p`` with normalized intensity ``x_p`` is encoded against its own
Sobol dimension ``S_p``:

``L_p[j] = +1  if  x_p >= S_p[j]  else  -1``

and the image hypervector is the plain accumulation ``V = sum_p L_p`` —
no position hypervectors, no binding multiply (paper contribution ②).
The positional role is carried by the Sobol *index* ``p``: distinct
dimensions are decorrelated, so different pixels contribute separable
patterns to the accumulator.

Two comparison paths share this class:

* full-precision scalars (``quantized=False`` ablation), and
* M-bit quantized codes (``quantized=True``, the paper's datapath) —
  bit-exact with the unary-domain comparator of
  :mod:`repro.core.unary_encoder`, which the tests assert.
"""

from __future__ import annotations

import numpy as np

from ..lds.halton import halton_sequences
from ..lds.quantize import quantize_intensity, quantize_unit
from ..lds.sobol import sobol_sequences
from .config import UHDConfig

__all__ = ["SobolLevelEncoder"]


class SobolLevelEncoder:
    """Deterministic LD-sequence image encoder.

    Parameters
    ----------
    num_pixels:
        H = rows x columns of the (grayscale) input.
    config:
        uHD hyper-parameters; the LD family, dimension and quantization all
        come from here so a config fully determines the encoder.
    """

    def __init__(self, num_pixels: int, config: UHDConfig) -> None:
        if num_pixels < 1:
            raise ValueError(f"num_pixels must be >= 1, got {num_pixels}")
        self.num_pixels = num_pixels
        self.config = config
        self.dim = config.dim
        if config.lds == "sobol":
            sequences = sobol_sequences(
                num_pixels,
                config.dim,
                seed=config.seed,
                dtype=np.float32,
                digital_shift=config.digital_shift,
            )
        else:
            sequences = halton_sequences(num_pixels, config.dim, dtype=np.float32)
        self._sequences = sequences
        if config.quantized:
            self._codes = quantize_unit(sequences.astype(np.float64), config.levels)
        else:
            self._codes = None

    @property
    def sequences(self) -> np.ndarray:
        """Raw LD scalars, shape ``(num_pixels, dim)`` float32."""
        return self._sequences

    @property
    def quantized_codes(self) -> np.ndarray | None:
        """M-bit Sobol codes (``quantized=True``), shape ``(num_pixels, dim)``."""
        return self._codes

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _normalize(self, images: np.ndarray) -> np.ndarray:
        """Flatten to ``(batch, H)`` and scale intensities for comparison.

        Returns quantized uint8 codes or float32 unit-scaled intensities
        depending on the configured path.
        """
        images = np.asarray(images)
        flat = images.reshape(images.shape[0], -1)
        if flat.shape[1] != self.num_pixels:
            raise ValueError(
                f"expected {self.num_pixels} pixels per image, got {flat.shape[1]}"
            )
        if self.config.quantized:
            return quantize_intensity(flat, self.config.levels)
        if flat.dtype.kind in ("u", "i"):
            return (flat.astype(np.float32) / np.float32(255.0))
        return np.clip(flat.astype(np.float32), 0.0, 1.0)

    def encode(self, image: np.ndarray) -> np.ndarray:
        """Accumulator hypervector of one image, shape ``(dim,)`` int64."""
        return self.encode_batch(np.asarray(image)[None])[0]

    def encode_batch(self, images: np.ndarray, chunk: int = 32) -> np.ndarray:
        """Accumulators for a batch of images, shape ``(batch, dim)`` int64.

        The comparison fans out to a ``(chunk, H, D)`` boolean tensor; the
        accumulator is ``2 * popcount - H`` per dimension (the +-1 view of
        the hardware popcount).  ``chunk`` bounds transient memory.
        """
        values = self._normalize(images)
        reference = self._codes if self.config.quantized else self._sequences
        batch = values.shape[0]
        out = np.empty((batch, self.dim), dtype=np.int64)
        for start in range(0, batch, chunk):
            stop = min(start + chunk, batch)
            ge = values[start:stop, :, None] >= reference[None, :, :]
            counts = ge.sum(axis=1, dtype=np.int64)
            out[start:stop] = 2 * counts - self.num_pixels
        return out

    def level_hypervector(self, intensity: float, pixel: int) -> np.ndarray:
        """The +-1 level hypervector ``L_p`` of one pixel (diagnostics/tests)."""
        if not 0 <= pixel < self.num_pixels:
            raise ValueError(f"pixel {pixel} out of range [0, {self.num_pixels})")
        if not 0.0 <= intensity <= 1.0:
            raise ValueError("intensity must be normalized to [0, 1]")
        if self.config.quantized:
            code = quantize_unit(np.array([intensity]), self.config.levels)[0]
            ge = code >= self._codes[pixel]
        else:
            ge = np.float32(intensity) >= self._sequences[pixel]
        return np.where(ge, 1, -1).astype(np.int8)
