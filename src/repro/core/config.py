"""Configuration of the uHD system (paper Section III)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["UHDConfig"]

_LDS_FAMILIES = ("sobol", "halton")
_BACKENDS = ("auto", "packed", "reference")


@dataclass(frozen=True)
class UHDConfig:
    """Hyper-parameters of the uHD encoder/classifier.

    Attributes
    ----------
    dim:
        Hypervector dimension D (the paper sweeps 1K / 2K / 8K).
    levels:
        Quantization levels xi for intensities and Sobol scalars
        (Fig. 3(a); xi = 16 -> M = 4-bit storage, N = 16-bit unary streams).
    quantized:
        When true (paper default) comparisons happen between M-bit codes —
        the arithmetic twin of the unary-domain datapath.  When false the
        encoder compares full-precision scalars (an ablation; the paper
        notes quantization does not affect accuracy).
    lds:
        Low-discrepancy family: ``"sobol"`` (the paper) or ``"halton"``
        (ablation).
    seed:
        Seed of the Sobol direction integers.  uHD is deterministic given
        this seed — the "single-iteration training" property.
    digital_shift:
        Optional per-dimension digital shift of the LD sequences (extra
        decorrelation; off in the paper).
    binarize:
        Classifier policy — see
        :class:`repro.hdc.classifier.CentroidClassifier` for why the
        accuracy path defaults to non-binarized centroids.
    backend:
        Compute backend: ``"auto"`` (default; packed fast path wherever it
        is bit-exact and supported), ``"packed"`` (force packed *encoding*,
        raising where it cannot apply; inference additionally needs
        ``binarize=True`` — under the default centered-cosine policy it
        stays on the reference path, which has no packed form) or
        ``"reference"`` (always the original elementwise NumPy path).
        See :mod:`repro.fastpath`.
    """

    dim: int = 1024
    levels: int = 16
    quantized: bool = True
    lds: str = "sobol"
    seed: int = 2024
    digital_shift: bool = False
    binarize: bool = False
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError(f"dim must be >= 1, got {self.dim}")
        if self.levels < 2:
            raise ValueError(f"levels must be >= 2, got {self.levels}")
        if self.lds not in _LDS_FAMILIES:
            raise ValueError(f"lds must be one of {_LDS_FAMILIES}, got {self.lds!r}")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )

    @property
    def quantization_bits(self) -> int:
        """M = log2(xi), the stored scalar width of Fig. 3(a)."""
        return int(self.levels - 1).bit_length()

    @property
    def stream_length(self) -> int:
        """N, the unary bit-stream length (= xi in the paper)."""
        return self.levels
