"""Configuration of the uHD system (paper Section III)."""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..api.registry import is_registered_backend, list_backends

__all__ = ["UHDConfig"]

_LDS_FAMILIES = ("sobol", "halton")


@dataclass(frozen=True)
class UHDConfig:
    """Hyper-parameters of the uHD encoder/classifier.

    Attributes
    ----------
    dim:
        Hypervector dimension D (the paper sweeps 1K / 2K / 8K).
    levels:
        Quantization levels xi for intensities and Sobol scalars
        (Fig. 3(a); xi = 16 -> M = 4-bit storage, N = 16-bit unary streams).
        The paper uses powers of two; other values are accepted (and warn)
        — see :attr:`quantization_bits` for how M rounds up then.
    quantized:
        When true (paper default) comparisons happen between M-bit codes —
        the arithmetic twin of the unary-domain datapath.  When false the
        encoder compares full-precision scalars (an ablation; the paper
        notes quantization does not affect accuracy).
    lds:
        Low-discrepancy family: ``"sobol"`` (the paper) or ``"halton"``
        (ablation).
    seed:
        Seed of the Sobol direction integers.  uHD is deterministic given
        this seed — the "single-iteration training" property.
    digital_shift:
        Optional per-dimension digital shift of the LD sequences (extra
        decorrelation; off in the paper).
    binarize:
        Classifier policy — see
        :class:`repro.hdc.classifier.CentroidClassifier` for why the
        accuracy path defaults to non-binarized centroids.
    backend:
        Execution backend, validated against the :mod:`repro.api` backend
        registry.  Built-ins: ``"auto"`` (default; packed fast path
        wherever it is bit-exact and supported), ``"packed"`` (force
        packed *encoding*, raising where it cannot apply; inference
        additionally needs ``binarize=True``), ``"threaded"`` (packed
        kernels sharded over a thread pool, bit-exact with ``"packed"``)
        and ``"reference"`` (always the original elementwise NumPy path).
        Third-party backends registered via
        :func:`repro.api.register_backend` are accepted by name.
    """

    dim: int = 1024
    levels: int = 16
    quantized: bool = True
    lds: str = "sobol"
    seed: int = 2024
    digital_shift: bool = False
    binarize: bool = False
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError(f"dim must be >= 1, got {self.dim}")
        if self.levels < 2:
            raise ValueError(f"levels must be >= 2, got {self.levels}")
        if self.lds not in _LDS_FAMILIES:
            raise ValueError(f"lds must be one of {_LDS_FAMILIES}, got {self.lds!r}")
        if not is_registered_backend(self.backend):
            raise ValueError(
                f"backend must be a registered backend name "
                f"{list_backends()}, got {self.backend!r} "
                "(third-party backends: repro.api.register_backend)"
            )
        if self.levels & (self.levels - 1):
            warnings.warn(
                f"levels={self.levels} is not a power of two: the stored "
                f"scalar width rounds up to M={self.quantization_bits} bits "
                f"(covering {1 << self.quantization_bits} codes, of which "
                f"only {self.levels} occur), while the unary stream length "
                f"stays N={self.stream_length}; accuracy is unaffected but "
                "the Fig. 3(a) memory model assumes M = log2(levels) exactly",
                UserWarning,
                stacklevel=2,
            )

    @property
    def quantization_bits(self) -> int:
        """M, the stored scalar width of Fig. 3(a): ``ceil(log2(levels))``.

        Equal to ``log2(levels)`` for the paper's power-of-two ``xi``;
        for other ``levels`` values M **rounds up** to the next integer
        bit width (e.g. ``levels=20 -> M=5``), so ``2**M`` can exceed the
        number of codes actually produced.
        """
        return int(self.levels - 1).bit_length()

    @property
    def stream_length(self) -> int:
        """N, the unary bit-stream length — exactly ``levels`` (= xi).

        Unlike :attr:`quantization_bits` this does **not** round to a
        power of two: one unary slot exists per quantization level.
        """
        return self.levels
