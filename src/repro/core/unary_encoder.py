"""The unary-domain uHD datapath (paper Fig. 3 and Fig. 5).

This is the hardware-faithful encoder: M-bit scalars are fetched from the
Unary Stream Table as N-bit thermometer codes and compared by the
AND/OR/AND-tree unary comparator; the accumulator models the popcount
flip-flop chain, and binarization models the hardwired masking logic that
fires the sign bit the moment popcount reaches TOB = H/2.

It must agree bit-for-bit with the quantized arithmetic path of
:class:`repro.core.encoder.SobolLevelEncoder` — that equivalence is the
functional-correctness claim behind the paper's hardware substitution and
is asserted by the integration tests.
"""

from __future__ import annotations

import numpy as np

from ..lds.quantize import quantize_intensity, quantize_unit
from ..lds.sobol import sobol_sequences
from ..unary.comparator import unary_ge_batch
from ..unary.ust import UnaryStreamTable
from .config import UHDConfig

__all__ = ["UnaryDomainEncoder", "masking_binarize"]


def masking_binarize(accumulator: np.ndarray, num_pixels: int) -> np.ndarray:
    """Sign bits via the masking-logic rule (paper contribution ⑤).

    The hardware counts logic-1s of the incoming level hypervector bits; a
    hardwired AND over the counter bits encoding TOB = H/2 raises the sign
    bit when the count reaches the threshold.  In the +-1 accumulator view
    ``count = (V + H) / 2`` and the rule is ``count >= ceil(H/2)``, which
    is ``(H + 1) // 2`` for every parity: for the tie (even H, count
    exactly H/2, V = 0) the AND fires and the bit is set, reproducing the
    ties-to-+1 behaviour of :func:`repro.hdc.ops.binarize`.
    """
    accumulator = np.asarray(accumulator)
    counts = (accumulator + num_pixels) // 2
    threshold = (num_pixels + 1) // 2
    return np.where(counts >= threshold, 1, -1).astype(np.int8)


class UnaryDomainEncoder:
    """uHD encoding computed entirely on unary bit-streams.

    Slower than the arithmetic twin (it materialises N-bit streams for
    every comparison) but exercises the exact datapath of Fig. 5: REG/BRAM
    codes -> UST fetch -> unary comparator -> popcount.  Use it for
    validation and hardware-activity extraction, not bulk training.
    """

    def __init__(self, num_pixels: int, config: UHDConfig) -> None:
        if not config.quantized:
            raise ValueError("the unary datapath requires quantized=True")
        self.num_pixels = num_pixels
        self.config = config
        self.dim = config.dim
        self.table = UnaryStreamTable(levels=config.levels,
                                      length=config.stream_length)
        sequences = sobol_sequences(
            num_pixels,
            config.dim,
            seed=config.seed,
            digital_shift=config.digital_shift,
        )
        # BRAM contents: M-bit Sobol codes per (pixel, dimension).
        self.sobol_codes = quantize_unit(sequences, config.levels)

    def level_bits(self, image: np.ndarray, dim_chunk: int = 256) -> np.ndarray:
        """Boolean level-hypervector matrix ``(H, D)`` for one image.

        Every entry is produced by a UST fetch of both operands and one
        unary comparison, chunked along D to bound the transient
        ``(H, chunk, N)`` stream tensor.
        """
        image = np.asarray(image).reshape(-1)
        if image.size != self.num_pixels:
            raise ValueError(f"expected {self.num_pixels} pixels, got {image.size}")
        data_codes = quantize_intensity(image, self.config.levels)
        data_streams = self.table.fetch_batch(data_codes)  # (H, N)
        bits = np.empty((self.num_pixels, self.dim), dtype=np.bool_)
        for start in range(0, self.dim, dim_chunk):
            stop = min(start + dim_chunk, self.dim)
            sobol_streams = self.table.fetch_batch(self.sobol_codes[:, start:stop])
            bits[:, start:stop] = unary_ge_batch(
                data_streams[:, None, :], sobol_streams
            )
        return bits

    def encode(self, image: np.ndarray) -> np.ndarray:
        """Accumulator hypervector of one image via popcount over level bits."""
        bits = self.level_bits(image)
        counts = bits.sum(axis=0, dtype=np.int64)
        return 2 * counts - self.num_pixels

    def encode_binarized(self, image: np.ndarray) -> np.ndarray:
        """Class-hypervector bit decisions via the masking-logic binarizer."""
        return masking_binarize(self.encode(image), self.num_pixels)
