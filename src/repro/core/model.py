"""End-to-end uHD classifier (encoder + single-pass centroid training).

Mirrors :class:`repro.hdc.baseline.BaselineHDC` so the two models are
drop-in comparable, with the crucial difference the paper exists for:
training is **deterministic** — one pass, no iteration sweep, because the
Sobol codebook is fixed by its seed.

The execution backend is resolved once from ``config.backend`` through
the :mod:`repro.api` registry: by default the bit-exact packed fast path
encodes, so swapping backends never changes a prediction.  The class
satisfies the :class:`repro.api.Estimator` protocol — fit / predict /
score / save / load — and because training is a single deterministic
pass, :meth:`save`/:meth:`load` round-trip the fitted model bit-exactly
(config + class accumulators; the Sobol codebook is rebuilt from its
seed, never re-learned).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..api.registry import get_backend
from ..hdc.classifier import CentroidClassifier
from .config import UHDConfig

__all__ = ["UHDClassifier"]


class UHDClassifier:
    """The uHD image classifier of Fig. 2/Fig. 5."""

    def __init__(
        self, num_pixels: int, num_classes: int, config: UHDConfig | None = None
    ) -> None:
        self.config = config if config is not None else UHDConfig()
        self.num_pixels = num_pixels
        self.num_classes = num_classes
        self._backend = get_backend(self.config.backend)
        self.encoder = self._backend.make_encoder(num_pixels, self.config)
        self._classifier: CentroidClassifier | None = None

    def _encode_images(self, images: np.ndarray) -> np.ndarray:
        return self.encoder.encode_batch(np.asarray(images))

    def _new_classifier(self) -> CentroidClassifier:
        return CentroidClassifier(
            self.num_classes,
            self.config.dim,
            binarize=self.config.binarize,
            backend=self._backend,
        )

    def fit(self, images: np.ndarray, labels: np.ndarray) -> "UHDClassifier":
        """Single-pass training (the paper's i = 1)."""
        encoded = self._encode_images(images)
        self._classifier = self._new_classifier()
        self._classifier.fit(encoded, np.asarray(labels))
        return self

    def retrain(self, images: np.ndarray, labels: np.ndarray, epochs: int = 1) -> int:
        """Optional perceptron refinement (extension; off in the paper)."""
        if self._classifier is None:
            raise RuntimeError("model has not been fitted")
        return self._classifier.retrain(self._encode_images(images),
                                        np.asarray(labels), epochs=epochs)

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Class labels via cosine similarity against class hypervectors."""
        if self._classifier is None:
            raise RuntimeError("model has not been fitted")
        return self._classifier.predict(self._encode_images(images))

    def score(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled batch."""
        if self._classifier is None:
            raise RuntimeError("model has not been fitted")
        return self._classifier.score(self._encode_images(images), np.asarray(labels))

    @property
    def classifier(self) -> CentroidClassifier:
        """The underlying centroid classifier (fitted)."""
        if self._classifier is None:
            raise RuntimeError("model has not been fitted")
        return self._classifier

    def with_backend(self, backend: str) -> "UHDClassifier":
        """Clone onto another registered backend, trained state intact.

        Backends are bit-exact, so the clone predicts identically; this is
        how a serving layer re-homes a model trained elsewhere (e.g. load a
        reference-trained file, serve it threaded) without refitting.
        """
        from dataclasses import replace

        clone = UHDClassifier(
            self.num_pixels,
            self.num_classes,
            replace(self.config, backend=backend),
        )
        if self._classifier is not None:
            clone._classifier = clone._new_classifier()
            clone._classifier._restore_accumulators(self._classifier.accumulators)
        return clone

    # ------------------------------------------------------------------
    # Persistence (see repro.api.persistence for the file format)
    # ------------------------------------------------------------------
    def _save_payload(self) -> dict[str, Any]:
        from ..api.persistence import config_to_json

        if self._classifier is None:
            raise RuntimeError("cannot save an unfitted model")
        return {
            "config_json": config_to_json(self.config),
            "num_pixels": self.num_pixels,
            "num_classes": self.num_classes,
            "accumulators": self._classifier.accumulators,
        }

    @classmethod
    def _from_payload(cls, payload: dict[str, np.ndarray]) -> "UHDClassifier":
        from ..api.persistence import config_from_json

        config = config_from_json(str(payload["config_json"].item()), UHDConfig)
        model = cls(int(payload["num_pixels"]), int(payload["num_classes"]), config)
        model._classifier = model._new_classifier()
        model._classifier._restore_accumulators(payload["accumulators"])
        return model

    def save(self, path: Any) -> None:
        """Persist config + trained state; loading never re-encodes data."""
        from ..api.persistence import save_model

        save_model(self, path)

    @classmethod
    def load(cls, path: Any) -> "UHDClassifier":
        """Rebuild a fitted model saved by :meth:`save`, bit-exactly."""
        from ..api.persistence import load_model

        return load_model(path, expected=cls)
