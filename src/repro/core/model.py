"""End-to-end uHD classifier (encoder + single-pass centroid training).

Mirrors :class:`repro.hdc.baseline.BaselineHDC` so the two models are
drop-in comparable, with the crucial difference the paper exists for:
training is **deterministic** — one pass, no iteration sweep, because the
Sobol codebook is fixed by its seed.

The encoder implementation follows ``config.backend`` (see
:mod:`repro.fastpath`): by default the bit-exact packed fast path encodes,
so swapping backends never changes a prediction.
"""

from __future__ import annotations

import numpy as np

from ..hdc.classifier import CentroidClassifier
from .config import UHDConfig

__all__ = ["UHDClassifier"]


class UHDClassifier:
    """The uHD image classifier of Fig. 2/Fig. 5."""

    def __init__(
        self, num_pixels: int, num_classes: int, config: UHDConfig | None = None
    ) -> None:
        from ..fastpath.backends import make_encoder

        self.config = config if config is not None else UHDConfig()
        self.num_pixels = num_pixels
        self.num_classes = num_classes
        self.encoder = make_encoder(num_pixels, self.config)
        self._classifier: CentroidClassifier | None = None

    def _encode_images(self, images: np.ndarray) -> np.ndarray:
        return self.encoder.encode_batch(np.asarray(images))

    def fit(self, images: np.ndarray, labels: np.ndarray) -> "UHDClassifier":
        """Single-pass training (the paper's i = 1)."""
        encoded = self._encode_images(images)
        self._classifier = CentroidClassifier(
            self.num_classes,
            self.config.dim,
            binarize=self.config.binarize,
            backend=self.config.backend,
        )
        self._classifier.fit(encoded, np.asarray(labels))
        return self

    def retrain(self, images: np.ndarray, labels: np.ndarray, epochs: int = 1) -> int:
        """Optional perceptron refinement (extension; off in the paper)."""
        if self._classifier is None:
            raise RuntimeError("model has not been fitted")
        return self._classifier.retrain(self._encode_images(images),
                                        np.asarray(labels), epochs=epochs)

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Class labels via cosine similarity against class hypervectors."""
        if self._classifier is None:
            raise RuntimeError("model has not been fitted")
        return self._classifier.predict(self._encode_images(images))

    def score(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled batch."""
        if self._classifier is None:
            raise RuntimeError("model has not been fitted")
        return self._classifier.score(self._encode_images(images), np.asarray(labels))

    @property
    def classifier(self) -> CentroidClassifier:
        """The underlying centroid classifier (fitted)."""
        if self._classifier is None:
            raise RuntimeError("model has not been fitted")
        return self._classifier
