"""uHD — the paper's primary contribution.

* :class:`UHDConfig` — hyper-parameters (D, xi, LD family, seed).
* :class:`SobolLevelEncoder` — position-free level-only encoding (Fig. 2).
* :class:`UnaryDomainEncoder` — the bit-exact unary datapath (Fig. 3/5).
* :class:`UHDClassifier` — end-to-end single-pass classifier.
"""

from .config import UHDConfig
from .encoder import SobolLevelEncoder
from .model import UHDClassifier
from .streaming import StreamingUHD
from .unary_encoder import UnaryDomainEncoder, masking_binarize

__all__ = [
    "UHDConfig",
    "SobolLevelEncoder",
    "UnaryDomainEncoder",
    "UHDClassifier",
    "StreamingUHD",
    "masking_binarize",
]
