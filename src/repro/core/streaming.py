"""Streaming (online) uHD training — the "dynamic" in the paper's title.

uHD's centroid training is a pure accumulation, so it supports
single-sample online updates for free: no epochs, no revisiting old data,
no stored dataset.  That is precisely the edge-training scenario the
paper motivates (training on-device is harder than inference; the
baseline needs iterative re-generation, uHD does not).

:class:`StreamingUHD` exposes ``partial_fit`` plus the standard
*prequential* (test-then-train) evaluation protocol used for data-stream
learners.
"""

from __future__ import annotations

import numpy as np

from ..hdc.classifier import CentroidClassifier
from .config import UHDConfig

__all__ = ["StreamingUHD"]


class StreamingUHD:
    """Online uHD classifier: encode-and-accumulate, one batch at a time.

    The encoder follows ``config.backend``; the packed fast path is a
    particularly good fit here because the gather tables amortize over the
    lifetime of the stream (the pair table self-promotes once enough
    samples have flowed through).
    """

    def __init__(
        self, num_pixels: int, num_classes: int, config: UHDConfig | None = None
    ) -> None:
        from ..fastpath.backends import make_encoder

        self.config = config if config is not None else UHDConfig()
        self.num_pixels = num_pixels
        self.num_classes = num_classes
        self.encoder = make_encoder(num_pixels, self.config)
        self.classifier = CentroidClassifier(
            num_classes,
            self.config.dim,
            binarize=self.config.binarize,
            backend=self.config.backend,
        )
        self.samples_seen = 0

    def partial_fit(self, images: np.ndarray, labels: np.ndarray) -> "StreamingUHD":
        """Fold one batch into the class accumulators (O(batch) work)."""
        images = np.atleast_3d(np.asarray(images))
        if images.ndim == 2:  # single flattened image
            images = images[None]
        labels = np.atleast_1d(np.asarray(labels))
        encoded = self.encoder.encode_batch(images)
        self.classifier.fit(encoded, labels)
        self.samples_seen += int(labels.size)
        return self

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Labels under the model accumulated so far."""
        if self.samples_seen == 0:
            raise RuntimeError("no samples seen yet")
        return self.classifier.predict(self.encoder.encode_batch(np.asarray(images)))

    def score(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy under the model accumulated so far."""
        if self.samples_seen == 0:
            raise RuntimeError("no samples seen yet")
        return self.classifier.score(
            self.encoder.encode_batch(np.asarray(images)), np.asarray(labels)
        )

    def evaluate_prequential(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 32,
        warmup: int = 1,
    ) -> list[float]:
        """Test-then-train over a stream; returns per-batch accuracies.

        Each batch is first *predicted* with the model built from all
        earlier batches, then folded in.  ``warmup`` batches are trained
        on without being scored (the model needs at least one example of
        two classes before prediction is defined).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        images = np.asarray(images)
        labels = np.asarray(labels)
        if images.shape[0] != labels.shape[0]:
            raise ValueError("images and labels disagree in count")
        accuracies: list[float] = []
        for index, start in enumerate(range(0, images.shape[0], batch_size)):
            stop = min(start + batch_size, images.shape[0])
            batch_images = images[start:stop]
            batch_labels = labels[start:stop]
            if index >= warmup and self.samples_seen > 0:
                predictions = self.predict(batch_images)
                accuracies.append(float(np.mean(predictions == batch_labels)))
            self.partial_fit(batch_images, batch_labels)
        return accuracies
