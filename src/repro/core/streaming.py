"""Streaming (online) uHD training — the "dynamic" in the paper's title.

uHD's centroid training is a pure accumulation, so it supports
single-sample online updates for free: no epochs, no revisiting old data,
no stored dataset.  That is precisely the edge-training scenario the
paper motivates (training on-device is harder than inference; the
baseline needs iterative re-generation, uHD does not).

:class:`StreamingUHD` exposes ``partial_fit`` plus the standard
*prequential* (test-then-train) evaluation protocol used for data-stream
learners.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..api.registry import get_backend
from ..hdc.classifier import CentroidClassifier
from ..utils.validation import as_image_batch
from .config import UHDConfig

__all__ = ["StreamingUHD"]


class StreamingUHD:
    """Online uHD classifier: encode-and-accumulate, one batch at a time.

    The encoder follows ``config.backend`` (resolved through the
    :mod:`repro.api` backend registry); the packed fast path is a
    particularly good fit here because the gather tables amortize over the
    lifetime of the stream (the pair table self-promotes once enough
    samples have flowed through).

    Satisfies the :class:`repro.api.Estimator` protocol: :meth:`fit` folds
    a batch in exactly like :meth:`partial_fit` (for an online learner the
    two are the same accumulation), and :meth:`save`/:meth:`load`
    round-trip the accumulated model bit-exactly — a server can persist a
    half-trained stream and resume it elsewhere.
    """

    def __init__(
        self, num_pixels: int, num_classes: int, config: UHDConfig | None = None
    ) -> None:
        self.config = config if config is not None else UHDConfig()
        self.num_pixels = num_pixels
        self.num_classes = num_classes
        self._backend = get_backend(self.config.backend)
        self.encoder = self._backend.make_encoder(num_pixels, self.config)
        self.classifier = CentroidClassifier(
            num_classes,
            self.config.dim,
            binarize=self.config.binarize,
            backend=self._backend,
        )
        self.samples_seen = 0

    def _as_batch(self, images: np.ndarray) -> np.ndarray:
        """One accepted-shapes policy for *every* entry point.

        ``partial_fit``, ``predict`` and ``score`` all normalize through
        :func:`repro.utils.validation.as_image_batch` (the same helper
        the serving layer uses), so an input accepted at train time can
        never misbehave at predict time: a ``(pixels,)`` vector or an
        unflattened square ``(h, h)`` image becomes a batch of 1 in all
        three, identically.
        """
        return as_image_batch(images, self.num_pixels)

    def partial_fit(self, images: np.ndarray, labels: np.ndarray) -> "StreamingUHD":
        """Fold one batch into the class accumulators (O(batch) work)."""
        images = self._as_batch(images)
        labels = np.atleast_1d(np.asarray(labels))
        if images.shape[0] != labels.size:
            raise ValueError(
                f"got {images.shape[0]} image(s) but {labels.size} label(s)"
            )
        encoded = self.encoder.encode_batch(images)
        self.classifier.fit(encoded, labels)
        self.samples_seen += int(labels.size)
        return self

    def fit(self, images: np.ndarray, labels: np.ndarray) -> "StreamingUHD":
        """Estimator-protocol alias of :meth:`partial_fit` (pure accumulation)."""
        return self.partial_fit(images, labels)

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Labels under the model accumulated so far."""
        if self.samples_seen == 0:
            raise RuntimeError("no samples seen yet")
        return self.classifier.predict(
            self.encoder.encode_batch(self._as_batch(images))
        )

    def score(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy under the model accumulated so far."""
        if self.samples_seen == 0:
            raise RuntimeError("no samples seen yet")
        return self.classifier.score(
            self.encoder.encode_batch(self._as_batch(images)), np.asarray(labels)
        )

    def evaluate_prequential(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 32,
        warmup: int = 1,
    ) -> list[float]:
        """Test-then-train over a stream; returns per-batch accuracies.

        Each batch is first *predicted* with the model built from all
        earlier batches, then folded in.  ``warmup`` batches are trained
        on without being scored (the model needs at least one example of
        two classes before prediction is defined).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        images = np.asarray(images)
        labels = np.asarray(labels)
        if images.shape[0] != labels.shape[0]:
            raise ValueError("images and labels disagree in count")
        accuracies: list[float] = []
        for index, start in enumerate(range(0, images.shape[0], batch_size)):
            stop = min(start + batch_size, images.shape[0])
            batch_images = images[start:stop]
            batch_labels = labels[start:stop]
            if index >= warmup and self.samples_seen > 0:
                predictions = self.predict(batch_images)
                accuracies.append(float(np.mean(predictions == batch_labels)))
            self.partial_fit(batch_images, batch_labels)
        return accuracies

    # ------------------------------------------------------------------
    # Persistence (see repro.api.persistence for the file format)
    # ------------------------------------------------------------------
    def _save_payload(self) -> dict[str, Any]:
        from ..api.persistence import config_to_json

        if self.samples_seen == 0:
            raise RuntimeError("cannot save a stream that has seen no samples")
        return {
            "config_json": config_to_json(self.config),
            "num_pixels": self.num_pixels,
            "num_classes": self.num_classes,
            "samples_seen": self.samples_seen,
            "accumulators": self.classifier.accumulators,
        }

    @classmethod
    def _from_payload(cls, payload: dict[str, np.ndarray]) -> "StreamingUHD":
        from ..api.persistence import config_from_json

        config = config_from_json(str(payload["config_json"].item()), UHDConfig)
        model = cls(int(payload["num_pixels"]), int(payload["num_classes"]), config)
        model.classifier._restore_accumulators(payload["accumulators"])
        model.samples_seen = int(payload["samples_seen"])
        return model

    def save(self, path: Any) -> None:
        """Persist the accumulated stream state (resumable elsewhere)."""
        from ..api.persistence import save_model

        save_model(self, path)

    @classmethod
    def load(cls, path: Any) -> "StreamingUHD":
        """Resume a stream saved by :meth:`save`; accumulation continues."""
        from ..api.persistence import load_model

        return load_model(path, expected=cls)
