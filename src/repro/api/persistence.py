"""Versioned model persistence: config + trained state as one ``.npz`` file.

uHD's single-iteration training makes a fitted model tiny and fully
deterministic: the Sobol codebook is a pure function of the config seed,
so the only *learned* state is the ``(num_classes, dim)`` int64 class
accumulator matrix.  A saved model is therefore just

* a format header (magic name, integer version, model class name),
* the model's config (JSON — every field of the frozen dataclass), and
* the raw integer accumulators (plus a couple of scalar counters).

``load`` rebuilds the encoder from the config (construction, not
training — no training data is ever re-encoded) and injects the
accumulators, so predictions after a round-trip are **bit-exact** on
every backend: the packed/threaded class words are re-derived lazily
from the same integers the reference path compares against.

File layout notes
-----------------
The header keys are dunder-named so they can never collide with a model
payload key.  Files are written through an open file handle so the path
is stored exactly as given (``np.savez`` would append ``.npz`` itself).
``allow_pickle`` stays False end-to-end: a model file can be loaded from
an untrusted source without executing anything.

Anything structurally wrong — not a zip, missing header, wrong magic,
version from the future, missing payload keys, wrong model class —
raises :class:`ModelFormatError` with a message naming the problem.
"""

from __future__ import annotations

import io
import json
import os
import zipfile
from dataclasses import asdict, fields
from typing import TYPE_CHECKING, Any, BinaryIO, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .estimator import Estimator

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "ModelFormatError",
    "save_model",
    "load_model",
    "table_sidecar_path",
    "config_to_json",
    "config_from_json",
]

#: magic string in every model file header; ``load_model`` rejects files
#: whose magic differs (e.g. an arbitrary ``.npz``) with ModelFormatError
FORMAT_NAME = "uhd-model"
#: integer format version this build writes; readers accept 1..FORMAT_VERSION
#: and refuse files from the future with ModelFormatError
FORMAT_VERSION = 1

_FORMAT_KEY = "__format__"
_VERSION_KEY = "__version__"
_MODEL_KEY = "__model__"

#: model-class registry: name -> lazy importer (keeps this module cycle-free)
_MODEL_IMPORTS = {
    "UHDClassifier": lambda: _import("repro.core.model", "UHDClassifier"),
    "StreamingUHD": lambda: _import("repro.core.streaming", "StreamingUHD"),
    "BaselineHDC": lambda: _import("repro.hdc.baseline", "BaselineHDC"),
    "CentroidClassifier": lambda: _import("repro.hdc.classifier", "CentroidClassifier"),
}


def _import(module: str, attr: str) -> type:
    import importlib

    return getattr(importlib.import_module(module), attr)


class ModelFormatError(Exception):
    """A model file is corrupted, mis-versioned, or of the wrong kind.

    Example::

        from repro.api import ModelFormatError, load_model

        try:
            model = load_model("maybe-a-model.npz")
        except ModelFormatError as exc:
            print(f"refusing to serve: {exc}")
    """


def config_to_json(config: Any) -> str:
    """Frozen config dataclass -> canonical JSON string."""
    return json.dumps(asdict(config), sort_keys=True)


def config_from_json(payload: str, config_cls: type) -> Any:
    """Inverse of :func:`config_to_json`, tolerant of *older* configs.

    Unknown keys (a file written by a newer minor revision) raise;
    missing keys fall back to the dataclass defaults so old files keep
    loading when a new field with a default is added.
    """
    try:
        raw = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ModelFormatError(f"config payload is not valid JSON: {exc}") from exc
    known = {f.name for f in fields(config_cls)}
    unknown = set(raw) - known
    if unknown:
        raise ModelFormatError(
            f"config has fields {sorted(unknown)} unknown to "
            f"{config_cls.__name__} — file written by a newer version?"
        )
    try:
        return config_cls(**raw)
    except (ValueError, TypeError) as exc:
        # corrupt field values, or a backend name whose plugin is not
        # registered in this process
        raise ModelFormatError(
            f"saved config does not validate: {exc}"
        ) from exc


def _save_arrays(model: "Estimator") -> dict[str, np.ndarray]:
    name = type(model).__name__
    if name not in _MODEL_IMPORTS:
        raise TypeError(
            f"don't know how to persist {name!r}; persistable models: "
            f"{sorted(_MODEL_IMPORTS)}"
        )
    payload = model._save_payload()
    arrays: dict[str, np.ndarray] = {
        _FORMAT_KEY: np.array(FORMAT_NAME),
        _VERSION_KEY: np.array(FORMAT_VERSION, dtype=np.int64),
        _MODEL_KEY: np.array(name),
    }
    for key, value in payload.items():
        if key.startswith("__"):
            raise ValueError(f"payload key {key!r} collides with the header namespace")
        arrays[key] = np.asarray(value)
    return arrays


def table_sidecar_path(path: Any) -> str:
    """The table-sidecar filename for a model at ``path`` (``<path>.tables``).

    Example::

        from repro.api import table_sidecar_path

        table_sidecar_path("mnist-2048.npz")    # 'mnist-2048.npz.tables'
    """
    return os.fspath(path) + ".tables"


def save_model(
    model: "Estimator", path: Any, include_tables: bool = False
) -> None:
    """Write a fitted model to ``path`` (versioned, compressed ``.npz``).

    ``path`` may be a string/``os.PathLike`` or an open binary file
    object.  Raises ``RuntimeError`` if the model has not been fitted
    (an unfitted model has no state worth a file).

    ``include_tables=True`` additionally flushes the encoder's warm
    gather tables (pair promotion forced first) to the sidecar file
    :func:`table_sidecar_path` — :func:`load_model` then attaches them
    read-only via ``np.memmap``, so a warm start from disk skips table
    construction *and* re-promotion entirely.  The sidecar is pure
    derived state: deleting it costs a rebuild, never correctness.
    Requires a path (not a file object) and a model whose encoder can
    export tables (the packed/threaded backends).

    Example::

        from repro.api import save_model

        model.fit(train_images, train_labels)
        save_model(model, "mnist-2048.npz")     # == model.save(...)
        save_model(model, "mnist-2048.npz", include_tables=True)
    """
    arrays = _save_arrays(model)
    if hasattr(path, "write"):
        if include_tables:
            raise ValueError(
                "include_tables=True needs a filesystem path for the "
                "sidecar, not an open file object"
            )
        np.savez_compressed(path, **arrays)
        return
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    if include_tables:
        _write_table_sidecar(model, path)
    else:
        # a sidecar from a previous save describes the *old* model's
        # tables; leaving it behind would poison the next load
        try:
            os.unlink(table_sidecar_path(path))
        except OSError:
            pass


def _write_table_sidecar(model: "Estimator", path: Any) -> None:
    encoder = getattr(model, "encoder", None)
    if encoder is None or not hasattr(encoder, "export_tables"):
        raise ValueError(
            f"include_tables=True: {type(model).__name__}'s encoder "
            f"({type(encoder).__name__}) has no exportable gather tables "
            "(use a packed-capable backend)"
        )
    from ..fastpath.tablestore import write_table_file

    write_table_file(table_sidecar_path(path), encoder.export_tables(promote=True))


def _read_arrays(path: Any) -> dict[str, np.ndarray]:
    stream: BinaryIO
    if hasattr(path, "read"):
        stream = io.BytesIO(path.read())
    else:
        with open(path, "rb") as handle:  # missing file -> FileNotFoundError as-is
            stream = io.BytesIO(handle.read())
    try:
        with np.load(stream, allow_pickle=False) as data:
            return {key: data[key] for key in data.files}
    except (ValueError, OSError, zipfile.BadZipFile, KeyError) as exc:
        raise ModelFormatError(f"not a readable model file: {exc}") from exc


def _check_header(arrays: Mapping[str, np.ndarray]) -> str:
    for key in (_FORMAT_KEY, _VERSION_KEY, _MODEL_KEY):
        if key not in arrays:
            raise ModelFormatError(f"missing header field {key!r} — not a uHD model file")
    try:
        magic = arrays[_FORMAT_KEY].item()
        version = int(arrays[_VERSION_KEY])
        model = str(arrays[_MODEL_KEY].item())
    except (ValueError, TypeError) as exc:  # wrong-typed / multi-element fields
        raise ModelFormatError(f"malformed header field: {exc}") from exc
    if magic != FORMAT_NAME:
        raise ModelFormatError(
            f"bad format magic {magic!r} (expected {FORMAT_NAME!r})"
        )
    if version < 1 or version > FORMAT_VERSION:
        raise ModelFormatError(
            f"model format version {version} is not supported "
            f"(this build reads versions 1..{FORMAT_VERSION})"
        )
    return model


def load_model(
    path: Any, expected: type | None = None, backend: str | None = None
) -> "Estimator":
    """Rebuild a fitted model saved by :func:`save_model`.

    ``expected`` (used by the per-class ``load`` classmethods) pins the
    model class; a file holding some other model raises
    :class:`ModelFormatError` instead of returning a surprise type.
    Loading reconstructs the encoder from config — it never touches or
    re-encodes training data.

    ``backend`` re-homes the loaded model onto another registered
    execution backend (``model.with_backend``), trained state intact —
    the single code path the CLI and the serving layer (front-end and
    every worker) share, so they can never re-home inconsistently.
    Raises ``ValueError`` for a model type that cannot switch backends.

    When a table sidecar (:func:`table_sidecar_path`, written by
    ``save_model(..., include_tables=True)``) sits next to the file, the
    encoder *attaches* the flushed gather tables read-only instead of
    rebuilding/re-promoting them — byte-identical tables, bit-exact
    predictions, O(1) warm-start in table size.  A sidecar that does not
    match the model's encoder geometry raises :class:`ModelFormatError`
    (it can only mean corruption or a stale copy).

    Example — warm-start a serving worker, bit-exact with the saver::

        from repro.api import load_model

        warm = load_model("mnist-2048.npz")     # no retraining, no data
        fast = load_model("mnist-2048.npz", backend="packed")
        labels = warm.predict(images)
    """
    arrays = _read_arrays(path)
    name = _check_header(arrays)
    if name not in _MODEL_IMPORTS:
        raise ModelFormatError(f"file holds unknown model class {name!r}")
    if expected is not None and name != expected.__name__:
        raise ModelFormatError(
            f"file holds a {name}, not a {expected.__name__}"
        )
    cls = _MODEL_IMPORTS[name]()
    payload = {k: v for k, v in arrays.items() if not k.startswith("__")}
    try:
        model = cls._from_payload(payload)
    except KeyError as exc:
        raise ModelFormatError(
            f"model file is missing payload field {exc.args[0]!r} — truncated "
            "or written by an incompatible build"
        ) from exc
    if backend is not None:
        current = getattr(getattr(model, "config", None), "backend", None)
        if current != backend:
            if not hasattr(model, "with_backend"):
                raise ValueError(
                    f"{name} cannot be re-homed onto backend {backend!r} "
                    "(no with_backend); save it with the desired backend "
                    "instead"
                )
            model = model.with_backend(backend)
    _attach_table_sidecar(model, path)
    return model


def _attach_table_sidecar(model: "Estimator", path: Any) -> None:
    """Attach ``<path>.tables`` onto the loaded model's encoder, if both
    sides are capable (sidecar present, encoder cold and attachable).

    Ordered after any backend re-home so the tables land on the encoder
    that will actually serve.  The table key deliberately excludes the
    backend name, so a sidecar written under ``packed`` attaches under
    ``threaded`` (identical bytes) and is ignored under ``reference``.
    """
    if hasattr(path, "read"):  # file objects have no sidecar location
        return
    sidecar = table_sidecar_path(path)
    if not os.path.exists(sidecar):
        return
    encoder = getattr(model, "encoder", None)
    if (
        encoder is None
        or not hasattr(encoder, "attach_tables")
        or getattr(encoder, "tables_ready", True)
    ):
        return
    from ..fastpath.tablestore import TableFormatError, read_table_file

    try:
        encoder.attach_tables(read_table_file(sidecar))
    except TableFormatError as exc:
        raise ModelFormatError(
            f"table sidecar {sidecar} does not match the model it sits "
            f"next to: {exc}"
        ) from exc
