"""The public estimator contract every trainable model in repro satisfies.

``Estimator`` is a structural (duck-typed) protocol, not a base class:
:class:`repro.core.model.UHDClassifier`,
:class:`repro.core.streaming.StreamingUHD`,
:class:`repro.hdc.baseline.BaselineHDC` and
:class:`repro.hdc.classifier.CentroidClassifier` all satisfy it without
inheriting anything, and so can any third-party model.  A serving layer
can therefore hold ``Estimator`` references and stay ignorant of which
concrete model (or which execution backend) is behind them.

The contract is deliberately tiny — uHD's single-iteration training means
a fitted model is fully described by its config plus one integer array of
class accumulators, so ``save``/``load`` (see
:mod:`repro.api.persistence`) round-trip bit-exactly and a worker process
can go from cold start to serving without ever seeing training data.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = ["Estimator"]


@runtime_checkable
class Estimator(Protocol):
    """fit / predict / score / save / load — the serving-layer contract.

    ``X`` is whatever raw input the concrete model encodes (images for
    the image classifiers, pre-encoded hypervectors for
    :class:`~repro.hdc.classifier.CentroidClassifier`); ``y`` is a 1-D
    integer label array aligned with ``X``.

    Example — code written against the protocol serves any model::

        from repro.api import Estimator, load_model

        def accuracy(model: Estimator, X, y) -> float:
            return model.score(X, y)

        accuracy(load_model("mnist-2048.npz"), test_images, test_labels)
    """

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Estimator":
        """Train on a labelled batch and return self."""
        ...

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Winner-take-all class labels for a batch."""
        ...

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy in ``[0, 1]`` on a labelled batch."""
        ...

    def save(self, path: Any) -> None:
        """Persist config + trained state (versioned ``.npz``, bit-exact)."""
        ...

    @classmethod
    def load(cls, path: Any) -> "Estimator":
        """Rebuild a fitted model from :meth:`save` output without retraining."""
        ...
