"""Public estimator API: backends, persistence, and the estimator contract.

This package is the stable surface a serving system builds against:

* :class:`~repro.api.estimator.Estimator` — the fit/predict/score/save/load
  protocol every model in repro satisfies.
* :class:`~repro.api.registry.Backend` and the **backend registry**
  (:func:`register_backend` / :func:`get_backend` / :func:`list_backends`)
  — named execution backends (``reference``, ``packed``, ``auto``,
  ``threaded`` built in); third-party backends plug in without touching
  core code, and ``UHDConfig.backend`` validates against the registry.
* **Model persistence** (:func:`save_model` / :func:`load_model` /
  :class:`ModelFormatError`) — versioned ``.npz`` round-trips that are
  bit-exact and never re-encode training data; ``save_model(...,
  include_tables=True)`` adds a :func:`table_sidecar_path` sidecar so a
  load attaches the warm gather tables instead of rebuilding them.

Quickstart::

    from repro import UHDClassifier, UHDConfig, load_dataset
    from repro.api import load_model

    data = load_dataset("mnist", n_train=2000, n_test=500).grayscale()
    model = UHDClassifier(data.num_pixels, data.num_classes,
                          UHDConfig(dim=2048, backend="threaded"))
    model.fit(data.train_images, data.train_labels)
    model.save("mnist.npz")

    warm = UHDClassifier.load("mnist.npz")       # or load_model("mnist.npz")
    print(warm.score(data.test_images, data.test_labels))

Import note: submodules are loaded lazily (PEP 562) so that
``repro.core.config`` can validate backends against
:mod:`repro.api.registry` without an import cycle.
"""

from __future__ import annotations

from .registry import (
    Backend,
    get_backend,
    is_registered_backend,
    list_backends,
    register_backend,
    resolve_backend,
    unregister_backend,
)

__all__ = [
    "Backend",
    "Estimator",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "ModelFormatError",
    "get_backend",
    "is_registered_backend",
    "list_backends",
    "load_model",
    "register_backend",
    "resolve_backend",
    "save_model",
    "table_sidecar_path",
    "unregister_backend",
]

#: attribute -> defining submodule, resolved lazily to keep this package
#: importable from repro.core.config without cycling through the models
_LAZY = {
    "Estimator": "estimator",
    "FORMAT_NAME": "persistence",
    "FORMAT_VERSION": "persistence",
    "ModelFormatError": "persistence",
    "save_model": "persistence",
    "load_model": "persistence",
    "table_sidecar_path": "persistence",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
