"""Named backend registry — the single source of truth for execution backends.

A *backend* bundles the two dispatch decisions the models used to make
through hardcoded string tuples (the old ``_BACKENDS`` in
:mod:`repro.core.config` and the ad-hoc helpers in
:mod:`repro.fastpath.backends`):

* which **encoder** implements ``encode_batch`` for a given workload, and
* which **inference kernels** the centroid classifier runs on.

Backends are registered by name with a zero-argument factory so that
registration stays import-light: looking up ``"packed"`` is what pulls in
:mod:`repro.fastpath`, not importing this module.  ``UHDConfig.backend``
validates against this registry, so a third-party backend registered
*before* configs are built plugs into every model, the CLI and the
benchmarks without touching core code::

    from repro.api import Backend, register_backend

    class FancyBackend:
        name = "fancy"
        ...

    register_backend("fancy", FancyBackend)
    model = UHDClassifier(784, 10, UHDConfig(backend="fancy"))

Built-in backends (``reference``, ``packed``, ``auto``, ``threaded``) are
registered here with lazy factories; see :mod:`repro.fastpath.execution`
for their implementations.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from ..core.config import UHDConfig
    from ..core.encoder import SobolLevelEncoder

__all__ = [
    "Backend",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "resolve_backend",
    "list_backends",
    "is_registered_backend",
]


@runtime_checkable
class Backend(Protocol):
    """Execution backend: encoder construction + inference kernel policy.

    Implementations must be stateless (or share only read-only state):
    one instance is cached per registered name and handed to every model
    that selects it, possibly from several threads.

    Example — the smallest useful custom backend, delegating encoding to
    the reference path but forcing reference inference::

        from repro.api import Backend, get_backend, register_backend

        class ReferenceOnly:
            name = "ref-only"
            def make_encoder(self, num_pixels, config):
                return get_backend("reference").make_encoder(num_pixels, config)
            def encoder_kind(self, config, num_pixels):
                return "reference"
            def use_packed_inference(self, binarize):
                return False
            def packed_predict(self, queries, class_words, dim):
                raise NotImplementedError
            def packed_cosine(self, query_words, class_words, dim):
                raise NotImplementedError

        register_backend("ref-only", ReferenceOnly)
    """

    #: registry name; ``UHDConfig(backend=name)`` selects this backend
    name: str

    def make_encoder(
        self, num_pixels: int, config: "UHDConfig"
    ) -> "SobolLevelEncoder":
        """Build the encoder this backend runs ``encode_batch`` on."""
        ...

    def encoder_kind(self, config: "UHDConfig", num_pixels: int) -> str:
        """``"packed"`` or ``"reference"`` — which encode path applies.

        Raises ``ValueError`` when the backend is forced onto a workload
        it cannot serve (so a forced selection never silently degrades).
        """
        ...

    def use_packed_inference(self, binarize: bool) -> bool:
        """Whether classifier inference runs on packed words."""
        ...

    def packed_predict(
        self, queries: "np.ndarray", class_words: "np.ndarray", dim: int
    ) -> "np.ndarray":
        """Winner-take-all labels from raw integer accumulator queries."""
        ...

    def packed_cosine(
        self, query_words: "np.ndarray", class_words: "np.ndarray", dim: int
    ) -> "np.ndarray":
        """Binarized cosine similarities from packed queries."""
        ...


_FACTORIES: dict[str, Callable[[], Backend]] = {}
_INSTANCES: dict[str, Backend] = {}
#: serializes first-lookup instantiation so every thread sees one instance
#: per name (the cached-instance invariant the Backend protocol documents);
#: reentrant because a factory may legitimately compose another backend via
#: get_backend() from inside its own construction
_INSTANCE_LOCK = threading.RLock()


def register_backend(
    name: str, factory: Callable[[], Backend], *, replace: bool = False
) -> None:
    """Register ``factory`` under ``name``.

    ``factory`` is called lazily (and at most once) on the first
    :func:`get_backend` lookup; the instance is cached after that.  Pass
    ``replace=True`` to overwrite an existing registration — without it a
    name collision raises so two libraries cannot silently fight over a
    name.

    Example::

        from repro.api import register_backend
        from repro import UHDClassifier, UHDConfig

        register_backend("fancy", FancyBackend)            # plug in by name
        model = UHDClassifier(784, 10, UHDConfig(backend="fancy"))
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise TypeError(f"backend factory must be callable, got {factory!r}")
    with _INSTANCE_LOCK:  # vs concurrent get_backend caching the old factory
        if name in _FACTORIES and not replace:
            raise ValueError(
                f"backend {name!r} is already registered; pass replace=True "
                "to override"
            )
        _FACTORIES[name] = factory
        _INSTANCES.pop(name, None)


def unregister_backend(name: str) -> None:
    """Remove a registered backend (mainly for tests / plugin teardown).

    Removing an unknown name is a no-op.  Example::

        register_backend("temp", TempBackend)
        try:
            ...
        finally:
            unregister_backend("temp")
    """
    with _INSTANCE_LOCK:
        _FACTORIES.pop(name, None)
        _INSTANCES.pop(name, None)


def list_backends() -> tuple[str, ...]:
    """Registered backend names, registration order.

    Example::

        >>> from repro.api import list_backends
        >>> sorted(list_backends())
        ['auto', 'packed', 'reference', 'threaded']
    """
    return tuple(_FACTORIES)


def is_registered_backend(name: str) -> bool:
    """Whether ``name`` resolves to a registered backend.

    Example::

        >>> from repro.api import is_registered_backend
        >>> is_registered_backend("packed"), is_registered_backend("gpu")
        (True, False)
    """
    return name in _FACTORIES


def get_backend(name: str) -> Backend:
    """The (cached) backend instance registered under ``name``.

    Raises ``ValueError`` with the available names for typo-friendly
    config validation errors.

    Example — build the encoder a config selects (the supported
    replacement for the deprecated ``repro.fastpath.backends.make_encoder``)::

        from repro.api import get_backend

        backend = get_backend(config.backend)
        encoder = backend.make_encoder(num_pixels, config)
    """
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    with _INSTANCE_LOCK:
        instance = _INSTANCES.get(name)  # lost the race -> reuse the winner
        if instance is not None:
            return instance
        factory = _FACTORIES.get(name)
        if factory is None:
            raise ValueError(
                f"unknown backend {name!r}: registered backends are "
                f"{list_backends()} (see repro.api.register_backend)"
            )
        instance = factory()
        if not isinstance(instance, Backend):
            raise TypeError(
                f"factory for backend {name!r} returned {type(instance).__name__}, "
                "which does not implement the repro.api.Backend protocol"
            )
        _INSTANCES[name] = instance
        return instance


def resolve_backend(backend: "str | Backend") -> Backend:
    """Normalize a name or an already-built backend to a Backend instance.

    Example::

        resolve_backend("packed")            # registry lookup
        resolve_backend(MyBackend())         # passes through, type-checked
    """
    if isinstance(backend, str):
        return get_backend(backend)
    if isinstance(backend, Backend):
        return backend
    raise TypeError(
        f"backend must be a registered name or a Backend instance, got {backend!r}"
    )


# ----------------------------------------------------------------------
# Built-in backends: lazy factories so this module imports nothing heavy.
# ----------------------------------------------------------------------
def _reference_factory() -> Backend:
    from ..fastpath.execution import ReferenceBackend

    return ReferenceBackend()


def _packed_factory() -> Backend:
    from ..fastpath.execution import PackedBackend

    return PackedBackend()


def _auto_factory() -> Backend:
    from ..fastpath.execution import AutoBackend

    return AutoBackend()


def _threaded_factory() -> Backend:
    from ..fastpath.threaded import ThreadedBackend

    return ThreadedBackend()


register_backend("auto", _auto_factory)
register_backend("packed", _packed_factory)
register_backend("reference", _reference_factory)
register_backend("threaded", _threaded_factory)
