"""Quantization of LD scalars and pixel intensities (paper Fig. 3(a)).

uHD stores Sobol scalars and input intensities as M-bit integers
(``xi = 2^M`` quantization levels) that double as the ones-count of an
N-bit unary stream.  The paper's worked example uses ``xi = 16``:
``0.671875 -> 10``, ``0.359375 -> 5``, ``0.859375 -> 13`` ... which is the
``round(value * (xi - 1))`` rule implemented here (and verified against
those exact values in the tests).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "quantize_unit",
    "quantize_intensity",
    "dequantize",
    "bits_for_levels",
]

_INTEGER_KINDS = ("u", "i")


def bits_for_levels(levels: int) -> int:
    """Bit width M needed to store values in ``[0, levels - 1]``."""
    if levels < 2:
        raise ValueError(f"levels must be >= 2, got {levels}")
    return int(levels - 1).bit_length()


def quantize_unit(values: np.ndarray, levels: int = 16) -> np.ndarray:
    """Quantize values in ``[0, 1]`` to integers in ``[0, levels - 1]``.

    Follows the paper's ``round(S * (xi - 1))`` convention (Fig. 3(a)).
    Returns the smallest unsigned dtype that holds the range.
    """
    if levels < 2:
        raise ValueError(f"levels must be >= 2, got {levels}")
    values = np.asarray(values, dtype=np.float64)
    if values.size and (values.min() < 0.0 or values.max() > 1.0):
        raise ValueError("quantize_unit expects values in [0, 1]")
    dtype = np.uint8 if levels <= 256 else np.uint16
    return np.rint(values * (levels - 1)).astype(dtype)


def quantize_intensity(
    image: np.ndarray, levels: int = 16, max_value: int = 255
) -> np.ndarray:
    """Quantize raw integer intensities (e.g. 8-bit pixels) to M-bit levels.

    ``max_value`` is the full-scale input code (255 for uint8 images).
    """
    image = np.asarray(image)
    if image.dtype.kind in _INTEGER_KINDS:
        scaled = image.astype(np.float64) / float(max_value)
    else:
        scaled = np.asarray(image, dtype=np.float64)
    return quantize_unit(np.clip(scaled, 0.0, 1.0), levels=levels)


def dequantize(codes: np.ndarray, levels: int = 16) -> np.ndarray:
    """Map M-bit codes back to the unit interval (inverse of the round rule)."""
    if levels < 2:
        raise ValueError(f"levels must be >= 2, got {levels}")
    codes = np.asarray(codes)
    if codes.size and (codes.min() < 0 or codes.max() > levels - 1):
        raise ValueError(f"codes must lie in [0, {levels - 1}]")
    return codes.astype(np.float64) / float(levels - 1)
