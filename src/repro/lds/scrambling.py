"""Linear matrix scrambling (Matousek) of base-2 digital sequences.

Scrambling randomises a low-discrepancy sequence while provably keeping
its net structure: multiplying the digit vector by a random
lower-triangular unit-diagonal GF(2) matrix ``L`` and XOR-ing a random
digital shift maps every dyadic elementary interval onto another one, so
each dimension remains a (0, 1)-sequence (the property the uHD encoder
relies on).  Scrambled replicates give variance estimates for QMC and an
extra decorrelation knob across dimensions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["matousek_scramble", "random_lower_triangular"]


def random_lower_triangular(rng: np.random.Generator, bits: int) -> np.ndarray:
    """Row masks of a random unit-diagonal lower-triangular GF(2) matrix.

    Row ``r`` (output digit ``r``, MSB first) may combine input digits
    ``0..r``; the diagonal is forced to 1.  Returned as uint64 masks over
    the *fixed-point integer* layout (bit ``bits-1-k`` holds digit ``k``).
    """
    if not 1 <= bits <= 62:
        raise ValueError(f"bits must lie in [1, 62], got {bits}")
    masks = np.zeros(bits, dtype=np.uint64)
    for row in range(bits):
        below = int(rng.integers(0, 1 << row)) if row else 0
        # Digits 0..row-1 live at bit positions bits-1 .. bits-row.
        mask = 1 << (bits - 1 - row)  # unit diagonal
        for k in range(row):
            if (below >> k) & 1:
                mask |= 1 << (bits - 1 - k)
        masks[row] = np.uint64(mask)
    return masks


def _parity64(values: np.ndarray) -> np.ndarray:
    """Bitwise parity of each uint64 element (vectorised popcount & 1)."""
    values = values.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        values ^= values >> np.uint64(shift)
    return values & np.uint64(1)


def matousek_scramble(
    integers: np.ndarray,
    seed: int,
    bits: int = 32,
) -> np.ndarray:
    """Scramble fixed-point sequence integers, one matrix+shift per dimension.

    ``integers`` is the ``(n, dims)`` uint64 output of
    :meth:`repro.lds.SobolEngine.integers`; the result has the same shape
    and layout.  Each dimension ``j`` gets an independent matrix ``L_j``
    and digital shift derived from ``(seed, j)``, so scrambles are
    reproducible.
    """
    integers = np.asarray(integers, dtype=np.uint64)
    if integers.ndim != 2:
        raise ValueError("expected an (n, dims) integer matrix")
    n, dims = integers.shape
    out = np.zeros_like(integers)
    for dim in range(dims):
        rng = np.random.default_rng([seed, dim, 0x5C2A])
        masks = random_lower_triangular(rng, bits)
        column = integers[:, dim]
        scrambled = np.zeros(n, dtype=np.uint64)
        for row in range(bits):
            bit = _parity64(column & masks[row])
            scrambled |= bit << np.uint64(bits - 1 - row)
        shift = np.uint64(rng.integers(0, 1 << bits, dtype=np.uint64))
        out[:, dim] = scrambled ^ shift
    return out
