"""Halton low-discrepancy sequences (LD-family ablation for uHD).

Dimension ``j`` of a Halton set is the van der Corput sequence in the
``j``-th prime base.  Compared with Sobol, per-dimension stratification is
coarser for large bases, which is exactly the effect the LD-family ablation
bench measures against classification accuracy.
"""

from __future__ import annotations

import numpy as np

from .vandercorput import van_der_corput

__all__ = ["first_primes", "halton_sequences"]


def first_primes(count: int) -> list[int]:
    """The first ``count`` primes, by an incremental trial-division sieve."""
    if count < 0:
        raise ValueError("count must be non-negative")
    primes: list[int] = []
    candidate = 2
    while len(primes) < count:
        is_prime = True
        for p in primes:
            if p * p > candidate:
                break
            if candidate % p == 0:
                is_prime = False
                break
        if is_prime:
            primes.append(candidate)
        candidate += 1 if candidate == 2 else 2
    return primes


def halton_sequences(
    n_dims: int, length: int, start: int = 0, dtype=None
) -> np.ndarray:
    """Halton scalars per dimension, shape ``(n_dims, length)``.

    Mirrors :func:`repro.lds.sobol.sobol_sequences` so encoders can swap LD
    families without further changes.  ``start > 0`` skips the initial runs
    of near-equal points that plague high-base Halton dimensions (the usual
    "leaped"/burn-in remedy).
    """
    if n_dims < 1:
        raise ValueError(f"n_dims must be >= 1, got {n_dims}")
    bases = first_primes(n_dims)
    rows = [van_der_corput(length, base=base, start=start) for base in bases]
    points = np.vstack(rows) if rows else np.empty((0, length))
    if dtype is not None:
        points = points.astype(dtype)
    return np.ascontiguousarray(points)
