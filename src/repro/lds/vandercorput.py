"""Van der Corput radical-inverse sequences.

The base-2 van der Corput sequence is Sobol dimension 0; other bases feed
the Halton construction (:mod:`repro.lds.halton`).  uHD itself only needs
Sobol, but the encoder accepts any LD family so the "is Sobol special?"
ablation bench can swap these in.
"""

from __future__ import annotations

import numpy as np

__all__ = ["radical_inverse", "van_der_corput"]


def radical_inverse(index: int, base: int) -> float:
    """Radical inverse of one non-negative integer in the given base.

    Digits of ``index`` are mirrored around the radix point:
    ``radical_inverse(6, 2) == 0.011b == 0.375``.
    """
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    if index < 0:
        raise ValueError(f"index must be >= 0, got {index}")
    inverse = 0.0
    weight = 1.0 / base
    while index:
        index, digit = divmod(index, base)
        inverse += digit * weight
        weight /= base
    return inverse


def van_der_corput(length: int, base: int = 2, start: int = 0) -> np.ndarray:
    """First ``length`` van der Corput points in ``base``, from index ``start``.

    Base 2 is vectorised through bit-reversal; other bases fall back to the
    scalar radical inverse.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if base == 2:
        indices = np.arange(start, start + length, dtype=np.uint64)
        bits = max(int(indices.max()).bit_length(), 1) if length else 1
        values = np.zeros(length, dtype=np.uint64)
        for bit in range(bits):
            values |= ((indices >> np.uint64(bit)) & np.uint64(1)) << np.uint64(
                bits - 1 - bit
            )
        return values.astype(np.float64) / float(1 << bits)
    return np.array(
        [radical_inverse(i, base) for i in range(start, start + length)],
        dtype=np.float64,
    )
