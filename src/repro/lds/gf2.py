"""Polynomial arithmetic over GF(2) and primitive-polynomial enumeration.

The Sobol construction (:mod:`repro.lds.sobol`) needs one primitive
polynomial over GF(2) per dimension.  The classic implementations ship a
pre-tabulated list (Joe-Kuo); this module instead *derives* the polynomials
from first principles so the whole low-discrepancy substrate is
self-contained and testable.

Representation
--------------
A polynomial ``a_d x^d + ... + a_1 x + a_0`` with ``a_i in {0, 1}`` is stored
as the Python integer whose bit ``i`` equals ``a_i``.  For example
``x^3 + x + 1`` is ``0b1011 == 11``.  Python integers are arbitrary
precision, so no degree limit applies.

Primitivity
-----------
A degree-``d`` polynomial ``p`` is *primitive* when it is irreducible and the
residue class of ``x`` generates the full multiplicative group of
``GF(2^d) = GF(2)[x]/p``, i.e. the order of ``x`` is exactly ``2^d - 1``.
``is_primitive`` checks this directly:

* ``x^(2^d - 1) == 1 (mod p)`` and
* ``x^((2^d - 1)/q) != 1 (mod p)`` for every prime ``q`` dividing
  ``2^d - 1``.
"""

from __future__ import annotations

from typing import Iterator, List

__all__ = [
    "degree",
    "mul",
    "mod",
    "divmod_poly",
    "gcd",
    "pow_mod",
    "is_irreducible",
    "is_primitive",
    "primitive_polynomials",
    "first_primitive_polynomials",
    "prime_factors",
]


def degree(poly: int) -> int:
    """Degree of ``poly``; the zero polynomial has degree ``-1`` by convention."""
    return poly.bit_length() - 1


def mul(a: int, b: int) -> int:
    """Carry-less product of two GF(2) polynomials."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def divmod_poly(a: int, b: int) -> tuple[int, int]:
    """Quotient and remainder of GF(2) polynomial division ``a / b``."""
    if b == 0:
        raise ZeroDivisionError("polynomial division by zero")
    deg_b = degree(b)
    quotient = 0
    remainder = a
    while degree(remainder) >= deg_b:
        shift = degree(remainder) - deg_b
        quotient ^= 1 << shift
        remainder ^= b << shift
    return quotient, remainder


def mod(a: int, b: int) -> int:
    """Remainder of GF(2) polynomial division ``a mod b``."""
    return divmod_poly(a, b)[1]


def gcd(a: int, b: int) -> int:
    """Greatest common divisor of two GF(2) polynomials."""
    while b:
        a, b = b, mod(a, b)
    return a


def pow_mod(base: int, exponent: int, modulus: int) -> int:
    """``base ** exponent mod modulus`` over GF(2), by square-and-multiply."""
    result = 1
    base = mod(base, modulus)
    while exponent:
        if exponent & 1:
            result = mod(mul(result, base), modulus)
        base = mod(mul(base, base), modulus)
        exponent >>= 1
    return result


def prime_factors(n: int) -> List[int]:
    """Distinct prime factors of ``n`` by trial division (``n`` fits our degrees)."""
    if n < 2:
        return []
    factors = []
    candidate = 2
    while candidate * candidate <= n:
        if n % candidate == 0:
            factors.append(candidate)
            while n % candidate == 0:
                n //= candidate
        candidate += 1 if candidate == 2 else 2
    if n > 1:
        factors.append(n)
    return factors


def is_irreducible(poly: int) -> bool:
    """Rabin irreducibility test for a GF(2) polynomial.

    ``poly`` of degree ``d`` is irreducible iff ``x^(2^d) == x (mod poly)``
    and ``gcd(x^(2^(d/q)) - x, poly) == 1`` for every prime ``q | d``.
    """
    d = degree(poly)
    if d <= 0:
        return False
    if d == 1:
        return True
    if not poly & 1:  # divisible by x
        return False
    x = 0b10
    for q in prime_factors(d):
        power = pow_mod(x, 1 << (d // q), poly)
        if gcd(power ^ x, poly) != 1:
            return False
    return pow_mod(x, 1 << d, poly) == x


def is_primitive(poly: int) -> bool:
    """True when ``poly`` is primitive over GF(2) (see module docstring)."""
    d = degree(poly)
    if d <= 0:
        return False
    if d == 1:
        # x and x + 1; only x + 1 (0b11) has non-zero constant term and
        # generates GF(2)* = {1}, so both tests below reduce to triviality.
        return poly == 0b11
    if not is_irreducible(poly):
        return False
    group_order = (1 << d) - 1
    x = 0b10
    if pow_mod(x, group_order, poly) != 1:
        return False
    for q in prime_factors(group_order):
        if pow_mod(x, group_order // q, poly) == 1:
            return False
    return True


def primitive_polynomials(deg: int) -> Iterator[int]:
    """Yield every primitive polynomial of exactly degree ``deg``, ascending."""
    if deg < 1:
        return
    lo = 1 << deg
    hi = 1 << (deg + 1)
    # Constant term must be 1 for the polynomial to be primitive (deg >= 1),
    # so step over odd encodings only.
    for candidate in range(lo | 1, hi, 2):
        if is_primitive(candidate):
            yield candidate


def first_primitive_polynomials(count: int) -> List[int]:
    """The first ``count`` primitive polynomials ordered by degree then value.

    This is the ordering the Sobol engine uses to assign one polynomial per
    dimension (dimension 0 uses no polynomial; dimension ``j >= 1`` uses entry
    ``j - 1`` of this list).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    found: List[int] = []
    deg = 1
    while len(found) < count:
        for poly in primitive_polynomials(deg):
            found.append(poly)
            if len(found) == count:
                break
        deg += 1
    return found
