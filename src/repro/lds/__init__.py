"""Low-discrepancy sequence substrate (paper contribution ①).

Public surface:

* :class:`SobolEngine` / :func:`sobol_sequences` — from-scratch Sobol
  generator (one dimension per pixel position in uHD).
* :func:`halton_sequences`, :func:`van_der_corput` — alternative LD
  families for ablations.
* :func:`quantize_unit` / :func:`quantize_intensity` — the M-bit
  quantization of Fig. 3(a).
* :mod:`repro.lds.discrepancy` — uniformity diagnostics.
"""

from . import discrepancy, gf2
from .halton import first_primes, halton_sequences
from .scrambling import matousek_scramble, random_lower_triangular
from .quantize import bits_for_levels, dequantize, quantize_intensity, quantize_unit
from .sobol import SobolEngine, sobol_sequences
from .vandercorput import radical_inverse, van_der_corput

__all__ = [
    "SobolEngine",
    "sobol_sequences",
    "halton_sequences",
    "first_primes",
    "van_der_corput",
    "radical_inverse",
    "matousek_scramble",
    "random_lower_triangular",
    "quantize_unit",
    "quantize_intensity",
    "dequantize",
    "bits_for_levels",
    "gf2",
    "discrepancy",
]
