"""Uniformity diagnostics for low-discrepancy sequences.

These are the quantitative backing for the paper's claim that
quasi-randomness gives "high-quality" hypervectors: each Sobol dimension
must stratify the unit interval (near-optimal star discrepancy), and
distinct dimensions must stay decorrelated so level hypervectors of
different pixels remain near-orthogonal.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "star_discrepancy_1d",
    "stratification_counts",
    "is_zero_one_sequence_prefix",
    "max_pairwise_correlation",
    "hypervector_orthogonality",
]


def star_discrepancy_1d(points: np.ndarray) -> float:
    """Exact 1-D star discrepancy ``D*_n`` of points in ``[0, 1)``.

    Uses the closed form of Niederreiter:
    ``D*_n = max_i max(i/n - x_(i), x_(i) - (i-1)/n)`` over sorted points.
    A random sample has ``D*_n ~ n^-1/2``; an LD sequence ``~ log(n)/n``.
    """
    points = np.sort(np.asarray(points, dtype=np.float64))
    n = points.size
    if n == 0:
        raise ValueError("need at least one point")
    if points[0] < 0.0 or points[-1] >= 1.0:
        raise ValueError("points must lie in [0, 1)")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    upper = np.max(ranks / n - points)
    lower = np.max(points - (ranks - 1.0) / n)
    return float(max(upper, lower))


def stratification_counts(points: np.ndarray, k: int) -> np.ndarray:
    """Occupancy of the ``2^k`` dyadic intervals by the first ``2^k`` points.

    For any valid Sobol dimension each count equals exactly 1 — the
    (0, 1)-sequence property the encoder relies on.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    n = 1 << k
    points = np.asarray(points, dtype=np.float64)[:n]
    if points.size != n:
        raise ValueError(f"need at least {n} points for k={k}")
    bins = np.floor(points * n).astype(np.int64)
    if bins.min() < 0 or bins.max() >= n:
        raise ValueError("points must lie in [0, 1)")
    return np.bincount(bins, minlength=n)


def is_zero_one_sequence_prefix(points: np.ndarray, k: int) -> bool:
    """True when the first ``2^k`` points one-to-one cover the dyadic bins."""
    return bool(np.all(stratification_counts(points, k) == 1))


def max_pairwise_correlation(matrix: np.ndarray, sample: int | None = None) -> float:
    """Largest absolute Pearson correlation between any two rows.

    ``matrix`` is ``(n_dims, length)`` — e.g. the per-pixel Sobol scalars.
    ``sample`` caps the number of rows considered (uniform stride) so the
    O(dims^2) comparison stays tractable for image-sized dimension counts.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] < 2:
        raise ValueError("need a 2-D matrix with at least two rows")
    if sample is not None and matrix.shape[0] > sample:
        stride = matrix.shape[0] // sample
        matrix = matrix[::stride][:sample]
    corr = np.corrcoef(matrix)
    off_diag = corr[~np.eye(corr.shape[0], dtype=bool)]
    return float(np.max(np.abs(off_diag)))


def hypervector_orthogonality(hypervectors: np.ndarray) -> float:
    """Mean absolute normalized dot product between distinct bipolar rows.

    0 means perfectly orthogonal hypervectors; iid random +-1 vectors give
    roughly ``sqrt(2 / (pi * D))``.
    """
    hv = np.asarray(hypervectors, dtype=np.float64)
    if hv.ndim != 2 or hv.shape[0] < 2:
        raise ValueError("need a 2-D matrix with at least two rows")
    gram = hv @ hv.T / hv.shape[1]
    off_diag = gram[~np.eye(gram.shape[0], dtype=bool)]
    return float(np.mean(np.abs(off_diag)))
