"""From-scratch Sobol low-discrepancy sequence generator.

uHD (Fig. 2 of the paper) assigns one Sobol *dimension* to every pixel
position: pixel ``p`` is encoded by comparing its normalized intensity
against the ``D`` quasi-random scalars of dimension ``p``.  The positional
information therefore lives in the Sobol *index*, which is what lets the
paper drop position hypervectors entirely.

Construction
------------
Each dimension is a base-2 digital sequence ``x(k) = XOR of v_i over the
set bits i of k`` with direction numbers ``v_i = m_i * 2^(max_bits - i)``,
``m_i`` odd and ``< 2^i``.  That constraint makes the generator matrix
upper triangular with a unit diagonal, so **every** dimension is a
(0, 1)-sequence in base 2: the first ``2^k`` points visit each dyadic
interval of length ``2^-k`` exactly once.  This per-dimension
equidistribution (not any particular direction-number table) is the
property uHD's encoding relies on, and it is what the tests assert.

Two initialisation policies are provided:

``init="random"`` (default)
    All ``m_i`` are seeded-random odd integers.  Per-dimension quality is
    identical to classic Sobol; cross-dimension correlation is far lower
    than naive table-free recurrences because dimensions share no leading
    direction-integer prefix.  This plays the role Joe-Kuo tuning plays in
    MATLAB's ``sobolset`` (see DESIGN.md, substitutions).

``init="recurrence"``
    The textbook construction: dimension ``j >= 1`` takes the ``j``-th
    primitive polynomial over GF(2) (enumerated from scratch by
    :mod:`repro.lds.gf2`), free odd integers up to the polynomial degree,
    and the classic recurrence ``m_i = 2 a_1 m_{i-1} XOR 4 a_2 m_{i-2}
    XOR ... XOR 2^d m_{i-d} XOR m_{i-d}`` beyond it.  Kept for the
    LD-family ablation; with so few low-degree polynomials, untuned
    recurrence dimensions can share long prefixes and correlate.

Points are produced in natural order by default, so dimension 0 starts
``0, 1/2, 1/4, 3/4, 1/8, 5/8, 3/8, ...`` exactly as listed in Fig. 2 of
the paper (Antonov-Saleev Gray-code order is also available).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import gf2

__all__ = ["SobolEngine", "sobol_sequences", "clear_sobol_cache"]

_DEFAULT_SEED = 2024
_INIT_POLICIES = ("random", "recurrence")
_ORDERS = ("natural", "gray")

# Keyed memo for sobol_sequences: the arithmetic and unary encoders (and
# now the packed fast path) all regenerate identical tables for the same
# (pixels, dim, seed, shift) tuple, and generation dominates encoder
# construction.  Entries are read-only so shared tables cannot be
# corrupted through one consumer; a small LRU bound keeps dimension sweeps
# (1K/2K/8K x several datasets) from pinning hundreds of MB.
_SEQUENCE_CACHE: dict[tuple, np.ndarray] = {}
_SEQUENCE_CACHE_MAX = 8


class _SharedSequenceTable(np.ndarray):
    """Read-only view onto a cached Sobol table with a helpful mutation error.

    The memo in :func:`sobol_sequences` hands the *same* array to every
    encoder built for a config, so in-place writes would corrupt every
    other consumer.  Plain read-only NumPy arrays already refuse writes,
    but with a generic message; this subclass points the caller at the
    fix.  In-place ufuncs (``table *= 2``) still surface NumPy's own
    read-only error — the flag protects the memory either way.
    """

    def __setitem__(self, key, value):
        if not self.flags.writeable:
            raise ValueError(
                "sobol_sequences() returned a shared read-only table "
                "(memoized across encoders); pass copy=True for a private "
                "writable copy before mutating"
            )
        super().__setitem__(key, value)


def clear_sobol_cache() -> None:
    """Drop all memoized sobol_sequences tables (mainly for tests)."""
    _SEQUENCE_CACHE.clear()


def _cache_get(key: tuple) -> Optional[np.ndarray]:
    value = _SEQUENCE_CACHE.pop(key, None)
    if value is not None:
        _SEQUENCE_CACHE[key] = value  # refresh LRU position
    return value


def _cache_put(key: tuple, value: np.ndarray) -> np.ndarray:
    value = np.asarray(value)
    value.setflags(write=False)
    shared = value.view(_SharedSequenceTable)
    _SEQUENCE_CACHE[key] = shared
    while len(_SEQUENCE_CACHE) > _SEQUENCE_CACHE_MAX:
        _SEQUENCE_CACHE.pop(next(iter(_SEQUENCE_CACHE)))
    return shared


def _random_direction_integers(rng: np.random.Generator, max_bits: int) -> np.ndarray:
    """All ``m_i`` seeded-random odd with ``m_i < 2^i`` (init="random")."""
    m = np.zeros(max_bits, dtype=np.uint64)
    for i in range(max_bits):
        m[i] = np.uint64(2 * int(rng.integers(0, 1 << i)) + 1)
    return m


def _recurrence_direction_integers(
    poly: int, rng: np.random.Generator, max_bits: int
) -> np.ndarray:
    """Classic polynomial-recurrence ``m_i`` (init="recurrence")."""
    d = gf2.degree(poly)
    m = np.zeros(max_bits, dtype=np.uint64)
    for i in range(min(d, max_bits)):
        m[i] = np.uint64(2 * int(rng.integers(0, 1 << i)) + 1)
    for i in range(d, max_bits):
        value = int(m[i - d]) ^ (int(m[i - d]) << d)
        for k in range(1, d):
            if (poly >> (d - k)) & 1:
                value ^= int(m[i - k]) << k
        m[i] = np.uint64(value & ((1 << max_bits) - 1))
    return m


class SobolEngine:
    """Stateful multi-dimensional Sobol point generator.

    Parameters
    ----------
    dimension:
        Number of Sobol dimensions (for uHD: the pixel count ``H = m x n``).
    seed:
        Seed for the direction integers.  Two engines with the same
        ``(dimension, seed, max_bits, init)`` produce identical streams.
    max_bits:
        Fixed-point resolution of each coordinate.  ``2^max_bits`` is the
        period of each dimension; 32 bits is far beyond any ``D`` used here.
    init:
        Direction-integer policy, ``"random"`` or ``"recurrence"`` (see
        module docstring).
    order:
        ``"natural"`` (paper/MATLAB listing) or ``"gray"`` (Antonov-Saleev).
        Both orders cover the same point set on every ``2^k`` prefix.
    digital_shift:
        When true, every dimension is XOR-shifted by a seeded random
        constant.  A digital shift preserves the (0, 1)-sequence structure
        while decorrelating dimensions further; the paper's plain MATLAB
        ``sobolset`` corresponds to ``digital_shift=False``.
    """

    def __init__(
        self,
        dimension: int,
        seed: int = _DEFAULT_SEED,
        max_bits: int = 32,
        init: str = "random",
        order: str = "natural",
        digital_shift: bool = False,
    ) -> None:
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        if not 1 <= max_bits <= 62:
            raise ValueError(f"max_bits must be in [1, 62], got {max_bits}")
        if init not in _INIT_POLICIES:
            raise ValueError(f"init must be one of {_INIT_POLICIES}, got {init!r}")
        if order not in _ORDERS:
            raise ValueError(f"order must be one of {_ORDERS}, got {order!r}")
        self.dimension = dimension
        self.seed = seed
        self.max_bits = max_bits
        self.init = init
        self.order = order
        self._index = 0
        self._directions = self._build_direction_matrix()
        if digital_shift:
            shift_rng = np.random.default_rng([seed, 0xD157A1])
            self._shift = shift_rng.integers(
                0, 1 << max_bits, size=dimension, dtype=np.uint64
            )
        else:
            self._shift = np.zeros(dimension, dtype=np.uint64)

    def _build_direction_matrix(self) -> np.ndarray:
        """Direction *numbers* ``v_i = m_i << (max_bits - i)``, shape (dim, max_bits)."""
        directions = np.zeros((self.dimension, self.max_bits), dtype=np.uint64)
        shifts = (self.max_bits - 1 - np.arange(self.max_bits)).astype(np.uint64)
        # Dimension 0 is always plain van der Corput (all m_i = 1), matching
        # the sequence listed in Fig. 2 of the paper.
        directions[0] = np.uint64(1) << shifts
        if self.dimension == 1:
            return directions
        if self.init == "recurrence":
            polys = gf2.first_primitive_polynomials(self.dimension - 1)
        for dim in range(1, self.dimension):
            rng = np.random.default_rng([self.seed, dim])
            if self.init == "random":
                m = _random_direction_integers(rng, self.max_bits)
            else:
                m = _recurrence_direction_integers(polys[dim - 1], rng, self.max_bits)
            directions[dim] = m << shifts
        return directions

    # ------------------------------------------------------------------
    # Point generation
    # ------------------------------------------------------------------
    def integers(self, n: int) -> np.ndarray:
        """Next ``n`` points as fixed-point uint64 in ``[0, 2^max_bits)``.

        Shape ``(n, dimension)``.  Point ``k`` is the XOR of the direction
        numbers selected by the bits of ``k`` (natural order) or of
        ``gray(k)``; the loop over bit positions vectorises across points
        and dimensions.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return np.empty((0, self.dimension), dtype=np.uint64)
        ks = np.arange(self._index, self._index + n, dtype=np.uint64)
        codes = ks if self.order == "natural" else ks ^ (ks >> np.uint64(1))
        points = np.broadcast_to(self._shift, (n, self.dimension)).copy()
        top_bit = int(codes.max()).bit_length() if n else 0
        for bit in range(min(self.max_bits, top_bit)):
            selected = ((codes >> np.uint64(bit)) & np.uint64(1)).astype(bool)
            if selected.any():
                points[selected] ^= self._directions[:, bit]
        self._index += n
        return points

    def random(self, n: int) -> np.ndarray:
        """Next ``n`` points as float64 in ``[0, 1)``, shape ``(n, dimension)``."""
        scale = float(1 << self.max_bits)
        return self.integers(n).astype(np.float64) / scale

    def reset(self) -> "SobolEngine":
        """Rewind to the first point; direction numbers are unchanged."""
        self._index = 0
        return self

    def fast_forward(self, n: int) -> "SobolEngine":
        """Skip the next ``n`` points without materialising them."""
        if n < 0:
            raise ValueError("n must be non-negative")
        self._index += n
        return self

    @property
    def index(self) -> int:
        """Zero-based index of the next point to be generated."""
        return self._index


def sobol_sequences(
    n_dims: int,
    length: int,
    seed: int = _DEFAULT_SEED,
    dtype: Optional[np.dtype] = None,
    init: str = "random",
    digital_shift: bool = False,
    copy: bool = False,
) -> np.ndarray:
    """Sobol scalars arranged per dimension: shape ``(n_dims, length)``.

    Row ``p`` holds the ``length`` quasi-random scalars ``S_p`` that uHD
    compares against pixel ``p``'s intensity (Fig. 2).  ``dtype`` defaults
    to float64; pass ``np.float32`` to halve memory for large ``D``.

    Results are memoized on ``(n_dims, length, seed, dtype, init,
    digital_shift)``: constructing several encoders for the same config
    generates the table once.  The returned array is therefore **shared
    and read-only** — attempting ``table[i] = ...`` raises a ValueError
    pointing back here.  Pass ``copy=True`` for a private writable copy
    (the cache stays intact; a mutated copy never leaks to other
    consumers).
    """
    master_key = (n_dims, length, seed, init, digital_shift)
    master = _cache_get(master_key)
    if master is None:
        engine = SobolEngine(
            n_dims, seed=seed, init=init, digital_shift=digital_shift
        )
        master = _cache_put(
            master_key, np.ascontiguousarray(engine.random(length).T)
        )
    if dtype is None or np.dtype(dtype) == master.dtype:
        result = master
    else:
        cast_key = master_key + (np.dtype(dtype).str,)
        result = _cache_get(cast_key)
        if result is None:
            result = _cache_put(cast_key, master.astype(dtype))
    if copy:
        return np.array(result)  # private, writable, detached from the cache
    return result
