"""Unary (thermometer) bit-streams — the data representation of UBC.

A unary bit-stream of length ``N`` encodes an integer ``v in [0, N]`` as a
run of ``v`` ones.  The paper aligns the ones to the *end* of the stream
(``X1 -> 0000011`` encodes 2, ``X2 -> 0011111`` encodes 5); streams with
leading ones are the mirror convention.  Aligned streams of equal length
are maximally (positively) correlated, which is what makes bit-wise AND
compute the minimum and OR the maximum — the property the uHD comparator
(Fig. 4) exploits.
"""

from __future__ import annotations

from typing import Iterable, Literal

import numpy as np

__all__ = ["UnaryBitstream", "Alignment"]

Alignment = Literal["trailing", "leading"]
_ALIGNMENTS = ("trailing", "leading")


class UnaryBitstream:
    """An immutable unary bit-stream.

    Internally a read-only ``numpy.bool_`` vector.  Construction validates
    unarity (one contiguous run of ones touching the aligned end), so every
    instance is a legal thermometer code by construction.
    """

    __slots__ = ("_bits", "_alignment")

    def __init__(self, bits: Iterable[int], alignment: Alignment = "trailing") -> None:
        if alignment not in _ALIGNMENTS:
            raise ValueError(f"alignment must be one of {_ALIGNMENTS}")
        arr = np.asarray(list(bits) if not isinstance(bits, np.ndarray) else bits)
        if arr.ndim != 1:
            raise ValueError("a bit-stream is one-dimensional")
        if arr.dtype != np.bool_:
            if arr.size and not np.isin(arr, (0, 1)).all():
                raise ValueError("bits must be 0/1")
            arr = arr.astype(np.bool_)
        self._bits = arr.copy()
        self._bits.setflags(write=False)
        self._alignment = alignment
        if not self._is_unary():
            raise ValueError(
                f"not a unary stream with {alignment} ones: {self.to01()}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_value(
        cls, value: int, length: int, alignment: Alignment = "trailing"
    ) -> "UnaryBitstream":
        """Thermometer-encode ``value`` into a stream of ``length`` bits."""
        if not 0 <= value <= length:
            raise ValueError(f"value {value} out of range [0, {length}]")
        bits = np.zeros(length, dtype=np.bool_)
        if value:
            if alignment == "trailing":
                bits[length - value :] = True
            else:
                bits[:value] = True
        return cls(bits, alignment=alignment)

    @classmethod
    def from01(cls, text: str, alignment: Alignment = "trailing") -> "UnaryBitstream":
        """Parse a string like ``"0000011"``."""
        if set(text) - {"0", "1"}:
            raise ValueError("from01 expects a string of 0s and 1s")
        return cls(np.fromiter((c == "1" for c in text), dtype=np.bool_, count=len(text)),
                   alignment=alignment)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _is_unary(self) -> bool:
        v = int(self._bits.sum())
        if v == 0:
            return True
        if self._alignment == "trailing":
            return bool(self._bits[len(self._bits) - v :].all())
        return bool(self._bits[:v].all())

    @property
    def value(self) -> int:
        """Encoded integer = the ones count."""
        return int(self._bits.sum())

    @property
    def alignment(self) -> Alignment:
        return self._alignment

    @property
    def bits(self) -> np.ndarray:
        """Read-only bool vector of the raw bits."""
        return self._bits

    def __len__(self) -> int:
        return len(self._bits)

    def to01(self) -> str:
        """Render as a 0/1 string, index 0 first (paper's left-to-right order)."""
        return "".join("1" if b else "0" for b in self._bits)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"UnaryBitstream('{self.to01()}', value={self.value})"

    # ------------------------------------------------------------------
    # Algebra: AND = min, OR = max for aligned streams
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "UnaryBitstream") -> None:
        if not isinstance(other, UnaryBitstream):
            raise TypeError("operand must be a UnaryBitstream")
        if len(self) != len(other):
            raise ValueError("bit-streams must share a length")
        if self._alignment != other._alignment:
            raise ValueError("bit-streams must share an alignment")

    def __and__(self, other: "UnaryBitstream") -> "UnaryBitstream":
        self._check_compatible(other)
        return UnaryBitstream(self._bits & other._bits, alignment=self._alignment)

    def __or__(self, other: "UnaryBitstream") -> "UnaryBitstream":
        self._check_compatible(other)
        return UnaryBitstream(self._bits | other._bits, alignment=self._alignment)

    def complement(self) -> "UnaryBitstream":
        """Bit-wise NOT; flips the alignment and encodes ``N - value``."""
        flipped: Alignment = "leading" if self._alignment == "trailing" else "trailing"
        return UnaryBitstream(~self._bits, alignment=flipped)

    # ------------------------------------------------------------------
    # Comparisons are by encoded value
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnaryBitstream):
            return NotImplemented
        return (
            len(self) == len(other)
            and self._alignment == other._alignment
            and bool(np.array_equal(self._bits, other._bits))
        )

    def __hash__(self) -> int:
        return hash((self._alignment, self._bits.tobytes()))

    def __lt__(self, other: "UnaryBitstream") -> bool:
        self._check_compatible(other)
        return self.value < other.value

    def __le__(self, other: "UnaryBitstream") -> bool:
        self._check_compatible(other)
        return self.value <= other.value

    def __gt__(self, other: "UnaryBitstream") -> bool:
        self._check_compatible(other)
        return self.value > other.value

    def __ge__(self, other: "UnaryBitstream") -> bool:
        self._check_compatible(other)
        return self.value >= other.value
