"""Bit-stream correlation metrics from the stochastic-computing literature.

The stochastic cross-correlation (SCC) of Alaghi & Hayes quantifies bit
alignment between two streams: +1 for maximally overlapped ones (unary
streams with a shared alignment), -1 for maximally anti-overlapped, 0 for
independent.  uHD's comparator correctness rests on SCC = +1 between its
operands, so the metric is both a diagnostic and a test oracle.
"""

from __future__ import annotations

import numpy as np

__all__ = ["scc", "overlap", "is_maximally_correlated"]


def overlap(x: np.ndarray, y: np.ndarray) -> int:
    """Number of positions where both streams carry a one."""
    x = np.asarray(x, dtype=np.bool_)
    y = np.asarray(y, dtype=np.bool_)
    if x.shape != y.shape:
        raise ValueError("streams must share a shape")
    return int(np.count_nonzero(x & y))


def scc(x: np.ndarray, y: np.ndarray) -> float:
    """Stochastic cross-correlation in ``[-1, +1]``.

    With ``p11`` the joint ones-probability and ``p1``/``p2`` the marginals:

    * if ``p11 > p1 p2``:  ``(p11 - p1 p2) / (min(p1, p2) - p1 p2)``
    * if ``p11 < p1 p2``:  ``(p11 - p1 p2) / (p1 p2 - max(p1 + p2 - 1, 0))``
    * else 0.

    Degenerate streams (all zeros or all ones) have undefined alignment and
    return 0 by convention.
    """
    x = np.asarray(x, dtype=np.bool_)
    y = np.asarray(y, dtype=np.bool_)
    if x.shape != y.shape:
        raise ValueError("streams must share a shape")
    n = x.size
    if n == 0:
        raise ValueError("streams must be non-empty")
    p1 = np.count_nonzero(x) / n
    p2 = np.count_nonzero(y) / n
    p11 = overlap(x, y) / n
    product = p1 * p2
    if p1 in (0.0, 1.0) or p2 in (0.0, 1.0):
        return 0.0
    if p11 > product:
        return float((p11 - product) / (min(p1, p2) - product))
    if p11 < product:
        return float((p11 - product) / (product - max(p1 + p2 - 1.0, 0.0)))
    return 0.0


def is_maximally_correlated(x: np.ndarray, y: np.ndarray) -> bool:
    """True when the ones of one stream contain the ones of the other.

    Equivalent to SCC = +1 for non-degenerate streams, and exactly the
    precondition under which AND computes the minimum.
    """
    x = np.asarray(x, dtype=np.bool_)
    y = np.asarray(y, dtype=np.bool_)
    return overlap(x, y) == min(int(x.sum()), int(y.sum()))
