"""Unary-domain algebra: single-gate arithmetic on aligned streams.

Aligned unary streams are maximally correlated, so bit-wise logic computes
order statistics: AND is the minimum, OR is the maximum.  These identities
(from the unary-processing literature the paper builds on, e.g. the
low-cost sorting networks of Najafi et al.) are what reduce the uHD
comparator to a handful of gates.
"""

from __future__ import annotations

import numpy as np

from .bitstream import UnaryBitstream

__all__ = [
    "unary_min",
    "unary_max",
    "unary_sort2",
    "unary_median3",
    "unary_min_batch",
    "unary_max_batch",
]


def unary_min(a: UnaryBitstream, b: UnaryBitstream) -> UnaryBitstream:
    """Minimum of two streams — one AND gate per bit."""
    return a & b


def unary_max(a: UnaryBitstream, b: UnaryBitstream) -> UnaryBitstream:
    """Maximum of two streams — one OR gate per bit."""
    return a | b


def unary_sort2(
    a: UnaryBitstream, b: UnaryBitstream
) -> tuple[UnaryBitstream, UnaryBitstream]:
    """The 2-input unary sorting cell: ``(min, max)`` from one AND + one OR."""
    return a & b, a | b


def unary_median3(
    a: UnaryBitstream, b: UnaryBitstream, c: UnaryBitstream
) -> UnaryBitstream:
    """Median of three streams via the classic majority-of-pairs network."""
    return (a & b) | (a & c) | (b & c)


def unary_min_batch(streams: np.ndarray) -> np.ndarray:
    """Minimum across the first axis of a stream matrix (bit-wise AND)."""
    streams = np.asarray(streams, dtype=np.bool_)
    if streams.ndim < 2:
        raise ValueError("need a matrix of streams")
    return np.logical_and.reduce(streams, axis=0)


def unary_max_batch(streams: np.ndarray) -> np.ndarray:
    """Maximum across the first axis of a stream matrix (bit-wise OR)."""
    streams = np.asarray(streams, dtype=np.bool_)
    if streams.ndim < 2:
        raise ValueError("need a matrix of streams")
    return np.logical_or.reduce(streams, axis=0)
