"""Unary sorting networks (Najafi et al., the paper's reference [16]).

The uHD comparator is built on the observation that aligned unary streams
make order statistics single-gate operations: AND is min, OR is max, so a
compare-and-swap cell costs two gates and a full sorting network costs
two gates per cell.  This module implements Batcher's odd-even merge
network over unary streams — the "low-cost sorting network circuits using
unary processing" the paper cites as the foundation of its comparator.
"""

from __future__ import annotations

from .bitstream import UnaryBitstream
from .ops import unary_sort2

__all__ = [
    "batcher_network",
    "unary_sort",
    "unary_rank",
    "compare_exchange_count",
]


def batcher_network(n: int) -> list[tuple[int, int]]:
    """Compare-exchange pairs of Batcher's odd-even merging network.

    Returns the ordered list of ``(i, j)`` lanes (``i < j``) such that
    applying min/max at each pair sorts any ``n`` inputs.  Works for any
    ``n`` (not just powers of two) via the standard index guard.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    pairs: list[tuple[int, int]] = []
    p = 1
    while p < n:
        k = p
        while k >= 1:
            for j in range(k % p, n - k, 2 * k):
                for i in range(min(k, n - j - k)):
                    if (i + j) // (2 * p) == (i + j + k) // (2 * p):
                        pairs.append((i + j, i + j + k))
            k //= 2
        p *= 2
    return pairs


def unary_sort(streams: list[UnaryBitstream]) -> list[UnaryBitstream]:
    """Sort unary streams ascending with two gates per compare-exchange."""
    lanes = list(streams)
    for i, j in batcher_network(len(lanes)):
        lanes[i], lanes[j] = unary_sort2(lanes[i], lanes[j])
    return lanes


def unary_rank(streams: list[UnaryBitstream], rank: int) -> UnaryBitstream:
    """The ``rank``-th smallest stream (0-based) via the full network.

    A median filter — the classic application of unary sorting networks in
    image processing — is ``unary_rank(window, len(window) // 2)``.
    """
    if not 0 <= rank < len(streams):
        raise ValueError(f"rank {rank} out of range for {len(streams)} streams")
    return unary_sort(streams)[rank]


def compare_exchange_count(n: int) -> int:
    """Number of compare-exchange cells (2 gates each) for ``n`` lanes."""
    return len(batcher_network(n))
