"""The proposed unary bit-stream comparator (paper Fig. 4).

For two aligned unary streams the bit-wise AND is the minimum stream.  The
comparator decides ``first >= second`` with pure combinational logic:

* ``minimum_i = first_i AND second_i``
* ``check_i   = minimum_i OR NOT second_i``
* ``ge        = AND over all N check bits``

``check_i`` simplifies to ``first_i OR NOT second_i``: wherever the second
operand has a one, the first must too — exactly the thermometer dominance
condition.  The output drives one hypervector bit: logic-1 when the data
value is greater than or equal to the Sobol scalar (``+1`` dimension),
logic-0 otherwise (``-1`` dimension).

Functional model here; the gate-level netlist with energy accounting is
:mod:`repro.hardware.circuits.unary_comparator` (design checkpoint ➋).
"""

from __future__ import annotations

import numpy as np

from .bitstream import UnaryBitstream

__all__ = [
    "unary_ge",
    "unary_ge_bits",
    "unary_ge_batch",
    "compare_values_via_unary",
]


def unary_ge(first: UnaryBitstream, second: UnaryBitstream) -> bool:
    """``value(first) >= value(second)`` via the Fig. 4 logic."""
    if len(first) != len(second):
        raise ValueError("bit-streams must share a length")
    if first.alignment != second.alignment:
        raise ValueError("bit-streams must share an alignment")
    return unary_ge_bits(first.bits, second.bits)


def unary_ge_bits(first: np.ndarray, second: np.ndarray) -> bool:
    """Raw-bit variant of :func:`unary_ge` for pre-validated inputs."""
    first = np.asarray(first, dtype=np.bool_)
    second = np.asarray(second, dtype=np.bool_)
    if first.shape != second.shape:
        raise ValueError("bit vectors must share a shape")
    minimum = first & second
    check = minimum | ~second
    return bool(check.all())


def unary_ge_batch(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Vectorised comparator over stream matrices.

    ``first`` and ``second`` are broadcast-compatible bool arrays whose last
    axis is the stream; the result drops that axis.  This is the hot path of
    the unary-domain image encoder: one call compares every (pixel,
    dimension) pair of an image.
    """
    first = np.asarray(first, dtype=np.bool_)
    second = np.asarray(second, dtype=np.bool_)
    return np.all(first | ~second, axis=-1)


def compare_values_via_unary(a: int, b: int, length: int) -> bool:
    """Encode two integers as unary streams and compare them (``a >= b``).

    Round-trip convenience used by tests to pin the comparator against plain
    integer comparison for every pair in range.
    """
    return unary_ge(
        UnaryBitstream.from_value(a, length),
        UnaryBitstream.from_value(b, length),
    )
