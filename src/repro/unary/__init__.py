"""Unary bit-stream computing substrate (paper contributions ③④).

Public surface:

* :class:`UnaryBitstream` — validated thermometer codes.
* :class:`CounterComparatorGenerator` — conventional stream generation
  (Fig. 3(b), the baseline of checkpoint ➊).
* :class:`UnaryStreamTable` — the proposed associative fetch (Fig. 3(c)).
* :func:`unary_ge` / :func:`unary_ge_batch` — the proposed comparator
  (Fig. 4, checkpoint ➋).
* :mod:`repro.unary.ops` — AND=min / OR=max algebra.
* :mod:`repro.unary.correlation` — SCC metrics.
"""

from .bitstream import Alignment, UnaryBitstream
from .comparator import (
    compare_values_via_unary,
    unary_ge,
    unary_ge_batch,
    unary_ge_bits,
)
from .correlation import is_maximally_correlated, overlap, scc
from .generator import CounterComparatorGenerator
from .ops import (
    unary_max,
    unary_max_batch,
    unary_median3,
    unary_min,
    unary_min_batch,
    unary_sort2,
)
from .sorting import batcher_network, compare_exchange_count, unary_rank, unary_sort
from .ust import UnaryStreamTable

__all__ = [
    "batcher_network",
    "unary_sort",
    "unary_rank",
    "compare_exchange_count",
    "UnaryBitstream",
    "Alignment",
    "CounterComparatorGenerator",
    "UnaryStreamTable",
    "unary_ge",
    "unary_ge_bits",
    "unary_ge_batch",
    "compare_values_via_unary",
    "unary_min",
    "unary_max",
    "unary_sort2",
    "unary_median3",
    "unary_min_batch",
    "unary_max_batch",
    "scc",
    "overlap",
    "is_maximally_correlated",
]
