"""Unary Stream Table — the paper's associative stream fetcher (Fig. 3(c)).

uHD only ever needs ``N = xi``-bit streams (default 16), so all ``xi``
possible thermometer codes fit in a tiny associative memory.  An M-bit
binary scalar (from REGs or BRAM) indexes the table and the stream is
fetched in one access instead of ``2^M`` counter cycles.  Energy of fetch
vs. counter+comparator generation is design checkpoint ➊.
"""

from __future__ import annotations

import numpy as np

from .bitstream import Alignment, UnaryBitstream

__all__ = ["UnaryStreamTable"]


class UnaryStreamTable:
    """Pre-stored table of every unary stream for M-bit scalars.

    Parameters
    ----------
    levels:
        Number of quantization levels ``xi``; valid codes are
        ``0 .. levels - 1``.
    length:
        Stream length N.  Defaults to ``levels`` (the paper's
        ``xi = 16 -> N = 16``); must satisfy ``length >= levels - 1`` so the
        largest code fits.
    alignment:
        Ones placement convention, shared by every row.
    """

    def __init__(
        self,
        levels: int = 16,
        length: int | None = None,
        alignment: Alignment = "trailing",
    ) -> None:
        if levels < 2:
            raise ValueError(f"levels must be >= 2, got {levels}")
        if length is None:
            length = levels
        if length < levels - 1:
            raise ValueError(
                f"length {length} cannot encode codes up to {levels - 1}"
            )
        self.levels = levels
        self.length = length
        self.alignment = alignment
        self._table = self._build()

    def _build(self) -> np.ndarray:
        codes = np.arange(self.levels)
        positions = np.arange(self.length)
        if self.alignment == "leading":
            table = positions[None, :] < codes[:, None]
        else:
            table = positions[None, :] >= (self.length - codes)[:, None]
        table.setflags(write=False)
        return table

    @property
    def table(self) -> np.ndarray:
        """Read-only ``(levels, length)`` bool matrix, row ``c`` encodes ``c``."""
        return self._table

    def fetch(self, code: int) -> UnaryBitstream:
        """Stream for one M-bit code (one associative-memory access)."""
        if not 0 <= code < self.levels:
            raise ValueError(f"code {code} out of range [0, {self.levels})")
        return UnaryBitstream(self._table[code], alignment=self.alignment)

    def fetch_batch(self, codes: np.ndarray) -> np.ndarray:
        """Stream matrix for an array of codes; shape ``codes.shape + (length,)``.

        This is the vectorised path the image encoder uses: one gather per
        pixel instead of any per-bit computation.
        """
        codes = np.asarray(codes)
        if codes.size and (codes.min() < 0 or codes.max() >= self.levels):
            raise ValueError(f"codes must lie in [0, {self.levels})")
        return self._table[codes]

    def memory_bits(self) -> int:
        """Storage footprint of the table in bits (for the memory model)."""
        return self.levels * self.length
