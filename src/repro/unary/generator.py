"""Conventional unary bit-stream generation (paper Fig. 3(b)).

The textbook generator pairs an M-bit free-running counter with an M-bit
binary comparator: at cycle ``k`` the output bit is the comparison of the
input value against the counter state.  This is the *baseline* the paper's
associative UST fetch (Fig. 3(c), :mod:`repro.unary.ust`) replaces; the
energy comparison between the two is design checkpoint ➊.

This module is the functional model; the gate-level netlist used for the
energy numbers lives in :mod:`repro.hardware.circuits.generator`.
"""

from __future__ import annotations

import numpy as np

from .bitstream import Alignment, UnaryBitstream

__all__ = ["CounterComparatorGenerator"]


class CounterComparatorGenerator:
    """M-bit counter + comparator unary stream generator.

    Parameters
    ----------
    bits:
        Counter width M; streams have length ``N = 2^M``.
    alignment:
        ``"trailing"`` emits ``value > counter_downto`` so ones gather at the
        end of the stream (the paper's convention); ``"leading"`` emits
        ``value > counter`` so ones lead.
    """

    def __init__(self, bits: int, alignment: Alignment = "trailing") -> None:
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        self.bits = bits
        self.length = 1 << bits
        self.alignment = alignment

    def cycle_output(self, value: int, cycle: int) -> bool:
        """Output bit at one counter cycle (the per-clock hardware behaviour)."""
        if not 0 <= value <= self.length:
            raise ValueError(f"value {value} out of range [0, {self.length}]")
        if not 0 <= cycle < self.length:
            raise ValueError(f"cycle {cycle} out of range [0, {self.length})")
        if self.alignment == "leading":
            return value > cycle
        return value > (self.length - 1 - cycle)

    def generate(self, value: int) -> UnaryBitstream:
        """Full stream for ``value`` after ``N`` counter cycles."""
        bits = np.fromiter(
            (self.cycle_output(value, k) for k in range(self.length)),
            dtype=np.bool_,
            count=self.length,
        )
        return UnaryBitstream(bits, alignment=self.alignment)

    def generate_batch(self, values: np.ndarray) -> np.ndarray:
        """Vectorised stream matrix for many values, shape ``(len(values), N)``."""
        values = np.asarray(values)
        if values.size and (values.min() < 0 or values.max() > self.length):
            raise ValueError(f"values must lie in [0, {self.length}]")
        cycles = np.arange(self.length)
        if self.alignment == "leading":
            return values[:, None] > cycles[None, :]
        return values[:, None] > (self.length - 1 - cycles)[None, :]

    def counter_toggles(self) -> int:
        """Total flip-flop toggles of one full M-bit count cycle.

        Bit ``b`` of a binary counter toggles ``2^(M-b)`` times over ``2^M``
        cycles; the sum ``2^(M+1) - 2`` feeds the first-order energy model
        that motivates replacing this generator with the UST fetch.
        """
        return (1 << (self.bits + 1)) - 2
