"""Packed uHD level encoder: LUT gather + SWAR lane accumulation.

The quantized reference path (:class:`repro.core.encoder.SobolLevelEncoder`)
compares every image code against every Sobol code, materializing a
``(batch, H, D)`` boolean tensor.  Quantization to ``xi`` levels makes that
tensor redundant: pixel ``p`` can only produce ``xi`` distinct level rows,
all known at construction.  This encoder exploits the identity

``counts[j] = sum_t popcount(pixels_with_code_t AND pixels_where_sobol_code[:, j] <= t)``

in gather form: it precomputes, for every ``(pixel, level)`` pair, the
packed row ``[code >= sobol_code[p, :]]`` and turns encoding into a table
gather plus a vertical popcount — no per-image comparisons at all.

Vertical popcount layout
------------------------
Summing gathered rows needs per-*column* counts, which packed words do not
give directly.  Instead of a carry-save adder tree (benched slower, see
:mod:`repro.fastpath`), rows are stored **nibble-spread**: dimension bit
``i`` widens to a 4-bit lane, so 15 rows can be added with plain ``uint64``
adds before any lane overflows.  Partial sums then widen nibble -> uint16
lanes via four mask/shift streams, and a static permutation maps lanes back
to dimension order.  Every op touches 64-bit words; nothing scales with
``batch * H * D``.

Two gather tables share the pipeline:

* **single** — ``(H, xi)`` entries, one pixel per gathered row (lane <= 1,
  15 rows per add chunk).  Cheap to build; always available.
* **pair** — ``(ceil(H/2), xi^2)`` entries keyed by two pixel codes at once
  (lane <= 2, 7 rows per chunk).  Halves gather traffic, the dominant cost,
  but costs ``xi^2`` more table memory, so it is built lazily once the
  encoder has seen ``PAIR_PROMOTE_IMAGES`` images and the table fits
  ``pair_lut_budget``.

Both paths are bit-exact with the reference quantized encoder (the tests
assert it), mirroring the paper's claim that the unary hardware datapath
substitutes for arithmetic without changing a single output bit.
"""

from __future__ import annotations

import numpy as np

from ..core.config import UHDConfig
from ..core.encoder import SobolLevelEncoder
from ..lds.quantize import quantize_intensity
from .bitops import WORD_BITS, pack_bits, words_for_bits
from .tablestore import TableSet, table_key

__all__ = ["PackedLevelEncoder"]

_NIBBLE_MASK = np.uint64(0x0F0F0F0F0F0F0F0F)
_BYTE_MASK = np.uint64(0x00FF00FF00FF00FF)
#: nibble-acc rows folded per byte-lane chunk; nibble lanes reach 15
#: (single table: 15 rows x 1) so 17 * 15 = 255 just fits a byte
_BYTE_CHUNK = 17
_SPREAD_STEPS = (
    (np.uint64(24), np.uint64(0x000000FF000000FF)),
    (np.uint64(12), np.uint64(0x000F000F000F000F)),
    (np.uint64(6), np.uint64(0x0303030303030303)),
    (np.uint64(3), np.uint64(0x1111111111111111)),
)


def _spread16(x: np.ndarray) -> np.ndarray:
    """Spread the low 16 bits of each word so bit ``i`` lands at bit ``4i``."""
    x = x & np.uint64(0xFFFF)
    for shift, mask in _SPREAD_STEPS:
        x = (x | (x << shift)) & mask
    return x


class _GatherTable:
    """A (rows x keys) nibble-spread LUT plus its accumulation geometry."""

    def __init__(self, lut: np.ndarray, group: int, num_rows: int, chunk_rows: int):
        self.flat = np.ascontiguousarray(lut.reshape(-1, lut.shape[-1]))
        self.keys_per_row = lut.shape[1]
        self.group = group          # pixels folded into one gathered row
        self.num_rows = num_rows    # R: gathered rows per image
        self.chunk_rows = chunk_rows  # rows added per nibble-lane chunk
        self.num_chunks = -(-num_rows // chunk_rows)
        self.base = (
            np.arange(num_rows, dtype=np.intp) * self.keys_per_row
        )[:, None]


class _Workspace:
    """Preallocated per-batch-size scratch so steady-state encoding never allocates."""

    #: gather/reduce block target; ~a quarter of L2 so the gathered slab is
    #: still cache-hot when the chunk reduction reads it back
    BLOCK_BYTES = 512 * 1024

    def __init__(self, table: _GatherTable, batch: int, spread_words: int):
        chunk_bytes = table.chunk_rows * batch * spread_words * 8
        self.block_chunks = max(1, self.BLOCK_BYTES // chunk_bytes)
        padded = min(self.block_chunks, table.num_chunks) * table.chunk_rows
        byte_chunks = -(-table.num_chunks // _BYTE_CHUNK)
        self.rows = np.zeros((padded, batch, spread_words), dtype=np.uint64)
        # zero-padded so the byte-stage reshape never reads garbage; only
        # the first num_chunks rows are ever written
        self.acc = np.zeros(
            (byte_chunks * _BYTE_CHUNK, batch, spread_words), dtype=np.uint64
        )
        self.tmp = np.empty_like(self.acc)
        self.bytes_even = np.empty((byte_chunks, batch, spread_words), dtype=np.uint64)
        self.bytes_odd = np.empty_like(self.bytes_even)
        self.streams = np.empty((4, batch, spread_words), dtype=np.uint64)


class PackedLevelEncoder(SobolLevelEncoder):
    """Bit-exact packed twin of :class:`SobolLevelEncoder` (quantized only).

    Construction is identical to the reference encoder (same Sobol table,
    same quantized codes); only ``encode_batch`` differs.  Gather tables
    are built lazily on first use so constructing one for a quick test or a
    single image stays cheap.
    """

    #: images seen before the pair table is worth its build + memory cost
    PAIR_PROMOTE_IMAGES = 128
    #: nibble-lane accumulation geometry per table kind: rows folded per
    #: chunk before a lane could overflow (single: lane counts <= 1, 15
    #: rows; pair: lane counts <= 2, 7 rows).  attach_tables and the
    #: build path both read these — they must never diverge
    SINGLE_CHUNK_ROWS = 15
    PAIR_CHUNK_ROWS = 7
    #: default ceiling for the pair table footprint, bytes
    PAIR_LUT_BUDGET = 192 * 1024 * 1024
    #: uint16 lane headroom: per-dimension counts may reach H
    MAX_PIXELS = 60000

    def __init__(
        self,
        num_pixels: int,
        config: UHDConfig,
        pair_lut_budget: int | None = None,
    ) -> None:
        if not config.quantized:
            raise ValueError("the packed fast path requires quantized=True")
        if num_pixels > self.MAX_PIXELS:
            raise ValueError(
                f"packed encoder supports up to {self.MAX_PIXELS} pixels, "
                f"got {num_pixels} (use the reference encoder)"
            )
        super().__init__(num_pixels, config)
        self._pair_budget = (
            self.PAIR_LUT_BUDGET if pair_lut_budget is None else pair_lut_budget
        )
        self._dim_words = words_for_bits(config.dim)
        self._spread_words = 4 * self._dim_words
        self._table: _GatherTable | None = None
        self._single_lut: np.ndarray | None = None
        self._workspaces: dict[int, _Workspace] = {}
        self._images_seen = 0
        #: gather-table constructions this instance performed (the
        #: build-vs-attach observability hook: an encoder that attached a
        #: published table serves with this still at 0)
        self.table_builds = 0
        #: anything keeping attached table bytes alive (e.g. an open
        #: SharedMemory segment) — see repro.fastpath.tablestore.TableSet
        self._table_owner = None
        self._take_index = self._lane_permutation()
        self._intensity_lut = quantize_intensity(
            np.arange(256, dtype=np.uint8), config.levels
        )

    # ------------------------------------------------------------------
    # Table construction
    # ------------------------------------------------------------------
    def _lane_permutation(self) -> np.ndarray:
        """Flat (stream, word, u16-lane) position of every dimension.

        Spread word ``4w + k`` holds dimension ``64w + 16k + n`` in nibble
        lane ``n``; the two-stage extraction routes nibble parity ``pn``
        and byte parity ``pb`` to stream ``(pn, pb)`` with the dimension at
        uint16 lane ``u``, i.e. ``n = 4u + 2*pb + pn``.  Streams are laid
        out ``(stream, word, u16-lane)``; invert that map once.
        """
        s = np.arange(self._spread_words)
        w, k = s // 4, s % 4
        u = np.arange(4)
        parts = [
            (64 * w[:, None] + 16 * k[:, None] + 4 * u[None, :] + 2 * pb + pn).ravel()
            for pn in (0, 1)
            for pb in (0, 1)
        ]
        dim_of_flat = np.concatenate(parts)
        flat_of_dim = np.empty_like(dim_of_flat)
        flat_of_dim[dim_of_flat] = np.arange(dim_of_flat.size)
        return flat_of_dim[: self.dim]

    def _build_single_lut(self) -> np.ndarray:
        """Nibble-spread rows ``[t >= codes[p, :]]`` for every (pixel, level)."""
        self.table_builds += 1
        levels = self.config.levels
        codes = self.quantized_codes
        packed = np.empty(
            (self.num_pixels, levels, self._dim_words), dtype=np.uint64
        )
        for t in range(levels):
            packed[:, t, :] = pack_bits(codes <= t)
        lut = np.empty(
            (self.num_pixels, levels, self._spread_words), dtype=np.uint64
        )
        for k in range(4):
            lut[..., k::4] = _spread16(packed >> np.uint64(16 * k))
        return lut

    def _pair_lut_bytes(self) -> int:
        pair_rows = (self.num_pixels + 1) // 2
        return pair_rows * self.config.levels**2 * self._spread_words * 8

    def _pair_eligible(self) -> bool:
        return self.num_pixels >= 2 and self._pair_lut_bytes() <= self._pair_budget

    def _build_pair_table(self, single_lut: np.ndarray) -> _GatherTable:
        """Fold pixel pairs into one keyed row (lane counts reach 2)."""
        self.table_builds += 1
        levels = self.config.levels
        full = self.num_pixels // 2
        paired = (
            single_lut[0 : 2 * full : 2, :, None, :]
            + single_lut[1 : 2 * full : 2, None, :, :]
        ).reshape(full, levels * levels, self._spread_words)
        if self.num_pixels % 2:
            # odd tail pixel rides along as a pseudo-pair ignoring its
            # second key digit
            tail = np.repeat(single_lut[-1], levels, axis=0)[None]
            paired = np.concatenate([paired, tail], axis=0)
        return _GatherTable(
            paired, group=2, num_rows=paired.shape[0],
            chunk_rows=self.PAIR_CHUNK_ROWS,
        )

    def _ensure_table(self) -> _GatherTable:
        if self._table is None:
            self._single_lut = self._build_single_lut()
            self._table = _GatherTable(
                self._single_lut,
                group=1,
                num_rows=self.num_pixels,
                chunk_rows=self.SINGLE_CHUNK_ROWS,
            )
        if (
            self._table.group == 1
            and self._pair_eligible()
            and self._images_seen >= self.PAIR_PROMOTE_IMAGES
        ):
            self._table = self._build_pair_table(self._single_lut)
            self._single_lut = None  # pair table subsumes it; free the memory
            self._table_owner = None  # heap-built pair: attached bytes unneeded
            self._workspaces.clear()
        return self._table

    def _workspace(self, table: _GatherTable, batch: int) -> _Workspace:
        ws = self._workspaces.get(batch)
        if ws is None:
            ws = _Workspace(table, batch, self._spread_words)
            self._workspaces[batch] = ws
        return ws

    # ------------------------------------------------------------------
    # Table export / attach (see repro.fastpath.tablestore)
    # ------------------------------------------------------------------
    @property
    def tables_ready(self) -> bool:
        """Whether a gather table exists (built or attached)."""
        return self._table is not None

    @property
    def table_nbytes(self) -> int:
        """Bytes of gather-table state currently held (0 when cold).

        ``_single_lut`` is the same buffer the single ``_GatherTable``
        reshapes, and promotion frees it, so the current table's flat
        array is the whole footprint.
        """
        return 0 if self._table is None else int(self._table.flat.nbytes)

    def export_tables(self, promote: bool = False) -> TableSet:
        """Snapshot the current gather table for publication.

        Builds the single table first if the encoder is still cold (an
        export must have something to export); with ``promote=True`` the
        pair promotion is forced first (budget permitting) so attachers
        inherit the fully warmed state regardless of ``_images_seen``.
        The returned arrays are the encoder's own — treat them as
        read-only, exactly like every other consumer of the tables.
        """
        if promote and self._pair_eligible():
            self._images_seen = max(self._images_seen, self.PAIR_PROMOTE_IMAGES)
        table = self._ensure_table()
        flat = table.flat.reshape(
            table.num_rows, table.keys_per_row, self._spread_words
        )
        return TableSet(
            kind="pair" if table.group == 2 else "single",
            flat=flat,
            key=table_key(self.num_pixels, self.config),
            images_seen=self._images_seen,
        )

    def attach_tables(self, tables: TableSet) -> None:
        """Install a published gather table zero-copy (never rebuild).

        The tables must have been exported by an encoder with the same
        :func:`repro.fastpath.tablestore.table_key` — geometry mismatches
        raise :class:`~repro.fastpath.tablestore.TableFormatError`.
        Attached bytes are byte-identical to built ones (the stores only
        move bytes), so every subsequent encode is bit-exact with a
        freshly built encoder; ``table_builds`` stays untouched.  An
        encoder that already has a table refuses to attach (the warm
        state might be *more* promoted than the publication).
        """
        from .tablestore import TableFormatError

        if self._table is not None:
            raise RuntimeError(
                "encoder already has a gather table; attach_tables only "
                "applies to a cold encoder"
            )
        tables.validate_against(self.num_pixels, self.config)
        levels = self.config.levels
        if tables.kind == "single":
            want = (self.num_pixels, levels, self._spread_words)
            group, chunk_rows = 1, self.SINGLE_CHUNK_ROWS
        else:
            pair_rows = (self.num_pixels + 1) // 2
            want = (pair_rows, levels * levels, self._spread_words)
            group, chunk_rows = 2, self.PAIR_CHUNK_ROWS
        if tuple(tables.flat.shape) != want:
            raise TableFormatError(
                f"{tables.kind} table shape {tuple(tables.flat.shape)} does "
                f"not match this encoder's {want}"
            )
        self._table = _GatherTable(
            tables.flat, group=group, num_rows=want[0], chunk_rows=chunk_rows
        )
        # keep the 3-D view for a later (heap-built) pair promotion
        self._single_lut = tables.flat if tables.kind == "single" else None
        self._images_seen = max(self._images_seen, tables.images_seen)
        self._table_owner = tables.owner
        self._workspaces.clear()

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _normalize(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images)
        if images.dtype == np.uint8:
            flat = images.reshape(images.shape[0], -1)
            if flat.shape[1] != self.num_pixels:
                raise ValueError(
                    f"expected {self.num_pixels} pixels per image, "
                    f"got {flat.shape[1]}"
                )
            return self._intensity_lut[flat]
        return super()._normalize(images)

    def _gather_keys(self, values: np.ndarray, table: _GatherTable) -> np.ndarray:
        """Per-image table keys, shape ``(batch, R)`` intp."""
        values = values.astype(np.intp)
        if table.group == 1:
            return values
        levels = self.config.levels
        full = self.num_pixels // 2
        keys = values[:, 0 : 2 * full : 2] * levels + values[:, 1 : 2 * full : 2]
        if self.num_pixels % 2:
            keys = np.concatenate([keys, values[:, -1:] * levels], axis=1)
        return keys

    def _encode_chunk(
        self, values: np.ndarray, table: _GatherTable, ws: _Workspace
    ) -> np.ndarray:
        batch = values.shape[0]
        spread = self._spread_words
        idx = table.base + self._gather_keys(values, table).T
        for c0 in range(0, table.num_chunks, ws.block_chunks):
            c1 = min(c0 + ws.block_chunks, table.num_chunks)
            r0 = c0 * table.chunk_rows
            r1 = min(c1 * table.chunk_rows, table.num_rows)
            n = r1 - r0
            np.take(table.flat, idx[r0:r1], axis=0, out=ws.rows[:n], mode="clip")
            slab = (c1 - c0) * table.chunk_rows
            if n < slab:  # final partial chunk: pad rows must be zero
                ws.rows[n:slab] = 0
            ws.rows[:slab].reshape(c1 - c0, table.chunk_rows, batch, spread).sum(
                axis=1, out=ws.acc[c0:c1]
            )
        # nibble lanes -> byte lanes (parity-split, chunked so bytes can't
        # overflow) -> uint16 lanes; each stage reads 18x less than the last
        byte_chunks = ws.bytes_even.shape[0]
        np.bitwise_and(ws.acc, _NIBBLE_MASK, out=ws.tmp)
        ws.tmp.reshape(byte_chunks, _BYTE_CHUNK, batch, spread).sum(
            axis=1, out=ws.bytes_even
        )
        np.right_shift(ws.acc, np.uint64(4), out=ws.acc)
        np.bitwise_and(ws.acc, _NIBBLE_MASK, out=ws.tmp)
        ws.tmp.reshape(byte_chunks, _BYTE_CHUNK, batch, spread).sum(
            axis=1, out=ws.bytes_odd
        )
        for i, halves in enumerate((ws.bytes_even, ws.bytes_odd)):
            (halves & _BYTE_MASK).sum(axis=0, out=ws.streams[2 * i])
            ((halves >> np.uint64(8)) & _BYTE_MASK).sum(axis=0, out=ws.streams[2 * i + 1])
        lanes = ws.streams.view(np.uint16).reshape(4, batch, 4 * spread)
        flat = lanes.transpose(1, 0, 2).reshape(batch, 16 * spread)
        counts = flat[:, self._take_index].astype(np.int64)
        return 2 * counts - self.num_pixels

    def encode_batch(self, images: np.ndarray, chunk: int = 32) -> np.ndarray:
        """Accumulators for a batch, shape ``(batch, dim)`` int64.

        Bit-exact with :meth:`SobolLevelEncoder.encode_batch`; ``chunk``
        bounds the gather scratch exactly like the reference tensor chunk.
        """
        values = self._normalize(images)
        batch = values.shape[0]
        self._images_seen += batch
        table = self._ensure_table()
        out = np.empty((batch, self.dim), dtype=np.int64)
        for start in range(0, batch, chunk):
            stop = min(start + chunk, batch)
            ws = self._workspace(table, stop - start)
            out[start:stop] = self._encode_chunk(values[start:stop], table, ws)
        return out
