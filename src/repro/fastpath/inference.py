"""Packed binarized inference: class HVs and queries as words, XOR + popcount.

Under the paper's binarized policy both sides of the similarity are +-1
vectors of equal norm ``sqrt(D)``, so cosine ranking reduces to the integer
dot product ``D - 2 * hamming`` — computable entirely on packed words with
the same ties-to-+1 binarization as the reference.  Predictions match the
reference ``binarize=True`` cosine path wherever the ranking is
well-defined; on *exact* integer-dot ties the reference argmax follows
float rounding noise (and even varies with batch shape through BLAS
blocking), while this path deterministically picks the lowest class index.
The similarity *values* returned here are ``dot / D``, equal to the
reference cosine up to one float ulp.
"""

from __future__ import annotations

import numpy as np

from .bitops import pack_bits, packed_dot

__all__ = [
    "pack_accumulators",
    "packed_dot_similarity",
    "packed_cosine",
    "packed_predict",
]


def pack_accumulators(accumulators: np.ndarray) -> np.ndarray:
    """Sign-binarize integer accumulators (ties -> +1) and pack to words.

    ``binarize`` maps ``acc >= 0`` to +1, which is exactly the packed bit,
    so the +-1 ``int8`` intermediate is skipped entirely.
    """
    return pack_bits(np.atleast_2d(np.asarray(accumulators)) >= 0)


def packed_dot_similarity(
    query_words: np.ndarray, class_words: np.ndarray, dim: int
) -> np.ndarray:
    """Integer +-1 dot products between packed queries and class HVs."""
    return packed_dot(query_words, class_words, dim)


def packed_cosine(
    query_words: np.ndarray, class_words: np.ndarray, dim: int
) -> np.ndarray:
    """Cosine similarities of binarized vectors (``dot / D``), float64."""
    return packed_dot(query_words, class_words, dim) / float(dim)


def packed_predict(
    queries: np.ndarray, class_words: np.ndarray, dim: int
) -> np.ndarray:
    """Winner-take-all labels for integer accumulator queries.

    ``queries`` are raw (non-binarized) encoded vectors; they are
    binarized and packed here so callers hand over exactly what they would
    hand the reference classifier.
    """
    query_words = pack_accumulators(queries)
    dots = packed_dot_similarity(query_words, class_words, dim)
    return dots.argmax(axis=1)
