"""Deprecated backend helpers — superseded by the :mod:`repro.api` registry.

This module used to own backend dispatch (a hardcoded name tuple plus
ad-hoc resolution helpers).  That responsibility moved to the named
backend registry in :mod:`repro.api.registry`; the implementations now
live in :mod:`repro.fastpath.execution` and
:mod:`repro.fastpath.threaded`.  Everything here delegates to the
registry so old imports keep working:

* :func:`make_encoder` — **deprecated**, use
  ``repro.api.get_backend(config.backend).make_encoder(...)``; emits a
  single :class:`DeprecationWarning` per call site.
* :func:`validate_backend`, :func:`encoder_backend`,
  :func:`use_packed_inference` — thin registry delegates, kept warning-free
  because the classifier exposed them in documented behaviour contracts.
* ``BACKENDS`` — snapshot of the built-in names; the live list is
  ``repro.api.list_backends()``.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

from ..api.registry import Backend, get_backend, resolve_backend

if TYPE_CHECKING:  # pragma: no cover
    from ..core.config import UHDConfig
    from ..core.encoder import SobolLevelEncoder

__all__ = [
    "BACKENDS",
    "validate_backend",
    "encoder_backend",
    "make_encoder",
    "use_packed_inference",
]

#: built-in backend names (historical constant); consult
#: ``repro.api.list_backends()`` for the live registry, which third-party
#: packages extend at runtime
BACKENDS = ("auto", "packed", "reference", "threaded")


def validate_backend(backend: str) -> str:
    """Return ``backend`` if registered, else raise ``ValueError``."""
    get_backend(backend)
    return backend


def encoder_backend(config: "UHDConfig", num_pixels: int) -> str:
    """Resolve the encoding path for a config, ``"packed"`` or ``"reference"``."""
    return get_backend(config.backend).encoder_kind(config, num_pixels)


def make_encoder(num_pixels: int, config: "UHDConfig") -> "SobolLevelEncoder":
    """Deprecated: the encoder implementation selected by ``config.backend``.

    The replacement symbol is :func:`repro.api.get_backend`: call
    ``repro.api.get_backend(config.backend).make_encoder(num_pixels,
    config)`` — that path also reaches third-party registered backends.
    """
    warnings.warn(
        "repro.fastpath.backends.make_encoder() is deprecated; the "
        "replacement symbol is repro.api.get_backend — call "
        "repro.api.get_backend(config.backend).make_encoder(num_pixels, "
        "config), which also reaches third-party registered backends",
        DeprecationWarning,
        stacklevel=2,
    )
    return get_backend(config.backend).make_encoder(num_pixels, config)


def use_packed_inference(backend: "str | Backend", binarize: bool) -> bool:
    """Whether classifier inference runs on packed words for ``backend``."""
    return resolve_backend(backend).use_packed_inference(binarize)
