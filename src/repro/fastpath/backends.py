"""Backend selection: reference NumPy path vs packed fast path.

``UHDConfig.backend`` takes one of three values:

* ``"reference"`` — always the original elementwise encoders/classifier.
* ``"packed"`` — force packed *encoding*; raises where that cannot apply
  (non-quantized, too many pixels) so a forced selection never silently
  degrades the hot path.  Inference has no packed form for the default
  non-binarized policy, so there even ``"packed"`` stays on the reference
  cosine (see :func:`use_packed_inference`) — by design, not by fallback:
  encoding is where the time goes.
* ``"auto"`` (default) — packed wherever it is bit-exact and supported:
  encoding when ``quantized=True`` and the pixel count fits the packed
  counter headroom; inference when ``binarize=True``.  Everything else
  stays on the reference path.

This module is import-light on purpose (encoder imports happen inside the
factory functions): it sits below both ``repro.core`` and ``repro.hdc`` in
the import graph, so either can consult it without cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..core.config import UHDConfig
    from ..core.encoder import SobolLevelEncoder

__all__ = [
    "BACKENDS",
    "validate_backend",
    "encoder_backend",
    "make_encoder",
    "use_packed_inference",
]

BACKENDS = ("auto", "packed", "reference")


def validate_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


def encoder_backend(config: "UHDConfig", num_pixels: int) -> str:
    """Resolve the encoding backend for a config, ``"packed"`` or ``"reference"``."""
    from .encoder import PackedLevelEncoder

    backend = validate_backend(config.backend)
    if backend == "packed":
        if not config.quantized:
            raise ValueError(
                "backend='packed' requires quantized=True (the packed "
                "encoder exploits the xi-level codes)"
            )
        if num_pixels > PackedLevelEncoder.MAX_PIXELS:
            raise ValueError(
                f"backend='packed' supports up to "
                f"{PackedLevelEncoder.MAX_PIXELS} pixels, got {num_pixels}"
            )
        return "packed"
    if (
        backend == "auto"
        and config.quantized
        and num_pixels <= PackedLevelEncoder.MAX_PIXELS
    ):
        return "packed"
    return "reference"


def make_encoder(num_pixels: int, config: "UHDConfig") -> "SobolLevelEncoder":
    """The encoder implementation selected by ``config.backend``."""
    from ..core.encoder import SobolLevelEncoder
    from .encoder import PackedLevelEncoder

    if encoder_backend(config, num_pixels) == "packed":
        return PackedLevelEncoder(num_pixels, config)
    return SobolLevelEncoder(num_pixels, config)


def use_packed_inference(backend: str, binarize: bool) -> bool:
    """Packed XOR+popcount inference applies only to the binarized policy.

    The default (non-binarized) policy compares mean-centered integer
    centroids, which has no packed representation, so ``auto`` and even an
    explicit ``packed`` fall back to the reference cosine there — encoding
    still runs packed, which is where the time goes.
    """
    return validate_backend(backend) != "reference" and binarize
