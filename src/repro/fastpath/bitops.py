"""Packed-hypervector primitives: 64 bipolar components per machine word.

A +-1 hypervector of dimension ``D`` becomes ``ceil(D / 64)`` ``uint64``
words (+1 -> bit 1, -1 -> bit 0, little bit order: component ``i`` lives
in word ``i // 64`` at bit ``i % 64``; pad bits beyond ``D`` are zero).
On packed words the HDC kernels collapse to machine ops:

* Hamming distance  = ``popcount(a XOR b)``
* bipolar dot       = ``D - 2 * hamming``  (each disagreeing pair costs 2)

``popcount`` uses :func:`numpy.bitwise_count` (NumPy >= 2.0) when
available and a per-byte lookup table otherwise, so the fast path degrades
gracefully instead of importing anything new.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "HAS_BITWISE_COUNT",
    "WORD_BITS",
    "popcount",
    "pack_bits",
    "unpack_bits",
    "pack_bipolar",
    "unpack_bipolar",
    "packed_hamming",
    "packed_dot",
]

WORD_BITS = 64

HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

_BYTE_POPCOUNT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def _popcount_lut(words: np.ndarray) -> np.ndarray:
    """Per-word popcount via a 256-entry byte table (pre-NumPy-2.0 path)."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    per_byte = _BYTE_POPCOUNT[words.view(np.uint8)]
    return per_byte.reshape(words.shape + (8,)).sum(axis=-1, dtype=np.uint8)


def popcount(words: np.ndarray) -> np.ndarray:
    """Number of set bits per ``uint64`` word, shape-preserving, uint8."""
    if HAS_BITWISE_COUNT:
        return np.bitwise_count(np.asarray(words, dtype=np.uint64))
    return _popcount_lut(words)


def words_for_bits(n_bits: int) -> int:
    """Words needed to hold ``n_bits`` packed bits."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be >= 0, got {n_bits}")
    return (n_bits + WORD_BITS - 1) // WORD_BITS


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack booleans along the last axis into little-bit-order uint64 words.

    ``(..., n)`` bool -> ``(..., ceil(n / 64))`` uint64; pad bits are zero,
    so XOR/AND/popcount over packed rows never see phantom components.
    """
    bits = np.asarray(bits, dtype=bool)
    n = bits.shape[-1]
    n_words = words_for_bits(n)
    pad = n_words * WORD_BITS - n
    if pad:
        bits = np.concatenate(
            [bits, np.zeros(bits.shape[:-1] + (pad,), dtype=bool)], axis=-1
        )
    as_bytes = np.packbits(bits, axis=-1, bitorder="little")
    return np.ascontiguousarray(as_bytes).view(np.uint64)


def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``(..., W)`` uint64 -> ``(..., n_bits)`` bool."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if n_bits < 0 or n_bits > words.shape[-1] * WORD_BITS:
        raise ValueError(f"n_bits {n_bits} out of range for {words.shape[-1]} words")
    bits = np.unpackbits(words.view(np.uint8), axis=-1, bitorder="little")
    return bits[..., :n_bits].astype(bool)


def pack_bipolar(hv: np.ndarray) -> np.ndarray:
    """Pack +-1 hypervectors (last axis) into words; +1 -> 1, -1 -> 0."""
    hv = np.asarray(hv)
    return pack_bits(hv > 0)


def unpack_bipolar(words: np.ndarray, dim: int) -> np.ndarray:
    """Packed words back to +-1 ``int8`` hypervectors of dimension ``dim``."""
    return np.where(unpack_bits(words, dim), 1, -1).astype(np.int8)


def _as_word_matrix(words: np.ndarray) -> np.ndarray:
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim == 1:
        return words[None, :]
    if words.ndim != 2:
        raise ValueError("expected packed words of shape (W,) or (n, W)")
    return words


def packed_hamming(
    queries: np.ndarray, references: np.ndarray, chunk: int = 4096
) -> np.ndarray:
    """Pairwise Hamming distances between packed rows, ``(n, m)`` int64.

    The XOR fans out to a ``(chunk, m, W)`` word tensor; ``chunk`` bounds
    transient memory the same way the reference encoder's batch chunk does.
    """
    q = _as_word_matrix(queries)
    r = _as_word_matrix(references)
    if q.shape[1] != r.shape[1]:
        raise ValueError(
            f"word-count mismatch: queries W={q.shape[1]}, references W={r.shape[1]}"
        )
    out = np.empty((q.shape[0], r.shape[0]), dtype=np.int64)
    for start in range(0, q.shape[0], chunk):
        stop = min(start + chunk, q.shape[0])
        diff = q[start:stop, None, :] ^ r[None, :, :]
        out[start:stop] = popcount(diff).sum(axis=-1, dtype=np.int64)
    return out


def packed_dot(queries: np.ndarray, references: np.ndarray, dim: int) -> np.ndarray:
    """Pairwise bipolar inner products from packed rows, ``(n, m)`` int64.

    For +-1 vectors of dimension ``dim``: agreements minus disagreements,
    i.e. ``dim - 2 * hamming`` — bit-exact with the integer dot product.
    """
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    return dim - 2 * packed_hamming(queries, references)
