"""Threaded backend: packed kernels sharded over the batch axis.

The packed encoder and the packed Hamming kernel are embarrassingly
parallel over images/queries: every per-chunk computation reads only the
shared gather tables (read-only after construction) and writes a disjoint
slice of the output.  NumPy releases the GIL inside the gather, the SWAR
adds and the popcounts — the hot 99% of both kernels — so plain threads
scale them across cores with zero IPC and zero table duplication.  That
is rung 1 of the ROADMAP's backend ladder; rung 2 (multi-process serving)
stacks on the same sharding with processes instead of threads.

Design notes
------------
* **Thread-local workspaces.**  :class:`PackedLevelEncoder` preallocates
  per-batch-size scratch; sharing it across workers would race.  Each
  worker thread lazily builds its own workspace per (table, shard-size),
  so steady-state encoding still never allocates.
* **Shared tables, one promotion.**  ``_ensure_table`` (and the lazy
  single→pair promotion) runs once on the submitting thread before any
  worker starts; workers only ever *read* the table.
* **Bit-exactness.**  Sharding does not touch the arithmetic: every shard
  runs the identical integer pipeline the packed backend runs, so
  ``threaded`` output equals ``packed`` output bit for bit (the tests
  assert it).
* **Small batches stay serial.**  Thread fan-out below one chunk per
  worker costs more than it buys; those calls take the parent's in-line
  path.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING

import numpy as np

from .bitops import packed_hamming
from .encoder import PackedLevelEncoder, _GatherTable, _Workspace
from .execution import PackedBackend

if TYPE_CHECKING:  # pragma: no cover
    from ..core.config import UHDConfig

__all__ = ["ThreadedLevelEncoder", "ThreadedBackend", "threaded_packed_hamming"]


def default_workers() -> int:
    """Worker count: every core up to a soft cap (oversubscription hurts)."""
    return max(1, min(8, os.cpu_count() or 1))


class _LazyPool:
    """Shared lazy ThreadPoolExecutor plumbing (encoder + inference backend)."""

    def __init__(self, max_workers: int | None, thread_name_prefix: str) -> None:
        self.max_workers = (
            default_workers() if max_workers is None else max(1, int(max_workers))
        )
        self._prefix = thread_name_prefix
        self._pool: ThreadPoolExecutor | None = None
        self._pool_pid: int | None = None
        self._lock = threading.Lock()

    @property
    def started(self) -> bool:
        return self._pool is not None

    def executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is not None and self._pool_pid != os.getpid():
                # forked child: the inherited executor's threads do not
                # exist here — submitting to it would hang forever.  Drop
                # the dead object (never join it) and start fresh.
                self._pool = None
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix=self._prefix,
                )
                self._pool_pid = os.getpid()
            return self._pool

    def shutdown(self) -> None:
        """Stop the pool's threads now instead of waiting for GC."""
        with self._lock:
            if self._pool is not None:
                if self._pool_pid == os.getpid():
                    self._pool.shutdown(wait=True)
                self._pool = None  # forked copy: threads aren't ours to join


class ThreadedLevelEncoder(PackedLevelEncoder):
    """Packed encoder sharding ``encode_batch`` across a thread pool.

    Bit-exact with :class:`PackedLevelEncoder` (and therefore with the
    reference): threads partition the batch axis only.  The pool is
    created lazily and sized by ``max_workers``
    (:func:`default_workers` when omitted).
    """

    def __init__(
        self,
        num_pixels: int,
        config: "UHDConfig",
        pair_lut_budget: int | None = None,
        max_workers: int | None = None,
        pool: _LazyPool | None = None,
    ) -> None:
        super().__init__(num_pixels, config, pair_lut_budget=pair_lut_budget)
        # a shared pool (e.g. the ThreadedBackend's) keeps a many-model
        # server at one encode pool instead of one per loaded model
        self._lazy_pool = (
            pool if pool is not None else _LazyPool(max_workers, "uhd-encode")
        )
        self._tls = threading.local()
        #: bumped when the gather table is swapped (pair promotion) so every
        #: worker thread drops its stale per-geometry workspaces
        self._ws_generation = 0
        self._last_table: _GatherTable | None = None
        #: serializes table construction/promotion across concurrent
        #: encode_batch callers (the parent's _ensure_table assumes one)
        self._table_lock = threading.Lock()

    @property
    def max_workers(self) -> int:
        return self._lazy_pool.max_workers

    def attach_tables(self, tables) -> None:
        """Install a published table under the table lock (see parent).

        The lock orders the attach against a concurrent ``encode_batch``'s
        table resolution; the generation bump happens naturally on the
        next encode (``table is not self._last_table``).
        """
        with self._table_lock:
            super().attach_tables(tables)

    def _executor(self) -> ThreadPoolExecutor:
        return self._lazy_pool.executor()

    @property
    def _pool(self) -> ThreadPoolExecutor | None:
        """The live pool, if fan-out ever happened (None = stayed serial)."""
        return self._lazy_pool._pool

    def close(self) -> None:
        """Release the worker threads (no-op if encoding never fanned out).

        The encoder stays usable — the pool restarts lazily on the next
        multi-chunk batch.  Harmless on a pool shared with other models.
        """
        self._lazy_pool.shutdown()

    def _thread_workspace(self, table: _GatherTable, batch: int) -> _Workspace:
        """Per-thread scratch, discarded wholesale when the table changes.

        Only the *current* table's workspaces are cached.  A task that is
        still carrying the pre-promotion table (possible when concurrent
        ``encode_batch`` calls straddle the promotion point) gets a
        transient workspace instead — correct geometry, never cached, so a
        cached workspace can never mismatch the table it is used with.
        """
        if table is not self._last_table:
            return _Workspace(table, batch, self._spread_words)
        if getattr(self._tls, "generation", None) != self._ws_generation:
            self._tls.generation = self._ws_generation
            self._tls.workspaces = {}
        spaces = self._tls.workspaces
        entry = spaces.get(batch)
        # each entry remembers its table: a workspace can never be reused
        # with a different table even if promotion races the checks above
        if entry is None or entry[0] is not table:
            entry = spaces[batch] = (table, _Workspace(table, batch, self._spread_words))
        return entry[1]

    def _encode_span(
        self,
        values: np.ndarray,
        table: _GatherTable,
        out: np.ndarray,
        start: int,
        stop: int,
    ) -> None:
        workspace = self._thread_workspace(table, stop - start)
        out[start:stop] = self._encode_chunk(values[start:stop], table, workspace)

    def encode_batch(self, images: np.ndarray, chunk: int = 32) -> np.ndarray:
        values = self._normalize(images)
        batch = values.shape[0]
        self._images_seen += batch
        with self._table_lock:  # promotion happens here, before fan-out
            table = self._ensure_table()
            if table is not self._last_table:
                self._last_table = table
                self._ws_generation += 1
        out = np.empty((batch, self.dim), dtype=np.int64)
        spans = [(s, min(s + chunk, batch)) for s in range(0, batch, chunk)]
        if self.max_workers == 1 or len(spans) < 2:
            for start, stop in spans:
                self._encode_span(values, table, out, start, stop)
            return out
        futures = [
            self._executor().submit(self._encode_span, values, table, out, start, stop)
            for start, stop in spans
        ]
        for future in futures:
            future.result()  # propagate worker exceptions, preserve order
        return out


def threaded_packed_hamming(
    queries: np.ndarray,
    references: np.ndarray,
    executor: ThreadPoolExecutor,
    min_rows_per_worker: int = 128,
    workers: int | None = None,
) -> np.ndarray:
    """:func:`repro.fastpath.bitops.packed_hamming` sharded over query rows.

    Falls through to the serial kernel when the query count cannot keep
    at least two workers busy at ``min_rows_per_worker`` rows each.
    ``workers`` sizes the shards; when omitted it is read off the executor
    (falling back to serial for executors that hide their worker count).
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.uint64))
    n = queries.shape[0]
    if workers is None:
        workers = getattr(executor, "_max_workers", 1)
    workers = max(1, workers)
    shard = max(min_rows_per_worker, -(-n // workers))
    if n <= shard:
        return packed_hamming(queries, references)
    out = np.empty((n, np.atleast_2d(references).shape[0]), dtype=np.int64)

    def run(start: int, stop: int) -> None:
        out[start:stop] = packed_hamming(queries[start:stop], references)

    futures = [
        executor.submit(run, start, min(start + shard, n))
        for start in range(0, n, shard)
    ]
    for future in futures:
        future.result()
    return out


class ThreadedBackend(PackedBackend):
    """The ``"threaded"`` registry entry: packed semantics, thread fan-out.

    Encoding is forced-packed exactly like ``backend="packed"`` (same
    validation, same errors) but runs on :class:`ThreadedLevelEncoder`;
    binarized inference shards the packed Hamming kernel across the same
    kind of pool.  Everything stays bit-exact with ``packed``.
    """

    name = "threaded"

    def __init__(self, max_workers: int | None = None) -> None:
        # one pool serves both this backend's inference sharding and the
        # encoders it hands out (see _packed_encoder)
        self._lazy_pool = _LazyPool(max_workers, "uhd-threaded")

    @property
    def max_workers(self) -> int:
        return self._lazy_pool.max_workers

    def _executor(self) -> ThreadPoolExecutor:
        return self._lazy_pool.executor()

    def _packed_encoder(self, num_pixels: int, config: "UHDConfig"):
        # share this backend's pool: a server loading many threaded models
        # gets one worker pool, not one per encoder
        return ThreadedLevelEncoder(num_pixels, config, pool=self._lazy_pool)

    def packed_predict(
        self, queries: np.ndarray, class_words: np.ndarray, dim: int
    ) -> np.ndarray:
        from .inference import pack_accumulators

        query_words = pack_accumulators(queries)
        hamming = threaded_packed_hamming(
            query_words, class_words, self._executor(), workers=self.max_workers
        )
        return (dim - 2 * hamming).argmax(axis=1)

    def packed_cosine(
        self, query_words: np.ndarray, class_words: np.ndarray, dim: int
    ) -> np.ndarray:
        hamming = threaded_packed_hamming(
            query_words, class_words, self._executor(), workers=self.max_workers
        )
        return (dim - 2 * hamming) / float(dim)
