"""Built-in execution backends behind the :mod:`repro.api` registry.

Each class bundles the two decisions a backend owns — which encoder to
build and which inference kernels the centroid classifier runs — behind
the :class:`repro.api.registry.Backend` protocol.  The resolution rules
are exactly the ones :mod:`repro.fastpath.backends` used to hardcode:

* ``reference`` — always the original elementwise NumPy paths.
* ``packed`` — force packed *encoding*, raising where it cannot apply
  (non-quantized, too many pixels) so a forced selection never silently
  degrades; inference runs packed only under ``binarize=True`` (the
  centered-cosine default has no packed form — by design, not fallback).
* ``auto`` (default) — packed wherever it is bit-exact and supported,
  reference everywhere else.

``threaded`` (the fourth built-in) lives in
:mod:`repro.fastpath.threaded`; it subclasses :class:`PackedBackend`
here, which is itself ordinary registry fare — the point of the registry
is that backends compose by subclassing or from scratch equally well.

Backend instances are stateless and shared (the registry caches one per
name), so everything here must stay safe to call from multiple threads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..core.config import UHDConfig
    from ..core.encoder import SobolLevelEncoder

__all__ = ["ReferenceBackend", "PackedBackend", "AutoBackend"]


class _BuiltinBackend:
    """Shared plumbing: encoder construction + packed inference kernels."""

    name = "abstract"

    def make_encoder(
        self, num_pixels: int, config: "UHDConfig"
    ) -> "SobolLevelEncoder":
        """Encoder for this backend (packed or reference, per ``encoder_kind``)."""
        from ..core.encoder import SobolLevelEncoder

        if self.encoder_kind(config, num_pixels) == "packed":
            return self._packed_encoder(num_pixels, config)
        return SobolLevelEncoder(num_pixels, config)

    def _packed_encoder(
        self, num_pixels: int, config: "UHDConfig"
    ) -> "SobolLevelEncoder":
        from .encoder import PackedLevelEncoder

        return PackedLevelEncoder(num_pixels, config)

    def _force_packed_kind(self, config: "UHDConfig", num_pixels: int) -> str:
        """Validate a *forced* packed selection (``packed``/``threaded``)."""
        from .encoder import PackedLevelEncoder

        if not config.quantized:
            raise ValueError(
                f"backend={self.name!r} requires quantized=True (the packed "
                "encoder exploits the xi-level codes)"
            )
        if num_pixels > PackedLevelEncoder.MAX_PIXELS:
            raise ValueError(
                f"backend={self.name!r} supports up to "
                f"{PackedLevelEncoder.MAX_PIXELS} pixels, got {num_pixels}"
            )
        return "packed"

    # -- inference kernels (only reached when use_packed_inference is true)
    def packed_predict(
        self, queries: np.ndarray, class_words: np.ndarray, dim: int
    ) -> np.ndarray:
        from .inference import packed_predict

        return packed_predict(queries, class_words, dim)

    def packed_cosine(
        self, query_words: np.ndarray, class_words: np.ndarray, dim: int
    ) -> np.ndarray:
        from .inference import packed_cosine

        return packed_cosine(query_words, class_words, dim)


class ReferenceBackend(_BuiltinBackend):
    """Always the original elementwise NumPy encoder and cosine inference."""

    name = "reference"

    def encoder_kind(self, config: "UHDConfig", num_pixels: int) -> str:
        return "reference"

    def use_packed_inference(self, binarize: bool) -> bool:
        return False


class PackedBackend(_BuiltinBackend):
    """Force the packed encoder; packed inference under ``binarize=True``."""

    name = "packed"

    def encoder_kind(self, config: "UHDConfig", num_pixels: int) -> str:
        return self._force_packed_kind(config, num_pixels)

    def use_packed_inference(self, binarize: bool) -> bool:
        return binarize


class AutoBackend(_BuiltinBackend):
    """Packed wherever bit-exact and supported; reference everywhere else."""

    name = "auto"

    def encoder_kind(self, config: "UHDConfig", num_pixels: int) -> str:
        from .encoder import PackedLevelEncoder

        if config.quantized and num_pixels <= PackedLevelEncoder.MAX_PIXELS:
            return "packed"
        return "reference"

    def use_packed_inference(self, binarize: bool) -> bool:
        return binarize
