"""Gather-table storage, decoupled from gather-table construction.

The expensive state of a warm packed encoder is a deterministic lookup
table — the nibble-spread single LUT, or the pair LUT it promotes to.
:class:`repro.fastpath.encoder.PackedLevelEncoder` *builds* that table;
this module decides where the bytes **live**, so that building once and
attaching many times becomes possible across process boundaries:

* :class:`HeapStore` — process-heap arrays, exactly today's behavior.
  Attachable within the publishing process (and, copy-on-write, in its
  ``fork`` children); a ``spawn`` child cannot resolve a heap handle and
  falls back to building its own table.
* :class:`MmapStore` — the table flushed once to a versioned file
  (:func:`write_table_file`), attached read-only via ``np.memmap``.  Any
  process that can read the file attaches zero-copy; N workers share one
  page-cache copy.
* :class:`SharedMemoryStore` — ``multiprocessing.shared_memory``, for
  hosts where a filesystem round-trip is unwanted.  The publishing
  process owns the segment's lifecycle (unlink on close); attachers map
  it read-only and never unlink.

Every store speaks the same protocol: ``publish(tables) -> TableHandle``
(a tiny picklable token that crosses the worker handshake) and the
module-level :func:`attach_handle` that turns a handle back into a
:class:`TableSet` in any process — or ``None`` when the handle cannot be
resolved there, in which case the caller builds (never crashes).

Bit-exactness contract: an attached table is **byte-identical** to the
built table — stores move bytes, they never transform them — so every
prediction made through an attached table equals the built-table
prediction bit for bit (``tests/fastpath/test_tablestore.py`` asserts
the round-trip on every store).

The versioned table file
------------------------
:func:`write_table_file` lays out a self-describing single file::

    bytes 0..7    magic  b"UHDTBL\\x01\\n"   (format version in the magic)
    bytes 8..15   little-endian uint64 header length
    header        JSON: kind, shape, dtype, images_seen, key{...}
    padding       zeros up to a 64-byte data offset boundary
    data          the raw C-order table words

``key`` holds exactly the config fields the table bytes depend on
(:func:`table_key`) — note ``backend`` is *not* one of them: ``packed``
and ``threaded`` encoders build identical tables, so one published table
serves both.  :func:`read_table_file` validates magic and version and
returns a read-only ``np.memmap`` over the data region; the same format
backs :class:`MmapStore` publications and the optional
``save_model(..., include_tables=True)`` sidecar.
"""

from __future__ import annotations

import hashlib
import json
import os
import secrets
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..core.config import UHDConfig

__all__ = [
    "TABLE_FILE_MAGIC",
    "TABLE_FORMAT_VERSION",
    "TableFormatError",
    "TableSet",
    "TableHandle",
    "TableStore",
    "HeapStore",
    "MmapStore",
    "SharedMemoryStore",
    "make_store",
    "attach_handle",
    "table_key",
    "write_table_file",
    "read_table_file",
]

#: leading bytes of every table file; the trailing ``\x01`` is the format
#: version — bump it for incompatible layout changes
TABLE_FILE_MAGIC = b"UHDTBL\x01\n"
TABLE_FORMAT_VERSION = 1

#: data begins at a multiple of this offset so attached memmaps are
#: cache-line (and SIMD-load) aligned
_DATA_ALIGN = 64


class TableFormatError(Exception):
    """A table file/segment is corrupt, mis-versioned, or keyed for a
    different encoder geometry than the attacher's."""


def table_key(num_pixels: int, config: "UHDConfig") -> dict:
    """The config fields the gather-table *bytes* are a pure function of.

    Deliberately excludes ``backend`` (packed and threaded build the
    identical table) and ``binarize`` (an inference policy): a table
    published by one is attachable by the other.  Two encoders with equal
    ``table_key`` build byte-identical tables, so key equality is the
    attach-safety check.
    """
    return {
        "num_pixels": int(num_pixels),
        "dim": int(config.dim),
        "levels": int(config.levels),
        "quantized": bool(config.quantized),
        "lds": str(config.lds),
        "seed": int(config.seed),
        "digital_shift": bool(config.digital_shift),
    }


@dataclass
class TableSet:
    """One encoder's gather table, ready to publish or attach.

    ``flat`` is the logical ``(num_rows, keys_per_row, spread_words)``
    uint64 array — a plain heap array on export, possibly a read-only
    ``np.memmap``/shared-memory view after attach.  ``kind`` is
    ``"single"`` (one pixel per gathered row) or ``"pair"`` (the promoted
    two-pixel table).  ``owner`` pins whatever object keeps the backing
    bytes alive (an open ``SharedMemory``); holders of the arrays must
    keep the ``TableSet`` (or its ``owner``) referenced.
    """

    kind: str
    flat: np.ndarray
    key: dict
    images_seen: int = 0
    owner: Any = None

    @property
    def nbytes(self) -> int:
        return int(self.flat.nbytes)

    def validate_against(self, num_pixels: int, config: "UHDConfig") -> None:
        """Raise :class:`TableFormatError` unless this table's key matches."""
        want = table_key(num_pixels, config)
        if self.key != want:
            raise TableFormatError(
                f"table keyed for {self.key} cannot attach to an encoder "
                f"keyed {want}"
            )
        if self.kind not in ("single", "pair"):
            raise TableFormatError(f"unknown table kind {self.kind!r}")


@dataclass(frozen=True)
class TableHandle:
    """Picklable pointer to one published table (crosses the worker
    handshake).  ``store`` names the implementation that can resolve
    ``ref``; ``meta`` carries whatever that implementation needs to
    attach without touching the publisher's memory."""

    store: str
    ref: str
    meta: dict = field(default_factory=dict)


def _header_dict(tables: TableSet) -> dict:
    return {
        "format_version": TABLE_FORMAT_VERSION,
        "kind": tables.kind,
        "shape": [int(s) for s in tables.flat.shape],
        "dtype": np.dtype(np.uint64).str,  # records byte order, e.g. '<u8'
        "images_seen": int(tables.images_seen),
        "key": tables.key,
    }


def _tables_from_header(header: dict, flat: np.ndarray, owner: Any = None) -> TableSet:
    return TableSet(
        kind=str(header["kind"]),
        flat=flat,
        key=dict(header["key"]),
        images_seen=int(header.get("images_seen", 0)),
        owner=owner,
    )


def _check_header(header: dict, where: str) -> tuple[tuple[int, ...], np.dtype]:
    version = header.get("format_version")
    if version != TABLE_FORMAT_VERSION:
        raise TableFormatError(
            f"{where}: table format version {version!r} is not supported "
            f"(this build reads version {TABLE_FORMAT_VERSION})"
        )
    dtype = np.dtype(str(header["dtype"]))
    if dtype != np.dtype(np.uint64):
        raise TableFormatError(
            f"{where}: table dtype {dtype.str} does not match this host's "
            f"uint64 layout {np.dtype(np.uint64).str}"
        )
    shape = tuple(int(s) for s in header["shape"])
    if len(shape) != 3:
        raise TableFormatError(f"{where}: table shape {shape} is not 3-D")
    return shape, dtype


def write_table_file(path: Any, tables: TableSet) -> None:
    """Flush ``tables`` to the versioned single-file layout at ``path``.

    The write goes through a same-directory temp file + ``os.replace`` so
    a reader can never observe a half-written table.
    """
    header = json.dumps(_header_dict(tables), sort_keys=True).encode("utf-8")
    prefix = len(TABLE_FILE_MAGIC) + 8 + len(header)
    data_offset = -(-prefix // _DATA_ALIGN) * _DATA_ALIGN
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".uhdtbl-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(TABLE_FILE_MAGIC)
            handle.write(np.uint64(len(header)).tobytes())
            handle.write(header)
            handle.write(b"\x00" * (data_offset - prefix))
            handle.write(np.ascontiguousarray(tables.flat, dtype=np.uint64).tobytes())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_table_file(path: Any) -> TableSet:
    """Attach the table at ``path`` read-only (zero-copy ``np.memmap``)."""
    path = os.fspath(path)
    with open(path, "rb") as handle:
        magic = handle.read(len(TABLE_FILE_MAGIC))
        if magic != TABLE_FILE_MAGIC:
            raise TableFormatError(
                f"{path}: bad magic {magic!r} — not a uHD table file"
            )
        length_bytes = handle.read(8)
        if len(length_bytes) != 8:
            raise TableFormatError(f"{path}: truncated table file (no header)")
        (header_len,) = np.frombuffer(length_bytes, dtype=np.uint64)
        header_bytes = handle.read(int(header_len))
        if len(header_bytes) != int(header_len):
            raise TableFormatError(f"{path}: truncated table header")
        try:
            header = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TableFormatError(f"{path}: corrupt table header: {exc}") from exc
    shape, dtype = _check_header(header, path)
    prefix = len(TABLE_FILE_MAGIC) + 8 + int(header_len)
    data_offset = -(-prefix // _DATA_ALIGN) * _DATA_ALIGN
    expected = data_offset + int(np.prod(shape)) * dtype.itemsize
    if os.path.getsize(path) < expected:
        raise TableFormatError(
            f"{path}: truncated table file ({os.path.getsize(path)} bytes, "
            f"expected {expected})"
        )
    flat = np.memmap(path, dtype=dtype, mode="r", offset=data_offset, shape=shape)
    return _tables_from_header(header, flat)


# ----------------------------------------------------------------------
# Stores
# ----------------------------------------------------------------------
class TableStore:
    """Where published gather tables live; see the module docstring.

    Implementations provide :meth:`publish` / :meth:`release` /
    :meth:`close` plus a class-level ``name``; attaching is the
    module-level :func:`attach_handle` so a process that never built a
    store object (a spawn worker) can still resolve handles.
    """

    name = "abstract"

    def publish(self, tables: TableSet) -> TableHandle:
        raise NotImplementedError

    def release(self, handle: TableHandle) -> None:
        """Free one publication (idempotent; unknown handles are no-ops)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release everything this store published."""
        raise NotImplementedError

    def __enter__(self) -> "TableStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


#: process-global registry behind HeapStore handles; a fork child
#: inherits it copy-on-write, a spawn child starts empty (attach -> None)
_HEAP_PUBLISHED: dict[str, TableSet] = {}


class HeapStore(TableStore):
    """Today's behavior, made explicit: the table stays on this process's
    heap.  ``fork`` children resolve the handle through their inherited
    (copy-on-write) registry; ``spawn`` children cannot and fall back to
    building — which is exactly the pre-store world."""

    name = "heap"

    def __init__(self) -> None:
        self._refs: list[str] = []

    def publish(self, tables: TableSet) -> TableHandle:
        ref = f"heap-{os.getpid()}-{secrets.token_hex(8)}"
        _HEAP_PUBLISHED[ref] = tables
        self._refs.append(ref)
        return TableHandle(store=self.name, ref=ref, meta=_header_dict(tables))

    def release(self, handle: TableHandle) -> None:
        _HEAP_PUBLISHED.pop(handle.ref, None)
        if handle.ref in self._refs:
            self._refs.remove(handle.ref)

    def close(self) -> None:
        for ref in self._refs:
            _HEAP_PUBLISHED.pop(ref, None)
        self._refs.clear()

    @staticmethod
    def attach(handle: TableHandle) -> TableSet | None:
        return _HEAP_PUBLISHED.get(handle.ref)


class MmapStore(TableStore):
    """Tables flushed to versioned files under ``directory``, attached
    read-only via ``np.memmap``.

    One file per publication, named by a content key so republishing the
    same table bumps a ``-v<N>`` suffix instead of rewriting in place
    under a reader.  ``cleanup=True`` (default for server-created temp
    stores) unlinks the files on :meth:`close`; pass ``cleanup=False``
    to keep a warm-table directory across runs.
    """

    name = "mmap"

    def __init__(self, directory: Any | None = None, cleanup: bool | None = None):
        if directory is None:
            directory = tempfile.mkdtemp(prefix="uhd-tables-")
            self._owns_dir = True
        else:
            directory = os.fspath(directory)
            os.makedirs(directory, exist_ok=True)
            self._owns_dir = False
        self.directory = directory
        self._cleanup = self._owns_dir if cleanup is None else bool(cleanup)
        self._versions: dict[str, int] = {}
        self._paths: list[str] = []

    def publish(self, tables: TableSet) -> TableHandle:
        digest = hashlib.sha1(
            json.dumps(tables.key, sort_keys=True).encode("utf-8")
        ).hexdigest()[:12]
        stem = f"{tables.kind}-{digest}"
        version = self._versions.get(stem, 0) + 1
        self._versions[stem] = version
        path = os.path.join(self.directory, f"{stem}-v{version}.uhdtbl")
        write_table_file(path, tables)
        self._paths.append(path)
        return TableHandle(store=self.name, ref=path, meta=_header_dict(tables))

    def release(self, handle: TableHandle) -> None:
        try:
            os.unlink(handle.ref)
        except OSError:
            pass
        if handle.ref in self._paths:
            self._paths.remove(handle.ref)

    def close(self) -> None:
        if self._cleanup:
            for path in self._paths:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            if self._owns_dir:
                try:
                    os.rmdir(self.directory)
                except OSError:
                    pass
        self._paths.clear()

    @staticmethod
    def attach(handle: TableHandle) -> TableSet | None:
        if not os.path.exists(handle.ref):
            return None
        return read_table_file(handle.ref)


class SharedMemoryStore(TableStore):
    """Tables in ``multiprocessing.shared_memory`` segments.

    Parent-owned lifecycle: the publishing process keeps the segment
    mapped and **unlinks it on close/release**; attachers map read-only
    views and only ever close their own mapping.  On Python < 3.13 an
    attaching process's ``resource_tracker`` would also unlink the
    segment at exit (bpo-38119) — attach deregisters the segment from
    the tracker, restoring the single-owner contract.
    """

    name = "shm"

    def __init__(self) -> None:
        self._segments: dict[str, Any] = {}

    def publish(self, tables: TableSet) -> TableHandle:
        from multiprocessing import shared_memory

        flat = np.ascontiguousarray(tables.flat, dtype=np.uint64)
        segment = shared_memory.SharedMemory(create=True, size=max(1, flat.nbytes))
        view = np.ndarray(flat.shape, dtype=np.uint64, buffer=segment.buf)
        view[...] = flat
        self._segments[segment.name] = segment
        return TableHandle(
            store=self.name, ref=segment.name, meta=_header_dict(tables)
        )

    def release(self, handle: TableHandle) -> None:
        segment = self._segments.pop(handle.ref, None)
        if segment is not None:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass

    def close(self) -> None:
        for ref in list(self._segments):
            self.release(TableHandle(store=self.name, ref=ref))

    @staticmethod
    def attach(handle: TableHandle) -> TableSet | None:
        from multiprocessing import shared_memory

        shape, dtype = _check_header(handle.meta, f"shm:{handle.ref}")
        try:
            with _shm_attach_untracked():
                segment = shared_memory.SharedMemory(name=handle.ref)
        except FileNotFoundError:
            return None  # publisher already closed; caller builds instead
        flat = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
        flat.flags.writeable = False
        return _tables_from_header(handle.meta, flat, owner=segment)


@contextmanager
def _shm_attach_untracked():
    """Keep an *attaching* process's resource tracker out of the segment.

    Before Python 3.13 (``SharedMemory(track=...)``) every attach also
    registers with the resource tracker — shared with the publisher —
    so an exiting attacher would unlink the segment under everyone else
    (bpo-38119).  The publisher owns the lifecycle here; attach must
    leave no tracker trace.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(name: str, rtype: str) -> None:
        if rtype != "shared_memory":  # pragma: no cover - defensive
            original(name, rtype)

    resource_tracker.register = register
    try:
        yield
    finally:
        resource_tracker.register = original


_STORES: dict[str, type[TableStore]] = {
    HeapStore.name: HeapStore,
    MmapStore.name: MmapStore,
    SharedMemoryStore.name: SharedMemoryStore,
}


def make_store(name: str, **kwargs: Any) -> TableStore:
    """Instantiate a store by its registry name (``heap``/``mmap``/``shm``)."""
    try:
        cls = _STORES[name]
    except KeyError:
        raise ValueError(
            f"unknown table store {name!r}; available: {sorted(_STORES)}"
        ) from None
    return cls(**kwargs)


def attach_handle(handle: TableHandle | None) -> TableSet | None:
    """Resolve a :class:`TableHandle` in *this* process, or ``None``.

    ``None`` — not an error — means the handle cannot be resolved here
    (a heap handle in a spawn child, a deleted file, an unlinked
    segment); the caller falls back to building its own table, which is
    always correct, only slower.  Corrupt-but-present publications raise
    :class:`TableFormatError` instead of silently degrading.
    """
    if handle is None:
        return None
    cls = _STORES.get(handle.store)
    if cls is None:
        raise TableFormatError(
            f"handle names unknown table store {handle.store!r}"
        )
    return cls.attach(handle)
