"""Bit-packed fast path for uHD: packed hypervectors, LUT encoding, popcount inference.

Why this exists
---------------
uHD's whole pitch (paper contributions ②–⑤) is that ξ-level quantization
collapses HDC encoding into trivial bitwise logic.  The reference software
path gives that advantage back by materializing a ``(batch, H, D)`` boolean
comparison tensor.  This package keeps the arithmetic *results* bit-exact
while doing the work on ``uint64`` words — the software mirror of the
paper's hardware-substitution claim.

The bit-plane identity
----------------------
With intensities and Sobol scalars quantized to codes in ``[0, ξ)``, the
per-dimension popcount of the reference encoder factors over levels:

``counts[j] = Σ_t popcount( pixels_with_code_t  AND  pixels_where_sobol_code[:, j] <= t )``

because ``[v_p >= s_pj] = Σ_t [v_p == t] · [s_pj <= t]``.  Every operand on
the right is known at construction (ξ packed bit-planes of the Sobol codes)
or derivable from the image in ξ cheap packs — no per-pixel/per-dimension
comparison survives to encode time.

Design choice (measured, single core, H=784 / D=1024 / ξ=16 / batch 32)
-----------------------------------------------------------------------
Three bit-exact designs were benched against the reference encoder:

* ξ bit-planes + ``AND`` + ``bitwise_count`` (the identity verbatim):
  ~1.2× — the plane set holds ξ·ceil(H/64) words per dimension, only a 4×
  compression over the byte tensor, and needs three passes over it.
* per-(pixel, level) packed-row LUT gather + carry-save-adder vertical
  popcount: ~6.8× — gather traffic is minimal but the CSA tree re-reads
  its rows ~12× in ufunc-sized passes.
* per-(pixel, level) **nibble-spread** LUT gather + SWAR lane adds
  (:class:`PackedLevelEncoder`): **~10–12×** — rows pre-widened to 4-bit
  lanes so 15 (or 7 pixel-pair) rows fold with plain integer adds, then
  four mask streams widen lanes to uint16.  The pair-keyed table (lazily
  built after :attr:`PackedLevelEncoder.PAIR_PROMOTE_IMAGES` images)
  halves the dominant gather cost.

So the shipped encoder is the LUT-gather alternative the issue allows,
with the identity above retained as documentation of *why* a gather-only
encoder can be bit-exact.  Inference (:mod:`repro.fastpath.inference`)
uses the packed primitives directly: XOR + popcount over packed class HVs.

When ``auto`` picks packed
--------------------------
``UHDConfig(backend="auto")`` resolves per component (see
:mod:`repro.fastpath.execution`, reached through the
:mod:`repro.api` backend registry): encoding goes packed when
``quantized=True`` and ``H <= PackedLevelEncoder.MAX_PIXELS``; inference
goes packed when ``binarize=True`` (the centered-cosine default policy has
no packed form).  ``backend="packed"`` forces and raises where impossible;
``backend="threaded"`` shards the packed kernels over a thread pool
(:mod:`repro.fastpath.threaded`) and stays bit-exact with ``packed``;
``backend="reference"`` always runs the original path.  Packed popcounts
use :func:`numpy.bitwise_count` when NumPy >= 2.0 and fall back to a byte
LUT otherwise (``repro.fastpath.bitops.HAS_BITWISE_COUNT``).
"""

from .backends import (
    BACKENDS,
    encoder_backend,
    make_encoder,
    use_packed_inference,
    validate_backend,
)
from .execution import AutoBackend, PackedBackend, ReferenceBackend
from .bitops import (
    HAS_BITWISE_COUNT,
    pack_bipolar,
    pack_bits,
    packed_dot,
    packed_hamming,
    popcount,
    unpack_bipolar,
    unpack_bits,
)
from .encoder import PackedLevelEncoder
from .tablestore import (
    HeapStore,
    MmapStore,
    SharedMemoryStore,
    TableFormatError,
    TableHandle,
    TableSet,
    TableStore,
    attach_handle,
    make_store,
    read_table_file,
    table_key,
    write_table_file,
)
from .inference import (
    pack_accumulators,
    packed_cosine,
    packed_dot_similarity,
    packed_predict,
)
from .threaded import ThreadedBackend, ThreadedLevelEncoder, threaded_packed_hamming

__all__ = [
    "AutoBackend",
    "BACKENDS",
    "HAS_BITWISE_COUNT",
    "HeapStore",
    "MmapStore",
    "PackedBackend",
    "PackedLevelEncoder",
    "ReferenceBackend",
    "SharedMemoryStore",
    "TableFormatError",
    "TableHandle",
    "TableSet",
    "TableStore",
    "ThreadedBackend",
    "ThreadedLevelEncoder",
    "attach_handle",
    "encoder_backend",
    "make_encoder",
    "make_store",
    "read_table_file",
    "table_key",
    "write_table_file",
    "pack_accumulators",
    "pack_bipolar",
    "pack_bits",
    "packed_cosine",
    "packed_dot",
    "packed_dot_similarity",
    "packed_hamming",
    "packed_predict",
    "popcount",
    "threaded_packed_hamming",
    "unpack_bipolar",
    "unpack_bits",
    "use_packed_inference",
    "validate_backend",
]
