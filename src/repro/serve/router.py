"""Multi-model routing: replica groups and rolling hot reload.

This is the fleet layer above :class:`~repro.serve.server.UHDServer`.
A :class:`Router` owns named :class:`ModelDeployment`\\ s; each
deployment maps a model-id to a **replica group** of N independent
servers (each with its own lanes, worker pool, and published table
store) and provides:

* **least-loaded dispatch** — every request goes to the ready replica
  with the fewest in-flight requests, with transparent failover to a
  sibling if a replica's server has died (the PR-3 crash-respawn story,
  generalized from workers within one server to servers within a group);
* **per-deployment stats aggregation** — counters are summed across
  live replicas *plus* an accumulator carried over from retired
  generations, so a hot reload never resets a deployment's totals;
* **rolling hot reload** — ``reload(model_id, path)`` brings up a fresh
  model *generation* one replica at a time behind the readiness probe
  (start new → ready → shift traffic → drain one old → retire it),
  add-before-remove, so the group never drops below its configured
  ``min_ready`` floor and in-flight requests are never dropped.

Bit-exactness (contract 5 extended): the router only *routes*.  Every
replica warm-starts from the same saved model file, so the labels for a
batch are bit-exact with ``load_model(path).predict(batch)`` no matter
which replica — or which generation started from that file — served it.

Locking: one condition variable per deployment guards replica state and
in-flight counters; servers are never called while holding it.  The
router itself is lock-free apart from a start/close guard — the
deployment map is immutable after construction.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from .histogram import HistogramSnapshot
from .replica import Replica, RoutedHandle
from .types import ServeConfig, ServeError

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

__all__ = ["DeploymentSpec", "ModelDeployment", "Router"]


@dataclass(frozen=True)
class DeploymentSpec:
    """Declarative shape of one model deployment.

    ``min_ready`` is the rolling-reload floor: the replica group never
    intentionally drops below this many ready replicas (reload is
    add-before-remove, so with a healthy group it actually never drops
    below ``replicas``), and ``healthz`` reports unhealthy only when
    the ready count falls under it.
    """

    model_path: str
    replicas: int = 1
    min_ready: int = 1
    serve: ServeConfig = field(default_factory=ServeConfig)

    def __post_init__(self) -> None:
        object.__setattr__(self, "model_path", str(self.model_path))
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if not 1 <= self.min_ready <= self.replicas:
            raise ValueError(
                f"min_ready must be in [1, replicas={self.replicas}], "
                f"got {self.min_ready}"
            )


class ModelDeployment:
    """One model-id's replica group: dispatch, health, and reload.

    Created (and started) by :class:`Router`; all public methods are
    thread-safe.  The generation counter starts at 1 and bumps on every
    successful :meth:`reload`; replica slots are never reused, so
    ``mnist#g2.r3`` names one concrete server for the deployment's whole
    lifetime.
    """

    def __init__(self, model_id: str, spec: DeploymentSpec) -> None:
        self.model_id = model_id
        self.spec = spec
        self.model_path = spec.model_path
        self.generation = 0
        self._replicas: list[Replica] = []
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._next_slot = 0
        self._started = False
        self._closed = False
        self._reloading = False
        self._retired_generations = 0
        self._retired_totals = {
            "requests": 0,
            "images": 0,
            "batches": 0,
            "restarts": 0,
            "expired": 0,
        }
        #: per-lane accumulation carried over from retired generations:
        #: lane name -> {"served", "served_rows", "expired",
        #: "latency": HistogramSnapshot} — merged (fixed shared buckets,
        #: element-wise addition, no bucket loss) so a hot reload never
        #: resets a deployment's latency distributions
        self._retired_lanes: dict[str, dict] = {}

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "ModelDeployment":
        """Bring up the full replica group (generation 1), concurrently."""
        with self._cv:
            if self._started:
                return self
            self._started = True
            self.generation = 1
        fresh = [self._new_replica(1, self.model_path) for _ in range(self.spec.replicas)]
        try:
            self._start_replicas(fresh)
        except ServeError:
            with self._cv:
                self._closed = True
            raise
        with self._cv:
            self._replicas.extend(fresh)
            self._cv.notify_all()
        return self

    def _new_replica(self, generation: int, path: str) -> Replica:
        with self._cv:
            slot = self._next_slot
            self._next_slot += 1
        return Replica(self.model_id, generation, slot, path, self.spec.serve)

    def _start_replicas(self, fresh: list[Replica]) -> None:
        """Start replicas concurrently; on any failure close them all.

        Concurrency matters even on one core: a replica start mostly
        *waits* (worker bootstrap, readiness probes), so starting a group
        in parallel costs roughly one replica's wall-clock, not N.
        """
        errors: dict[str, str] = {}

        def boot(replica: Replica) -> None:
            try:
                replica.start()
            except BaseException as exc:  # noqa: BLE001 - reported below
                replica.error = f"{type(exc).__name__}: {exc}"
                errors[replica.name] = replica.error

        threads = [
            threading.Thread(target=boot, args=(r,), name=f"uhd-boot-{r.name}")
            for r in fresh
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            for replica in fresh:
                try:
                    replica.close(0.0)
                except Exception:
                    pass
            raise ServeError(
                f"deployment {self.model_id!r}: replica start failed: {errors}"
            )
        with self._cv:
            for replica in fresh:
                replica.state = "ready"

    def close(
        self, deadline: float | None = None, drain_timeout: float | None = None
    ) -> None:
        """Drain and retire every replica, concurrently.

        Each replica gets its server's own ``drain_timeout_s`` (or
        ``drain_timeout`` if given), additionally capped by ``deadline``
        (a ``time.monotonic()`` instant) when the router imposes a shared
        one — so closing a group is bounded by the slowest *single*
        replica, never the sum.
        """
        with self._cv:
            if self._closed and not self._replicas:
                return
            self._closed = True
            replicas = list(self._replicas)
            self._cv.notify_all()
        threads = [
            threading.Thread(
                target=self._drain_and_retire,
                args=(r, deadline, drain_timeout),
                name=f"uhd-drain-{r.name}",
            )
            for r in replicas
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    # ------------------------------------------------------------ dispatch
    def _acquire(self) -> Replica:
        with self._cv:
            if self._closed:
                raise ServeError(f"deployment {self.model_id!r} is closed")
            ready = [r for r in self._replicas if r.state == "ready"]
            if not ready:
                raise ServeError(
                    f"no ready replicas for model {self.model_id!r} "
                    f"(generation {self.generation})"
                )
            # least-loaded, slot as a deterministic tie-break
            replica = min(ready, key=lambda r: (r.inflight, r.slot))
            replica.inflight += 1
            return replica

    def _release(self, replica: Replica) -> None:
        with self._cv:
            replica.inflight -= 1
            self._cv.notify_all()  # wake drains waiting on in-flight == 0

    def _mark_failed(self, replica: Replica) -> None:
        """Pull a dead replica out of rotation (its server already failed)."""
        with self._cv:
            if replica.state not in ("ready", "draining"):
                return
            replica.state = "failed"
            self._cv.notify_all()
        try:
            replica.close(0.0)
        except Exception:
            pass

    def submit(
        self,
        images: Any,
        timeout: float | None = None,
        *,
        lane: str | None = None,
        deadline_ms: float | None = None,
    ) -> RoutedHandle:
        """Route one request to the least-loaded ready replica.

        A :class:`ServeError` from a replica whose server turns out to be
        dead marks it failed and retries the next-least-loaded sibling;
        only when every candidate is exhausted does the error propagate.
        ``ValueError`` (bad lane, wrong pixel count) is the caller's bug
        and is never retried.
        """
        with self._cv:
            attempts = max(1, len(self._replicas))
        last_error: ServeError | None = None
        for _ in range(attempts):
            replica = self._acquire()
            try:
                handle = replica.server.submit(
                    images, timeout=timeout, lane=lane, deadline_ms=deadline_ms
                )
            except ServeError as exc:
                self._release(replica)
                last_error = exc
                healthy = False
                try:
                    healthy = bool(replica.server.healthz()["ok"])
                except Exception:
                    healthy = False
                if not healthy:
                    self._mark_failed(replica)
                continue  # backpressure on a healthy replica: try a sibling
            except BaseException:
                self._release(replica)
                raise
            return RoutedHandle(handle, replica, self._release)
        assert last_error is not None
        raise last_error

    def predict(
        self,
        images: Any,
        timeout: float | None = None,
        *,
        lane: str | None = None,
        deadline_ms: float | None = None,
    ) -> "np.ndarray":
        return self.submit(
            images, timeout=timeout, lane=lane, deadline_ms=deadline_ms
        ).result(timeout)

    @property
    def num_pixels(self) -> int | None:
        """Pixel geometry of the currently served model (for raw decode)."""
        with self._cv:
            replicas = list(self._replicas)
        for replica in replicas:
            pixels = replica.server.num_pixels
            if pixels:
                return pixels
        return None

    # ------------------------------------------------------------ reload
    def reload(self, model_path: str | None = None) -> dict:
        """Rolling hot reload: swap in a fresh generation, add-before-remove.

        For each of ``spec.replicas`` slots: start one replica of the new
        generation from ``model_path`` (current path if ``None``), wait
        for its readiness probe, put it in rotation, then drain and
        retire one old-generation replica.  Ready count therefore stays
        at or above target throughout — never near the ``min_ready``
        floor unless replicas had already failed.  If a new replica fails
        to start, the rollout aborts with the old generation still
        serving (replicas already swapped in stay).
        """
        t0 = time.monotonic()
        with self._cv:
            if self._closed:
                raise ServeError(f"deployment {self.model_id!r} is closed")
            if not self._started:
                raise ServeError(f"deployment {self.model_id!r} was never started")
            if self._reloading:
                raise ServeError(
                    f"reload already in progress for {self.model_id!r}"
                )
            self._reloading = True
            from_generation = self.generation
            new_generation = self.generation + 1
        path = self.model_path if model_path is None else str(model_path)
        replaced = 0
        try:
            for _ in range(self.spec.replicas):
                fresh = self._new_replica(new_generation, path)
                self._start_replicas([fresh])  # raises -> abort, old gen serves on
                with self._cv:
                    self._replicas.append(fresh)
                    self._cv.notify_all()
                victim = self._pick_old_replica(new_generation)
                if victim is not None:
                    self._drain_and_retire(victim)
                    replaced += 1
            # sweep any stragglers (failed replicas don't get picked above)
            while True:
                leftover = None
                with self._cv:
                    for replica in self._replicas:
                        if replica.generation < new_generation:
                            leftover = replica
                            break
                if leftover is None:
                    break
                self._drain_and_retire(leftover)
            with self._cv:
                self.generation = new_generation
                self.model_path = path
        finally:
            with self._cv:
                self._reloading = False
                self._cv.notify_all()
        return {
            "model": self.model_id,
            "path": path,
            "from_generation": from_generation,
            "to_generation": new_generation,
            "replaced": replaced,
            "duration_s": time.monotonic() - t0,
        }

    def _pick_old_replica(self, new_generation: int) -> Replica | None:
        with self._cv:
            old = [
                r
                for r in self._replicas
                if r.generation < new_generation and r.state == "ready"
            ]
            if not old:
                return None
            # retire oldest generation first, busiest slot last
            return min(old, key=lambda r: (r.generation, r.inflight, r.slot))

    def _drain_and_retire(
        self,
        replica: Replica,
        deadline: float | None = None,
        drain_timeout: float | None = None,
    ) -> None:
        """Stop routing to ``replica``, wait out in-flight work, close it.

        Draining first (state change) and only then closing is what makes
        reloads zero-drop: a dispatcher that acquired this replica while
        it was still ready holds an in-flight slot, and we wait for all
        slots to clear before ``server.close`` — so no request ever hits
        a closed server.  The wait is bounded by the replica's own
        ``drain_timeout_s`` (and the shared ``deadline``, if any).
        """
        window = (
            replica.server.config.drain_timeout_s
            if drain_timeout is None
            else drain_timeout
        )
        drain_deadline = time.monotonic() + max(0.0, window)
        if deadline is not None:
            drain_deadline = min(drain_deadline, deadline)
        with self._cv:
            if replica.state in ("retired",):
                return
            if replica.state not in ("failed",):
                replica.state = "draining"
            self._cv.notify_all()
            while replica.inflight > 0:
                remaining = drain_deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cv.wait(min(0.05, remaining))
        # close outside the lock; the server drains its own queues too
        try:
            replica.close(max(0.0, drain_deadline - time.monotonic()))
        except Exception:
            pass
        with self._cv:
            stats = replica.server.stats()
            self._retired_totals["requests"] += stats.requests
            self._retired_totals["images"] += stats.images
            self._retired_totals["batches"] += stats.batches
            self._retired_totals["restarts"] += stats.restarts
            self._retired_totals["expired"] += stats.expired
            for lane in stats.lanes:
                acc = self._retired_lanes.setdefault(
                    lane.name,
                    {
                        "served": 0,
                        "served_rows": 0,
                        "expired": 0,
                        "latency": HistogramSnapshot.empty(),
                    },
                )
                acc["served"] += lane.served
                acc["served_rows"] += lane.served_rows
                acc["expired"] += lane.expired
                acc["latency"] = HistogramSnapshot.merge(
                    (acc["latency"], lane.latency)
                )
            self._retired_generations += 1
            replica.state = "retired"
            if replica in self._replicas:
                self._replicas.remove(replica)
            self._cv.notify_all()

    # ------------------------------------------------------------ health/stats
    def healthz(self) -> dict:
        """Deployment readiness with explicit ``degraded`` semantics.

        ``ok`` while at least ``min_ready`` replicas are ready — a
        deployment mid-reload therefore stays healthy.  ``degraded`` is
        ``True`` when serving below the target replica count but at or
        above the floor (e.g. a failed replica awaiting the next reload).
        """
        with self._cv:
            states = {name: 0 for name in ("starting", "ready", "draining", "failed")}
            for replica in self._replicas:
                if replica.state in states:
                    states[replica.state] += 1
            ready = states["ready"]
            ok = self._started and not self._closed and ready >= self.spec.min_ready
            degraded = bool(ok and ready < self.spec.replicas)
            status = "ok" if ok else "unavailable"
            if degraded:
                status = "degraded"
            return {
                "model": self.model_id,
                "ok": bool(ok),
                "status": status,
                "degraded": degraded,
                "generation": self.generation,
                "target_replicas": self.spec.replicas,
                "min_ready": self.spec.min_ready,
                "ready_replicas": ready,
                "starting": states["starting"],
                "draining": states["draining"],
                "failed": states["failed"],
                "reloading": self._reloading,
            }

    def stats(self) -> dict:
        """Aggregated counters (live replicas + retired generations).

        ``lanes`` carries one row per lane name with the latency
        histogram **merged across every live replica and every retired
        generation** — fixed shared buckets make the merge an
        element-wise sum, so the merged count always equals the sum of
        the per-generation counts (no bucket loss) and quantiles stay
        consistent across hot reloads.
        """
        with self._cv:
            replicas = list(self._replicas)
            totals = dict(self._retired_totals)
            retired_generations = self._retired_generations
            generation = self.generation
            path = self.model_path
            lane_acc: dict[str, dict] = {
                name: {
                    "served": acc["served"],
                    "served_rows": acc["served_rows"],
                    "expired": acc["expired"],
                    "latency": acc["latency"],
                }
                for name, acc in self._retired_lanes.items()
            }
        rows = []
        for replica in replicas:
            server_stats = replica.server.stats()
            rows.append(replica.summary(server_stats))
            for lane in server_stats.lanes:
                acc = lane_acc.setdefault(
                    lane.name,
                    {
                        "served": 0,
                        "served_rows": 0,
                        "expired": 0,
                        "latency": HistogramSnapshot.empty(),
                    },
                )
                acc["served"] += lane.served
                acc["served_rows"] += lane.served_rows
                acc["expired"] += lane.expired
                acc["latency"] = HistogramSnapshot.merge(
                    (acc["latency"], lane.latency)
                )
        for row in rows:
            for key in ("requests", "images", "batches", "restarts", "expired"):
                totals[key] += row[key]
        lanes = [
            {
                "name": name,
                "served": acc["served"],
                "served_rows": acc["served_rows"],
                "expired": acc["expired"],
                "latency": acc["latency"].as_dict(),
            }
            for name, acc in lane_acc.items()
        ]
        return {
            "model": self.model_id,
            "path": path,
            "generation": generation,
            "target_replicas": self.spec.replicas,
            "ready_replicas": sum(1 for r in rows if r["state"] == "ready"),
            "retired_replicas": retired_generations,
            **totals,
            "lanes": lanes,
            "replicas": rows,
        }

    def lane_snapshots(self) -> dict[str, HistogramSnapshot]:
        """Merged per-lane latency snapshots (live + retired), un-serialized.

        The ``/metrics`` renderer and the CLI drain summary want the
        actual :class:`~repro.serve.histogram.HistogramSnapshot` objects
        (for bucket lines and quantile math), not the JSON view
        :meth:`stats` emits.
        """
        with self._cv:
            replicas = list(self._replicas)
            merged: dict[str, list[HistogramSnapshot]] = {
                name: [acc["latency"]]
                for name, acc in self._retired_lanes.items()
            }
        for replica in replicas:
            for lane in replica.server.stats().lanes:
                merged.setdefault(lane.name, []).append(lane.latency)
        return {
            name: HistogramSnapshot.merge(snaps)
            for name, snaps in merged.items()
        }

    def listing(self) -> dict:
        """Compact row for ``GET /models``."""
        health = self.healthz()
        return {
            "model": self.model_id,
            "path": self.model_path,
            "generation": health["generation"],
            "status": health["status"],
            "replicas": health["target_replicas"],
            "ready": health["ready_replicas"],
            "min_ready": health["min_ready"],
            "reloading": health["reloading"],
        }


class Router:
    """Front door for a model zoo: named deployments, one dispatch API.

    ``deployments`` maps model-id -> :class:`DeploymentSpec` (a bare
    path string is shorthand for a single-replica spec).  Ids become URL
    path segments (``/models/<id>/predict``), so they must be non-empty
    and slash-free.  The deployment map is fixed at construction; what
    *changes* at runtime is each deployment's model generation, via
    :meth:`reload`.
    """

    def __init__(
        self, deployments: Mapping[str, "DeploymentSpec | str"]
    ) -> None:
        if not deployments:
            raise ValueError("Router needs at least one deployment")
        self._deployments: dict[str, ModelDeployment] = {}
        for model_id, spec in deployments.items():
            if not model_id or "/" in model_id:
                raise ValueError(
                    f"model id must be non-empty and slash-free, got {model_id!r}"
                )
            if not isinstance(spec, DeploymentSpec):
                spec = DeploymentSpec(model_path=str(spec))
            self._deployments[model_id] = ModelDeployment(model_id, spec)
        self._started = False
        self._closed = False
        self._lock = threading.Lock()
        #: wire counters of transports fronting this router (attach_transport)
        self._transports: list[Any] = []

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "Router":
        """Start every deployment (their replica groups boot concurrently)."""
        with self._lock:
            if self._started:
                return self
            if self._closed:
                raise ServeError("router is closed")
            self._started = True
        errors: dict[str, str] = {}

        def boot(deployment: ModelDeployment) -> None:
            try:
                deployment.start()
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors[deployment.model_id] = f"{type(exc).__name__}: {exc}"

        threads = [
            threading.Thread(target=boot, args=(d,), name=f"uhd-deploy-{d.model_id}")
            for d in self._deployments.values()
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            self.close(drain_timeout=0.0)
            raise ServeError(f"router start failed: {errors}")
        return self

    def close(self, drain_timeout: float | None = None) -> None:
        """Drain every deployment **concurrently** under a shared deadline.

        The deadline is ``now + max`` over the deployments' own
        ``drain_timeout_s`` (or the explicit ``drain_timeout``), so total
        shutdown is bounded by the slowest single deployment — not the
        sum of all drain windows (satellite: concurrent shutdown).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        deployments = list(self._deployments.values())
        if drain_timeout is None:
            window = max(
                (d.spec.serve.drain_timeout_s for d in deployments), default=0.0
            )
        else:
            window = drain_timeout
        deadline = time.monotonic() + max(0.0, window)
        threads = [
            threading.Thread(
                target=d.close,
                args=(deadline, drain_timeout),
                name=f"uhd-close-{d.model_id}",
            )
            for d in deployments
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def __enter__(self) -> "Router":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------ dispatch
    @property
    def deployments(self) -> Mapping[str, ModelDeployment]:
        """Read-only view of the deployment map (insertion-ordered)."""
        return dict(self._deployments)

    @property
    def default_model(self) -> str:
        """First declared model-id; serves bare ``/predict`` for one-model routers."""
        return next(iter(self._deployments))

    def deployment(self, model_id: str) -> ModelDeployment:
        try:
            return self._deployments[model_id]
        except KeyError:
            known = ", ".join(sorted(self._deployments))
            raise ValueError(
                f"unknown model {model_id!r} (serving: {known})"
            ) from None

    def submit(
        self,
        model_id: str,
        images: Any,
        timeout: float | None = None,
        *,
        lane: str | None = None,
        deadline_ms: float | None = None,
    ) -> RoutedHandle:
        return self.deployment(model_id).submit(
            images, timeout=timeout, lane=lane, deadline_ms=deadline_ms
        )

    def predict(
        self,
        model_id: str,
        images: Any,
        timeout: float | None = None,
        *,
        lane: str | None = None,
        deadline_ms: float | None = None,
    ) -> "np.ndarray":
        return self.deployment(model_id).predict(
            images, timeout=timeout, lane=lane, deadline_ms=deadline_ms
        )

    def reload(self, model_id: str, model_path: str | None = None) -> dict:
        """Rolling hot reload of one deployment (see ``ModelDeployment.reload``)."""
        return self.deployment(model_id).reload(model_path)

    # ------------------------------------------------------------ health/stats
    def models(self) -> list[dict]:
        """Listing rows for every deployment (``GET /models``)."""
        return [d.listing() for d in self._deployments.values()]

    def healthz(self) -> dict:
        """Router readiness: healthy iff every deployment is at ``min_ready``."""
        deployments = [d.healthz() for d in self._deployments.values()]
        with self._lock:
            alive = self._started and not self._closed
        ok = alive and all(d["ok"] for d in deployments)
        degraded = ok and any(d["degraded"] for d in deployments)
        status = "ok" if ok else "unavailable"
        if degraded:
            status = "degraded"
        return {
            "ok": bool(ok),
            "status": status,
            "degraded": bool(degraded),
            "deployments": len(deployments),
            "ready_replicas": sum(d["ready_replicas"] for d in deployments),
            "models": deployments,
        }

    def attach_transport(self, stats: Any) -> None:
        """Register a fronting transport's wire counters (same as UHDServer)."""
        with self._lock:
            if all(existing is not stats for existing in self._transports):
                self._transports.append(stats)

    def transport_stats(self) -> tuple:
        """Per-kind merged wire counters of every attached transport."""
        from .transport import TransportSnapshot

        with self._lock:
            transports = list(self._transports)
        return TransportSnapshot.merged(t.snapshot() for t in transports)

    def stats(self) -> dict:
        """Aggregated stats for every deployment (``GET /stats``)."""
        return {
            "models": [d.stats() for d in self._deployments.values()],
            "transports": [
                asdict(snap) for snap in self.transport_stats()
            ],
        }
