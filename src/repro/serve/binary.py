"""Binary fast lane: a framed socket transport with zero-copy intake.

``serve_http`` pays ~58x over in-process submit on a 1-core box, and
almost none of it is inference: JSON encode/parse of pixel arrays plus
thread-per-connection HTTP handling dominate.  This module is the cure
the ROADMAP calls for — requests stay **binary from socket to kernel**:

* :class:`SocketTransport` — a stdlib-only server front-end speaking a
  versioned length-prefixed frame protocol over **persistent
  connections multiplexed by a single** :mod:`selectors` **event loop**.
  No thread-per-connection, no JSON on the hot path.  A frame's pixel
  payload is received into a dedicated buffer and handed to
  ``server.submit`` as a ``np.frombuffer`` **view** — the bytes are
  materialized exactly once between the socket and the lane-batch
  boundary (where parts are concatenated into a dispatch batch).
  Responses are enqueued by :meth:`PredictionHandle.add_done_callback`,
  so no thread ever parks on ``result()``.
* :class:`BinaryClient` — the matching synchronous client: persistent
  connection, optional pipelining (``send`` many, ``recv`` matching by
  request id), used by the CLI self-test and
  ``benchmarks/loadgen.py --transport binary``.
* A tiny codec (:func:`encode_frame` / :func:`decode_frame` /
  :class:`Frame`) shared by both ends and by the tests' fuzzers.

Frame layout (little-endian, 36-byte fixed header)
--------------------------------------------------
======  =====  =========================================================
offset  bytes  field
======  =====  =========================================================
0       4      magic ``b"uHD1"`` (protocol + version in one)
4       1      frame type (1=PREDICT 2=LABELS 3=ERROR 4=EXPIRED)
5       1      error code (ERROR frames; 0 otherwise)
6       2      lane id length L (utf-8 bytes that follow the header)
8       2      model id length M (utf-8 bytes after the lane id)
10      2      reserved (must be 0)
12      8      request id (client-assigned, echoed in the response)
20      8      deadline_ms (float64; 0 = no deadline)
28      4      row count
32      4      payload length P
36      L+M+P  lane id, model id, payload
======  =====  =========================================================

Payloads: PREDICT carries ``rows x num_pixels`` raw uint8 pixels;
LABELS carries ``rows`` little-endian int64 labels; ERROR/EXPIRED carry
a utf-8 message.  Error taxonomy mirrors HTTP exactly: a *framing*
violation (bad magic, oversized declaration, non-PREDICT type) gets an
ERROR frame with code 1 and the connection closed (the stream cannot be
resynced); a *semantic* error on an intact frame (unknown lane, wrong
pixel count, empty request) gets an ERROR frame and the connection
stays usable; a request whose deadline passes while queued gets an
EXPIRED frame (the 504 equivalent — the lane's ``expired`` counter and
``latency.excluded`` move exactly as over HTTP, because it is the same
scheduler); a draining or failed server answers code 2 (the 503).

Labels served over this wire are **bit-exact** with in-process
``submit`` and direct ``predict`` — the transport only moves bytes;
bit-exactness contract 5 in ``docs/ARCHITECTURE.md`` extends to it.
"""

from __future__ import annotations

import itertools
import selectors
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from .transport import TransportStats
from .types import DeadlineExpiredError, PredictionHandle, ServeError

if TYPE_CHECKING:  # pragma: no cover
    from .server import UHDServer

__all__ = [
    "MAGIC",
    "HEADER_SIZE",
    "FRAME_PREDICT",
    "FRAME_LABELS",
    "FRAME_ERROR",
    "FRAME_EXPIRED",
    "ERR_MALFORMED",
    "ERR_UNAVAILABLE",
    "ERR_UNKNOWN_MODEL",
    "ERR_INTERNAL",
    "Frame",
    "FrameError",
    "encode_frame",
    "decode_frame",
    "SocketTransport",
    "BinaryClient",
]

MAGIC = b"uHD1"  #: protocol magic + version in one; bump the digit to rev

#: fixed header: magic, type, code, lane_len, model_len, reserved,
#: request_id, deadline_ms, rows, payload_len
_HEADER = struct.Struct("<4sBBHHHQdII")
HEADER_SIZE = _HEADER.size  # 36

FRAME_PREDICT = 1  #: client -> server: rows x pixels raw uint8
FRAME_LABELS = 2  #: server -> client: rows little-endian int64 labels
FRAME_ERROR = 3  #: server -> client: error code + utf-8 message
FRAME_EXPIRED = 4  #: server -> client: deadline passed while queued (504)

ERR_MALFORMED = 1  #: unparseable/invalid request (HTTP 400)
ERR_UNAVAILABLE = 2  #: server closed, draining, or failed (HTTP 503)
ERR_UNKNOWN_MODEL = 3  #: router mode: no such model id (HTTP 404)
ERR_INTERNAL = 4  #: unexpected server-side failure (HTTP 500)

_FRAME_TYPES = (FRAME_PREDICT, FRAME_LABELS, FRAME_ERROR, FRAME_EXPIRED)

#: hard cap on lane/model id bytes — anything longer is an attack or a bug
MAX_ID_BYTES = 1024
#: default cap on a single frame's payload (64 MiB ~ 85k MNIST rows)
DEFAULT_MAX_PAYLOAD = 64 * 1024 * 1024


class FrameError(ValueError):
    """A frame violates the protocol (bad magic, bounds, or structure)."""


@dataclass(frozen=True)
class Frame:
    """One decoded frame (codec-level view; payload is not interpreted)."""

    frame_type: int
    code: int = 0
    lane: str = ""
    model: str = ""
    request_id: int = 0
    deadline_ms: float = 0.0
    rows: int = 0
    payload: bytes = b""


def encode_frame(
    frame_type: int,
    *,
    code: int = 0,
    lane: str = "",
    model: str = "",
    request_id: int = 0,
    deadline_ms: float = 0.0,
    rows: int = 0,
    payload: "bytes | bytearray | memoryview" = b"",
) -> bytes:
    """Serialize one frame; the inverse of :func:`decode_frame`."""
    if frame_type not in _FRAME_TYPES:
        raise FrameError(f"unknown frame type {frame_type}")
    lane_bytes = lane.encode("utf-8")
    model_bytes = model.encode("utf-8")
    if len(lane_bytes) > MAX_ID_BYTES or len(model_bytes) > MAX_ID_BYTES:
        raise FrameError(
            f"lane/model ids are capped at {MAX_ID_BYTES} utf-8 bytes"
        )
    header = _HEADER.pack(
        MAGIC,
        frame_type,
        code,
        len(lane_bytes),
        len(model_bytes),
        0,
        request_id,
        deadline_ms,
        rows,
        len(payload),
    )
    return b"".join((header, lane_bytes, model_bytes, bytes(payload)))


def _parse_header(
    header: "bytes | bytearray", max_payload: int = DEFAULT_MAX_PAYLOAD
) -> tuple:
    """Validate + unpack a 36-byte header; raises :class:`FrameError`."""
    (
        magic,
        frame_type,
        code,
        lane_len,
        model_len,
        reserved,
        request_id,
        deadline_ms,
        rows,
        payload_len,
    ) = _HEADER.unpack(bytes(header))
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if frame_type not in _FRAME_TYPES:
        raise FrameError(f"unknown frame type {frame_type}")
    if reserved != 0:
        raise FrameError(f"reserved field must be 0, got {reserved}")
    if lane_len > MAX_ID_BYTES or model_len > MAX_ID_BYTES:
        raise FrameError(
            f"lane/model id length {max(lane_len, model_len)} exceeds "
            f"the {MAX_ID_BYTES}-byte cap"
        )
    if payload_len > max_payload:
        raise FrameError(
            f"declared payload of {payload_len} bytes exceeds the "
            f"{max_payload}-byte cap"
        )
    return (
        frame_type,
        code,
        lane_len,
        model_len,
        request_id,
        deadline_ms,
        rows,
        payload_len,
    )


def decode_frame(
    data: "bytes | bytearray | memoryview",
    max_payload: int = DEFAULT_MAX_PAYLOAD,
) -> "tuple[Frame, int] | None":
    """Decode one frame from the head of ``data``.

    Returns ``(frame, bytes_consumed)``, or ``None`` when ``data`` does
    not yet hold a complete frame (stream still arriving).  Raises
    :class:`FrameError` when the head can never become a valid frame.
    """
    data = memoryview(data)
    if len(data) < HEADER_SIZE:
        return None
    (
        frame_type,
        code,
        lane_len,
        model_len,
        request_id,
        deadline_ms,
        rows,
        payload_len,
    ) = _parse_header(bytes(data[:HEADER_SIZE]), max_payload)
    total = HEADER_SIZE + lane_len + model_len + payload_len
    if len(data) < total:
        return None
    offset = HEADER_SIZE
    try:
        lane = bytes(data[offset:offset + lane_len]).decode("utf-8")
        model = bytes(
            data[offset + lane_len:offset + lane_len + model_len]
        ).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FrameError(f"lane/model id is not valid utf-8: {exc}") from None
    payload = bytes(data[offset + lane_len + model_len:total])
    frame = Frame(
        frame_type=frame_type,
        code=code,
        lane=lane,
        model=model,
        request_id=request_id,
        deadline_ms=deadline_ms,
        rows=rows,
        payload=payload,
    )
    return frame, total


# ----------------------------------------------------------------- server


class _Connection:
    """One client connection's receive state machine and send queue.

    Reads are *exactly bounded*: 36 header bytes, then the declared
    lane/model bytes, then ``recv_into`` a payload buffer allocated at
    the declared size — so a complete frame's pixels sit in one dedicated
    ``bytearray`` that ``np.frombuffer`` can view without copying, and a
    slow client that dribbles a frame across many packets reassembles
    correctly (``tests/serve/test_binary.py`` drips one byte at a time).
    """

    __slots__ = (
        "transport", "sock", "closed", "closing", "inflight",
        "_state", "_got", "_header", "_meta", "_payload", "_discard",
        "_frame_type", "_code", "_lane_len", "_model_len",
        "_request_id", "_deadline_ms", "_rows", "_payload_len",
        "_lane", "_model", "_out", "_out_lock",
    )

    def __init__(self, transport: "SocketTransport", sock: socket.socket):
        self.transport = transport
        self.sock = sock
        self.closed = False
        self.closing = False  # flush the send queue, then close
        self.inflight = 0  # accepted predicts whose response is pending
        self._header = bytearray(HEADER_SIZE)
        self._meta = b""
        self._payload = bytearray(0)
        self._out: deque = deque()
        self._out_lock = threading.Lock()
        self._reset_recv()

    def _reset_recv(self) -> None:
        self._state = "header"
        self._got = 0
        self._lane = ""
        self._model = ""
        self._discard = False

    # ------------------------------------------------------------ reading
    def handle_read(self) -> None:
        while not self.closed and not self.closing:
            if self._state == "header":
                buf, size = self._header, HEADER_SIZE
            elif self._state == "meta":
                buf, size = self._meta, self._lane_len + self._model_len
            else:
                buf, size = self._payload, self._payload_len
            if size == 0:
                n = 0
            else:
                try:
                    n = self.sock.recv_into(memoryview(buf)[self._got:])
                except (BlockingIOError, InterruptedError):
                    return
                except OSError:
                    self.transport._close_connection(self)
                    return
                if n == 0:  # peer closed
                    self.transport._close_connection(self)
                    return
            self._got += n
            if self._got < size:
                return
            if self._state == "header":
                if not self._parse_frame_header():
                    return
            elif self._state == "meta":
                if not self._parse_meta():
                    return
            else:
                self._dispatch()

    def _parse_frame_header(self) -> bool:
        try:
            (
                self._frame_type,
                self._code,
                self._lane_len,
                self._model_len,
                self._request_id,
                self._deadline_ms,
                self._rows,
                self._payload_len,
            ) = _parse_header(self._header, self.transport.max_payload_bytes)
            if self._frame_type != FRAME_PREDICT:
                raise FrameError(
                    f"server accepts only PREDICT frames, got type "
                    f"{self._frame_type}"
                )
        except (FrameError, struct.error) as exc:
            # the stream cannot be resynced past a bad header: error out
            # and close once the reply has flushed
            self.transport.stats.malformed_frame()
            self._send_error(ERR_MALFORMED, str(exc), close=True)
            return False
        meta_len = self._lane_len + self._model_len
        self._meta = bytearray(meta_len)
        self._state = "meta"
        self._got = 0
        if meta_len == 0:
            return self._parse_meta()
        return True

    def _parse_meta(self) -> bool:
        try:
            self._lane = bytes(self._meta[: self._lane_len]).decode("utf-8")
            self._model = bytes(self._meta[self._lane_len:]).decode("utf-8")
        except UnicodeDecodeError as exc:
            # lengths were consistent, so the stream stays in sync —
            # reject the request but keep the connection (the declared
            # payload must still be drained off the socket, unprocessed)
            self.transport.stats.malformed_frame()
            self._send_error(ERR_MALFORMED, f"id is not valid utf-8: {exc}")
            self._discard = True
        # a fresh buffer per frame: the previous frame's payload may still
        # be referenced by an np.frombuffer view queued in the scheduler
        self._payload = bytearray(self._payload_len)
        self._state = "payload"
        self._got = 0
        if self._payload_len == 0:
            self._dispatch()
        return True

    # --------------------------------------------------------- dispatching
    def _dispatch(self) -> None:
        transport = self.transport
        transport.stats.frame_in(
            HEADER_SIZE + len(self._meta) + self._payload_len
        )
        request_id = self._request_id
        rows, payload = self._rows, self._payload
        lane = self._lane or None
        model = self._model or None
        deadline_ms = self._deadline_ms if self._deadline_ms > 0 else None
        discard = self._discard
        self._reset_recv()
        if discard:
            return  # meta was rejected; the error frame is already queued
        if transport._draining:
            self._send_error(
                ERR_UNAVAILABLE, "server is draining", request_id=request_id
            )
            return
        try:
            submit, num_pixels = transport._resolve_target(model)
        except LookupError as exc:
            self._send_error(
                ERR_UNKNOWN_MODEL, str(exc), request_id=request_id
            )
            return
        if num_pixels is None or num_pixels <= 0:
            self._send_error(
                ERR_UNAVAILABLE, "server has no pixel geometry yet",
                request_id=request_id,
            )
            return
        if rows == 0 or len(payload) != rows * num_pixels:
            self._send_error(
                ERR_MALFORMED,
                f"payload of {len(payload)} bytes does not match "
                f"rows={rows} x {num_pixels} pixels (empty requests are "
                "rejected)",
                request_id=request_id,
            )
            return
        # zero-copy: a view over this frame's dedicated receive buffer.
        # as_image_batch passes correct (rows, pixels) uint8 arrays
        # through untouched, so the pixels are next copied only at the
        # lane-batch boundary (_Batch.images() concatenation).
        images = np.frombuffer(payload, dtype=np.uint8).reshape(
            rows, num_pixels
        )
        try:
            handle = submit(
                images,
                timeout=transport.request_timeout_s,
                lane=lane,
                deadline_ms=deadline_ms,
            )
        except ValueError as exc:  # unknown lane, bad deadline
            self._send_error(ERR_MALFORMED, str(exc), request_id=request_id)
            return
        except TimeoutError as exc:  # backpressure window exhausted
            self._send_error(ERR_UNAVAILABLE, str(exc), request_id=request_id)
            return
        except ServeError as exc:  # closed / failed
            self._send_error(ERR_UNAVAILABLE, str(exc), request_id=request_id)
            return
        with self._out_lock:
            self.inflight += 1
        handle.add_done_callback(
            lambda h, rid=request_id: self._on_done(rid, h)
        )

    def _on_done(self, request_id: int, handle: PredictionHandle) -> None:
        """Completion callback — encode the response; never block."""
        try:
            labels = handle.result(timeout=0)
        except DeadlineExpiredError as exc:
            frame = encode_frame(
                FRAME_EXPIRED,
                request_id=request_id,
                payload=str(exc).encode("utf-8"),
            )
        except ValueError as exc:
            frame = encode_frame(
                FRAME_ERROR, code=ERR_MALFORMED, request_id=request_id,
                payload=str(exc).encode("utf-8"),
            )
        except ServeError as exc:
            frame = encode_frame(
                FRAME_ERROR, code=ERR_UNAVAILABLE, request_id=request_id,
                payload=str(exc).encode("utf-8"),
            )
        except BaseException as exc:  # pragma: no cover - defensive
            frame = encode_frame(
                FRAME_ERROR, code=ERR_INTERNAL, request_id=request_id,
                payload=str(exc).encode("utf-8"),
            )
        else:
            frame = encode_frame(
                FRAME_LABELS,
                request_id=request_id,
                rows=int(labels.shape[0]),
                payload=labels.astype("<i8", copy=False).tobytes(),
            )
        self._enqueue(frame, finished=True)

    # ------------------------------------------------------------ writing
    def _send_error(
        self,
        code: int,
        message: str,
        *,
        request_id: int | None = None,
        close: bool = False,
    ) -> None:
        if request_id is None:
            request_id = getattr(self, "_request_id", 0)
        self._enqueue(
            encode_frame(
                FRAME_ERROR, code=code, request_id=request_id,
                payload=message.encode("utf-8"),
            )
        )
        if close:
            self.closing = True

    def _enqueue(self, frame: bytes, finished: bool = False) -> None:
        """Queue encoded bytes for the event loop to flush (any thread)."""
        with self._out_lock:
            if finished:
                self.inflight -= 1
            if self.closed:
                return
            self._out.append(memoryview(frame))
        self.transport.stats.frame_out(len(frame))
        self.transport._request_flush(self)

    def has_output(self) -> bool:
        with self._out_lock:
            return bool(self._out)

    def idle(self) -> bool:
        """No response pending and nothing left to flush (drain check)."""
        with self._out_lock:
            return self.inflight == 0 and not self._out

    def handle_write(self) -> None:
        while True:
            with self._out_lock:
                if not self._out:
                    break
                head = self._out[0]
            try:
                n = self.sock.send(head)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self.transport._close_connection(self)
                return
            with self._out_lock:
                if n == len(head):
                    self._out.popleft()
                else:
                    self._out[0] = head[n:]
                    return
        # queue flushed: drop write interest (and close if asked to)
        self.transport._request_flush(self)
        if self.closing:
            self.transport._close_connection(self)


class SocketTransport:
    """Framed binary front-end over a :class:`UHDServer` or ``Router``.

    One daemon thread runs a :mod:`selectors` event loop multiplexing
    the listener and every client connection; predictions complete via
    :meth:`PredictionHandle.add_done_callback`, so the loop never blocks
    on a result.  ``port=0`` binds an ephemeral port (read
    :attr:`port` / :attr:`address` after :meth:`start`).  Like
    :class:`HttpTransport` the transport *borrows* the server: ``close``
    drains in-flight responses (bounded by ``drain_timeout_s``) and
    stops the loop, but never closes the server.

    Backpressure: a full lane blocks ``submit`` on the loop thread (the
    scheduler's usual contract, bounded by ``request_timeout_s``), which
    pauses intake for *every* connection — the binary wire applies
    server-wide backpressure instead of buffering unbounded requests.

    Passing a :class:`~repro.serve.router.Router` enables multi-model
    dispatch: a frame's model id selects the deployment (empty id =
    default model), unknown ids answer ``ERR_UNKNOWN_MODEL``.
    """

    def __init__(
        self,
        server: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout_s: float = 30.0,
        max_payload_bytes: int = DEFAULT_MAX_PAYLOAD,
        drain_timeout_s: float = 5.0,
    ) -> None:
        if request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be > 0, got {request_timeout_s}"
            )
        if max_payload_bytes < 1:
            raise ValueError(
                f"max_payload_bytes must be >= 1, got {max_payload_bytes}"
            )
        self._server = server
        self._host = host
        self._requested_port = port
        self.request_timeout_s = request_timeout_s
        self.max_payload_bytes = max_payload_bytes
        self.drain_timeout_s = drain_timeout_s
        self._is_router = hasattr(server, "deployment") and hasattr(
            server, "models"
        )
        self.stats = TransportStats("binary")
        self._attached = False
        self._listener: socket.socket | None = None
        self._selector: selectors.BaseSelector | None = None
        self._thread: threading.Thread | None = None
        self._wake_r: socket.socket | None = None
        self._wake_w: socket.socket | None = None
        self._lock = threading.Lock()
        self._conns: set[_Connection] = set()
        self._flush_pending: set[_Connection] = set()
        self._shutdown = False
        self._draining = False

    # ----------------------------------------------------------- lifecycle
    def start(self) -> "SocketTransport":
        """Bind, start the event loop thread, begin accepting frames."""
        if self._thread is not None:
            return self
        if not self._attached:
            attach = getattr(self._server, "attach_transport", None)
            if attach is not None:
                attach(self.stats)
            self._attached = True
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._requested_port))
        listener.listen(128)
        listener.setblocking(False)
        self._listener = listener
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ, "listener")
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        self._shutdown = False
        self._draining = False
        self._thread = threading.Thread(
            target=self._run, name="uhd-binary-transport", daemon=True
        )
        self._thread.start()
        return self

    @property
    def host(self) -> str:
        """The interface this transport binds."""
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._listener is None:
            return self._requested_port
        return self._listener.getsockname()[1]

    @property
    def address(self) -> str:
        return f"uhd://{self._host}:{self.port}"

    def close(self) -> None:
        """Stop accepting, drain pending responses, stop the loop.

        Responses already owed to clients are flushed (bounded by
        ``drain_timeout_s``); predict frames that arrive *during* the
        drain are refused with ``ERR_UNAVAILABLE`` — same contract as
        the HTTP transport's answered-before-torn-down shutdown.
        """
        if self._thread is None:
            return
        with self._lock:
            self._shutdown = True
        self._wake()
        self._thread.join(timeout=self.drain_timeout_s + 10.0)
        self._thread = None
        self._listener = None

    def __enter__(self) -> "SocketTransport":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ----------------------------------------------------------- internals
    def _resolve_target(self, model: "str | None"):
        """(submit, num_pixels) for a frame's model id; LookupError on miss."""
        if not self._is_router:
            if model is not None:
                raise LookupError(
                    f"this server routes no models; drop the model id "
                    f"{model!r} (same contract as HTTP /models/... paths "
                    "404ing in single-server mode)"
                )
            return self._server.submit, self._server.num_pixels
        model_id = model if model is not None else self._server.default_model
        try:
            deployment = self._server.deployment(model_id)
        except ValueError as exc:
            raise LookupError(str(exc)) from None
        return deployment.submit, deployment.num_pixels

    def _wake(self) -> None:
        wake = self._wake_w
        if wake is None:
            return
        try:
            wake.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # pipe already full: the loop is awake anyway

    def _request_flush(self, conn: _Connection) -> None:
        """Ask the loop to reconcile ``conn``'s write interest (any thread)."""
        with self._lock:
            self._flush_pending.add(conn)
        self._wake()

    def _apply_write_interest(self) -> None:
        with self._lock:
            pending, self._flush_pending = self._flush_pending, set()
        for conn in pending:
            if conn.closed:
                continue
            events = selectors.EVENT_READ
            if conn.has_output():
                events |= selectors.EVENT_WRITE
            try:
                self._selector.modify(conn.sock, events, conn)
            except (KeyError, ValueError, OSError):
                pass  # unregistered between the enqueue and now

    def _accept(self) -> None:
        assert self._listener is not None and self._selector is not None
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - platform quirk
                pass
            conn = _Connection(self, sock)
            self._conns.add(conn)
            self.stats.connection_opened()
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _close_connection(self, conn: _Connection) -> None:
        with conn._out_lock:
            if conn.closed:
                return
            conn.closed = True
            conn._out.clear()
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover
            pass
        self._conns.discard(conn)
        self.stats.connection_closed()

    def _run(self) -> None:
        assert self._selector is not None
        drain_deadline: float | None = None
        while True:
            try:
                events = self._selector.select(timeout=0.05)
            except OSError:  # pragma: no cover - fd closed under us
                break
            for key, mask in events:
                data = key.data
                if data == "listener":
                    self._accept()
                elif data == "wake":
                    try:
                        while self._wake_r.recv(4096):
                            pass
                    except (BlockingIOError, OSError):
                        pass
                else:
                    try:
                        if mask & selectors.EVENT_READ:
                            data.handle_read()
                        if mask & selectors.EVENT_WRITE and not data.closed:
                            data.handle_write()
                    except Exception:  # pragma: no cover - defensive
                        # one misbehaving connection must never take the
                        # event loop (and every other connection) with it
                        self._close_connection(data)
            self._apply_write_interest()
            if not self._shutdown:
                continue
            if self._listener is not None and not self._draining:
                # stop accepting; refuse new predicts; flush what is owed
                self._draining = True
                try:
                    self._selector.unregister(self._listener)
                except (KeyError, ValueError):
                    pass
                self._listener.close()
                drain_deadline = time.monotonic() + self.drain_timeout_s
            if all(conn.idle() for conn in self._conns) or (
                drain_deadline is not None
                and time.monotonic() > drain_deadline
            ):
                break
        for conn in list(self._conns):
            self._close_connection(conn)
        try:
            self._selector.unregister(self._wake_r)
        except (KeyError, ValueError):
            pass
        self._wake_r.close()
        self._wake_w.close()
        self._selector.close()
        self._selector = None
        self._wake_r = None
        self._wake_w = None


# ----------------------------------------------------------------- client


def _recv_exact(sock: socket.socket, size: int) -> bytearray:
    """Read exactly ``size`` bytes or raise :class:`ConnectionError`."""
    buf = bytearray(size)
    view = memoryview(buf)
    got = 0
    while got < size:
        n = sock.recv_into(view[got:])
        if n == 0:
            raise ConnectionError(
                "server closed the connection mid-frame "
                f"({got}/{size} bytes received)"
            )
        got += n
    return buf


class BinaryClient:
    """Synchronous client for :class:`SocketTransport`.

    One persistent connection; :meth:`predict` is the simple
    request/response round trip, while :meth:`send` / :meth:`recv`
    support **pipelining** — queue many predicts on the socket, then
    collect responses, matching them by the request id the server
    echoes (responses may complete out of order across lanes/workers).

    Raises the same exceptions an in-process caller sees:
    :class:`ValueError` (malformed/unknown lane/unknown model),
    :class:`ServeError` (server closed or failed),
    :class:`DeadlineExpiredError` (queued past its deadline); each
    carries a ``request_id`` attribute for pipelined callers.
    """

    def __init__(
        self, host: str, port: int, timeout_s: float = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        try:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - platform quirk
            pass
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    def send(
        self,
        images: Any,
        *,
        lane: "str | None" = None,
        model: "str | None" = None,
        deadline_ms: "float | None" = None,
    ) -> int:
        """Queue one predict frame; returns its request id (pipelining)."""
        arr = np.ascontiguousarray(images, dtype=np.uint8)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        elif arr.ndim > 2:
            # (n, h, w[, ...]) image stacks flatten per row, same as the
            # server-side as_image_batch normalization
            arr = arr.reshape(arr.shape[0], -1)
        if arr.ndim != 2 or arr.shape[1] == 0:
            raise ValueError(
                f"images must be a (rows, pixels) array, got shape "
                f"{arr.shape}"
            )
        with self._lock:
            request_id = next(self._ids)
            frame = encode_frame(
                FRAME_PREDICT,
                lane=lane or "",
                model=model or "",
                request_id=request_id,
                deadline_ms=0.0 if deadline_ms is None else float(deadline_ms),
                rows=arr.shape[0],
                payload=arr.tobytes(),
            )
            self._sock.sendall(frame)
        return request_id

    def recv(self) -> "tuple[int, np.ndarray]":
        """Next response as ``(request_id, labels)``; raises on errors."""
        header = _recv_exact(self._sock, HEADER_SIZE)
        (
            frame_type,
            code,
            lane_len,
            model_len,
            request_id,
            _deadline_ms,
            rows,
            payload_len,
        ) = _parse_header(header)
        meta_len = lane_len + model_len
        if meta_len:
            _recv_exact(self._sock, meta_len)
        payload = _recv_exact(self._sock, payload_len)
        if frame_type == FRAME_LABELS:
            if payload_len != rows * 8:
                raise FrameError(
                    f"labels payload of {payload_len} bytes does not match "
                    f"rows={rows} int64 labels"
                )
            labels = np.frombuffer(bytes(payload), dtype="<i8").astype(
                np.int64, copy=False
            )
            return request_id, labels
        message = bytes(payload).decode("utf-8", errors="replace")
        error: Exception
        if frame_type == FRAME_EXPIRED:
            error = DeadlineExpiredError(message)
        elif code in (ERR_MALFORMED, ERR_UNKNOWN_MODEL):
            error = ValueError(message)
        else:
            error = ServeError(message)
        error.request_id = request_id  # type: ignore[attr-defined]
        raise error

    def predict(
        self,
        images: Any,
        *,
        lane: "str | None" = None,
        model: "str | None" = None,
        deadline_ms: "float | None" = None,
    ) -> np.ndarray:
        """Synchronous round trip: one predict frame, one label array."""
        self.send(images, lane=lane, model=model, deadline_ms=deadline_ms)
        _request_id, labels = self.recv()
        return labels

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "BinaryClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
