"""The serving front-end: warm encoders, micro-batching, a worker pool.

:class:`UHDServer` is rung 2 of the ROADMAP's backend ladder.  It owns:

* **one warm front-end model** (loaded via :func:`repro.api.load_model`,
  never re-fit) whose encoder comes from the process-wide
  :class:`~repro.serve.cache.EncoderCache` — one set of gather tables
  per ``(pixels, config)`` key no matter how many servers/replicas run
  in the process, warmed *before* workers spawn so ``fork`` children
  share it copy-on-write;
* **a priority-lane scheduler**
  (:class:`~repro.serve.scheduler.Scheduler`) coalescing small
  requests into packed-friendly batches per named lane (``max_batch`` /
  ``max_wait_ms`` / ``lanes`` in :class:`~repro.serve.types.ServeConfig`),
  draining lanes with weighted anti-starvation and failing
  expired-deadline requests loudly instead of serving them late;
* **a pool of worker processes** (:mod:`repro.serve.worker`) that
  warm-start from the same model file, prove readiness with the
  ``serve-check`` probe, and are respawned on crash with their
  in-flight batch re-queued — a submitted request is answered or fails
  loudly, never dropped;
* **a synchronous in-process fallback** (``workers=0``) for 1-core
  hosts: same API, same chunking, zero IPC.

Bit-exactness: the server never transforms data — it only splits,
concatenates and routes.  Both encode and binarized inference are
row-independent, so the labels a request gets back are identical to
calling ``UHDClassifier.predict`` on the same rows directly, whatever
they were coalesced with (``tests/serve/test_server.py`` asserts this
against every built-in backend).

How requests *reach* ``submit`` is the transport layer's business
(:mod:`repro.serve.transport`): in-process calls and the threaded HTTP
front-end both feed this same scheduler, so the contract above covers
them identically.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from collections import deque
from typing import Any

import numpy as np

from .cache import encoder_cache
from .probe import ProbeResult, readiness_probe
from .scheduler import LaneConfig, Scheduler
from .types import (
    DeadlineExpiredError,
    PredictionHandle,
    ServeConfig,
    ServeError,
    ServerStats,
    WorkerCrashError,
    _StatCounters,
)
from .worker import WorkerHandle, spawn_worker

__all__ = ["UHDServer"]


class _Part:
    """One ``<= max_batch``-row slice of a request; the scheduler's item."""

    __slots__ = ("handle", "index", "images")

    def __init__(self, handle: PredictionHandle, index: int, images: np.ndarray):
        self.handle = handle
        self.index = index
        self.images = images

    @property
    def rows(self) -> int:
        return self.images.shape[0]


class _Batch:
    """A dispatched unit: coalesced parts plus their concatenated images."""

    __slots__ = ("id", "parts", "rows", "lane")

    def __init__(self, batch_id: int, parts: list[_Part], lane: str | None = None):
        self.id = batch_id
        self.parts = parts
        self.lane = lane
        self.rows = sum(p.rows for p in parts)

    def images(self) -> np.ndarray:
        if len(self.parts) == 1:
            return self.parts[0].images
        return np.concatenate([p.images for p in self.parts])

    def complete(self, labels: np.ndarray) -> None:
        offset = 0
        for part in self.parts:
            part.handle._complete_part(
                part.index, labels[offset:offset + part.rows]
            )
            offset += part.rows

    def fail(self, error: BaseException) -> None:
        for part in self.parts:
            part.handle._fail(error)


def _resolve_start_method(method: str) -> str:
    if method != "auto":
        return method
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


class UHDServer:
    """Serve predictions for one saved model, batched and fanned out.

    Usage::

        from repro.serve import ServeConfig, UHDServer

        with UHDServer("mnist-2048.npz",
                       ServeConfig(workers=2, max_batch=64,
                                   max_wait_ms=2.0)) as server:
            labels = server.predict(images)          # sync round-trip
            handle = server.submit(more_images)      # async
            labels2 = handle.result(timeout=5.0)

    The context manager starts the pool on entry (workers warm-load the
    model file — training happened elsewhere, earlier) and shuts it down
    cleanly on exit.  ``ServeConfig(workers=0)`` gives the in-process
    fallback with the identical API.
    """

    def __init__(self, model_path: Any, config: ServeConfig | None = None):
        self.model_path = str(model_path)
        self.config = config if config is not None else ServeConfig()
        self._model: Any = None
        self._num_pixels: int | None = None
        self._front_probe: ProbeResult | None = None
        self._encoder_lock: threading.Lock = threading.Lock()
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._stats = _StatCounters()
        self._started = False
        self._closed = False
        self._accepting = False
        self._running = False
        self._failure: BaseException | None = None
        #: resolved lane set (start()) — first entry is the default lane
        self._lanes: tuple[LaneConfig, ...] = ()
        self._lane_map: dict[str, LaneConfig] = {}
        # pool-mode machinery (built in start() when workers > 0)
        self._scheduler: Scheduler[_Part] | None = None
        self._workers: list[WorkerHandle] = []
        self._idle: deque[WorkerHandle] = deque()
        self._inflight: dict[int, _Batch] = {}
        self._retry: deque[_Batch] = deque()
        #: parts submitted but not yet registered in _inflight (or failed);
        #: covers the window where the dispatcher holds a batch it popped
        #: from the batcher/retry queue, which close()'s drain loop and
        #: the no-workers failure path would otherwise not see
        self._pending_parts = 0
        self._fatal: list[str] = []
        self._batch_ids = itertools.count()
        self._ctx: Any = None
        self._threads: list[threading.Thread] = []
        #: table-store plumbing: the store this server owns (None until
        #: start(), and forever in workers=0 mode) and the published
        #: handle workers attach through
        self._table_store: Any = None
        self._table_handle: Any = None
        #: test hook — the next N dispatched batches kill their worker
        self._crash_next = 0
        #: wire counters of transports fronting this server (attach_transport)
        self._transports: list[Any] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "UHDServer":
        """Warm-load the model, spawn and probe workers, start dispatching."""
        if self._started:
            return self
        if self.config.backend is not None:
            from ..api.registry import get_backend

            get_backend(self.config.backend)  # fail fast on unknown names
        self._lanes = self.config.effective_lanes()
        self._lane_map = {lane.name: lane for lane in self._lanes}
        self._load_front_end()
        if self.config.workers > 0:
            self._publish_tables()
            self._start_pool()
        self._started = True
        self._accepting = True
        return self

    def _load_front_end(self) -> None:
        from ..api.persistence import load_model

        # same load + backend re-home path the workers and the CLI use
        model = load_model(self.model_path, backend=self.config.backend)
        num_pixels = getattr(model, "num_pixels", None)
        if num_pixels is None:
            raise ServeError(
                f"{type(model).__name__} has no num_pixels; UHDServer fronts "
                "image models (UHDClassifier, StreamingUHD)"
            )
        self._num_pixels = int(num_pixels)
        # share (and warm) one encoder per (pixels, config) process-wide;
        # under fork the workers inherit the warmed tables copy-on-write
        # (worker_main adopts the same cache entry post-fork).  The whole
        # warm-up runs under the key's serialization lock: another server
        # over the same key may already be predicting on the shared
        # encoder, whose workspaces are not safe under concurrent encodes
        model_config = getattr(model, "config", None)
        if model_config is not None and hasattr(model, "encoder"):
            cache = encoder_cache()
            self._encoder_lock = cache.lock(self._num_pixels, model_config)
            with self._encoder_lock:
                # adopt BEFORE warm: a model that arrived with warm
                # tables (a .tables sidecar attach) seeds the cache, so
                # warm() exercises those tables instead of rebuilding
                cache.adopt(model)
                cache.warm(self._num_pixels, model_config)
                self._front_probe = readiness_probe(
                    model, self._num_pixels,
                    batch=self.config.probe_batch, repeats=1,
                )
        else:
            self._encoder_lock = threading.Lock()
            self._front_probe = readiness_probe(
                model, self._num_pixels,
                batch=self.config.probe_batch, repeats=1,
            )
        self._model = model

    def _publish_tables(self) -> None:
        """Publish the warm front-end tables so workers attach, not rebuild.

        Runs after :meth:`_load_front_end` (the encoder is warm and the
        cache knows its key) and before any worker spawns, so every
        worker generation — bootstrap and crash-respawn alike — receives
        a handle to already-materialized tables.  Models without
        exportable tables (reference encoders) publish nothing and
        workers build as before.
        """
        model_config = getattr(self._model, "config", None)
        if model_config is None or not hasattr(self._model, "encoder"):
            return
        from ..fastpath.tablestore import make_store

        self._table_store = make_store(self.config.table_store)
        self._table_handle = encoder_cache().publish(
            self._num_pixels, model_config, self._table_store
        )

    def _start_pool(self) -> None:
        self._ctx = multiprocessing.get_context(
            _resolve_start_method(self.config.start_method)
        )
        self._scheduler = Scheduler(self._lanes, on_expired=self._on_expired)
        self._workers = [WorkerHandle(slot) for slot in range(self.config.workers)]
        for handle in self._workers:
            self._spawn(handle)
        self._running = True
        self._threads = [
            threading.Thread(
                target=self._collect_loop, name="uhd-serve-collect", daemon=True
            ),
            threading.Thread(
                target=self._dispatch_loop, name="uhd-serve-dispatch", daemon=True
            ),
        ]
        for thread in self._threads:
            thread.start()
        deadline = time.monotonic() + self.config.ready_timeout_s
        with self._cv:
            while any(w.state == "starting" for w in self._workers):
                if self._fatal:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cv.wait(remaining)
            fatal = list(self._fatal)
            pending = [w.slot for w in self._workers if w.state == "starting"]
            dead = [w.slot for w in self._workers if w.state == "dead"]
        if fatal or pending or dead:
            self._started = True  # so close() tears the partial pool down
            self.close(drain_timeout=0.0)
            if fatal:
                raise ServeError(
                    "worker bootstrap failed (serve-check probe):\n" + fatal[0]
                )
            if dead:
                raise ServeError(
                    f"workers {dead} died during bootstrap before reporting "
                    "readiness (with start_method='spawn' the parent must be "
                    "importable — a __main__ guard is required)"
                )
            raise ServeError(
                f"workers {pending} not ready within "
                f"{self.config.ready_timeout_s}s"
            )

    def _spawn(self, handle: WorkerHandle) -> None:
        spawn_worker(
            self._ctx,
            handle,
            self.model_path,
            self.config.backend,
            self.config.probe_batch,
            self._table_handle,
        )

    def __enter__(self) -> "UHDServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self, drain_timeout: float | None = None) -> None:
        """Drain pending work (up to ``drain_timeout``), then stop everything.

        ``drain_timeout`` defaults to ``config.drain_timeout_s`` — the
        same window the CLI's SIGTERM/SIGINT handler relies on.
        Idempotent.  Requests still queued when the drain window expires
        fail with :class:`ServeError` rather than hanging their callers.
        """
        if drain_timeout is None:
            drain_timeout = self.config.drain_timeout_s
        if self._closed or not self._started:
            # a failed start() may have published tables before dying —
            # release them even though the server never came up
            self._release_tables()
            self._closed = True
            return
        self._accepting = False
        if self.config.workers == 0:
            self._release_tables()  # no-op: workers=0 never publishes
            self._closed = True
            return
        if self._scheduler is not None:
            self._scheduler.close()
        deadline = time.monotonic() + drain_timeout
        with self._cv:
            # _pending_parts covers both parts queued in the scheduler and a
            # batch the dispatcher has popped but not yet registered, so a
            # request submitted before close() gets its full drain window
            while self._inflight or self._retry or self._pending_parts:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cv.wait(min(remaining, 0.1))
            self._running = False
            leftovers = list(self._retry) + list(self._inflight.values())
            self._retry.clear()
            self._inflight.clear()
            self._cv.notify_all()
        # requests still queued in the scheduler must fail, not hang their
        # callers: drain it (closed above, so this terminates) and fail each
        leftovers.extend(self._drain_scheduler())
        for batch in leftovers:
            batch.fail(ServeError("server closed before the request completed"))
        # threads first: they may be mid-wait on pipes that stop() closes
        for thread in self._threads:
            thread.join(timeout=5.0)
        for handle in self._workers:
            handle.stop()
        self._release_tables()
        self._closed = True

    def _release_tables(self) -> None:
        """Tear down this server's published tables (workers are gone).

        Ordered after worker stop so no live worker reads an unlinked
        shared-memory segment or a deleted table file; safe either way
        on POSIX (open mappings survive unlink), but the ordering keeps
        the lifecycle story simple.
        """
        if self._table_store is not None:
            encoder_cache().release_store(self._table_store)
            self._table_store = None
            self._table_handle = None

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _check_images(self, images: Any) -> np.ndarray:
        # the one shared accepted-shapes policy (square-image
        # disambiguation included) — StreamingUHD normalizes identically
        from ..utils.validation import as_image_batch

        return as_image_batch(images, self._num_pixels)

    def _resolve_lane(self, lane: str | None) -> LaneConfig:
        name = self._lanes[0].name if lane is None else lane
        config = self._lane_map.get(name)
        if config is None:
            raise ValueError(
                f"unknown lane {name!r}; configured lanes: "
                f"{', '.join(l.name for l in self._lanes)}"
            )
        return config

    def submit(
        self,
        images: Any,
        timeout: float | None = None,
        *,
        lane: str | None = None,
        deadline_ms: float | None = None,
    ) -> PredictionHandle:
        """Enqueue a prediction request; returns a :class:`PredictionHandle`.

        ``lane`` routes the request onto a named priority lane (the
        first configured lane when ``None``); requests wider than the
        lane's ``max_batch`` are split into parts and reassembled in
        order by the handle.  ``deadline_ms`` bounds how long the
        request may *queue*: parts still unscheduled when it passes fail
        the handle with :class:`DeadlineExpiredError` instead of being
        served late.  Blocks (backpressure) while the lane is full;
        ``timeout`` bounds that wait.
        """
        if not self._started:
            raise ServeError("server not started (use start() or a with-block)")
        if not self._accepting:
            raise ServeError("server is closed")
        if self._failure is not None:
            raise ServeError(f"server failed: {self._failure}")
        lane_config = self._resolve_lane(lane)
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {deadline_ms}")
        arr = self._check_images(images)
        rows = arr.shape[0]
        with self._lock:
            self._stats.requests += 1
            self._stats.images += rows
        if rows == 0:
            handle = PredictionHandle(parts=0, rows=0)
            return handle
        if self.config.workers == 0:
            return self._predict_inproc(arr, lane_config)
        deadline = (
            None if deadline_ms is None
            else time.monotonic() + deadline_ms / 1e3
        )
        step = lane_config.max_batch
        chunks = [arr[i:i + step] for i in range(0, rows, step)]
        handle = PredictionHandle(parts=len(chunks), rows=rows)
        assert self._scheduler is not None
        try:
            for index, chunk in enumerate(chunks):
                with self._lock:
                    self._pending_parts += 1
                try:
                    self._scheduler.put(
                        _Part(handle, index, chunk),
                        lane=lane_config.name,
                        deadline=deadline,
                        timeout=timeout,
                    )
                except BaseException:
                    with self._lock:
                        self._pending_parts -= 1  # this part never queued
                    raise
        except (RuntimeError, TimeoutError) as exc:
            # parts already enqueued will still complete; the handle fails
            # loudly instead of leaving its caller waiting forever
            error = ServeError(f"request not fully enqueued: {exc}")
            handle._fail(error)
            raise error from exc
        return handle

    def predict(
        self,
        images: Any,
        timeout: float | None = None,
        *,
        lane: str | None = None,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        """Synchronous round-trip: ``submit(images).result(timeout)``."""
        return self.submit(
            images, timeout=timeout, lane=lane, deadline_ms=deadline_ms
        ).result(timeout)

    def _on_expired(self, part: _Part, lane: str) -> None:
        """Scheduler callback: a queued part's deadline passed — fail loudly."""
        part.handle._fail(
            DeadlineExpiredError(
                f"request deadline expired while queued in lane {lane!r}; "
                "refusing to serve it late"
            )
        )
        with self._cv:
            self._pending_parts -= 1
            self._cv.notify_all()

    def _predict_inproc(
        self, arr: np.ndarray, lane_config: LaneConfig
    ) -> PredictionHandle:
        """Synchronous fallback: chunked predict on the caller's thread.

        The shared cached encoder is not thread-safe under concurrent
        ``encode_batch``, so the chunk loop runs under the *encoder's*
        cache-wide lock (one per ``(pixels, config)`` key) — two servers
        sharing the cached encoder serialize against each other, not
        just against their own threads.  By design: this mode exists for
        hosts without the cores to exploit concurrency anyway.  Lanes
        only select the chunk size here — requests run immediately on
        the caller's thread, so deadlines cannot expire while queued.
        """
        handle = PredictionHandle(parts=1, rows=arr.shape[0])
        step = lane_config.max_batch
        chunks = [arr[i:i + step] for i in range(0, arr.shape[0], step)]
        t0 = time.monotonic()
        with self._encoder_lock:
            labels = [self._model.predict(chunk) for chunk in chunks]
        elapsed = time.monotonic() - t0
        with self._lock:
            for chunk in chunks:
                self._stats.record_batch(chunk.shape[0])
            # with no queue, the synchronous service time IS the latency
            self._stats.record_lane(
                lane_config.name, 1, arr.shape[0], len(chunks),
                latency_s=elapsed,
            )
        handle._complete_part(0, np.concatenate(labels))
        return handle

    # ------------------------------------------------------------------
    # Pool threads
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        assert self._scheduler is not None
        while True:
            batch: _Batch | None = None
            with self._cv:
                if not self._running:
                    return
                if self._retry:
                    batch = self._retry.popleft()
                    # back in the dispatcher's hands: count its parts as
                    # pending again until (re-)registered in _inflight
                    self._pending_parts += len(batch.parts)
            if batch is None:
                scheduled = self._scheduler.next_batch(poll_s=0.05)
                if scheduled is None:  # closed and drained; retries may remain
                    with self._cv:
                        self._cv.wait(0.05)
                    continue
                if not scheduled:  # empty flush on timeout: idle heartbeat
                    continue
                batch = _Batch(
                    next(self._batch_ids), scheduled.items, lane=scheduled.lane
                )
            worker = self._acquire_worker()
            if worker is None:
                failure = self._failure or ServeError(
                    "server is shutting down"
                )
                batch.fail(failure)
                with self._cv:
                    self._pending_parts -= len(batch.parts)
                    self._cv.notify_all()
                continue
            crash = False
            with self._cv:
                if worker.state != "busy" or not worker.alive():
                    # the worker crashed between acquisition and here and
                    # the reaper already reset it (state back to starting/
                    # dead); registering now would orphan the batch on a
                    # fresh generation — re-queue it for another worker
                    self._pending_parts -= len(batch.parts)
                    self._retry.append(batch)
                    self._cv.notify_all()
                    continue
                if self._crash_next > 0:
                    self._crash_next -= 1
                    crash = True
                self._inflight[batch.id] = batch
                self._pending_parts -= len(batch.parts)
                worker.busy_batch = batch
                self._stats.record_batch(batch.rows)
                # snapshot under the lock: a reaper respawn after this point
                # swaps worker.task_writer, and a send must never land on a
                # newer generation's pipe
                writer = worker.task_writer
            try:
                writer.send(("batch", batch.id, batch.images(), crash))
            except (BrokenPipeError, OSError, AttributeError):
                # worker died first; busy_batch is registered, so the
                # reaper reclaims and retries this batch
                pass

    def _acquire_worker(self) -> WorkerHandle | None:
        with self._cv:
            while self._running and self._failure is None:
                if self._idle:
                    worker = self._idle.popleft()
                    if worker.state == "idle" and worker.alive():
                        worker.state = "busy"
                        return worker
                    continue  # stale entry (crashed while queued); drop it
                self._cv.wait(0.1)
            return None

    def _collect_loop(self) -> None:
        from multiprocessing.connection import wait as conn_wait

        while True:
            readers: dict[Any, WorkerHandle] = {}
            with self._cv:
                if not self._running:
                    return
                for worker in self._workers:
                    if worker.result_reader is not None and worker.state in (
                        "starting", "idle", "busy"
                    ):
                        readers[worker.result_reader] = worker
            if readers:
                try:
                    ready = conn_wait(list(readers), timeout=0.05)
                except OSError:
                    ready = []  # a pipe closed under us; reap below
            else:
                time.sleep(0.05)
                ready = []
            for conn in ready:
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    continue  # pipe EOF == crash; _reap_crashed handles it
                self._handle_message(msg)
            self._reap_crashed()

    def _drain_reader(self, worker: WorkerHandle) -> None:
        """Deliver results a worker managed to send before dying.

        Per-generation pipes make this safe: a completed ``send`` is
        fully in the pipe, so a crash can lose at most the message being
        written (whose batch the reaper then retries).
        """
        conn = worker.result_reader
        while conn is not None:
            try:
                if not conn.poll():
                    return
                msg = conn.recv()
            except (EOFError, OSError):
                return
            self._handle_message(msg)

    def _handle_message(self, msg: tuple) -> None:
        kind, slot = msg[0], msg[1]
        worker = self._workers[slot]
        if kind == "ready":
            with self._cv:
                worker.state = "idle"
                worker.probe_median_s = msg[2]
                worker.table_builds = int(msg[3]) if len(msg) > 3 else None
                self._stats.probe_ms[slot] = msg[2] * 1e3
                if worker.table_builds is not None:
                    self._stats.table_builds[slot] = worker.table_builds
                self._idle.append(worker)
                self._cv.notify_all()
        elif kind == "fatal":
            with self._cv:
                self._fatal.append(msg[2])
                worker.state = "dead"
                self._cv.notify_all()
            self._fail_if_no_workers()
        elif kind in ("result", "error"):
            batch_id = msg[2]
            with self._cv:
                batch = self._inflight.pop(batch_id, None)
                if worker.busy_batch is batch:
                    worker.busy_batch = None
                if worker.state == "busy" and worker.alive():
                    worker.state = "idle"
                    self._idle.append(worker)
                self._cv.notify_all()
            if batch is None:
                return  # already reclaimed (late message after a retry)
            if kind == "result":
                batch.complete(msg[3])
            else:
                batch.fail(ServeError(f"worker predict failed:\n{msg[3]}"))

    def _reap_crashed(self) -> None:
        """Respawn dead workers; re-queue their in-flight batches."""
        for worker in self._workers:
            if worker.state in ("stopped", "dead") or worker.alive():
                continue
            self._drain_reader(worker)  # results sent before death still count
            with self._cv:
                if worker.state in ("stopped", "dead") or worker.alive():
                    continue
                batch = worker.busy_batch
                worker.busy_batch = None
                if batch is not None and self._inflight.pop(batch.id, None) is None:
                    batch = None  # result arrived before the crash was seen
                can_restart = (
                    self._running
                    and self._stats.restarts < self.config.restart_limit
                )
                if can_restart:
                    self._stats.restarts += 1
                    worker.state = "starting"
                    if batch is not None:
                        self._retry.append(batch)
                        batch = None
                else:
                    worker.state = "dead"
                self._cv.notify_all()
            if batch is not None:
                batch.fail(
                    WorkerCrashError(
                        f"worker {worker.slot} crashed and the restart budget "
                        f"({self.config.restart_limit}) is exhausted"
                    )
                )
            if worker.state == "starting":
                self._spawn(worker)  # also swaps in this generation's pipes
            else:
                worker.close_pipes()
                self._fail_if_no_workers()

    def _drain_scheduler(self) -> list[_Batch]:
        """Pull every still-queued part out of the (already closed) scheduler.

        Shared by clean shutdown and the all-workers-dead path so the
        ``_pending_parts`` accounting cannot diverge between them; the
        caller owns failing the returned batches.  Parts whose deadlines
        expired are failed by the ``on_expired`` callback along the way,
        never returned.
        """
        drained: list[_Batch] = []
        if self._scheduler is None:
            return drained
        while True:
            scheduled = self._scheduler.next_batch(poll_s=0.0)
            if scheduled is None or not scheduled:
                return drained
            with self._cv:
                self._pending_parts -= len(scheduled.items)
            drained.append(
                _Batch(next(self._batch_ids), scheduled.items, lane=scheduled.lane)
            )

    def _fail_if_no_workers(self) -> None:
        """Fail pending work when the pool can no longer serve anything."""
        with self._cv:
            if any(w.state in ("starting", "idle", "busy") for w in self._workers):
                return
            if self._failure is None:
                self._failure = ServeError(
                    "all workers are dead (crashes exceeded restart_limit "
                    "or bootstrap failed)"
                )
            failure = self._failure
            leftovers = list(self._retry) + list(self._inflight.values())
            self._retry.clear()
            self._inflight.clear()
            self._accepting = False
            self._cv.notify_all()
        if self._scheduler is not None:
            self._scheduler.close()
            leftovers.extend(self._drain_scheduler())
        for batch in leftovers:
            batch.fail(failure)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_pixels(self) -> int | None:
        """Pixels per image the served model expects (after start())."""
        return self._num_pixels

    @property
    def front_probe(self) -> ProbeResult | None:
        """The front-end model's own readiness-probe result."""
        return self._front_probe

    @property
    def lanes(self) -> tuple[LaneConfig, ...]:
        """The resolved lane set (after start()); first entry is default."""
        return self._lanes

    def attach_transport(self, stats: Any) -> None:
        """Register a transport's :class:`~repro.serve.transport.TransportStats`.

        Transports call this from ``start()`` so their wire counters
        (connections, frames, bytes, malformed) surface through
        :meth:`stats` and ``/metrics`` — the server stays wire-agnostic,
        it only aggregates.  Counters persist after the transport
        closes (they are totals); attaching the same object twice is a
        no-op.
        """
        with self._lock:
            if all(existing is not stats for existing in self._transports):
                self._transports.append(stats)

    def transport_stats(self) -> tuple:
        """Per-kind merged wire counters of every attached transport."""
        from .transport import TransportSnapshot

        with self._lock:
            transports = list(self._transports)
        return TransportSnapshot.merged(t.snapshot() for t in transports)

    def stats(self) -> ServerStats:
        """A :class:`ServerStats` snapshot of the counters so far.

        One-stop observability: request/batch counters, per-lane
        scheduler depth/served/expired, and the process-wide encoder
        cache (table bytes, live publications) — exactly what the HTTP
        ``/stats`` endpoint serializes.
        """
        scheduler = self._scheduler
        lane_stats = (
            scheduler.stats() if scheduler is not None else ()
        )
        cache_stats = encoder_cache().stats()
        transports = self.transport_stats()
        with self._lock:
            if scheduler is None:
                lane_stats = self._stats.inproc_lane_stats(self._lanes)
            return self._stats.snapshot(
                mode="inproc" if self.config.workers == 0 else "pool",
                workers=self.config.workers,
                lanes=lane_stats,
                cache=cache_stats,
                transports=transports,
            )

    def healthz(self) -> dict:
        """Liveness/readiness summary for health endpoints.

        ``ok`` is True while the server accepts traffic and (in pool
        mode) at least one worker is alive.  ``probe`` reports the
        front-end's :func:`~repro.serve.probe.readiness_probe` result —
        the same deterministic-predictions check ``serve-check`` runs.
        """
        with self._cv:
            live = sum(
                1 for w in self._workers if w.state in ("idle", "busy")
            )
            starting = sum(1 for w in self._workers if w.state == "starting")
            ok = bool(
                self._started
                and self._accepting
                and self._failure is None
                and (self.config.workers == 0 or live + starting > 0)
            )
        probe = self._front_probe
        return {
            "ok": ok,
            "status": "ok" if ok else "unavailable",
            "mode": "inproc" if self.config.workers == 0 else "pool",
            "workers": self.config.workers,
            "workers_live": live,
            "lanes": [lane.name for lane in self._lanes],
            "probe": None if probe is None else {
                "median_ms": probe.median_ms,
                "images_per_s": probe.images_per_s,
                "batch": probe.batch,
                "deterministic": probe.deterministic,
            },
        }
