"""Serving-readiness probe — one implementation for CLI and workers.

``repro-uhd serve-check`` and every worker process in
:mod:`repro.serve.worker` run the *same* check before declaring a model
servable:

1. warm-load the model (``load_model`` — construction from config plus
   the saved accumulators, never re-fitting or re-encoding data),
2. run one prediction batch to populate the warm state (gather tables,
   packed class words),
3. predict the identical batch again and require **bit-identical**
   labels (catches nondeterministic or stateful backends before any
   traffic reaches them),
4. time repeated predictions and report the median latency.

Keeping it in one function means the CLI probe and the per-worker
readiness handshake can never drift apart: if ``serve-check`` passes on
an operator's machine, the exact same code path gates each worker.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..api.estimator import Estimator

__all__ = ["ProbeResult", "readiness_probe"]


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one readiness probe over a warm-loaded model."""

    batch: int  #: images per timed predict call
    repeats: int  #: timed calls (median reported)
    median_s: float  #: median wall time of one predict call
    deterministic: bool  #: always True for a returned result

    @property
    def images_per_s(self) -> float:
        return self.batch / self.median_s if self.median_s > 0 else float("inf")

    @property
    def median_ms(self) -> float:
        return self.median_s * 1e3


def readiness_probe(
    model: "Estimator",
    num_pixels: int,
    batch: int = 64,
    repeats: int = 10,
    seed: int = 0,
) -> ProbeResult:
    """Assert ``model`` is warm and deterministic; measure predict latency.

    ``num_pixels`` sizes the synthetic uint8 query images (callers pass
    ``model.num_pixels``).  Raises ``AssertionError`` if two predictions
    of the same batch differ — a model that fails this must not serve.
    """
    if batch < 1 or repeats < 1:
        raise ValueError("batch and repeats must both be >= 1")
    rng = np.random.default_rng(seed)
    images = rng.integers(0, 256, size=(batch, num_pixels), dtype=np.uint8)
    first = model.predict(images)  # warms gather tables / packed class words
    if not np.array_equal(first, model.predict(images)):
        raise AssertionError("predictions are not deterministic on repeat calls")
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        model.predict(images)
        timings.append(time.perf_counter() - start)
    return ProbeResult(
        batch=batch,
        repeats=repeats,
        median_s=float(np.median(timings)),
        deterministic=True,
    )
