"""Multi-process serving for uHD models — rung 2 of the backend ladder.

uHD's single-pass training leaves a fitted model as config plus one
small integer matrix, persisted bit-exactly by :mod:`repro.api`.  That
makes serving workers *tiny and stateless-restartable*: each one
warm-starts from the model file (:func:`repro.api.load_model`, never
re-fitting), proves readiness with the ``serve-check`` probe, and can be
killed and respawned at any time without losing anything but the batch
it was holding — which the front-end re-queues.

The request path is three explicit layers (see ``docs/serving.md`` for
the operator guide and ``docs/ARCHITECTURE.md`` for the full picture):

* **Transport** (:mod:`repro.serve.transport` /
  :mod:`repro.serve.binary`) — how requests arrive:
  :class:`InProcessTransport` (plain Python calls),
  :class:`HttpTransport` (stdlib-only threaded HTTP: ``POST /predict``,
  ``GET /healthz`` backed by the readiness probe, ``GET /stats``, and a
  Prometheus ``GET /metrics`` rendered by :mod:`repro.serve.metrics`
  from the per-lane latency histograms in :mod:`repro.serve.histogram`),
  or :class:`SocketTransport` — the **binary fast lane**: a framed
  length-prefixed protocol over persistent connections driven by one
  ``selectors`` event loop, pixels zero-copied from the receive buffer
  into scheduler batch assembly (:class:`BinaryClient` is the matching
  pipelining-capable client).  Transports can coexist: HTTP and binary
  ports can front the *same* server, feeding one scheduler.
* **Scheduler** (:mod:`repro.serve.scheduler`) — queueing/coalescing
  policy: named priority lanes (:class:`LaneConfig`) with per-lane
  ``max_batch``/``max_wait_ms``, weighted anti-starvation draining, and
  per-request deadlines that fail expired requests loudly
  (:class:`DeadlineExpiredError`).  :class:`MicroBatcher` remains as a
  single-lane compatibility shim.
* **Workers** (:class:`UHDServer` + :mod:`repro.serve.worker`) — the
  front-end owns one warm encoder per ``(pixels, config)`` key
  (:class:`EncoderCache`), publishes gather tables through
  :mod:`repro.fastpath.tablestore` so workers attach instead of
  rebuild, fans batches out to the pool, and restarts crashed workers.
  ``ServeConfig(workers=0)`` is the synchronous in-process fallback.

Above the single server sits the **fleet layer**
(:mod:`repro.serve.router` + :mod:`repro.serve.replica`): a
:class:`Router` owns named :class:`ModelDeployment`\\ s, each a replica
group of N servers with least-loaded dispatch, aggregated stats, and
rolling hot reload (``router.reload(model_id, path)`` swaps in a fresh
model generation add-before-remove, never dropping below ``min_ready``
ready replicas and never dropping a request).  :class:`HttpTransport`
accepts a ``Router`` and grows ``/models/<id>/...`` endpoints.

Quickstart::

    from repro.serve import HttpTransport, LaneConfig, ServeConfig, UHDServer

    config = ServeConfig(
        workers=2,
        lanes=(LaneConfig("interactive", max_batch=16, max_wait_ms=1, weight=4),
               LaneConfig("bulk", max_wait_ms=50)),
    )
    with UHDServer("mnist-2048.npz", config) as server:
        labels = server.predict(images, lane="interactive")
        with HttpTransport(server, port=8080) as http:
            print("listening on", http.address)  # POST /predict, /healthz, /stats
            ...

Everything is bit-exact with calling the model directly — over every
transport, on every lane: the serving layer splits, coalesces and
routes, but never transforms data.
"""

from .batcher import MicroBatcher
from .binary import BinaryClient, SocketTransport
from .cache import CacheStats, EncoderCache, encoder_cache
from .histogram import HistogramSnapshot, LatencyHistogram
from .metrics import parse_exposition, render_metrics
from .probe import ProbeResult, readiness_probe
from .replica import Replica, RoutedHandle
from .router import DeploymentSpec, ModelDeployment, Router
from .scheduler import LaneConfig, LaneStats, ScheduledBatch, Scheduler
from .server import UHDServer
from .transport import (
    HttpTransport,
    InProcessTransport,
    Transport,
    TransportSnapshot,
    TransportStats,
)
from .types import (
    DeadlineExpiredError,
    PredictionHandle,
    ServeConfig,
    ServeError,
    ServerStats,
    WorkerCrashError,
)

__all__ = [
    "BinaryClient",
    "CacheStats",
    "DeadlineExpiredError",
    "DeploymentSpec",
    "EncoderCache",
    "HistogramSnapshot",
    "HttpTransport",
    "InProcessTransport",
    "LaneConfig",
    "LaneStats",
    "LatencyHistogram",
    "MicroBatcher",
    "ModelDeployment",
    "PredictionHandle",
    "ProbeResult",
    "Replica",
    "RoutedHandle",
    "Router",
    "ScheduledBatch",
    "Scheduler",
    "ServeConfig",
    "ServeError",
    "ServerStats",
    "SocketTransport",
    "Transport",
    "TransportSnapshot",
    "TransportStats",
    "UHDServer",
    "WorkerCrashError",
    "encoder_cache",
    "parse_exposition",
    "readiness_probe",
    "render_metrics",
]
