"""Multi-process serving for uHD models — rung 2 of the backend ladder.

uHD's single-pass training leaves a fitted model as config plus one
small integer matrix, persisted bit-exactly by :mod:`repro.api`.  That
makes serving workers *tiny and stateless-restartable*: each one
warm-starts from the model file (:func:`repro.api.load_model`, never
re-fitting), proves readiness with the ``serve-check`` probe, and can be
killed and respawned at any time without losing anything but the batch
it was holding — which the front-end re-queues.

The pieces (see ``docs/serving.md`` for the operator guide and
``docs/ARCHITECTURE.md`` for where this sits in the system):

* :class:`UHDServer` — the front-end: owns one warm encoder per
  ``(pixels, config)`` key, micro-batches requests, fans batches out to
  the worker pool, restarts crashed workers.  ``ServeConfig(workers=0)``
  is the synchronous in-process fallback for 1-core hosts.
* :class:`ServeConfig` / :class:`ServerStats` /
  :class:`PredictionHandle` — configuration, observability, and the
  async result handle.
* :class:`MicroBatcher` — the bounded coalescing queue (reusable on its
  own).
* :class:`EncoderCache` / :func:`encoder_cache` — process-wide shared
  warm encoders, plus the publish step that exports warm gather tables
  into a :mod:`repro.fastpath.tablestore` store so workers *attach*
  instead of rebuild (``ServeConfig(table_store="mmap"/"shm")`` makes
  that work under ``spawn`` too, not just fork copy-on-write).
* :func:`readiness_probe` — the shared serve-check implementation.

Quickstart::

    from repro.serve import ServeConfig, UHDServer

    with UHDServer("mnist-2048.npz", ServeConfig(workers=2)) as server:
        labels = server.predict(images)   # bit-exact with UHDClassifier.predict

Everything is bit-exact with calling the model directly: the server
splits, coalesces and routes, but never transforms data.
"""

from .batcher import MicroBatcher
from .cache import CacheStats, EncoderCache, encoder_cache
from .probe import ProbeResult, readiness_probe
from .server import UHDServer
from .types import (
    PredictionHandle,
    ServeConfig,
    ServeError,
    ServerStats,
    WorkerCrashError,
)

__all__ = [
    "CacheStats",
    "EncoderCache",
    "MicroBatcher",
    "PredictionHandle",
    "ProbeResult",
    "ServeConfig",
    "ServeError",
    "ServerStats",
    "UHDServer",
    "WorkerCrashError",
    "encoder_cache",
    "readiness_probe",
]
