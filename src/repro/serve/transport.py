"""Transports: how requests reach :meth:`UHDServer.submit`.

The serving front-end is deliberately transport-agnostic — the
scheduler and worker pool neither know nor care whether a request
arrived as a Python call or over a socket.  This module makes that
boundary explicit:

* :class:`Transport` — the tiny protocol every transport satisfies
  (``start`` / ``close`` / ``address``).
* :class:`InProcessTransport` — today's Python API, unchanged
  semantics: a thin named wrapper around ``server.submit`` /
  ``server.predict`` for code that wants to treat "call the server
  directly" as just another transport choice.
* :class:`HttpTransport` — a **stdlib-only** threaded HTTP front-end
  (``http.server.ThreadingHTTPServer``): each connection gets a handler
  thread whose ``POST /predict`` blocks on ``server.submit(...).result()``
  — many concurrent requests therefore feed the scheduler
  *concurrently* and coalesce into wide batches exactly like in-process
  callers.  No third-party framework, no event loop.

HTTP endpoints
--------------
``POST /predict``
    (also ``POST /models/<id>/predict`` when fronting a ``Router``)
    JSON body ``{"images": [[...], ...], "lane": "interactive",
    "deadline_ms": 50}`` (``lane``/``deadline_ms`` optional, also
    accepted as query parameters), or raw ``application/octet-stream``
    uint8 bytes — row count inferred from the model's pixel count, or
    pinned with an ``X-UHD-Rows`` header.  Responds
    ``{"labels": [...], "rows": N, "lane": ...}`` — or, with
    ``Accept: application/octet-stream``, raw little-endian int64 label
    bytes (``X-UHD-Rows`` response header carries the count) so a bulk
    client can skip JSON entirely in both directions.  Labels are
    **bit-exact** with ``UHDClassifier.predict``: the transport decodes
    bytes into the same uint8 arrays an in-process caller would pass,
    and the server only routes (contract 5 in ``docs/ARCHITECTURE.md``).
    Errors: 400 (malformed payload, unknown lane, wrong pixel count),
    503 (server closed/failed), 504 (deadline expired while queued, or
    the transport's ``request_timeout_s`` elapsed).
``GET /healthz``
    200/503 with :meth:`UHDServer.healthz` — liveness plus the
    front-end's ``readiness_probe`` result (the same deterministic-
    predictions check ``serve-check`` runs).
``GET /stats``
    200 with :meth:`UHDServer.stats` serialized via
    ``ServerStats.as_dict()`` — request/batch counters, per-lane
    depth/served/expired plus latency quantiles, encoder-cache table
    bytes and publications.
``GET /metrics``
    200 with the Prometheus text exposition (0.0.4) rendered by
    :func:`repro.serve.metrics.render_metrics` — the same counters as
    ``/stats`` plus one classic histogram per lane
    (``uhd_lane_latency_seconds``); router mode adds ``model`` labels
    and the deployment generation/replica gauges.

Router mode
-----------
Constructed over a :class:`~repro.serve.router.Router` instead of a
single server, the transport grows path-based multi-model routing:

``GET /models``
    200 with ``{"models": [...]}`` — one listing row per deployment
    (id, path, generation, ready/target replicas, status).
``POST /models/<id>/predict``
    Same request/response contract as ``/predict``, dispatched to the
    named deployment's least-loaded ready replica; the response gains a
    ``"model"`` field.  404 for unknown model ids.  Bare ``/predict``
    keeps working and routes to the router's *default* (first declared)
    model, so single-model clients need no changes.
``GET /models/<id>/stats`` / ``GET /models/<id>/healthz``
    Per-deployment aggregated stats (includes retired generations) and
    readiness (200 when at/above ``min_ready``, else 503).
``GET /healthz``
    Router-aware: 200 while **every** deployment is at or above its
    ``min_ready`` floor — a deployment mid-reload stays healthy; the
    body carries ``status`` (``ok`` / ``degraded`` / ``unavailable``)
    and an explicit ``degraded`` flag when a group is below target but
    above minimum.  ``GET /stats`` returns all deployments.

Lifecycle: the transport *borrows* the server — ``close()`` stops
accepting connections and joins in-flight handler threads, but never
closes the ``UHDServer`` (or ``Router``; its owner does, usually a
``with`` block around both).
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Protocol, runtime_checkable

import numpy as np

from .types import DeadlineExpiredError, ServeError

if TYPE_CHECKING:  # pragma: no cover
    from .server import UHDServer

__all__ = [
    "Transport",
    "TransportSnapshot",
    "TransportStats",
    "InProcessTransport",
    "HttpTransport",
]


@dataclass(frozen=True)
class TransportSnapshot:
    """Point-in-time wire counters of one transport (or one kind of them).

    ``frames`` means "requests" on HTTP and literal frames on the binary
    transport; ``bytes`` counts payload bytes (HTTP bodies, binary frame
    bytes) so the two wires are comparable per request served.
    """

    name: str  #: transport kind — ``"http"`` or ``"binary"``
    connections_open: int
    connections_total: int
    frames_in: int
    frames_out: int
    bytes_in: int
    bytes_out: int
    malformed: int  #: frames/requests rejected as unparseable (HTTP 400s)

    @classmethod
    def merged(
        cls, snapshots: "Iterable[TransportSnapshot]"
    ) -> "tuple[TransportSnapshot, ...]":
        """Sum counters per transport name, preserving first-seen order.

        Two transports of the same kind over one server (possible in
        tests) must not emit duplicate Prometheus series — merging here
        keeps ``/metrics`` one row per ``{transport=...}`` label value.
        """
        order: list[str] = []
        acc: dict[str, list[int]] = {}
        for snap in snapshots:
            if snap.name not in acc:
                order.append(snap.name)
                acc[snap.name] = [0] * 7
            row = acc[snap.name]
            row[0] += snap.connections_open
            row[1] += snap.connections_total
            row[2] += snap.frames_in
            row[3] += snap.frames_out
            row[4] += snap.bytes_in
            row[5] += snap.bytes_out
            row[6] += snap.malformed
        return tuple(cls(name, *acc[name]) for name in order)


class TransportStats:
    """Thread-safe mutable counters behind :class:`TransportSnapshot`.

    Each transport owns one and registers it with the server it fronts
    (``server.attach_transport``) so ``/stats`` and ``/metrics`` can
    report per-wire traffic without the server knowing wire details.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._connections_open = 0
        self._connections_total = 0
        self._frames_in = 0
        self._frames_out = 0
        self._bytes_in = 0
        self._bytes_out = 0
        self._malformed = 0

    def connection_opened(self) -> None:
        with self._lock:
            self._connections_open += 1
            self._connections_total += 1

    def connection_closed(self) -> None:
        with self._lock:
            self._connections_open -= 1

    def frame_in(self, nbytes: int) -> None:
        with self._lock:
            self._frames_in += 1
            self._bytes_in += nbytes

    def frame_out(self, nbytes: int) -> None:
        with self._lock:
            self._frames_out += 1
            self._bytes_out += nbytes

    def malformed_frame(self) -> None:
        with self._lock:
            self._malformed += 1

    def snapshot(self) -> TransportSnapshot:
        with self._lock:
            return TransportSnapshot(
                name=self.name,
                connections_open=self._connections_open,
                connections_total=self._connections_total,
                frames_in=self._frames_in,
                frames_out=self._frames_out,
                bytes_in=self._bytes_in,
                bytes_out=self._bytes_out,
                malformed=self._malformed,
            )


@runtime_checkable
class Transport(Protocol):
    """Anything that can feed requests to a running :class:`UHDServer`."""

    def start(self) -> "Transport": ...

    def close(self) -> None: ...

    @property
    def address(self) -> str: ...


class InProcessTransport:
    """The null transport: requests are plain Python calls.

    Exists so deployment code can select "in-process" and "HTTP" through
    one interface; ``submit``/``predict`` delegate to the server with
    identical semantics (same handles, same lanes, same deadlines).
    """

    def __init__(self, server: "UHDServer") -> None:
        self._server = server

    def start(self) -> "InProcessTransport":
        return self

    def close(self) -> None:
        pass  # the server's owner closes the server

    @property
    def address(self) -> str:
        return "inproc://uhd-server"

    def submit(
        self,
        images: Any,
        timeout: float | None = None,
        *,
        lane: str | None = None,
        deadline_ms: float | None = None,
    ):
        return self._server.submit(
            images, timeout=timeout, lane=lane, deadline_ms=deadline_ms
        )

    def predict(
        self,
        images: Any,
        timeout: float | None = None,
        *,
        lane: str | None = None,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        return self._server.predict(
            images, timeout=timeout, lane=lane, deadline_ms=deadline_ms
        )


class HttpTransport:
    """Threaded HTTP front-end over a :class:`UHDServer` or ``Router``.

    ``port=0`` (the default) binds an ephemeral port — read it back
    from :attr:`port` / :attr:`address` after :meth:`start`.  Handler
    threads block on ``submit(...).result(request_timeout_s)``, so
    concurrent connections coalesce in the scheduler like any other
    concurrent submitters.  Passing a
    :class:`~repro.serve.router.Router` as ``server`` enables the
    multi-model endpoints (see the module docstring's *Router mode*).
    """

    def __init__(
        self,
        server: "UHDServer",
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout_s: float = 30.0,
    ) -> None:
        if request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be > 0, got {request_timeout_s}"
            )
        self._server = server
        self._host = host
        self._requested_port = port
        self._request_timeout_s = request_timeout_s
        self._httpd: Any = None
        self._thread: threading.Thread | None = None
        #: wire counters surfaced through ``server.stats().transports``
        self.stats = TransportStats("http")
        self._attached = False

    def start(self) -> "HttpTransport":
        """Bind the socket and start accepting connections."""
        if self._httpd is not None:
            return self
        from http.server import ThreadingHTTPServer

        if not self._attached:
            attach = getattr(self._server, "attach_transport", None)
            if attach is not None:
                attach(self.stats)
            self._attached = True
        handler = _make_handler(
            self._server, self._request_timeout_s, self.stats
        )
        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), handler
        )
        # join in-flight handler threads on close(): an operator-initiated
        # shutdown answers accepted requests before tearing anything down.
        # daemon_threads must stay False for that — socketserver does not
        # track daemon handler threads, which would make block_on_close a
        # silent no-op; every handler operation is bounded (socket reads
        # by Handler.timeout, predictions by request_timeout_s), so the
        # join cannot hang indefinitely.
        self._httpd.daemon_threads = False
        self._httpd.block_on_close = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="uhd-http-transport",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self._host}:{self.port}"

    def close(self) -> None:
        """Stop accepting connections; wait for in-flight handlers.

        A request already accepted is answered before this returns.  A
        keep-alive connection that is merely *idle* holds its handler
        thread until the client disconnects or the per-request read
        timeout (``request_timeout_s``) elapses — close clients first
        for an instant shutdown (the CLI and benchmarks do).
        """
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "HttpTransport":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


#: ``/models/<id>/predict|stats|healthz`` (router mode); ids are slash-free
_MODEL_PATH_RE = re.compile(r"^/models/([^/]+)/(predict|stats|healthz)$")


def _make_handler(
    server: Any, request_timeout_s: float, stats: TransportStats | None = None
):
    """Build the request-handler class bound to ``server``.

    ``server`` is either a :class:`UHDServer` or a ``Router`` (duck-typed
    on ``deployment``/``models``); router mode adds the ``/models/...``
    endpoints.  A fresh class per transport keeps two transports over
    different servers in one process from sharing state through class
    attributes.  ``stats`` receives per-connection/request/byte counters
    when provided.
    """
    from http.server import BaseHTTPRequestHandler

    is_router = hasattr(server, "deployment") and hasattr(server, "models")
    wire = stats if stats is not None else TransportStats("http")

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "uhd-serve"
        timeout = request_timeout_s  #: bounds socket reads per request

        def log_message(self, *args: Any) -> None:  # pragma: no cover
            pass  # stay quiet; operators have /stats

        # -------------------------------------------------- connection
        def setup(self) -> None:
            super().setup()
            wire.connection_opened()

        def finish(self) -> None:
            try:
                super().finish()
            finally:
                wire.connection_closed()

        # -------------------------------------------------- responses
        def _send_json(self, status: int, payload: dict) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if self.close_connection:
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
            wire.frame_out(len(body))

        def _send_error_json(self, status: int, message: str) -> None:
            # error paths may not have consumed the request body; keeping
            # the HTTP/1.1 connection alive would let those stale bytes be
            # parsed as the next request line, poisoning a perfectly good
            # follow-up — close instead (and say so to the client)
            self.close_connection = True
            if status == 400:
                wire.malformed_frame()
            self._send_json(status, {"error": message})

        # -------------------------------------------------- GET
        def do_GET(self) -> None:
            wire.frame_in(0)
            path = self.path.split("?", 1)[0]
            if path == "/healthz":
                health = server.healthz()
                self._send_json(200 if health["ok"] else 503, health)
            elif path == "/stats":
                stats = server.stats()
                if hasattr(stats, "as_dict"):
                    stats = stats.as_dict()
                self._send_json(200, stats)
            elif path == "/metrics":
                from .metrics import render_metrics

                body = render_metrics(server).encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                if self.close_connection:
                    self.send_header("Connection", "close")
                self.end_headers()
                self.wfile.write(body)
                wire.frame_out(len(body))
            elif is_router and path == "/models":
                self._send_json(200, {"models": server.models()})
            elif is_router and (match := _MODEL_PATH_RE.match(path)):
                model_id, verb = match.group(1), match.group(2)
                if verb == "predict":
                    self._send_error_json(405, "predict requires POST")
                    return
                try:
                    deployment = server.deployment(model_id)
                except ValueError as exc:
                    self._send_error_json(404, str(exc))
                    return
                if verb == "stats":
                    self._send_json(200, deployment.stats())
                else:  # healthz
                    health = deployment.healthz()
                    self._send_json(200 if health["ok"] else 503, health)
            else:
                self._send_error_json(404, f"unknown path {path!r}")

        # -------------------------------------------------- POST
        def _resolve_predict_target(self, path: str):
            """Resolve ``path`` to a predict target.

            Returns ``((submit, num_pixels, model_id), None, None)`` on
            success, or ``(None, status, message)`` for an error reply;
            ``model_id`` is ``None`` in single-server mode.
            """
            if not is_router:
                if path != "/predict":
                    return None, 404, f"unknown path {path!r}"
                return (server.submit, server.num_pixels, None), None, None
            if path == "/predict":
                model_id = server.default_model
            else:
                match = _MODEL_PATH_RE.match(path)
                if match is None or match.group(2) != "predict":
                    return None, 404, f"unknown path {path!r}"
                model_id = match.group(1)
            try:
                deployment = server.deployment(model_id)
            except ValueError as exc:
                return None, 404, str(exc)
            return (deployment.submit, deployment.num_pixels, model_id), None, None

        def do_POST(self) -> None:
            wire.frame_in(int(self.headers.get("Content-Length") or 0))
            path = self.path.split("?", 1)[0]
            target, status, message = self._resolve_predict_target(path)
            if target is None:
                self._send_error_json(status, message)
                return
            submit, num_pixels, model_id = target
            try:
                images, lane, deadline_ms = self._parse_predict_request(
                    num_pixels
                )
            except ValueError as exc:
                self._send_error_json(400, str(exc))
                return
            try:
                labels = submit(
                    images,
                    timeout=request_timeout_s,
                    lane=lane,
                    deadline_ms=deadline_ms,
                ).result(request_timeout_s)
            except DeadlineExpiredError as exc:
                self._send_error_json(504, str(exc))
                return
            except TimeoutError:
                self._send_error_json(
                    504, f"prediction exceeded {request_timeout_s}s"
                )
                return
            except ValueError as exc:  # unknown lane, wrong pixel count
                self._send_error_json(400, str(exc))
                return
            except ServeError as exc:
                self._send_error_json(503, str(exc))
                return
            accept = (self.headers.get("Accept") or "").split(";")[0].strip()
            if accept == "application/octet-stream":
                # raw int64 little-endian label bytes — skips the float->
                # decimal->parse JSON round trip entirely (the cheap first
                # rung of the binary fast lane; see docs/serving.md)
                body = labels.astype("<i8", copy=False).tobytes()
                self.send_response(200)
                self.send_header("Content-Type", "application/octet-stream")
                self.send_header("Content-Length", str(len(body)))
                self.send_header("X-UHD-Rows", str(int(labels.shape[0])))
                if model_id is not None:
                    self.send_header("X-UHD-Model", model_id)
                if self.close_connection:
                    self.send_header("Connection", "close")
                self.end_headers()
                self.wfile.write(body)
                wire.frame_out(len(body))
                return
            payload = {
                "labels": [int(label) for label in labels],
                "rows": int(labels.shape[0]),
                "lane": lane,
            }
            if model_id is not None:
                payload["model"] = model_id
            self._send_json(200, payload)

        # -------------------------------------------------- parsing
        def _query_params(self) -> dict[str, str]:
            from urllib.parse import parse_qsl

            if "?" not in self.path:
                return {}
            return dict(parse_qsl(self.path.split("?", 1)[1]))

        def _parse_predict_request(self, num_pixels: int | None):
            """(images, lane, deadline_ms) from the request, or ValueError."""
            # consume the body FIRST: an early validation error must not
            # leave unread bytes on a keep-alive socket
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length > 0 else b""
            params = self._query_params()
            lane = params.get("lane")
            deadline_ms: float | None = None
            if "deadline_ms" in params:
                try:
                    deadline_ms = float(params["deadline_ms"])
                except ValueError:
                    raise ValueError(
                        f"deadline_ms must be a number, got "
                        f"{params['deadline_ms']!r}"
                    ) from None
            if not body:
                raise ValueError("empty request body")
            content_type = (self.headers.get("Content-Type") or "").split(";")[0]
            if content_type == "application/octet-stream":
                images = self._decode_raw(body, num_pixels)
            else:
                images, lane, deadline_ms = self._decode_json(
                    body, lane, deadline_ms
                )
            return images, lane, deadline_ms

        def _decode_raw(self, body: bytes, num_pixels: int | None) -> np.ndarray:
            """Raw uint8 image bytes -> (rows, num_pixels)."""
            if num_pixels is None or num_pixels <= 0:
                raise ValueError("server has no pixel geometry yet")
            rows_header = self.headers.get("X-UHD-Rows")
            if rows_header is not None:
                try:
                    rows = int(rows_header)
                except ValueError:
                    raise ValueError(
                        f"X-UHD-Rows must be an integer, got {rows_header!r}"
                    ) from None
            elif len(body) % num_pixels == 0:
                rows = len(body) // num_pixels
            else:
                raise ValueError(
                    f"body of {len(body)} bytes is not a multiple of "
                    f"{num_pixels} pixels; send (rows * pixels) uint8 bytes "
                    "or an X-UHD-Rows header"
                )
            if rows * num_pixels != len(body):
                raise ValueError(
                    f"X-UHD-Rows={rows} x {num_pixels} pixels != "
                    f"{len(body)} body bytes"
                )
            return np.frombuffer(body, dtype=np.uint8).reshape(rows, num_pixels)

        def _decode_json(self, body, lane, deadline_ms):
            """JSON body -> (uint8 images, lane, deadline_ms); body wins."""
            try:
                payload = json.loads(body)
            except json.JSONDecodeError as exc:
                raise ValueError(f"request body is not valid JSON: {exc}") from None
            if not isinstance(payload, dict) or "images" not in payload:
                raise ValueError('JSON body must be {"images": [...], ...}')
            if "lane" in payload and payload["lane"] is not None:
                lane = payload["lane"]
                if not isinstance(lane, str):
                    raise ValueError(f"lane must be a string, got {lane!r}")
            if "deadline_ms" in payload and payload["deadline_ms"] is not None:
                deadline_ms = payload["deadline_ms"]
                if not isinstance(deadline_ms, (int, float)):
                    raise ValueError(
                        f"deadline_ms must be a number, got {deadline_ms!r}"
                    )
            try:
                images = np.asarray(payload["images"])
            except (ValueError, TypeError) as exc:
                raise ValueError(f"images are not a rectangular array: {exc}") from None
            if images.size and (
                not np.issubdtype(images.dtype, np.integer)
                or images.min() < 0
                or images.max() > 255
            ):
                raise ValueError(
                    "images must be integers in [0, 255] (uint8 intensities)"
                )
            # uint8 is exactly what an in-process caller passes, which is
            # what keeps HTTP-served labels bit-exact with direct predict
            return images.astype(np.uint8, copy=False), lane, deadline_ms

    return Handler
