"""Priority-lane scheduler: the queueing/coalescing policy of the request path.

Extracted from :class:`~repro.serve.batcher.MicroBatcher` (which is now a
single-lane compatibility shim over this class), the :class:`Scheduler`
owns every decision about *when* a queued request becomes a dispatched
batch and *which* traffic class gets served first:

* **Named priority lanes.**  Each :class:`LaneConfig` is an independent
  FIFO with its own ``max_batch`` (rows per dispatched batch),
  ``max_wait_ms`` (coalescing window *and* staleness bound — see below),
  ``weight`` (drain share) and ``queue_depth`` (backpressure bound).
  Batches never mix lanes: an ``interactive`` batch is sized and timed
  by the interactive lane's knobs, a ``bulk`` batch by the bulk lane's.
* **Weighted anti-starvation draining.**  When several lanes hold work,
  the scheduler serves the lane with the smallest *virtual time* —
  stride scheduling: serving ``rows`` advances a lane's clock by
  ``rows / weight``, so a weight-4 lane drains 4 rows for every 1 a
  weight-1 lane drains, and an idle lane's clock is floored to the
  busy lanes' so it cannot bank unbounded credit.
* **Urgency preemption.**  A lane whose *oldest* queued item has waited
  longer than the lane's own ``max_wait_ms`` is *urgent* and is served
  before any weighted choice; while a batch for another lane is holding
  its coalescing window open, the window is cut short the moment a
  different lane becomes urgent.  This is the bound the serving layer
  advertises: an interactive request's scheduling delay is governed by
  the interactive lane's ``max_wait_ms``, never by the bulk lane's.
* **Deadlines fail loudly.**  ``put(..., deadline=...)`` attaches an
  absolute ``time.monotonic()`` deadline; an item still queued when it
  passes is *never served late* — it is removed (mid-queue included)
  and handed to the ``on_expired`` callback, and counted per lane in
  :meth:`stats`.

FIFO order within a lane, the bounded/backpressure ``put``, the empty
heartbeat, and close-is-drain-then-stop semantics are all inherited
verbatim from the original batcher — with a single lane and no
deadlines this class *is* the old ``MicroBatcher``, which is how the
shim keeps its existing test matrix bit-for-bit green.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Generic, Protocol, Sequence, TypeVar

from .histogram import HistogramSnapshot, LatencyHistogram

__all__ = [
    "Batchable",
    "LaneConfig",
    "LaneStats",
    "ScheduledBatch",
    "Scheduler",
]


class Batchable(Protocol):
    """Anything the scheduler can coalesce: exposes its row count."""

    @property
    def rows(self) -> int: ...


ItemT = TypeVar("ItemT", bound=Batchable)


@dataclass(frozen=True)
class LaneConfig:
    """One named traffic class inside a :class:`Scheduler`.

    ``max_batch`` / ``max_wait_ms`` / ``queue_depth`` may be ``None``
    when the lane is declared inside a
    :class:`~repro.serve.types.ServeConfig`, meaning "inherit the
    server-wide knob" — :meth:`resolved` fills them in.  A
    :class:`Scheduler` only accepts fully resolved lanes.

    ``weight`` is the lane's drain share relative to its peers: under
    contention a weight-4 lane is handed ~4 rows for every row a
    weight-1 lane gets (exact in the long run, bursty per batch since
    batches never mix lanes).
    """

    name: str
    max_batch: int | None = None
    max_wait_ms: float | None = None
    weight: float = 1.0
    queue_depth: int | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"lane name must be a non-empty string, got {self.name!r}")
        if self.max_batch is not None and self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms is not None and self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if not self.weight > 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")

    def resolved(
        self, max_batch: int, max_wait_ms: float, queue_depth: int
    ) -> "LaneConfig":
        """This lane with every ``None`` knob replaced by the given default."""
        return replace(
            self,
            max_batch=self.max_batch if self.max_batch is not None else max_batch,
            max_wait_ms=(
                self.max_wait_ms if self.max_wait_ms is not None else max_wait_ms
            ),
            queue_depth=(
                self.queue_depth if self.queue_depth is not None else queue_depth
            ),
        )


@dataclass(frozen=True)
class LaneStats:
    """Point-in-time counters for one lane (see :meth:`Scheduler.stats`).

    ``latency`` is the lane's scheduling-latency distribution — the
    enqueue-to-dispatch wait of every item the lane has served
    (coalescing window included; in the queue-less in-process server
    mode it is the request's synchronous service time instead).
    Expired items never enter it: they are counted in ``expired`` and
    mirrored in ``latency.excluded``, so quantiles are computed over
    served traffic only.
    """

    name: str
    depth: int  #: items currently queued
    queued_rows: int  #: rows across those items
    submitted: int  #: items accepted by put() since construction
    served: int  #: items handed out in batches
    served_rows: int
    batches: int  #: batches dispatched from this lane
    expired: int  #: items failed on deadline while queued (never served)
    #: latency distribution of served items (expired ones excluded)
    latency: HistogramSnapshot = field(default_factory=HistogramSnapshot.empty)


class ScheduledBatch(Generic[ItemT]):
    """One drained batch: the lane it came from plus its items.

    ``lane`` is ``None`` exactly for the empty heartbeat (a poll window
    that expired with nothing queued); ``bool(batch)`` is False then.
    """

    __slots__ = ("lane", "items")

    def __init__(self, lane: str | None, items: list[ItemT]) -> None:
        self.lane = lane
        self.items = items

    @property
    def rows(self) -> int:
        return sum(item.rows for item in self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:
        return bool(self.items)

    def __iter__(self):
        return iter(self.items)


class _Entry:
    """One queued item plus its scheduling metadata."""

    __slots__ = ("item", "rows", "enqueued", "deadline")

    def __init__(self, item, rows: int, enqueued: float, deadline: float | None):
        self.item = item
        self.rows = rows
        self.enqueued = enqueued
        self.deadline = deadline


class _LaneState:
    """Mutable per-lane scheduler state (internal)."""

    __slots__ = (
        "config", "q", "vtime", "deadlined",
        "submitted", "served", "served_rows", "batches", "expired", "hist",
    )

    def __init__(self, config: LaneConfig) -> None:
        self.config = config
        self.q: deque[_Entry] = deque()
        self.vtime = 0.0  #: stride-scheduling virtual clock
        self.deadlined = 0  #: queued entries carrying a deadline
        self.submitted = 0
        self.served = 0
        self.served_rows = 0
        self.batches = 0
        self.expired = 0
        self.hist = LatencyHistogram()  #: enqueue-to-dispatch wait per item

    @property
    def max_wait_s(self) -> float:
        return self.config.max_wait_ms / 1e3

    def urgency_due(self) -> float | None:
        """Absolute time the oldest queued item exceeds this lane's window."""
        if not self.q:
            return None
        return self.q[0].enqueued + self.max_wait_s


class Scheduler(Generic[ItemT]):
    """Multi-lane bounded queue with weighted, urgency-aware draining.

    ``lanes`` orders the traffic classes; the first is the default lane
    :meth:`put` uses when none is named.  ``on_expired(item, lane_name)``
    is invoked (outside the scheduler lock, from whichever thread called
    :meth:`next_batch`) for every item whose deadline passed while it
    was queued; such items are never returned in a batch.
    """

    def __init__(
        self,
        lanes: Sequence[LaneConfig],
        on_expired: Callable[[ItemT, str], None] | None = None,
    ) -> None:
        lanes = tuple(lanes)
        if not lanes:
            raise ValueError("Scheduler needs at least one lane")
        names = [lane.name for lane in lanes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate lane names: {names}")
        for lane in lanes:
            if lane.max_batch is None or lane.max_wait_ms is None or (
                lane.queue_depth is None
            ):
                raise ValueError(
                    f"lane {lane.name!r} is not fully resolved (use "
                    "LaneConfig.resolved() to fill inherited knobs)"
                )
        self._states = [_LaneState(lane) for lane in lanes]
        self._by_name = {state.config.name: state for state in self._states}
        self._vclock = 0.0  #: system virtual time (stride scheduling)
        self.default_lane = lanes[0].name
        self._on_expired = on_expired
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return sum(len(state.q) for state in self._states)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def lane_names(self) -> tuple[str, ...]:
        return tuple(state.config.name for state in self._states)

    def lane_config(self, lane: str | None = None) -> LaneConfig:
        """The :class:`LaneConfig` for ``lane`` (default lane when None)."""
        state = self._resolve_lane(lane)
        return state.config

    def stats(self) -> tuple[LaneStats, ...]:
        """Per-lane counters, in lane declaration order."""
        with self._lock:
            return tuple(
                LaneStats(
                    name=state.config.name,
                    depth=len(state.q),
                    queued_rows=sum(entry.rows for entry in state.q),
                    submitted=state.submitted,
                    served=state.served,
                    served_rows=state.served_rows,
                    batches=state.batches,
                    expired=state.expired,
                    latency=state.hist.snapshot(),
                )
                for state in self._states
            )

    def _resolve_lane(self, lane: str | None) -> _LaneState:
        name = self.default_lane if lane is None else lane
        state = self._by_name.get(name)
        if state is None:
            raise ValueError(
                f"unknown lane {name!r}; configured lanes: "
                f"{', '.join(self.lane_names)}"
            )
        return state

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def put(
        self,
        item: ItemT,
        lane: str | None = None,
        deadline: float | None = None,
        timeout: float | None = None,
    ) -> None:
        """Enqueue ``item`` on ``lane``, blocking while that lane is full.

        ``deadline`` is an absolute ``time.monotonic()`` instant; an item
        still queued when it passes is expired instead of served.  Raises
        ``ValueError`` for an unknown lane or an item wider than the
        lane's ``max_batch`` (the caller owns splitting),
        ``RuntimeError`` after :meth:`close`, and ``TimeoutError`` if
        ``timeout`` elapses while blocked on a full lane.
        """
        state = self._resolve_lane(lane)
        rows = item.rows
        if rows > state.config.max_batch:
            raise ValueError(
                f"item has {rows} rows > max_batch={state.config.max_batch} "
                f"for lane {state.config.name!r}; split it before enqueueing "
                "(UHDServer.submit does)"
            )
        wait_deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                if self._closed:
                    raise RuntimeError("scheduler is closed")
                if len(state.q) < state.config.queue_depth:
                    break
                remaining = (
                    None if wait_deadline is None
                    else wait_deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"queue_depth={state.config.queue_depth} items already "
                        f"waiting in lane {state.config.name!r}"
                    )
                self._not_full.wait(remaining)
            state.q.append(_Entry(item, rows, time.monotonic(), deadline))
            state.submitted += 1
            if deadline is not None:
                state.deadlined += 1
            self._not_empty.notify_all()

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def next_batch(self, poll_s: float = 0.1) -> "ScheduledBatch[ItemT] | None":
        """Drain the next batch according to lane policy.

        Blocks up to ``poll_s`` for a first item anywhere; an expired
        empty window returns an empty :class:`ScheduledBatch` (the
        heartbeat the dispatcher uses to re-check its own liveness).
        Returns ``None`` exactly when the scheduler is closed *and*
        fully drained.  Expired-deadline items encountered along the way
        are reported through ``on_expired`` right before returning.
        """
        expired: list[tuple[ItemT, str]] = []
        try:
            with self._lock:
                return self._next_batch_locked(poll_s, expired)
        finally:
            if self._on_expired is not None:
                for item, lane_name in expired:
                    self._on_expired(item, lane_name)

    def _next_batch_locked(
        self, poll_s: float, expired: list
    ) -> "ScheduledBatch[ItemT] | None":
        poll_deadline = time.monotonic() + poll_s
        while True:
            now = time.monotonic()
            self._expire_locked(now, expired)
            picked = self._pick_locked(now)
            if picked is not None:
                break
            if self._closed and not any(s.q for s in self._states):
                return None
            remaining = poll_deadline - now
            if remaining <= 0:
                return ScheduledBatch(None, [])
            wake = self._nearest_deadline_locked()
            if wake is not None and wake <= now:
                continue  # a deadline just passed: expire it first
            timeout = remaining if wake is None else min(remaining, wake - now)
            self._not_empty.wait(timeout)

        state = picked
        cfg = state.config
        entry = self._pop_head_locked(state, now)
        batch = [entry.item]
        rows = entry.rows
        served = 1
        flush_at = time.monotonic() + state.max_wait_s
        while rows < cfg.max_batch:
            now = time.monotonic()
            self._expire_locked(now, expired)
            if not state.q:
                if self._closed or flush_at <= now:
                    break
                # hold the window open for more of this lane's traffic —
                # but cut it short the moment another lane turns urgent
                # (its own max_wait_ms exceeded) so one lane's window can
                # never stretch a peer's latency bound
                wake = flush_at
                urgency = self._nearest_urgency_locked(exclude=state)
                if urgency is not None:
                    if urgency <= now:
                        break
                    wake = min(wake, urgency)
                deadline = self._nearest_deadline_locked()
                if deadline is not None and deadline > now:
                    wake = min(wake, deadline)
                self._not_empty.wait(max(wake - now, 0.0))
                continue
            head = state.q[0]
            if rows + head.rows > cfg.max_batch:
                break  # leave the overflow item for the next batch
            self._pop_head_locked(state, now)
            batch.append(head.item)
            rows += head.rows
            served += 1
        # stride accounting: the system clock only moves forward, and a
        # lane's clock is clamped up to it before the drain is charged —
        # so a lane that sat idle re-enters at "now", banking no credit
        self._vclock = max(self._vclock, state.vtime)
        state.vtime = max(state.vtime, self._vclock) + rows / cfg.weight
        state.served += served
        state.served_rows += rows
        state.batches += 1
        self._not_full.notify_all()
        return ScheduledBatch(cfg.name, batch)

    def _pop_head_locked(self, state: _LaneState, now: float) -> _Entry:
        entry = state.q.popleft()
        if entry.deadline is not None:
            state.deadlined -= 1
        # dispatch latency: how long the item waited from put() to being
        # drained into a batch (the lane's coalescing window included)
        state.hist.record(now - entry.enqueued)
        return entry

    def _expire_locked(self, now: float, expired: list) -> None:
        """Remove every queued entry whose deadline passed (mid-queue too)."""
        for state in self._states:
            if not state.deadlined:
                continue
            kept: deque[_Entry] = deque()
            for entry in state.q:
                if entry.deadline is not None and entry.deadline <= now:
                    state.deadlined -= 1
                    state.expired += 1
                    # never recorded: an expired item has no service
                    # latency, only a refusal — keep quantiles clean
                    state.hist.exclude()
                    expired.append((entry.item, state.config.name))
                else:
                    kept.append(entry)
            if len(kept) != len(state.q):
                state.q = kept
                self._not_full.notify_all()

    def _pick_locked(self, now: float) -> _LaneState | None:
        """The lane to drain next: most-overdue urgent lane, else min vtime."""
        candidates = [s for s in self._states if s.q]
        if not candidates:
            return None
        best = None
        best_overdue = 0.0
        for state in candidates:
            overdue = now - (state.q[0].enqueued + state.max_wait_s)
            if overdue >= 0 and (best is None or overdue > best_overdue):
                best = state
                best_overdue = overdue
        if best is not None:
            return best
        return min(candidates, key=lambda s: s.vtime)

    def _nearest_urgency_locked(self, exclude: _LaneState) -> float | None:
        """Earliest instant any *other* non-empty lane becomes urgent."""
        nearest = None
        for state in self._states:
            if state is exclude:
                continue
            due = state.urgency_due()
            if due is not None and (nearest is None or due < nearest):
                nearest = due
        return nearest

    def _nearest_deadline_locked(self) -> float | None:
        """Earliest queued item deadline across all lanes (expiry wake-up)."""
        nearest = None
        for state in self._states:
            if not state.deadlined:
                continue
            for entry in state.q:
                if entry.deadline is not None and (
                    nearest is None or entry.deadline < nearest
                ):
                    nearest = entry.deadline
        return nearest

    def close(self) -> None:
        """Stop accepting new items; queued ones still drain via ``next_batch``."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
