"""Prometheus text exposition for the serving stack (stdlib-only).

:func:`render_metrics` turns a live :class:`~repro.serve.server.UHDServer`
or :class:`~repro.serve.router.Router` into the Prometheus text format
0.0.4 the ``GET /metrics`` endpoint serves — ``# HELP`` / ``# TYPE``
headers, counters/gauges, and one classic histogram per lane whose
``_bucket{le=...}`` lines are the *cumulative* view of the fixed
log-spaced buckets in :mod:`repro.serve.histogram`.  Everything is
derived from the same :meth:`stats` snapshots ``/stats`` serves, so the
two endpoints can never disagree.

:func:`parse_exposition` is the matching strict parser.  It exists so
tests and CI can validate conformance without a Prometheus binary:
it checks HELP/TYPE placement, label syntax, histogram completeness
(``+Inf`` bucket present, buckets cumulative and monotone,
``_count`` == the ``+Inf`` bucket) and rejects duplicate samples.

Metric names
------------
Single-server mode (no labels unless noted):

====================================  =======  =====================================
``uhd_requests_total``                counter  ``submit()`` calls accepted
``uhd_images_total``                  counter  images across those requests
``uhd_batches_total``                 counter  dispatched batches / executed chunks
``uhd_expired_total``                 counter  request parts failed on a deadline
``uhd_restarts_total``                counter  worker respawns (crash recovery)
``uhd_workers``                       gauge    worker processes (0 = in-process)
``uhd_mean_batch_size``               gauge    coalescing health (images/batch)
``uhd_lane_queue_depth``              gauge    items queued, per ``{lane}``
``uhd_lane_queued_rows``              gauge    rows across those items, per ``{lane}``
``uhd_lane_served_total``             counter  items served, per ``{lane}``
``uhd_lane_served_rows_total``        counter  rows served, per ``{lane}``
``uhd_lane_expired_total``            counter  items expired, per ``{lane}``
``uhd_lane_latency_seconds``          histogram  scheduling latency, per ``{lane}``
``uhd_transport_connections``         gauge    open connections, per ``{transport}``
``uhd_transport_connections_total``   counter  connections accepted, per ``{transport}``
``uhd_transport_frames_total``        counter  frames/requests, per ``{transport,direction}``
``uhd_transport_bytes_total``         counter  payload bytes, per ``{transport,direction}``
``uhd_transport_malformed_frames_total``  counter  unparseable frames, per ``{transport}``
``uhd_cache_encoders``                gauge    encoder-cache entries (process-wide)
``uhd_cache_table_bytes``             gauge    gather-table bytes cached
``uhd_cache_publications``            gauge    live table-store publications
====================================  =======  =====================================

Router mode keeps the same families but adds a ``model`` label to every
per-model/per-lane sample (lane latency histograms are **merged across
live replicas and retired generations**, so quantiles survive hot
reloads) and grows the fleet gauges:

``uhd_deployment_generation{model}``, ``uhd_deployment_target_replicas
{model}``, ``uhd_deployment_ready_replicas{model}``,
``uhd_deployment_retired_replicas_total{model}``.
"""

from __future__ import annotations

from typing import Any, Iterable

from .histogram import BUCKET_BOUNDS_S, HistogramSnapshot

__all__ = ["render_metrics", "parse_exposition"]

_PREFIX = "uhd"

#: HELP text per family (also the single source the renderer emits from;
#: the parser only checks placement, not wording)
_HELP = {
    "uhd_requests_total": "Prediction requests accepted by submit().",
    "uhd_images_total": "Images across all accepted requests.",
    "uhd_batches_total": "Batches dispatched to workers (or executed in-process).",
    "uhd_expired_total": "Request parts failed on an expired deadline.",
    "uhd_restarts_total": "Worker processes respawned after a crash.",
    "uhd_workers": "Worker processes serving (0 means in-process mode).",
    "uhd_mean_batch_size": "Mean images per dispatched batch (coalescing health).",
    "uhd_lane_queue_depth": "Items currently queued in the lane.",
    "uhd_lane_queued_rows": "Rows across the items currently queued in the lane.",
    "uhd_lane_served_total": "Items the lane has handed out in batches.",
    "uhd_lane_served_rows_total": "Rows the lane has handed out in batches.",
    "uhd_lane_expired_total": "Items failed on deadline while queued in the lane.",
    "uhd_lane_latency_seconds": (
        "Scheduling latency of served items (expired items are excluded)."
    ),
    "uhd_cache_encoders": "Warm encoders in the process-wide cache.",
    "uhd_cache_table_bytes": "Gather-table bytes held by cached encoders.",
    "uhd_cache_publications": "Live gather-table publications (mmap/shm stores).",
    "uhd_transport_connections": (
        "Client connections currently open, per transport kind."
    ),
    "uhd_transport_connections_total": (
        "Client connections accepted since start, per transport kind."
    ),
    "uhd_transport_frames_total": (
        "Frames (binary) or requests (http) moved, per transport and "
        "direction (in/out)."
    ),
    "uhd_transport_bytes_total": (
        "Payload bytes moved, per transport and direction (in/out)."
    ),
    "uhd_transport_malformed_frames_total": (
        "Frames/requests rejected as unparseable, per transport kind."
    ),
    "uhd_deployment_generation": "Current model generation (bumped by hot reload).",
    "uhd_deployment_target_replicas": "Replica count the deployment converges to.",
    "uhd_deployment_ready_replicas": "Replicas currently in the ready state.",
    "uhd_deployment_retired_replicas_total": (
        "Replicas retired across all past generations."
    ),
}

_TYPE = {
    name: (
        "histogram"
        if name.endswith("_seconds")
        else "counter" if name.endswith("_total") else "gauge"
    )
    for name in _HELP
}


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in labels.items()
    )
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Exposition:
    """Accumulates samples per family, renders HELP/TYPE-grouped text."""

    def __init__(self) -> None:
        self._samples: dict[str, list[tuple[str, dict[str, str], float]]] = {}

    def add(self, family: str, labels: dict[str, str], value: float) -> None:
        if family not in _HELP:
            raise KeyError(f"unregistered metric family {family!r}")
        self._samples.setdefault(family, []).append((family, labels, value))

    def add_histogram(
        self, family: str, labels: dict[str, str], snap: HistogramSnapshot
    ) -> None:
        """Classic Prometheus histogram: cumulative buckets + sum + count."""
        if family not in _HELP:
            raise KeyError(f"unregistered metric family {family!r}")
        rows = self._samples.setdefault(family, [])
        cumulative = 0
        for bound, count in zip(BUCKET_BOUNDS_S, snap.counts):
            cumulative += count
            rows.append(
                (
                    family + "_bucket",
                    {**labels, "le": _fmt_value(bound)},
                    float(cumulative),
                )
            )
        rows.append(
            (family + "_bucket", {**labels, "le": "+Inf"}, float(snap.count))
        )
        rows.append((family + "_sum", dict(labels), snap.sum_s))
        rows.append((family + "_count", dict(labels), float(snap.count)))

    def render(self) -> str:
        lines: list[str] = []
        for family, rows in self._samples.items():
            lines.append(f"# HELP {family} {_HELP[family]}")
            lines.append(f"# TYPE {family} {_TYPE[family]}")
            for name, labels, value in rows:
                lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(value)}")
        return "\n".join(lines) + "\n"


def _server_counters(exp: _Exposition, stats: Any, labels: dict[str, str]) -> None:
    """Top-level counters/gauges shared by server mode and per-model rows.

    ``stats`` duck-types: a ``ServerStats`` dataclass (single server) or
    a deployment's aggregated dict (router) — both carry the same keys.
    """
    get = (
        stats.get
        if isinstance(stats, dict)
        else lambda key, default=None: getattr(stats, key, default)
    )
    exp.add("uhd_requests_total", labels, get("requests", 0))
    exp.add("uhd_images_total", labels, get("images", 0))
    exp.add("uhd_batches_total", labels, get("batches", 0))
    exp.add("uhd_expired_total", labels, get("expired", 0))
    exp.add("uhd_restarts_total", labels, get("restarts", 0))


def _lane_rows(
    exp: _Exposition, lanes: Iterable[Any], labels: dict[str, str]
) -> None:
    """Per-lane gauges/counters/histogram; accepts LaneStats or dicts."""
    for lane in lanes:
        get = (
            lane.get
            if isinstance(lane, dict)
            else lambda key, default=None, _l=lane: getattr(_l, key, default)
        )
        lane_labels = {**labels, "lane": get("name")}
        exp.add("uhd_lane_queue_depth", lane_labels, get("depth", 0))
        exp.add("uhd_lane_queued_rows", lane_labels, get("queued_rows", 0))
        exp.add("uhd_lane_served_total", lane_labels, get("served", 0))
        exp.add("uhd_lane_served_rows_total", lane_labels, get("served_rows", 0))
        exp.add("uhd_lane_expired_total", lane_labels, get("expired", 0))
        latency = get("latency")
        if isinstance(latency, HistogramSnapshot):
            exp.add_histogram("uhd_lane_latency_seconds", lane_labels, latency)


def _transport_rows(exp: _Exposition, snapshots: Iterable[Any]) -> None:
    """Per-transport wire counters; one label set per transport kind."""
    for snap in snapshots:
        labels = {"transport": snap.name}
        exp.add("uhd_transport_connections", labels, snap.connections_open)
        exp.add(
            "uhd_transport_connections_total", labels, snap.connections_total
        )
        exp.add(
            "uhd_transport_frames_total",
            {**labels, "direction": "in"},
            snap.frames_in,
        )
        exp.add(
            "uhd_transport_frames_total",
            {**labels, "direction": "out"},
            snap.frames_out,
        )
        exp.add(
            "uhd_transport_bytes_total",
            {**labels, "direction": "in"},
            snap.bytes_in,
        )
        exp.add(
            "uhd_transport_bytes_total",
            {**labels, "direction": "out"},
            snap.bytes_out,
        )
        exp.add(
            "uhd_transport_malformed_frames_total", labels, snap.malformed
        )


def _cache_rows(exp: _Exposition, cache: Any) -> None:
    if cache is None:
        return
    exp.add("uhd_cache_encoders", {}, cache.entries)
    exp.add("uhd_cache_table_bytes", {}, cache.table_bytes)
    exp.add("uhd_cache_publications", {}, len(cache.published))


def render_metrics(server: Any) -> str:
    """Prometheus text exposition (0.0.4) for a server or router.

    ``server`` is duck-typed exactly like the HTTP transport does it: a
    ``Router`` exposes ``deployment``/``models``, anything else is
    treated as a single :class:`UHDServer`.  Always ends in a newline;
    serve with ``Content-Type: text/plain; version=0.0.4``.
    """
    exp = _Exposition()
    is_router = hasattr(server, "deployment") and hasattr(server, "models")
    if not is_router:
        stats = server.stats()
        _server_counters(exp, stats, {})
        exp.add("uhd_workers", {}, stats.workers)
        exp.add("uhd_mean_batch_size", {}, stats.mean_batch_size)
        _lane_rows(exp, stats.lanes, {})
        _transport_rows(exp, getattr(stats, "transports", ()))
        _cache_rows(exp, getattr(stats, "cache", None))
        return exp.render()

    for model_id, deployment in server.deployments.items():
        labels = {"model": model_id}
        stats = deployment.stats()
        _server_counters(exp, stats, labels)
        exp.add("uhd_deployment_generation", labels, stats["generation"])
        exp.add(
            "uhd_deployment_target_replicas", labels, stats["target_replicas"]
        )
        exp.add("uhd_deployment_ready_replicas", labels, stats["ready_replicas"])
        exp.add(
            "uhd_deployment_retired_replicas_total",
            labels,
            stats["retired_replicas"],
        )
        # lane dicts from deployment.stats() carry serialized latency; use
        # the un-serialized merged snapshots for the histogram buckets
        snapshots = deployment.lane_snapshots()
        lanes = [
            {**lane, "latency": snapshots.get(lane["name"])}
            for lane in stats["lanes"]
        ]
        _lane_rows(exp, lanes, labels)
    # transports front the router as a whole, not any one deployment
    transport_stats = getattr(server, "transport_stats", None)
    if transport_stats is not None:
        _transport_rows(exp, transport_stats())
    # the encoder cache is process-wide, not per-deployment
    from .cache import encoder_cache

    _cache_rows(exp, encoder_cache().stats())
    return exp.render()


# --------------------------------------------------------------- parser


def _parse_sample_line(line: str) -> tuple[str, dict[str, str], float]:
    """One sample line -> (name, labels, value); strict, raises ValueError."""
    rest = line
    if "{" in rest:
        name, rest = rest.split("{", 1)
        if "}" not in rest:
            raise ValueError(f"unterminated label set: {line!r}")
        label_blob, rest = rest.rsplit("}", 1)
        labels = _parse_labels(label_blob, line)
    else:
        parts = rest.split(None, 1)
        if len(parts) != 2:
            raise ValueError(f"sample line needs a value: {line!r}")
        name, rest = parts[0], " " + parts[1]
        labels = {}
    if not _is_metric_name(name):
        raise ValueError(f"invalid metric name {name!r} in line {line!r}")
    value_text = rest.strip()
    if not value_text:
        raise ValueError(f"sample line needs a value: {line!r}")
    value_token = value_text.split()[0]  # ignore an optional timestamp
    try:
        value = float(value_token)
    except ValueError:
        raise ValueError(
            f"invalid sample value {value_token!r} in line {line!r}"
        ) from None
    return name, labels, value


def _is_metric_name(name: str) -> bool:
    if not name:
        return False
    if not (name[0].isalpha() or name[0] in "_:"):
        return False
    return all(ch.isalnum() or ch in "_:" for ch in name)


def _parse_labels(blob: str, line: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(blob):
        if blob[i] == ",":
            i += 1
            continue
        eq = blob.find("=", i)
        if eq < 0:
            raise ValueError(f"malformed labels in line {line!r}")
        key = blob[i:eq].strip()
        if not _is_metric_name(key):
            raise ValueError(f"invalid label name {key!r} in line {line!r}")
        if eq + 1 >= len(blob) or blob[eq + 1] != '"':
            raise ValueError(f"unquoted label value in line {line!r}")
        # scan the quoted value honouring backslash escapes
        j = eq + 2
        chars: list[str] = []
        while j < len(blob):
            ch = blob[j]
            if ch == "\\":
                if j + 1 >= len(blob):
                    raise ValueError(f"dangling escape in line {line!r}")
                nxt = blob[j + 1]
                chars.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
                j += 2
                continue
            if ch == '"':
                break
            chars.append(ch)
            j += 1
        else:
            raise ValueError(f"unterminated label value in line {line!r}")
        if key in labels:
            raise ValueError(f"duplicate label {key!r} in line {line!r}")
        labels[key] = "".join(chars)
        i = j + 1
    return labels


def _base_family(name: str, types: dict[str, str]) -> str:
    """Map a sample name to its family (histogram suffixes fold back)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return name


def parse_exposition(text: str) -> dict[str, dict]:
    """Parse (and validate) Prometheus text format 0.0.4.

    Returns ``{family: {"help": str|None, "type": str, "samples":
    [(name, labels, value), ...]}}``.  Raises :class:`ValueError` on any
    conformance violation: samples before their TYPE line, malformed
    labels, duplicate series, non-cumulative histogram buckets, a
    histogram missing its ``+Inf`` bucket or whose ``_count`` disagrees
    with it.  Strict on purpose — this is the CI gate for ``/metrics``.
    """
    families: dict[str, dict] = {}
    types: dict[str, str] = {}
    seen_series: set[tuple[str, tuple[tuple[str, str], ...]]] = set()
    for raw_line in text.split("\n"):
        line = raw_line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(None, 1)
            if not parts or not _is_metric_name(parts[0]):
                raise ValueError(f"malformed HELP line: {line!r}")
            family = parts[0]
            entry = families.setdefault(
                family, {"help": None, "type": "untyped", "samples": []}
            )
            if entry["samples"]:
                raise ValueError(f"HELP after samples for {family!r}")
            entry["help"] = parts[1] if len(parts) > 1 else ""
        elif line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split()
            if len(parts) != 2 or not _is_metric_name(parts[0]):
                raise ValueError(f"malformed TYPE line: {line!r}")
            family, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"unknown metric type {kind!r}: {line!r}")
            entry = families.setdefault(
                family, {"help": None, "type": "untyped", "samples": []}
            )
            if entry["samples"]:
                raise ValueError(f"TYPE after samples for {family!r}")
            entry["type"] = kind
            types[family] = kind
        elif line.startswith("#"):
            continue  # plain comment
        else:
            name, labels, value = _parse_sample_line(line)
            family = _base_family(name, types)
            if family not in families:
                raise ValueError(
                    f"sample {name!r} appears before its # TYPE line"
                )
            series = (name, tuple(sorted(labels.items())))
            if series in seen_series:
                raise ValueError(f"duplicate series {name}{labels}")
            seen_series.add(series)
            families[family]["samples"].append((name, labels, value))
    for family, entry in families.items():
        if entry["type"] == "histogram":
            _validate_histogram(family, entry["samples"])
    return families


def _validate_histogram(
    family: str, samples: list[tuple[str, dict[str, str], float]]
) -> None:
    """Cumulative-bucket and completeness invariants per label set."""
    by_series: dict[tuple, dict] = {}
    for name, labels, value in samples:
        key = tuple(
            sorted((k, v) for k, v in labels.items() if k != "le")
        )
        entry = by_series.setdefault(key, {"buckets": [], "sum": None, "count": None})
        if name == family + "_bucket":
            if "le" not in labels:
                raise ValueError(f"{family} bucket without le label: {labels}")
            entry["buckets"].append((labels["le"], value))
        elif name == family + "_sum":
            entry["sum"] = value
        elif name == family + "_count":
            entry["count"] = value
        else:
            raise ValueError(f"unexpected histogram sample {name!r}")
    for key, entry in by_series.items():
        buckets = entry["buckets"]
        if not buckets:
            raise ValueError(f"{family}{dict(key)} has no buckets")
        if buckets[-1][0] != "+Inf":
            raise ValueError(f"{family}{dict(key)} missing +Inf bucket")
        bounds = [float("inf") if le == "+Inf" else float(le) for le, _ in buckets]
        if bounds != sorted(bounds):
            raise ValueError(f"{family}{dict(key)} buckets out of order")
        counts = [count for _, count in buckets]
        if any(b > a for b, a in zip(counts, counts[1:])):
            raise ValueError(f"{family}{dict(key)} buckets are not cumulative")
        if entry["count"] is None or entry["sum"] is None:
            raise ValueError(f"{family}{dict(key)} missing _sum/_count")
        if entry["count"] != counts[-1]:
            raise ValueError(
                f"{family}{dict(key)} _count={entry['count']} disagrees with "
                f"+Inf bucket {counts[-1]}"
            )
