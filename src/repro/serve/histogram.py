"""Fixed log-spaced-bucket latency histograms: the serving distributions.

``/stats`` carried only counters; production observability needs
*distributions* — a p95 under load is the number an SLO is written
against, and a mean hides exactly the tail that matters.  This module
is the one histogram implementation every serving layer records into:

* :class:`LatencyHistogram` — the mutable recorder.  Bucket boundaries
  are **fixed and shared by every instance** (log-spaced,
  :data:`BUCKETS_PER_DECADE` per decade from :data:`BUCKET_MIN_S` to
  :data:`BUCKET_MAX_S`), which is what makes snapshots *mergeable*:
  merging is element-wise addition, no resampling, no bucket loss —
  the property the router relies on to keep a deployment's latency
  totals monotonic across hot-reload generations.
* :class:`HistogramSnapshot` — the frozen point-in-time view with
  p50/p95/p99 derivable via :meth:`~HistogramSnapshot.quantile`
  (linear interpolation inside the landing bucket, so quantiles are
  deterministic functions of the counts alone) and
  :meth:`~HistogramSnapshot.merge` for cross-generation aggregation.

Recording is lock-cheap: one plain ``threading.Lock`` held for a
single list-index increment — no allocation, no syscall.  The bucket
index itself is computed *outside* the lock from pure math
(``log10``), not a search.  ``excluded`` counts requests deliberately
kept out of the distribution (deadline-expired requests are failed,
never served, so their "latency" is not a service latency and must not
pollute the quantiles); it rides along in snapshots and merges so
consumers can always reconcile ``served == count`` and
``expired == excluded`` per lane.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "BUCKET_BOUNDS_S",
    "BUCKET_MIN_S",
    "BUCKET_MAX_S",
    "BUCKETS_PER_DECADE",
    "HistogramSnapshot",
    "LatencyHistogram",
]

#: log-spaced bucket resolution: ratio between adjacent upper bounds is
#: ``10 ** (1 / BUCKETS_PER_DECADE)`` (~1.33x), i.e. quantiles are exact
#: to within one-third of the value — plenty for p50/p95/p99 reporting
BUCKETS_PER_DECADE = 8
#: first upper bound: 10 microseconds (scheduler waits on a warm lane)
BUCKET_MIN_S = 1e-5
#: last finite upper bound: 100 seconds (anything slower is "+Inf")
BUCKET_MAX_S = 1e2

_DECADES = round(math.log10(BUCKET_MAX_S / BUCKET_MIN_S))

#: the shared finite upper bounds, in seconds; every histogram also has
#: one extra overflow (+Inf) bucket, so ``len(counts) == len(bounds)+1``
BUCKET_BOUNDS_S: tuple[float, ...] = tuple(
    BUCKET_MIN_S * 10.0 ** (i / BUCKETS_PER_DECADE)
    for i in range(_DECADES * BUCKETS_PER_DECADE + 1)
)

_NUM_BUCKETS = len(BUCKET_BOUNDS_S) + 1  # + overflow
_LOG_MIN = math.log10(BUCKET_MIN_S)


def bucket_index(seconds: float) -> int:
    """The bucket a latency of ``seconds`` lands in (0-based).

    Bucket ``i < len(BUCKET_BOUNDS_S)`` covers ``(bounds[i-1], bounds[i]]``
    (bucket 0 covers ``[0, bounds[0]]``); the last bucket is the +Inf
    overflow.  Pure math — no search, no locks — so it can run outside
    the recorder's lock.
    """
    if seconds <= BUCKET_MIN_S:
        return 0
    if seconds > BUCKET_BOUNDS_S[-1]:
        return _NUM_BUCKETS - 1
    # exact index via logs; ceil because bounds are *upper* edges
    index = math.ceil((math.log10(seconds) - _LOG_MIN) * BUCKETS_PER_DECADE)
    index = min(max(index, 0), len(BUCKET_BOUNDS_S) - 1)
    # float fuzz near an edge: nudge until the invariant holds
    while index > 0 and seconds <= BUCKET_BOUNDS_S[index - 1]:
        index -= 1
    while seconds > BUCKET_BOUNDS_S[index]:
        index += 1
    return index


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable histogram state: counts per bucket, total, sum, excluded.

    ``counts`` is per-bucket (NOT cumulative) and always
    ``len(BUCKET_BOUNDS_S) + 1`` long — the final entry is the +Inf
    overflow bucket.  ``sum_s`` is the sum of every recorded latency in
    seconds; ``excluded`` counts requests kept out of the distribution
    (deadline-expired), see the module docstring.
    """

    counts: tuple[int, ...]
    count: int
    sum_s: float
    excluded: int = 0

    @classmethod
    def empty(cls) -> "HistogramSnapshot":
        return cls(counts=(0,) * _NUM_BUCKETS, count=0, sum_s=0.0, excluded=0)

    @classmethod
    def merge(cls, snapshots: Iterable["HistogramSnapshot"]) -> "HistogramSnapshot":
        """Element-wise sum of ``snapshots`` (empty iterable -> empty).

        Because bucket bounds are fixed and shared, merging loses
        nothing: merged ``count`` equals the sum of the inputs' counts,
        bucket by bucket — the invariant the router's cross-generation
        stats tests pin down.
        """
        counts = [0] * _NUM_BUCKETS
        total = 0
        sum_s = 0.0
        excluded = 0
        for snap in snapshots:
            if len(snap.counts) != _NUM_BUCKETS:
                raise ValueError(
                    f"cannot merge a snapshot with {len(snap.counts)} buckets "
                    f"into the shared {_NUM_BUCKETS}-bucket layout"
                )
            for i, c in enumerate(snap.counts):
                counts[i] += c
            total += snap.count
            sum_s += snap.sum_s
            excluded += snap.excluded
        return cls(
            counts=tuple(counts), count=total, sum_s=sum_s, excluded=excluded
        )

    def quantile(self, q: float) -> float:
        """The ``q``-quantile latency in seconds (0 for an empty histogram).

        Linear interpolation inside the landing bucket between its lower
        and upper bound; the overflow bucket reports its lower bound
        (``BUCKET_MAX_S``) — there is no finite upper edge to
        interpolate toward, and under-reporting a blown-out tail is the
        conservative direction for an alerting threshold.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cumulative + c >= target:
                if i >= len(BUCKET_BOUNDS_S):  # overflow bucket
                    return BUCKET_MAX_S
                lower = BUCKET_BOUNDS_S[i - 1] if i > 0 else 0.0
                upper = BUCKET_BOUNDS_S[i]
                fraction = (target - cumulative) / c
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            cumulative += c
        return BUCKET_MAX_S  # unreachable when counts are consistent

    @property
    def p50_ms(self) -> float:
        return self.quantile(0.50) * 1e3

    @property
    def p95_ms(self) -> float:
        return self.quantile(0.95) * 1e3

    @property
    def p99_ms(self) -> float:
        return self.quantile(0.99) * 1e3

    @property
    def mean_ms(self) -> float:
        return (self.sum_s / self.count) * 1e3 if self.count else 0.0

    def as_dict(self) -> dict:
        """JSON view for ``/stats``: quantiles up front, buckets in full.

        ``le_ms``/``counts`` are parallel arrays (``le_ms`` has a final
        ``null`` for the +Inf overflow bucket) so a consumer can rebuild
        the exact distribution; ``p50_ms``/``p95_ms``/``p99_ms`` are
        pre-derived for humans and dashboards.
        """
        return {
            "count": self.count,
            "excluded": self.excluded,
            "sum_ms": self.sum_s * 1e3,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "le_ms": [bound * 1e3 for bound in BUCKET_BOUNDS_S] + [None],
            "counts": list(self.counts),
        }


class LatencyHistogram:
    """Thread-safe recorder over the shared log-spaced bucket layout.

    ``record`` is the hot-path method: bucket math outside the lock, a
    single increment inside it.  ``merge_counts`` exists for the
    in-process server mode where several chunks complete at once.
    """

    __slots__ = ("_lock", "_counts", "_count", "_sum_s", "_excluded")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * _NUM_BUCKETS
        self._count = 0
        self._sum_s = 0.0
        self._excluded = 0

    def record(self, seconds: float) -> None:
        """Record one latency observation (negative values clamp to 0)."""
        if seconds < 0.0:
            seconds = 0.0
        index = bucket_index(seconds)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum_s += seconds

    def record_many(self, latencies: Sequence[float]) -> None:
        """Record a batch of observations under one lock acquisition."""
        indexed = [(bucket_index(max(s, 0.0)), max(s, 0.0)) for s in latencies]
        with self._lock:
            for index, seconds in indexed:
                self._counts[index] += 1
                self._count += 1
                self._sum_s += seconds

    def exclude(self, n: int = 1) -> None:
        """Count ``n`` requests as deliberately outside the distribution."""
        with self._lock:
            self._excluded += n

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            return HistogramSnapshot(
                counts=tuple(self._counts),
                count=self._count,
                sum_s=self._sum_s,
                excluded=self._excluded,
            )

    def __len__(self) -> int:
        with self._lock:
            return self._count
