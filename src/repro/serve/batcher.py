"""Bounded micro-batching queue — now a single-lane scheduler shim.

:class:`MicroBatcher` was the serving layer's original coalescing queue;
its policy has been extracted into the lane-aware
:class:`~repro.serve.scheduler.Scheduler`, and this class remains as a
thin compatibility shim: one default lane, no deadlines, the exact
pre-scheduler API and semantics (all still covered by
``tests/serve/test_batcher.py`` running unchanged against the shim):

* **FIFO, never reordered, never split.**  Items leave in arrival order;
  an item whose rows would overflow the current batch stays queued for
  the next one (callers split oversized requests *before* the batcher —
  see ``UHDServer.submit``).
* **Empty flush.**  ``next_batch`` returns ``[]`` when its poll window
  expires with nothing queued — the dispatcher's idle heartbeat.
* **Bounded.**  At most ``queue_depth`` items wait; ``put`` blocks
  (backpressure) until space frees or the batcher closes.
* **Close is drain-then-stop.**  After :meth:`close`, ``put`` raises,
  but queued items keep coming out; ``next_batch`` returns ``None``
  once closed *and* drained.

New code that wants priority lanes, per-request deadlines, or weighted
draining should use :class:`~repro.serve.scheduler.Scheduler` directly —
``UHDServer`` now does.
"""

from __future__ import annotations

from typing import Generic, TypeVar

from .scheduler import Batchable, LaneConfig, Scheduler

__all__ = ["Batchable", "MicroBatcher"]


ItemT = TypeVar("ItemT", bound=Batchable)


class MicroBatcher(Generic[ItemT]):
    """Bounded FIFO of :class:`Batchable` items with windowed coalescing.

    ``max_batch`` bounds the row total of a returned batch; an item with
    ``rows > max_batch`` is rejected at :meth:`put` (split it first).
    ``max_wait_s`` is the coalescing window measured from the first item
    of the batch being formed; 0 disables waiting entirely.
    """

    def __init__(
        self, max_batch: int, max_wait_s: float, queue_depth: int = 256
    ) -> None:
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.queue_depth = queue_depth
        self._scheduler: Scheduler[ItemT] = Scheduler(
            [
                LaneConfig(
                    name="default",
                    max_batch=max_batch,
                    max_wait_ms=max_wait_s * 1e3,
                    queue_depth=queue_depth,
                )
            ]
        )

    def __len__(self) -> int:
        return len(self._scheduler)

    @property
    def closed(self) -> bool:
        return self._scheduler.closed

    def put(self, item: ItemT, timeout: float | None = None) -> None:
        """Enqueue ``item``, blocking while the queue is full.

        Raises ``ValueError`` for an item wider than ``max_batch``
        (the caller owns splitting), ``RuntimeError`` after
        :meth:`close`, and ``TimeoutError`` if ``timeout`` elapses while
        blocked on a full queue.
        """
        self._scheduler.put(item, timeout=timeout)

    def next_batch(self, poll_s: float = 0.1) -> list[ItemT] | None:
        """The next coalesced batch, in FIFO order.

        Blocks up to ``poll_s`` for a *first* item: an expired empty
        window returns ``[]`` (heartbeat).  Once a first item arrives,
        keeps accepting items until the batch would exceed ``max_batch``
        rows or ``max_wait_s`` passes without it filling.  Returns
        ``None`` exactly when the batcher is closed and fully drained.
        """
        batch = self._scheduler.next_batch(poll_s=poll_s)
        if batch is None:
            return None
        return batch.items

    def close(self) -> None:
        """Stop accepting new items; queued ones still drain via ``next_batch``."""
        self._scheduler.close()
