"""Bounded micro-batching queue: coalesce small requests into packed-friendly batches.

The packed kernels amortize their fixed costs (LUT gather setup, IPC
round-trip, popcount dispatch) over the batch axis, so a server that
forwards each 1-image request alone leaves most of the fast path's
throughput on the table.  :class:`MicroBatcher` is the piece that fixes
that: producers :meth:`put` items carrying a row count, and a single
dispatcher thread pulls *batches* — groups of consecutive items whose
row total fits ``max_batch``, flushed early once ``max_wait_s`` has
elapsed since the batch's first item arrived.

Semantics (all covered by ``tests/serve/test_batcher.py``):

* **FIFO, never reordered, never split.**  Items leave in arrival order;
  an item whose rows would overflow the current batch stays queued for
  the next one (callers split oversized requests *before* the batcher —
  see ``UHDServer.submit``).
* **Empty flush.**  ``next_batch`` returns ``[]`` when its poll window
  expires with nothing queued — the dispatcher's idle heartbeat, which
  is what lets it notice shutdown and crashed workers.
* **Bounded.**  At most ``queue_depth`` items wait; ``put`` blocks
  (backpressure) until space frees or the batcher closes.
* **Close is drain-then-stop.**  After :meth:`close`, ``put`` raises,
  but queued items keep coming out; ``next_batch`` returns ``None``
  once closed *and* drained.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Generic, Protocol, TypeVar

__all__ = ["Batchable", "MicroBatcher"]


class Batchable(Protocol):
    """Anything the batcher can coalesce: exposes its row count."""

    @property
    def rows(self) -> int: ...


ItemT = TypeVar("ItemT", bound=Batchable)


class MicroBatcher(Generic[ItemT]):
    """Bounded FIFO of :class:`Batchable` items with windowed coalescing.

    ``max_batch`` bounds the row total of a returned batch; an item with
    ``rows > max_batch`` is rejected at :meth:`put` (split it first).
    ``max_wait_s`` is the coalescing window measured from the first item
    of the batch being formed; 0 disables waiting entirely.
    """

    def __init__(
        self, max_batch: int, max_wait_s: float, queue_depth: int = 256
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.queue_depth = queue_depth
        self._items: deque[ItemT] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def put(self, item: ItemT, timeout: float | None = None) -> None:
        """Enqueue ``item``, blocking while the queue is full.

        Raises ``ValueError`` for an item wider than ``max_batch``
        (the caller owns splitting), ``RuntimeError`` after
        :meth:`close`, and ``TimeoutError`` if ``timeout`` elapses while
        blocked on a full queue.
        """
        if item.rows > self.max_batch:
            raise ValueError(
                f"item has {item.rows} rows > max_batch={self.max_batch}; "
                "split it before enqueueing (UHDServer.submit does)"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                if self._closed:
                    raise RuntimeError("batcher is closed")
                if len(self._items) < self.queue_depth:
                    break
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"queue_depth={self.queue_depth} items already waiting"
                    )
                self._not_full.wait(remaining)
            self._items.append(item)
            self._not_empty.notify()

    def next_batch(self, poll_s: float = 0.1) -> list[ItemT] | None:
        """The next coalesced batch, in FIFO order.

        Blocks up to ``poll_s`` for a *first* item: an expired empty
        window returns ``[]`` (heartbeat), letting the caller re-check
        its own liveness conditions.  Once a first item arrives, keeps
        accepting items until the batch would exceed ``max_batch`` rows
        or ``max_wait_s`` passes without it filling.  Returns ``None``
        exactly when the batcher is closed and fully drained.
        """
        with self._lock:
            if not self._waitfor_item(time.monotonic() + poll_s):
                if self._closed and not self._items:
                    return None
                return []
            batch = [self._items.popleft()]
            rows = batch[0].rows
            flush_at = time.monotonic() + self.max_wait_s
            while rows < self.max_batch:
                if not self._items:
                    if self._closed or not self._waitfor_item(flush_at):
                        break
                if rows + self._items[0].rows > self.max_batch:
                    break  # leave the overflow item for the next batch
                item = self._items.popleft()
                batch.append(item)
                rows += item.rows
            self._not_full.notify(len(batch))
            return batch

    def _waitfor_item(self, deadline: float) -> bool:
        """Wait (lock held) until an item is queued or ``deadline``; True if queued."""
        while not self._items:
            if self._closed:
                return False
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            self._not_empty.wait(remaining)
        return True

    def close(self) -> None:
        """Stop accepting new items; queued ones still drain via ``next_batch``."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
