"""Process-wide warm-encoder cache, one encoder per ``(pixels, config)`` key.

A serving front-end may host several models of the same shape — replicas
of one dataset's model, A/B variants sharing a config — and the
expensive part of each is the encoder's derived state: Sobol tables
(already memoized process-wide by :func:`repro.lds.sobol.sobol_sequences`)
and the packed gather LUTs, including the lazy single→pair promotion
that only pays off once warm.  :class:`EncoderCache` deduplicates that
state: every model with the same ``(num_pixels, UHDConfig)`` key is
handed the *same* encoder instance, whose tables are read-only after
warm-up.

Two serving-specific consequences:

* **Fork-time sharing.**  ``UHDServer`` warms its front-end encoder
  *before* spawning workers; under the ``fork`` start method the
  children inherit the promoted tables copy-on-write, so N workers cost
  one set of gather tables, not N.
* **Serialization contract.**  Packed encoders keep per-batch scratch
  workspaces, so concurrent ``encode_batch`` calls on one shared
  instance must be externally serialized — ``UHDServer`` does (its
  in-process mode runs under a lock; worker processes each own a
  private copy).  The ``threaded`` backend's encoder is internally
  thread-safe and exempt.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..core.config import UHDConfig
    from ..core.encoder import SobolLevelEncoder

__all__ = ["EncoderCache", "encoder_cache"]


class EncoderCache:
    """Thread-safe map ``(num_pixels, config) -> warm shared encoder``.

    Configs are frozen dataclasses, hence hashable; the backend name is
    part of the config, so ``packed`` and ``reference`` encoders for the
    same geometry are distinct entries.  Each entry carries a dedicated
    lock (:meth:`lock`) that every in-process user of the shared encoder
    must hold around ``encode_batch`` — packed encoders keep mutable
    scratch workspaces, and two servers sharing one cached encoder from
    different threads would otherwise race on them.
    """

    def __init__(self) -> None:
        self._encoders: dict[tuple[int, "UHDConfig"], "SobolLevelEncoder"] = {}
        self._encoder_locks: dict[tuple[int, "UHDConfig"], threading.Lock] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._encoders)

    def get(self, num_pixels: int, config: "UHDConfig") -> "SobolLevelEncoder":
        """The shared encoder for this key, built on first use.

        Construction goes through the backend registry
        (``get_backend(config.backend).make_encoder``), so third-party
        backends are cached the same way as built-ins.
        """
        key = (int(num_pixels), config)
        with self._lock:
            encoder = self._encoders.get(key)
            if encoder is None:
                from ..api.registry import get_backend

                encoder = get_backend(config.backend).make_encoder(
                    num_pixels, config
                )
                self._encoders[key] = encoder
                self._encoder_locks[key] = threading.Lock()
            return encoder

    def lock(self, num_pixels: int, config: "UHDConfig") -> threading.Lock:
        """The serialization lock for this key's shared encoder.

        Hold it around any ``encode_batch``/``predict`` that runs on the
        shared instance; it is one lock per *encoder*, so two servers
        over the same key serialize against each other, not just against
        themselves.
        """
        key = (int(num_pixels), config)
        with self._lock:
            if key not in self._encoder_locks:
                self._encoder_locks[key] = threading.Lock()
            return self._encoder_locks[key]

    def adopt(self, model: object) -> "threading.Lock | None":
        """Install the shared encoder for ``model``'s key onto ``model``.

        Returns the encoder's serialization lock, or ``None`` when the
        model does not expose an encoder/config (nothing to share).  Used
        by both the serving front-end and the worker bootstrap: under the
        ``fork`` start method the worker's inherited cache already holds
        the parent's *warmed* encoder, so adoption is what turns the
        pre-fork warm-up into copy-on-write table sharing instead of a
        per-worker rebuild.
        """
        config = getattr(model, "config", None)
        num_pixels = getattr(model, "num_pixels", None)
        if config is None or num_pixels is None or not hasattr(model, "encoder"):
            return None
        model.encoder = self.get(num_pixels, config)
        return self.lock(num_pixels, config)

    def warm(
        self, num_pixels: int, config: "UHDConfig", batches: int = 2, seed: int = 0
    ) -> "SobolLevelEncoder":
        """Build *and* exercise the shared encoder past its lazy setup.

        Runs ``batches`` synthetic encode batches sized to push a packed
        encoder past pair-table promotion, so everything expensive is
        materialized before (for example) worker processes fork.
        """
        encoder = self.get(num_pixels, config)
        promote = getattr(type(encoder), "PAIR_PROMOTE_IMAGES", 0)
        batch = max(32, -(-int(promote) // max(1, batches)) + 1)
        rng = np.random.default_rng(seed)
        for _ in range(batches):
            images = rng.integers(
                0, 256, size=(batch, num_pixels), dtype=np.uint8
            )
            encoder.encode_batch(images)
        return encoder

    def clear(self) -> None:
        """Drop every cached encoder (tests / reconfiguration)."""
        with self._lock:
            self._encoders.clear()
            self._encoder_locks.clear()


_CACHE = EncoderCache()


def encoder_cache() -> EncoderCache:
    """The process-wide :class:`EncoderCache` singleton ``UHDServer`` uses."""
    return _CACHE
