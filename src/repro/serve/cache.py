"""Process-wide warm-encoder cache, one encoder per ``(pixels, config)`` key.

A serving front-end may host several models of the same shape — replicas
of one dataset's model, A/B variants sharing a config — and the
expensive part of each is the encoder's derived state: Sobol tables
(already memoized process-wide by :func:`repro.lds.sobol.sobol_sequences`)
and the packed gather LUTs, including the lazy single→pair promotion
that only pays off once warm.  :class:`EncoderCache` deduplicates that
state: every model with the same ``(num_pixels, UHDConfig)`` key is
handed the *same* encoder instance, whose tables are read-only after
warm-up.

Two serving-specific consequences:

* **Fork-time sharing.**  ``UHDServer`` warms its front-end encoder
  *before* spawning workers; under the ``fork`` start method the
  children inherit the promoted tables copy-on-write, so N workers cost
  one set of gather tables, not N.
* **Serialization contract.**  Packed encoders keep per-batch scratch
  workspaces, so concurrent ``encode_batch`` calls on one shared
  instance must be externally serialized — ``UHDServer`` does (its
  in-process mode runs under a lock; worker processes each own a
  private copy).  The ``threaded`` backend's encoder is internally
  thread-safe and exempt.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..core.config import UHDConfig
    from ..core.encoder import SobolLevelEncoder
    from ..fastpath.tablestore import TableHandle, TableStore

__all__ = ["CacheStats", "EncoderCache", "encoder_cache"]


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time :meth:`EncoderCache.stats` snapshot.

    ``table_bytes`` sums the gather-table footprint across cached
    encoders (0 for cold/reference encoders); ``published`` lists one
    ``(store_name, kind, nbytes)`` tuple per live publication, so a
    long-lived server can see exactly which tables it is exporting and
    how big they are.
    """

    entries: int
    table_bytes: int
    published: tuple[tuple[str, str, int], ...]


class EncoderCache:
    """Thread-safe map ``(num_pixels, config) -> warm shared encoder``.

    Configs are frozen dataclasses, hence hashable; the backend name is
    part of the config, so ``packed`` and ``reference`` encoders for the
    same geometry are distinct entries.  Each entry carries a dedicated
    lock (:meth:`lock`) that every in-process user of the shared encoder
    must hold around ``encode_batch`` — packed encoders keep mutable
    scratch workspaces, and two servers sharing one cached encoder from
    different threads would otherwise race on them.
    """

    def __init__(self) -> None:
        self._encoders: dict[tuple[int, "UHDConfig"], "SobolLevelEncoder"] = {}
        self._encoder_locks: dict[tuple[int, "UHDConfig"], threading.Lock] = {}
        #: (key, store name) -> (store, handle, kind, nbytes) for every
        #: table this cache has published and not yet released
        self._published: dict[tuple, tuple] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._encoders)

    def get(self, num_pixels: int, config: "UHDConfig") -> "SobolLevelEncoder":
        """The shared encoder for this key, built on first use.

        Construction goes through the backend registry
        (``get_backend(config.backend).make_encoder``), so third-party
        backends are cached the same way as built-ins.
        """
        key = (int(num_pixels), config)
        with self._lock:
            encoder = self._encoders.get(key)
            if encoder is None:
                from ..api.registry import get_backend

                encoder = get_backend(config.backend).make_encoder(
                    num_pixels, config
                )
                self._encoders[key] = encoder
                self._encoder_locks[key] = threading.Lock()
            return encoder

    def lock(self, num_pixels: int, config: "UHDConfig") -> threading.Lock:
        """The serialization lock for this key's shared encoder.

        Hold it around any ``encode_batch``/``predict`` that runs on the
        shared instance; it is one lock per *encoder*, so two servers
        over the same key serialize against each other, not just against
        themselves.
        """
        key = (int(num_pixels), config)
        with self._lock:
            if key not in self._encoder_locks:
                self._encoder_locks[key] = threading.Lock()
            return self._encoder_locks[key]

    def adopt(self, model: object) -> "threading.Lock | None":
        """Install the shared encoder for ``model``'s key onto ``model``.

        Returns the encoder's serialization lock, or ``None`` when the
        model does not expose an encoder/config (nothing to share).  Used
        by both the serving front-end and the worker bootstrap: under the
        ``fork`` start method the worker's inherited cache already holds
        the parent's *warmed* encoder, so adoption is what turns the
        pre-fork warm-up into copy-on-write table sharing instead of a
        per-worker rebuild.
        """
        config = getattr(model, "config", None)
        num_pixels = getattr(model, "num_pixels", None)
        if config is None or num_pixels is None or not hasattr(model, "encoder"):
            return None
        key = (int(num_pixels), config)
        with self._lock:
            if key not in self._encoders and getattr(
                model.encoder, "tables_ready", False
            ):
                # the model arrived with warm tables (a sidecar attach, a
                # trained-in-process model): seed the cache with them so
                # nobody rebuilds what already exists
                self._encoders[key] = model.encoder
                self._encoder_locks.setdefault(key, threading.Lock())
        model.encoder = self.get(num_pixels, config)
        return self.lock(num_pixels, config)

    def warm(
        self, num_pixels: int, config: "UHDConfig", batches: int = 2, seed: int = 0
    ) -> "SobolLevelEncoder":
        """Build *and* exercise the shared encoder past its lazy setup.

        Runs ``batches`` synthetic encode batches sized to push a packed
        encoder past pair-table promotion, so everything expensive is
        materialized before (for example) worker processes fork.
        """
        encoder = self.get(num_pixels, config)
        promote = getattr(type(encoder), "PAIR_PROMOTE_IMAGES", 0)
        batch = max(32, -(-int(promote) // max(1, batches)) + 1)
        rng = np.random.default_rng(seed)
        for _ in range(batches):
            images = rng.integers(
                0, 256, size=(batch, num_pixels), dtype=np.uint8
            )
            encoder.encode_batch(images)
        return encoder

    # ------------------------------------------------------------------
    # Table publication (see repro.fastpath.tablestore)
    # ------------------------------------------------------------------
    def publish(
        self,
        num_pixels: int,
        config: "UHDConfig",
        store: "TableStore",
        promote: bool = True,
    ) -> "TableHandle | None":
        """Export the shared encoder's gather tables into ``store``.

        Returns the picklable :class:`~repro.fastpath.tablestore.TableHandle`
        workers attach through, or ``None`` when this key's encoder has no
        exportable tables (the reference encoder).  Publishing the same
        ``(key, store)`` twice reuses the first handle — the tables are
        deterministic, so a second export could only produce the same
        bytes.  ``promote=True`` forces the pair promotion first so
        attachers inherit the fully warmed state.
        """
        encoder = self.get(num_pixels, config)
        if not hasattr(encoder, "export_tables"):
            return None
        key = ((int(num_pixels), config), store.name)
        with self._lock:
            entry = self._published.get(key)
            if entry is not None and entry[0] is store:
                return entry[1]
        with self.lock(num_pixels, config):  # export may build/promote
            tables = encoder.export_tables(promote=promote)
        handle = store.publish(tables)
        with self._lock:
            self._published[key] = (store, handle, tables.kind, tables.nbytes)
        return handle

    def release_store(self, store: "TableStore") -> None:
        """Forget (and close) every publication living in ``store``.

        The store owns the bytes — closing it unlinks shared-memory
        segments / deletes mmap files — so the cache must stop handing
        out its handles first.
        """
        with self._lock:
            dead = [k for k, entry in self._published.items() if entry[0] is store]
            for key in dead:
                del self._published[key]
        store.close()

    def stats(self) -> CacheStats:
        """Entries, table bytes, and live publications (observability)."""
        with self._lock:
            encoders = list(self._encoders.values())
            published = tuple(
                (store.name, kind, nbytes)
                for store, _handle, kind, nbytes in self._published.values()
            )
        table_bytes = sum(
            int(getattr(encoder, "table_nbytes", 0)) for encoder in encoders
        )
        return CacheStats(
            entries=len(encoders), table_bytes=table_bytes, published=published
        )

    def clear(self) -> None:
        """Drop every cached encoder and release every published store
        handle (tests / reconfiguration / long-lived server resets)."""
        with self._lock:
            self._encoders.clear()
            self._encoder_locks.clear()
            published = list(self._published.values())
            self._published.clear()
        for store, handle, _kind, _nbytes in published:
            store.release(handle)


_CACHE = EncoderCache()


def encoder_cache() -> EncoderCache:
    """The process-wide :class:`EncoderCache` singleton ``UHDServer`` uses."""
    return _CACHE
