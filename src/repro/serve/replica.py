"""One serving replica: a :class:`UHDServer` plus lifecycle and load state.

A replica is the router's unit of capacity *and* of replacement.  Each
one owns a full, independent :class:`~repro.serve.server.UHDServer`
(its own lanes, worker pool, and published table store) warm-started
from a model file; the process-wide
:class:`~repro.serve.cache.EncoderCache` still deduplicates the
expensive encoder state, so N replicas of one model geometry share one
set of gather tables exactly like N workers of one server do.

Lifecycle::

    starting ──(readiness probe passes)──► ready ──► draining ──► retired
        │                                    │
        └── failed (bootstrap error)         └── failed (server died)

State transitions are owned by the :class:`~repro.serve.router.ModelDeployment`
holding the replica (under its lock); a replica object itself only
carries the state and the in-flight counter the deployment's
least-loaded dispatch and drain logic read.

``RoutedHandle`` is the future the router returns: it resolves exactly
like the :class:`~repro.serve.types.PredictionHandle` it wraps and
additionally releases its replica's in-flight slot exactly once when
the request finishes — which is what makes "drain = wait for in-flight
to reach zero, then close" correct during a rolling hot reload.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Callable

from .server import UHDServer
from .types import ServeConfig

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

__all__ = ["Replica", "RoutedHandle"]

#: the states a replica moves through; see the module docstring diagram
REPLICA_STATES = ("starting", "ready", "draining", "retired", "failed")


class Replica:
    """One generation-stamped server instance inside a replica group.

    ``generation`` is the deployment-level model generation this replica
    was started from (bumped by every hot reload); ``slot`` is a unique,
    never-reused index within its deployment, so ``name`` identifies one
    concrete server instance across the deployment's whole history.
    """

    def __init__(
        self,
        model_id: str,
        generation: int,
        slot: int,
        model_path: Any,
        config: ServeConfig,
    ) -> None:
        self.model_id = model_id
        self.generation = generation
        self.slot = slot
        self.model_path = str(model_path)
        self.server = UHDServer(self.model_path, config)
        #: lifecycle state, owned (read AND written) by the deployment lock
        self.state = "starting"
        #: requests currently routed here, owned by the deployment lock
        self.inflight = 0
        self.started_at: float | None = None
        self.error: str | None = None

    @property
    def name(self) -> str:
        """Stable identity, e.g. ``"mnist#g2.r3"`` (model, generation, slot)."""
        return f"{self.model_id}#g{self.generation}.r{self.slot}"

    def start(self) -> "Replica":
        """Warm-start the underlying server (blocks on its readiness probe)."""
        self.server.start()
        self.started_at = time.monotonic()
        return self

    def close(self, drain_timeout: float | None = None) -> None:
        """Close the underlying server (drains its queues up to the window)."""
        self.server.close(drain_timeout)

    def summary(self, stats: Any = None) -> dict:
        """Per-replica stats row for deployment-level aggregation.

        ``stats`` lets a caller that already fetched this replica's
        :meth:`UHDServer.stats` (the deployment does, to merge lane
        histograms in the same pass) avoid a second snapshot.
        """
        if stats is None:
            stats = self.server.stats()
        return {
            "name": self.name,
            "generation": self.generation,
            "state": self.state,
            "inflight": self.inflight,
            "model_path": self.model_path,
            "workers": stats.workers,
            "requests": stats.requests,
            "images": stats.images,
            "batches": stats.batches,
            "mean_batch_size": stats.mean_batch_size,
            "restarts": stats.restarts,
            "expired": stats.expired,
        }


class RoutedHandle:
    """Future for one routed request: the wrapped handle plus slot release.

    Resolves exactly like the underlying
    :class:`~repro.serve.types.PredictionHandle`; additionally releases
    the replica's in-flight slot exactly once when the request reaches a
    terminal state (labels delivered or a non-timeout failure).  A
    :class:`TimeoutError` from :meth:`result` does **not** release — the
    request is still running on its replica, and calling ``result``
    again later resolves (and releases) normally.  An abandoned handle
    keeps its slot until the replica's drain window expires, which only
    delays (never breaks) a drain: ``UHDServer.close`` drains queued
    work on its own.
    """

    def __init__(
        self, handle: Any, replica: Replica, release: Callable[[Replica], None]
    ) -> None:
        self._handle = handle
        self._replica = replica
        self._release = release
        self._released = False
        self._lock = threading.Lock()

    @property
    def model_id(self) -> str:
        return self._replica.model_id

    @property
    def replica_name(self) -> str:
        return self._replica.name

    @property
    def rows(self) -> int:
        return self._handle.rows

    def done(self) -> bool:
        """Whether :meth:`result` would return (or raise) without blocking."""
        return self._handle.done()

    def add_done_callback(self, callback: Callable[["RoutedHandle"], None]) -> None:
        """Invoke ``callback(self)`` once the request reaches a terminal state.

        Delegates to the wrapped handle; the callback receives *this*
        handle so that calling :meth:`result` inside it releases the
        replica slot as usual.
        """
        self._handle.add_done_callback(lambda _inner: callback(self))

    def _release_once(self) -> None:
        with self._lock:
            if self._released:
                return
            self._released = True
        self._release(self._replica)

    def result(self, timeout: float | None = None) -> "np.ndarray":
        """Predicted labels in submit order (see ``PredictionHandle.result``)."""
        try:
            labels = self._handle.result(timeout)
        except TimeoutError:
            raise  # still in flight: the slot stays held
        except BaseException:
            self._release_once()
            raise
        self._release_once()
        return labels
