"""Worker process lifecycle: bootstrap, readiness handshake, predict loop.

A worker is deliberately dumb and stateless-restartable, which is what
uHD's tiny persisted models buy (config + one integer accumulator
matrix): it warm-starts from the model file via
:func:`repro.api.load_model` — **never re-fits, never sees training
data** — proves itself with the same readiness probe ``repro-uhd
serve-check`` runs, then loops answering predict batches.  Crash
recovery is therefore trivial for the parent: spawn an identical
process and re-send the lost batch; there is no in-worker state worth
salvaging.

Transport: per-generation simplex pipes, **not** ``mp.Queue``.  A
``Queue`` writer pushes through a feeder thread guarded by a semaphore
*shared across every process on the queue* — a worker that dies between
writing and releasing (observed in practice with an ``os._exit`` racing
the feeder) strands that semaphore and deadlocks every later writer.
Each worker generation instead gets its own ``ctx.Pipe`` pair: writes
are synchronous in the owning process, nothing is shared between
generations, a crashed generation can corrupt at most its own pipes
(which the parent discards wholesale on respawn), and pipe EOF doubles
as an immediate crash signal.

Wire protocol (picklable tuples, private to this package)
---------------------------------------------------------
parent -> worker, on the worker's task pipe::

    ("batch", batch_id, images, crash)   # predict; crash=True is the
                                         # test hook: exit before predicting
    ("stop",)                            # drain nothing, exit 0

worker -> parent, on the worker's result pipe::

    ("ready", slot, probe_median_s, table_builds)
                                         # bootstrap + probe succeeded;
                                         # table_builds counts gather tables
                                         # this worker *built* (0 = attached)
    ("fatal", slot, message)             # bootstrap failed; worker exited
    ("result", slot, batch_id, labels)
    ("error", slot, batch_id, message)   # predict raised; worker lives on

Warm-start economics: the parent passes a
:class:`repro.fastpath.tablestore.TableHandle` for its already-published
gather tables.  The worker *attaches* those tables (zero-copy — a
read-only memmap or shared-memory view) before the readiness probe, so
bootstrap is O(1) in table size regardless of start method.  Attach
failure is never fatal: an unresolvable handle (heap handle under
``spawn``, vanished file) falls back to building the table locally —
the pre-store behavior — and the build shows up in ``table_builds``.

``slot`` is the worker's stable index in the pool; a restarted worker
reuses its slot (the parent tracks generations).
"""

from __future__ import annotations

import os
import traceback
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    import multiprocessing.context

__all__ = ["worker_main", "WorkerHandle", "spawn_worker"]

#: readiness-probe timing repeats inside each worker (latency is reported
#: for observability; correctness is the deterministic-predictions check)
PROBE_REPEATS = 3


def worker_main(
    slot: int,
    model_path: str,
    backend: str | None,
    probe_batch: int,
    task_conn: Any,
    result_conn: Any,
    seed: int = 0,
    table_handle: Any = None,
) -> None:
    """Entry point of one worker process (top-level, hence spawn-picklable).

    ``task_conn`` / ``result_conn`` are the worker ends of this
    generation's simplex pipes; ``Connection.send`` is synchronous in
    this process, so a completed send can never be stranded by a later
    crash (see the module docstring).
    """
    try:
        from ..api.persistence import load_model
        from .probe import readiness_probe

        model = load_model(model_path, backend=backend)
        num_pixels = getattr(model, "num_pixels", None)
        if num_pixels is None:
            raise TypeError(
                f"{type(model).__name__} has no num_pixels; the serving layer "
                "only fronts image models (UHDClassifier, StreamingUHD)"
            )
        # under fork, this process's encoder cache is a copy-on-write view
        # of the parent's — adopting its (already warm) entry shares the
        # gather tables instead of rebuilding them per worker; under spawn
        # the cache is cold and the published table handle (if any,
        # resolvable) is attached so the probe below never triggers a build
        from .cache import encoder_cache

        encoder_cache().adopt(model)
        _attach_published_tables(model, table_handle)
        # delta, not the raw counter: a forked worker adopts the parent's
        # encoder whose counter already records the *parent's* builds —
        # only builds from here on happened in this process
        encoder = getattr(model, "encoder", None)
        builds_before = int(getattr(encoder, "table_builds", 0))
        probe = readiness_probe(
            model,
            num_pixels,
            batch=probe_batch,
            repeats=PROBE_REPEATS,
            seed=seed,
        )
        table_builds = int(getattr(encoder, "table_builds", 0)) - builds_before
    except BaseException:
        try:
            result_conn.send(("fatal", slot, traceback.format_exc(limit=8)))
        except (BrokenPipeError, OSError):  # parent already gone
            pass
        return
    result_conn.send(("ready", slot, probe.median_s, table_builds))
    while True:
        try:
            task = task_conn.recv()
        except (EOFError, OSError):
            return  # parent closed its end: shutdown
        kind = task[0]
        if kind == "stop":
            return
        if kind == "batch":
            _, batch_id, images, crash = task
            if crash:  # test hook: die mid-batch, parent must retry
                os._exit(1)
            try:
                labels = model.predict(images)
            except BaseException:
                result_conn.send(
                    ("error", slot, batch_id, traceback.format_exc(limit=8))
                )
                continue
            result_conn.send(("result", slot, batch_id, labels))


def _attach_published_tables(model: Any, table_handle: Any) -> None:
    """Attach the parent's published gather tables onto ``model``'s encoder.

    No-ops (never raises toward the caller's happy path) when there is no
    handle, the encoder cannot attach, the encoder is already warm (the
    fork + copy-on-write case), or the handle does not resolve in this
    process (a heap handle under ``spawn`` — the worker then builds its
    own table, which is the pre-store behavior).  A *resolvable but
    mismatched* publication raises: that is a real bug, not a fallback.
    """
    if table_handle is None:
        return
    encoder = getattr(model, "encoder", None)
    if encoder is None or not hasattr(encoder, "attach_tables"):
        return
    if getattr(encoder, "tables_ready", False):
        return  # already warm via the forked cache entry
    from ..fastpath.tablestore import attach_handle

    tables = attach_handle(table_handle)
    if tables is None:
        return
    encoder.attach_tables(tables)


class WorkerHandle:
    """Parent-side view of one worker slot: process, queue, and state.

    ``state`` transitions: ``starting`` → ``idle`` ⇄ ``busy`` →
    ``stopped`` (clean shutdown) or ``dead`` (crashed and not
    respawned).  ``generation`` counts spawns of this slot; messages
    from a previous generation's process are matched by slot only —
    safe, because a slot is respawned only after its process is dead
    and its in-flight batch reclaimed.
    """

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.generation = 0
        self.process: Any = None
        self.task_writer: Any = None  #: parent end of the task pipe
        self.result_reader: Any = None  #: parent end of the result pipe
        self.state = "starting"
        self.busy_batch: Any = None  #: the _Batch currently on this worker
        self.probe_median_s: float | None = None
        #: gather tables the worker built during bootstrap (0 = attached)
        self.table_builds: int | None = None

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def send(self, task: tuple) -> None:
        self.task_writer.send(task)

    def close_pipes(self) -> None:
        """Discard this generation's parent-side pipe ends (crash/respawn)."""
        for conn in (self.task_writer, self.result_reader):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        self.task_writer = None
        self.result_reader = None

    def stop(self, join_timeout: float = 2.0) -> None:
        """Best-effort clean shutdown: stop message, join, then terminate."""
        if self.process is None:
            return
        if self.alive() and self.state in ("starting", "idle", "busy"):
            try:
                self.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):  # pipe torn down
                pass
        self.process.join(join_timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(1.0)
        self.close_pipes()
        self.state = "stopped"


def spawn_worker(
    ctx: "multiprocessing.context.BaseContext",
    handle: WorkerHandle,
    model_path: str,
    backend: str | None,
    probe_batch: int,
    table_handle: Any = None,
) -> WorkerHandle:
    """(Re)spawn the process for ``handle``'s slot with fresh pipes.

    Fresh simplex pipes per spawn mean a crashed generation's
    half-written pipe state can never leak into its successor; the old
    parent-side ends are closed here.
    """
    handle.close_pipes()
    handle.generation += 1
    task_reader, task_writer = ctx.Pipe(duplex=False)
    result_reader, result_writer = ctx.Pipe(duplex=False)
    handle.task_writer = task_writer
    handle.result_reader = result_reader
    handle.state = "starting"
    handle.busy_batch = None
    handle.process = ctx.Process(
        target=worker_main,
        args=(
            handle.slot,
            model_path,
            backend,
            probe_batch,
            task_reader,
            result_writer,
            0,  # probe seed
            table_handle,
        ),
        name=f"uhd-serve-worker-{handle.slot}.{handle.generation}",
        daemon=True,
    )
    handle.process.start()
    # the child holds its own copies now; closing ours makes EOF detection
    # on either pipe reflect the child alone
    task_reader.close()
    result_writer.close()
    return handle
