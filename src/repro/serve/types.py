"""Request/response and configuration types of the serving subsystem.

Everything a caller touches is here: :class:`ServeConfig` (how the
server batches and fans out), :class:`PredictionHandle` (the future a
:meth:`~repro.serve.server.UHDServer.submit` returns),
:class:`ServerStats` (an observability snapshot) and the exception
hierarchy (:class:`ServeError` / :class:`WorkerCrashError`).

The wire protocol between the front-end and its worker processes is
*not* public — it lives in :mod:`repro.serve.worker` as plain picklable
tuples — but the invariant it upholds is: a request handed to
``submit`` is either answered bit-exactly or fails loudly with a
``ServeError``; it is never silently dropped, including across worker
crashes (crashed batches are re-queued onto a fresh worker).
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

from .histogram import HistogramSnapshot, LatencyHistogram
from .scheduler import LaneConfig, LaneStats

if TYPE_CHECKING:  # pragma: no cover
    from typing import Callable

    import numpy as np

    from .cache import CacheStats
    from .transport import TransportSnapshot

__all__ = [
    "DeadlineExpiredError",
    "ServeConfig",
    "ServeError",
    "WorkerCrashError",
    "PredictionHandle",
    "ServerStats",
]


class ServeError(RuntimeError):
    """The serving layer could not answer a request (startup, shutdown,
    worker bootstrap failure, or a request failed after retries)."""


class WorkerCrashError(ServeError):
    """A worker process died and the request exhausted its restart budget."""


class DeadlineExpiredError(ServeError):
    """The request's deadline passed while it was still queued.

    The scheduler never serves an expired request late: it is removed
    from its lane (mid-queue included) and its handle fails with this
    error, so the caller learns immediately instead of receiving a
    stale answer.  Counted per lane in ``ServerStats.lanes[*].expired``.
    """


@dataclass(frozen=True)
class ServeConfig:
    """How a :class:`~repro.serve.server.UHDServer` batches and fans out.

    Attributes
    ----------
    workers:
        Worker *processes* to spawn.  ``0`` selects the synchronous
        in-process fallback (right for 1-core hosts and tests): requests
        run on the caller's thread through the front-end's own warm
        model, still chunked to ``max_batch``.
    max_batch:
        Upper bound on images per dispatched batch.  Requests are
        coalesced up to this bound; a single request *larger* than it is
        split into ``max_batch``-sized parts and reassembled in order,
        so the packed kernels always see friendly batch shapes.
    max_wait_ms:
        Micro-batching window: once a batch has its first request, the
        dispatcher waits at most this long for more requests to coalesce
        before flushing a partial batch.  ``0`` flushes immediately
        (lowest latency, least coalescing).
    lanes:
        Named priority lanes (:class:`~repro.serve.scheduler.LaneConfig`)
        the scheduler drains with weighted anti-starvation — e.g. an
        ``interactive`` lane with a 1 ms window next to a ``bulk`` lane
        with a 50 ms window.  The *first* lane is the default
        ``submit`` uses when none is named.  Lane knobs left ``None``
        inherit the server-wide ``max_batch`` / ``max_wait_ms`` /
        ``queue_depth``.  Empty (the default) means one ``"default"``
        lane built from those server-wide knobs — the exact
        pre-scheduler behavior.
    drain_timeout_s:
        How long :meth:`~repro.serve.server.UHDServer.close` (and the
        CLI's SIGTERM/SIGINT handler) waits for in-flight and queued
        requests to finish before failing the stragglers loudly and
        stopping the workers.
    backend:
        Registry backend name every worker re-homes the loaded model
        onto (``None`` keeps the backend recorded in the model file).
        Validated against :func:`repro.api.list_backends` at startup.
    queue_depth:
        Bound on requests waiting in the micro-batching queue;
        ``submit`` blocks (backpressure) when it is full.
    restart_limit:
        Total worker restarts the server will perform before declaring
        a batch failed (:class:`WorkerCrashError`) and refusing to
        respawn further.
    start_method:
        ``multiprocessing`` start method: ``"fork"`` (shares the
        front-end's already-warm gather tables copy-on-write),
        ``"spawn"``, ``"forkserver"``, or ``"auto"`` (fork where the
        platform offers it, else spawn).
    table_store:
        Where the front-end publishes its warm gather tables for workers
        to *attach* instead of rebuild (:mod:`repro.fastpath.tablestore`):
        ``"heap"`` (default — process heap; fork children share
        copy-on-write, spawn children rebuild), ``"mmap"`` (versioned
        table file in a server-owned temp directory, attached read-only
        via ``np.memmap``) or ``"shm"`` (``multiprocessing.shared_memory``,
        unlinked when the server closes).  With ``mmap``/``shm`` a
        ``spawn``-started worker warm-starts in O(1) table bytes, same
        as fork.
    ready_timeout_s:
        How long to wait for every worker's readiness probe at startup
        before failing with :class:`ServeError`.
    probe_batch:
        Images in each worker's readiness self-probe (the same
        deterministic-predictions check ``repro-uhd serve-check`` runs).
    """

    workers: int = 1
    max_batch: int = 64
    max_wait_ms: float = 2.0
    lanes: tuple[LaneConfig, ...] = ()
    backend: str | None = None
    queue_depth: int = 256
    restart_limit: int = 3
    start_method: str = "auto"
    table_store: str = "heap"
    ready_timeout_s: float = 60.0
    probe_batch: int = 8
    drain_timeout_s: float = 10.0

    def effective_lanes(self) -> tuple[LaneConfig, ...]:
        """The fully resolved lane set the scheduler runs.

        Configured lanes with their ``None`` knobs filled from the
        server-wide defaults; or, when no lanes were named, a single
        ``"default"`` lane carrying exactly the server-wide knobs.
        """
        if not self.lanes:
            return (
                LaneConfig(
                    name="default",
                    max_batch=self.max_batch,
                    max_wait_ms=self.max_wait_ms,
                    queue_depth=self.queue_depth,
                ),
            )
        return tuple(
            lane.resolved(self.max_batch, self.max_wait_ms, self.queue_depth)
            for lane in self.lanes
        )

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.restart_limit < 0:
            raise ValueError(
                f"restart_limit must be >= 0, got {self.restart_limit}"
            )
        if self.start_method not in ("auto", "fork", "spawn", "forkserver"):
            raise ValueError(
                "start_method must be one of 'auto', 'fork', 'spawn', "
                f"'forkserver', got {self.start_method!r}"
            )
        if self.table_store not in ("heap", "mmap", "shm"):
            raise ValueError(
                "table_store must be one of 'heap', 'mmap', 'shm', "
                f"got {self.table_store!r}"
            )
        if self.probe_batch < 1:
            raise ValueError(f"probe_batch must be >= 1, got {self.probe_batch}")
        if self.drain_timeout_s < 0:
            raise ValueError(
                f"drain_timeout_s must be >= 0, got {self.drain_timeout_s}"
            )
        if not isinstance(self.lanes, tuple):
            # keep the config hashable/frozen-friendly; accept any sequence
            object.__setattr__(self, "lanes", tuple(self.lanes))
        names = [lane.name for lane in self.lanes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate lane names: {names}")


@dataclass(frozen=True)
class ServerStats:
    """Point-in-time counters of a running server.

    ``mean_batch_size`` is the coalescing health metric: near 1.0 under
    a trickle of traffic, approaching ``max_batch`` under load.
    ``lanes`` carries one :class:`~repro.serve.scheduler.LaneStats` per
    configured lane (depth, served, expired-deadline counts) and
    ``cache`` the process-wide :class:`~repro.serve.cache.CacheStats`
    (encoder entries, gather-table bytes, live publications) — together
    the one-stop operator view the ``/stats`` HTTP endpoint serializes
    via :meth:`as_dict`.
    """

    mode: str  #: ``"pool"`` (worker processes) or ``"inproc"`` (fallback)
    workers: int
    requests: int  #: submit() calls accepted
    images: int  #: total images across those requests
    batches: int  #: dispatched batches (pool) / executed chunks (inproc)
    max_batch_seen: int
    mean_batch_size: float
    restarts: int  #: worker respawns performed (crash recovery)
    worker_probe_ms: tuple[float, ...]  #: readiness-probe latency per worker
    #: gather-table builds each worker performed during bootstrap — 0 means
    #: the worker *attached* the published tables (fork copy-on-write, or a
    #: mmap/shm table store under spawn) instead of rebuilding them
    worker_table_builds: tuple[int, ...] = ()
    #: per-lane scheduler counters, in lane declaration order
    lanes: tuple[LaneStats, ...] = ()
    #: request parts failed on an expired deadline (sum over lanes)
    expired: int = 0
    #: process-wide encoder-cache snapshot (entries, table bytes, publications)
    cache: "CacheStats | None" = None
    #: per-transport wire counters (connections, frames, bytes, malformed),
    #: one row per attached transport kind — empty when no transport is
    #: attached (plain in-process callers)
    transports: "tuple[TransportSnapshot, ...]" = ()

    def as_dict(self) -> dict:
        """A JSON-serializable view (nested dataclasses become dicts).

        Each lane's ``latency`` histogram is rendered through
        :meth:`~repro.serve.histogram.HistogramSnapshot.as_dict` so the
        JSON carries the derived p50/p95/p99 alongside the raw buckets
        — ``asdict`` alone would flatten the snapshot to bare fields and
        drop the quantiles operators actually read.
        """
        data = asdict(self)
        for lane_dict, lane in zip(data["lanes"], self.lanes):
            lane_dict["latency"] = lane.latency.as_dict()
        return data


class PredictionHandle:
    """Future-like handle for one submitted prediction request.

    A request may have been split into several parts (when it exceeded
    ``max_batch``) that complete out of order on different workers;
    :meth:`result` reassembles the label array in the original row
    order.
    """

    def __init__(self, parts: int, rows: int) -> None:
        self._parts_left = parts
        self.rows = rows
        self._results: list["np.ndarray | None"] = [None] * parts
        self._error: BaseException | None = None
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._callbacks: list["Callable[[PredictionHandle], None]"] = []
        if parts == 0:  # empty request: nothing to wait for
            self._done.set()

    def _complete_part(self, index: int, labels: "np.ndarray") -> None:
        callbacks: list = []
        with self._lock:
            if self._results[index] is None:
                self._results[index] = labels
                self._parts_left -= 1
            if self._parts_left == 0 and not self._done.is_set():
                self._done.set()
                callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _fail(self, error: BaseException) -> None:
        callbacks: list = []
        with self._lock:
            if self._error is None:
                self._error = error
            if not self._done.is_set():
                self._done.set()
                callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_done_callback(
        self, callback: "Callable[[PredictionHandle], None]"
    ) -> None:
        """Invoke ``callback(handle)`` once the request completes (or fails).

        Runs on whichever thread completes the request — the collector
        thread in pool mode, the submitting thread in-process — or
        immediately on the calling thread when already done.  This is
        what lets an event-loop transport hand off a request without
        parking a thread on :meth:`result`; the callback must not block.
        """
        with self._lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def done(self) -> bool:
        """Whether :meth:`result` would return (or raise) without blocking."""
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> "np.ndarray":
        """Predicted labels, in the submitted row order.

        Blocks up to ``timeout`` seconds (forever when ``None``); raises
        :class:`TimeoutError` if the request has not completed by then,
        or the failure (:class:`WorkerCrashError` / :class:`ServeError`)
        if it cannot complete.
        """
        if not self._done.wait(timeout):
            raise TimeoutError("prediction not completed within timeout")
        if self._error is not None:
            raise self._error
        import numpy as np

        results = [r for r in self._results if r is not None]
        if not results:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(results)


@dataclass
class _StatCounters:
    """Mutable counters behind :class:`ServerStats` (internal)."""

    requests: int = 0
    images: int = 0
    batches: int = 0
    batched_images: int = 0
    max_batch_seen: int = 0
    restarts: int = 0
    probe_ms: dict[int, float] = field(default_factory=dict)
    table_builds: dict[int, int] = field(default_factory=dict)
    #: inproc-mode per-lane tallies keyed by lane name: [parts, rows, batches]
    lane_served: dict[str, list[int]] = field(default_factory=dict)
    #: inproc-mode per-lane latency recorders (service time per request —
    #: there is no queue to wait in, so this is the whole latency)
    lane_hist: dict[str, LatencyHistogram] = field(default_factory=dict)

    def record_batch(self, rows: int) -> None:
        self.batches += 1
        self.batched_images += rows
        self.max_batch_seen = max(self.max_batch_seen, rows)

    def record_lane(
        self,
        lane: str,
        parts: int,
        rows: int,
        batches: int,
        latency_s: float | None = None,
    ) -> None:
        tally = self.lane_served.setdefault(lane, [0, 0, 0])
        tally[0] += parts
        tally[1] += rows
        tally[2] += batches
        if latency_s is not None:
            hist = self.lane_hist.get(lane)
            if hist is None:
                hist = self.lane_hist.setdefault(lane, LatencyHistogram())
            hist.record(latency_s)

    def inproc_lane_stats(
        self, lanes: tuple[LaneConfig, ...]
    ) -> tuple[LaneStats, ...]:
        """Synthesized lane counters for the queue-less in-process mode."""
        stats = []
        for lane in lanes:
            parts, rows, batches = self.lane_served.get(lane.name, (0, 0, 0))
            hist = self.lane_hist.get(lane.name)
            stats.append(
                LaneStats(
                    name=lane.name,
                    depth=0,
                    queued_rows=0,
                    submitted=parts,
                    served=parts,
                    served_rows=rows,
                    batches=batches,
                    expired=0,
                    latency=(
                        hist.snapshot() if hist is not None
                        else HistogramSnapshot.empty()
                    ),
                )
            )
        return tuple(stats)

    def snapshot(
        self,
        mode: str,
        workers: int,
        lanes: tuple[LaneStats, ...] = (),
        cache: "CacheStats | None" = None,
        transports: "tuple[TransportSnapshot, ...]" = (),
    ) -> ServerStats:
        mean = self.batched_images / self.batches if self.batches else 0.0
        return ServerStats(
            mode=mode,
            workers=workers,
            requests=self.requests,
            images=self.images,
            batches=self.batches,
            max_batch_seen=self.max_batch_seen,
            mean_batch_size=mean,
            restarts=self.restarts,
            worker_probe_ms=tuple(
                self.probe_ms[k] for k in sorted(self.probe_ms)
            ),
            worker_table_builds=tuple(
                self.table_builds[k] for k in sorted(self.table_builds)
            ),
            lanes=lanes,
            expired=sum(lane.expired for lane in lanes),
            cache=cache,
            transports=transports,
        )
