"""Structural gate-level netlists.

A :class:`Netlist` is a directed graph of cells over single-bit nets:
primary inputs, combinational gates (kinds from
:mod:`repro.hardware.cells`), D flip-flops, and named primary outputs.
Construction enforces single-driver nets and pin-count correctness;
:meth:`Netlist.levelize` orders the combinational logic topologically and
rejects combinational cycles (flip-flop boundaries legally cut cycles).

Nets are integer handles; builders in :mod:`repro.hardware.components`
layer readable buses on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cells import cell

__all__ = ["Gate", "Flop", "Netlist"]


@dataclass(frozen=True)
class Gate:
    """One combinational cell instance: ``output = kind(inputs)``."""

    kind: str
    inputs: tuple[int, ...]
    output: int


@dataclass(frozen=True)
class Flop:
    """One D flip-flop: ``q`` follows ``d`` at the clock edge."""

    d: int
    q: int
    init: int = 0


@dataclass
class Netlist:
    """A single-clock synchronous gate-level circuit."""

    name: str = "netlist"
    num_nets: int = 0
    inputs: dict[str, int] = field(default_factory=dict)
    outputs: dict[str, int] = field(default_factory=dict)
    gates: list[Gate] = field(default_factory=list)
    flops: list[Flop] = field(default_factory=list)
    _drivers: set[int] = field(default_factory=set, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def new_net(self) -> int:
        """Allocate an undriven net handle."""
        net = self.num_nets
        self.num_nets += 1
        return net

    def add_input(self, name: str) -> int:
        """Declare a primary input; returns its net."""
        if name in self.inputs:
            raise ValueError(f"duplicate input name {name!r}")
        net = self.new_net()
        self.inputs[name] = net
        self._drivers.add(net)
        return net

    def add_gate(self, kind: str, *inputs: int) -> int:
        """Instantiate a combinational cell; returns its output net."""
        spec = cell(kind)
        if kind == "DFF":
            raise ValueError("use add_flop for sequential cells")
        if spec.inputs != len(inputs):
            raise ValueError(
                f"{kind} takes {spec.inputs} inputs, got {len(inputs)}"
            )
        for net in inputs:
            self._check_net(net)
        output = self.new_net()
        self.gates.append(Gate(kind, tuple(inputs), output))
        self._drivers.add(output)
        return output

    def add_const(self, value: int) -> int:
        """A constant-0 or constant-1 net (tie cell)."""
        if value not in (0, 1):
            raise ValueError("constant must be 0 or 1")
        output = self.new_net()
        self.gates.append(Gate("CONST1" if value else "CONST0", (), output))
        self._drivers.add(output)
        return output

    def add_flop(self, d: int, init: int = 0) -> int:
        """Instantiate a DFF fed by net ``d``; returns the Q net."""
        self._check_net(d)
        if init not in (0, 1):
            raise ValueError("flop init must be 0 or 1")
        q = self.new_net()
        self.flops.append(Flop(d, q, init))
        self._drivers.add(q)
        return q

    def add_flop_placeholder(self, init: int = 0) -> int:
        """Declare a DFF whose D pin will be connected later.

        Sequential feedback (counters, LFSRs, sticky latches) needs the Q
        net to exist before the logic producing D can be built; connect
        with :meth:`connect_flop`.  Levelization rejects netlists that
        still contain unconnected placeholders.
        """
        if init not in (0, 1):
            raise ValueError("flop init must be 0 or 1")
        q = self.new_net()
        self.flops.append(Flop(-1, q, init))
        self._drivers.add(q)
        return q

    def connect_flop(self, q: int, d: int) -> None:
        """Attach the D pin of a placeholder flop identified by its Q net."""
        self._check_net(d)
        for index, flop in enumerate(self.flops):
            if flop.q == q:
                if flop.d != -1:
                    raise ValueError(f"flop with q={q} is already connected")
                self.flops[index] = Flop(d, q, flop.init)
                return
        raise ValueError(f"no flop has q net {q}")

    def add_output(self, name: str, net: int) -> None:
        """Expose a net as a named primary output."""
        if name in self.outputs:
            raise ValueError(f"duplicate output name {name!r}")
        self._check_net(net)
        self.outputs[name] = net

    def _check_net(self, net: int) -> None:
        if not 0 <= net < self.num_nets:
            raise ValueError(f"net {net} does not exist")
        if net not in self._drivers:
            raise ValueError(f"net {net} has no driver yet")

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def levelize(self) -> list[Gate]:
        """Topological order of the combinational gates.

        Flip-flop Q nets and primary inputs are sources.  Raises on
        combinational cycles.
        """
        for flop in self.flops:
            if flop.d == -1:
                raise ValueError(
                    f"flop with q={flop.q} has an unconnected D pin"
                )
        remaining: dict[int, Gate] = {id(g): g for g in self.gates}
        ready: set[int] = set(self.inputs.values()) | {f.q for f in self.flops}
        ordered: list[Gate] = []
        progress = True
        while remaining and progress:
            progress = False
            for key in list(remaining):
                gate = remaining[key]
                if all(net in ready for net in gate.inputs):
                    ordered.append(gate)
                    ready.add(gate.output)
                    del remaining[key]
                    progress = True
        if remaining:
            cyclic = [g.kind for g in remaining.values()][:5]
            raise ValueError(
                f"combinational cycle through {len(remaining)} gates "
                f"(first kinds: {cyclic})"
            )
        return ordered

    def cell_counts(self) -> dict[str, int]:
        """Instance count per cell kind (flip-flops included as DFF)."""
        counts: dict[str, int] = {}
        for gate in self.gates:
            counts[gate.kind] = counts.get(gate.kind, 0) + 1
        if self.flops:
            counts["DFF"] = len(self.flops)
        return counts

    def stats(self) -> str:
        """One-line human summary."""
        return (
            f"{self.name}: {len(self.gates)} gates, {len(self.flops)} flops, "
            f"{len(self.inputs)} inputs, {len(self.outputs)} outputs"
        )
