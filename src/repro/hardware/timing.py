"""Static timing: longest combinational path through the netlist.

Arrival times propagate in levelized order — primary inputs and flop Q
pins launch at t = 0 (plus the DFF clock-to-Q delay for flops), each gate
adds its cell delay, and the critical path is the maximum arrival at any
flop D pin or primary output.  This is the delay half of the paper's
area-delay product.
"""

from __future__ import annotations

from .cells import cell
from .netlist import Netlist

__all__ = ["critical_path_ps", "arrival_times_ps"]


def arrival_times_ps(netlist: Netlist) -> dict[int, float]:
    """Arrival time of every net in picoseconds."""
    arrivals: dict[int, float] = {net: 0.0 for net in netlist.inputs.values()}
    clk_to_q = cell("DFF").delay_ps
    for flop in netlist.flops:
        arrivals[flop.q] = clk_to_q
    for gate in netlist.levelize():
        gate_delay = cell(gate.kind).delay_ps
        launch = max((arrivals[n] for n in gate.inputs), default=0.0)
        arrivals[gate.output] = launch + gate_delay
    return arrivals


def critical_path_ps(netlist: Netlist) -> float:
    """Longest register-to-register / input-to-output path in picoseconds."""
    arrivals = arrival_times_ps(netlist)
    endpoints = [net for net in netlist.outputs.values()]
    endpoints.extend(flop.d for flop in netlist.flops)
    if not endpoints:
        return 0.0
    return max(arrivals.get(net, 0.0) for net in endpoints)
