"""Value Change Dump (VCD) export of simulation traces.

:class:`VcdRecorder` wraps a :class:`Simulator` and captures the values of
selected nets after every clock cycle, then serialises the trace as an
IEEE-1364 VCD file viewable in GTKWave — handy when debugging the paper's
sequential blocks (popcount, masking logic, LFSRs).
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from .simulator import Simulator

__all__ = ["VcdRecorder"]

_ID_ALPHABET = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Compact VCD identifier for signal ``index``."""
    chars = []
    index += 1
    while index:
        index, digit = divmod(index - 1, len(_ID_ALPHABET))
        chars.append(_ID_ALPHABET[digit])
    return "".join(chars)


class VcdRecorder:
    """Record named nets of a simulator run and dump them as VCD.

    Parameters
    ----------
    simulator:
        The simulator to observe.
    signals:
        Mapping of display name to net handle.  Defaults to every primary
        input and output of the netlist.
    timescale:
        VCD timescale string; one simulator cycle = one timescale unit.
    """

    def __init__(
        self,
        simulator: Simulator,
        signals: Mapping[str, int] | None = None,
        timescale: str = "1ns",
    ) -> None:
        if signals is None:
            signals = dict(simulator.netlist.inputs)
            signals.update(simulator.netlist.outputs)
        if not signals:
            raise ValueError("need at least one signal to record")
        self.simulator = simulator
        self.signals = dict(signals)
        self.timescale = timescale
        self._history: list[dict[str, int]] = []

    def snapshot(self) -> None:
        """Record current values of all observed signals."""
        self._history.append(
            {name: self.simulator.value(net)
             for name, net in self.signals.items()}
        )

    def step(self, input_values: Mapping[str, int] | None = None) -> dict[str, int]:
        """Advance the simulator one cycle and record the post-edge state."""
        outputs = self.simulator.step(input_values)
        self.snapshot()
        return outputs

    def run(self, stimulus: Sequence[Mapping[str, int]]) -> None:
        """Step through a stimulus sequence, recording every cycle."""
        for vector in stimulus:
            self.step(vector)

    @property
    def cycles_recorded(self) -> int:
        return len(self._history)

    def render(self, module: str = "top") -> str:
        """Serialise the recorded trace as VCD text."""
        if not self._history:
            raise ValueError("nothing recorded yet")
        ids = {name: _identifier(i) for i, name in enumerate(self.signals)}
        lines = [
            "$date reproduction run $end",
            "$version repro.hardware.vcd $end",
            f"$timescale {self.timescale} $end",
            f"$scope module {module} $end",
        ]
        for name, vcd_id in ids.items():
            lines.append(f"$var wire 1 {vcd_id} {name} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")

        previous: dict[str, int] = {}
        for time, values in enumerate(self._history):
            changes = [
                f"{value}{ids[name]}"
                for name, value in values.items()
                if previous.get(name) != value
            ]
            if changes:
                lines.append(f"#{time}")
                lines.extend(changes)
            previous = values
        lines.append(f"#{len(self._history)}")
        return "\n".join(lines) + "\n"

    def write(self, path: str | Path, module: str = "top") -> Path:
        """Write the VCD file; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render(module=module))
        return path
