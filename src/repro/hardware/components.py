"""Parametric RTL-style component builders over :class:`Netlist`.

Buses are Python lists of net handles, LSB first.  Every builder takes the
netlist as its first argument and returns the nets it created, so
composite circuits (in :mod:`repro.hardware.circuits`) read like
structural HDL.
"""

from __future__ import annotations

from .netlist import Netlist

__all__ = [
    "reduce_tree",
    "and_tree",
    "or_tree",
    "constant_bus",
    "incrementer",
    "sync_counter",
    "equality_comparator",
    "binary_comparator_ge",
    "match_constant_mask",
    "sticky_latch",
    "build_lfsr",
    "register_bus",
    "half_adder",
    "full_adder",
    "ripple_adder",
    "popcount_tree",
]


def reduce_tree(nl: Netlist, nets: list[int], kind2: str, kind3: str) -> int:
    """Balanced reduction of a net list with 2- and 3-input cells."""
    if not nets:
        raise ValueError("cannot reduce an empty net list")
    level = list(nets)
    while len(level) > 1:
        nxt: list[int] = []
        index = 0
        while index < len(level):
            chunk = level[index : index + 3]
            if len(chunk) == 3:
                nxt.append(nl.add_gate(kind3, *chunk))
            elif len(chunk) == 2:
                nxt.append(nl.add_gate(kind2, *chunk))
            else:
                nxt.append(chunk[0])
            index += 3
        level = nxt
    return level[0]


def and_tree(nl: Netlist, nets: list[int]) -> int:
    """N-input AND as a balanced AND2/AND3 tree."""
    return reduce_tree(nl, nets, "AND2", "AND3")


def or_tree(nl: Netlist, nets: list[int]) -> int:
    """N-input OR as a balanced OR2/OR3 tree."""
    return reduce_tree(nl, nets, "OR2", "OR3")


def constant_bus(nl: Netlist, value: int, bits: int) -> list[int]:
    """A constant driven onto ``bits`` nets, LSB first."""
    if value < 0 or value >= (1 << bits):
        raise ValueError(f"value {value} does not fit in {bits} bits")
    return [nl.add_const((value >> b) & 1) for b in range(bits)]


def incrementer(nl: Netlist, bus: list[int]) -> list[int]:
    """Combinational +1 over a bus: ripple of XOR (sum) and AND (carry)."""
    out: list[int] = []
    carry: int | None = None
    for index, bit in enumerate(bus):
        if index == 0:
            out.append(nl.add_gate("INV", bit))
            carry = bit
        else:
            out.append(nl.add_gate("XOR2", bit, carry))
            carry = nl.add_gate("AND2", bit, carry)
    return out


def sync_counter(
    nl: Netlist, bits: int, enable: int | None = None
) -> list[int]:
    """Synchronous up-counter; counts every cycle, or only when ``enable``.

    Returns the Q bus.  This is the popcount element of Fig. 5: the D-type
    flip-flop chain that counts incoming logic-1s.
    """
    if bits < 1:
        raise ValueError("counter needs at least one bit")
    q_bus = [nl.add_flop_placeholder() for _ in range(bits)]
    inc = incrementer(nl, q_bus)
    for q, next_value in zip(q_bus, inc):
        if enable is None:
            nl.connect_flop(q, next_value)
        else:
            nl.connect_flop(q, nl.add_gate("MUX2", q, next_value, enable))
    return q_bus


def equality_comparator(nl: Netlist, a: list[int], b: list[int]) -> int:
    """``a == b`` over equal-width buses: AND tree of per-bit XNORs."""
    if len(a) != len(b):
        raise ValueError("equality operands must share a width")
    return and_tree(nl, [nl.add_gate("XNOR2", x, y) for x, y in zip(a, b)])


def binary_comparator_ge(nl: Netlist, a: list[int], b: list[int]) -> int:
    """Magnitude comparator ``a >= b`` (the conventional M-bit comparator).

    Ripple formulation from LSB to MSB:
    ``ge_i = gt_i OR (eq_i AND ge_{i-1})`` with ``ge_{-1} = 1``.
    """
    if len(a) != len(b):
        raise ValueError("comparator operands must share a width")
    ge = nl.add_const(1)
    for x, y in zip(a, b):
        not_y = nl.add_gate("INV", y)
        gt = nl.add_gate("AND2", x, not_y)
        eq = nl.add_gate("XNOR2", x, y)
        ge = nl.add_gate("OR2", gt, nl.add_gate("AND2", eq, ge))
    return ge


def match_constant_mask(nl: Netlist, bus: list[int], value: int) -> int:
    """The paper's masking logic: AND only the bits set in ``value``.

    For a monotonically counting bus this fires the first time the count
    reaches ``value`` — a hardwired threshold detector needing no
    comparator or subtractor (contribution ⑤).  Combine with
    :func:`sticky_latch` to hold the decision, since higher counts can
    momentarily clear masked bits.
    """
    if value <= 0 or value >= (1 << len(bus)):
        raise ValueError(f"threshold {value} does not fit the bus")
    selected = [bus[b] for b in range(len(bus)) if (value >> b) & 1]
    if len(selected) == 1:
        return nl.add_gate("BUF", selected[0])
    return and_tree(nl, selected)


def sticky_latch(nl: Netlist, signal: int) -> int:
    """Set-and-hold: q latches the first 1 seen on ``signal``.

    This is the sign-bit flip-flop of Fig. 5 that remembers the masking
    logic having fired.
    """
    q = nl.add_flop_placeholder()
    nl.connect_flop(q, nl.add_gate("OR2", q, signal))
    return q


def build_lfsr(nl: Netlist, width: int, taps: tuple[int, ...]) -> list[int]:
    """Fibonacci LFSR with the given 1-based taps; returns the state bus.

    All flops initialise to 1 (non-zero seed).  The software twin is
    :class:`repro.hdc.lfsr.LFSR`; equivalence between the two is tested.
    """
    if any(not 1 <= t <= width for t in taps):
        raise ValueError(f"taps must lie in [1, {width}]")
    state = [nl.add_flop_placeholder(init=1) for _ in range(width)]
    feedback = state[taps[0] - 1]
    for tap in taps[1:]:
        feedback = nl.add_gate("XOR2", feedback, state[tap - 1])
    # XAPP052 convention (matches repro.hdc.lfsr.LFSR): stages shift toward
    # higher bits, feedback enters stage 1 (bit 0).
    for index in range(1, width):
        nl.connect_flop(state[index], nl.add_gate("BUF", state[index - 1]))
    nl.connect_flop(state[0], feedback)
    return state


def register_bus(nl: Netlist, d_bus: list[int]) -> list[int]:
    """A rank of DFFs over a bus; returns the Q bus."""
    return [nl.add_flop(d) for d in d_bus]


def half_adder(nl: Netlist, a: int, b: int) -> tuple[int, int]:
    """``(sum, carry)`` of two bits: XOR + AND."""
    return nl.add_gate("XOR2", a, b), nl.add_gate("AND2", a, b)


def full_adder(nl: Netlist, a: int, b: int, carry_in: int) -> tuple[int, int]:
    """``(sum, carry)`` of three bits: two half adders + carry OR."""
    s1, c1 = half_adder(nl, a, b)
    s2, c2 = half_adder(nl, s1, carry_in)
    return s2, nl.add_gate("OR2", c1, c2)


def ripple_adder(nl: Netlist, a: list[int], b: list[int]) -> list[int]:
    """Unsigned ripple-carry sum of two equal-width buses, width+1 bits."""
    if len(a) != len(b):
        raise ValueError("adder operands must share a width")
    out: list[int] = []
    carry: int | None = None
    for x, y in zip(a, b):
        if carry is None:
            bit, carry = half_adder(nl, x, y)
        else:
            bit, carry = full_adder(nl, x, y, carry)
        out.append(bit)
    out.append(carry if carry is not None else nl.add_const(0))
    return out


def popcount_tree(nl: Netlist, bits: list[int]) -> list[int]:
    """Combinational ones-count of a bit vector as a binary bus.

    A balanced adder tree — the single-cycle alternative to the paper's
    sequential popcount counter (Fig. 5).  Useful for the
    throughput-vs-area trade-off study in the ablation benches.
    """
    if not bits:
        raise ValueError("popcount of an empty vector")
    buses: list[list[int]] = [[bit] for bit in bits]
    while len(buses) > 1:
        paired: list[list[int]] = []
        for index in range(0, len(buses) - 1, 2):
            left, right = buses[index], buses[index + 1]
            width = max(len(left), len(right))
            zero = nl.add_const(0)
            left = left + [zero] * (width - len(left))
            right = right + [zero] * (width - len(right))
            paired.append(ripple_adder(nl, left, right))
        if len(buses) % 2:
            paired.append(buses[-1])
        buses = paired
    return buses[0]
