"""Cell-area accounting (the area half of the paper's area-delay product)."""

from __future__ import annotations

from .cells import cell
from .netlist import Netlist

__all__ = ["area_um2", "area_by_kind", "rom_area_um2"]

# Per-bit macro area for small ROM/BRAM arrays, 45 nm-class.
_ROM_UM2_PER_BIT = 0.30


def area_um2(netlist: Netlist, memory_bits: int = 0) -> float:
    """Total placement area: standard cells plus optional memory macro."""
    total = sum(cell(kind).area_um2 * count
                for kind, count in netlist.cell_counts().items())
    return total + rom_area_um2(memory_bits)


def area_by_kind(netlist: Netlist) -> dict[str, float]:
    """Area contribution per cell kind."""
    return {
        kind: cell(kind).area_um2 * count
        for kind, count in netlist.cell_counts().items()
    }


def rom_area_um2(memory_bits: int) -> float:
    """Macro area of a ROM/BRAM of the given capacity."""
    if memory_bits < 0:
        raise ValueError("memory_bits must be non-negative")
    return memory_bits * _ROM_UM2_PER_BIT
