"""Synthesis-style reporting: one object tying area, timing and energy.

`report()` mimics the summary a Design Compiler run prints — cell counts,
area, critical path, and the dynamic energy of a supplied stimulus — so
the experiment code (and the README examples) can characterise any of the
paper's datapaths in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .area import area_by_kind, area_um2
from .netlist import Netlist
from .power import EnergyBreakdown, dynamic_energy_fj
from .simulator import Simulator
from .timing import critical_path_ps

__all__ = ["SynthesisReport", "characterize"]


@dataclass(frozen=True)
class SynthesisReport:
    """Characterisation summary of one netlist."""

    name: str
    cell_counts: dict[str, int]
    area_um2: float
    critical_path_ps: float
    cycles: int
    energy: EnergyBreakdown

    @property
    def area_delay_um2_s(self) -> float:
        """Area x delay in um^2 * seconds (the paper's Table II metric
        is m^2 * s; convert with 1 um^2 = 1e-12 m^2)."""
        return self.area_um2 * self.critical_path_ps * 1e-12

    @property
    def energy_per_cycle_fj(self) -> float:
        return self.energy.total_fj / self.cycles if self.cycles else 0.0

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"=== {self.name} ===",
            "cells: "
            + ", ".join(f"{kind} x{count}"
                        for kind, count in sorted(self.cell_counts.items())),
            f"area: {self.area_um2:.2f} um^2",
            f"critical path: {self.critical_path_ps:.0f} ps",
            f"cycles simulated: {self.cycles}",
            f"dynamic energy: {self.energy.total_fj:.2f} fJ"
            f" ({self.energy_per_cycle_fj:.2f} fJ/cycle)",
        ]
        return "\n".join(lines)


def characterize(
    netlist: Netlist,
    stimulus: Sequence[Mapping[str, int]],
    memory_bits: int = 0,
    extra_memory_fj: float = 0.0,
) -> SynthesisReport:
    """Simulate a stimulus and assemble the full report.

    ``extra_memory_fj`` charges macro accesses (ROM/BRAM reads) that the
    gate-level simulation cannot see.
    """
    sim = Simulator(netlist)
    sim.run(list(stimulus))
    energy = dynamic_energy_fj(sim)
    if extra_memory_fj:
        energy.add_memory_access(extra_memory_fj)
    return SynthesisReport(
        name=netlist.name,
        cell_counts=netlist.cell_counts(),
        area_um2=area_um2(netlist, memory_bits=memory_bits),
        critical_path_ps=critical_path_ps(netlist),
        cycles=sim.cycles,
        energy=energy,
    )
