"""Dynamic-energy accounting from simulated switching activity.

Energy model (the standard gate-level power-report product):

``E_dynamic = sum_gates toggles(g) * E_cell(kind(g))
            + cycles * n_flops * E_dff_clock
            + sum_flops q_toggles(f) * E_dff``

plus explicit memory-macro access energy charged by the circuit models
(ROM/BRAM reads are not standard cells; see
:mod:`repro.hardware.cells`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cells import DFF_CLOCK_ENERGY_FJ, cell
from .simulator import Simulator

__all__ = ["EnergyBreakdown", "dynamic_energy_fj"]


@dataclass
class EnergyBreakdown:
    """Per-category dynamic energy of one simulation run, in femtojoules."""

    combinational_fj: float = 0.0
    flop_clock_fj: float = 0.0
    flop_data_fj: float = 0.0
    memory_fj: float = 0.0
    by_kind: dict[str, float] = field(default_factory=dict)

    @property
    def total_fj(self) -> float:
        return (
            self.combinational_fj
            + self.flop_clock_fj
            + self.flop_data_fj
            + self.memory_fj
        )

    @property
    def total_pj(self) -> float:
        return self.total_fj / 1000.0

    def add_memory_access(self, energy_fj: float) -> None:
        """Charge a memory-macro access (ROM/BRAM read)."""
        if energy_fj < 0:
            raise ValueError("memory access energy must be non-negative")
        self.memory_fj += energy_fj
        self.by_kind["MEM"] = self.by_kind.get("MEM", 0.0) + energy_fj


def dynamic_energy_fj(sim: Simulator) -> EnergyBreakdown:
    """Energy of everything ``sim`` has executed since its last reset."""
    breakdown = EnergyBreakdown()
    gate_kind = {gate.output: gate.kind for gate in sim.netlist.gates}
    for net, toggles in sim.gate_toggles.items():
        kind = gate_kind[net]
        energy = toggles * cell(kind).energy_fj
        breakdown.combinational_fj += energy
        breakdown.by_kind[kind] = breakdown.by_kind.get(kind, 0.0) + energy
    dff_energy = cell("DFF").energy_fj
    for toggles in sim.flop_toggles.values():
        breakdown.flop_data_fj += toggles * dff_energy
    breakdown.flop_clock_fj = (
        sim.cycles * len(sim.netlist.flops) * DFF_CLOCK_ENERGY_FJ
    )
    if sim.netlist.flops:
        breakdown.by_kind["DFF"] = (
            breakdown.by_kind.get("DFF", 0.0)
            + breakdown.flop_data_fj
            + breakdown.flop_clock_fj
        )
    return breakdown
