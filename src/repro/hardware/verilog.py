"""Structural Verilog emission for the reproduction's netlists.

Every :class:`Netlist` can be exported as a synthesisable structural
Verilog module built from primitive gate instantiations, so the datapaths
characterised here (unary comparator, masking binarizer, generators) can
be pushed through a real synthesis flow for independent confirmation of
the energy/area trends.

Mapping notes
-------------
* Nets become ``wire n<k>``; primary inputs/outputs keep their names.
* Combinational cells map to Verilog gate primitives where one exists
  (``and``, ``or``, ``nand``, ``nor``, ``xor``, ``xnor``, ``not``,
  ``buf``); MUX2 and constants map to ``assign`` expressions.
* Flip-flops become a single always-block with a synchronous reset-free
  initial state (matching the simulator's ``init`` semantics via
  ``initial`` blocks, which synthesis treats as register init on FPGA
  targets).
"""

from __future__ import annotations

from .netlist import Netlist

__all__ = ["to_verilog"]

_PRIMITIVES = {
    "AND2": "and", "AND3": "and", "AND4": "and",
    "OR2": "or", "OR3": "or", "OR4": "or",
    "NAND2": "nand", "NOR2": "nor",
    "XOR2": "xor", "XNOR2": "xnor",
    "INV": "not", "BUF": "buf",
}


def _net_name(netlist: Netlist, net: int) -> str:
    for name, handle in netlist.inputs.items():
        if handle == net:
            return name
    return f"n{net}"


def to_verilog(netlist: Netlist, module_name: str | None = None) -> str:
    """Render the netlist as one structural Verilog module."""
    module = module_name or netlist.name.replace("-", "_")
    inputs = list(netlist.inputs)
    outputs = list(netlist.outputs)
    has_flops = bool(netlist.flops)

    ports = (["clk"] if has_flops else []) + inputs + outputs
    lines = [f"module {module} ("]
    lines.append("    " + ",\n    ".join(ports))
    lines.append(");")
    if has_flops:
        lines.append("  input clk;")
    for name in inputs:
        lines.append(f"  input {name};")
    for name in outputs:
        lines.append(f"  output {name};")

    internal = [
        net for net in range(netlist.num_nets)
        if net not in netlist.inputs.values()
    ]
    if internal:
        wires = ", ".join(f"n{net}" for net in internal)
        lines.append(f"  wire {wires};")

    instance = 0
    for gate in netlist.gates:
        out = _net_name(netlist, gate.output)
        operands = ", ".join(_net_name(netlist, n) for n in gate.inputs)
        if gate.kind == "CONST0":
            lines.append(f"  assign {out} = 1'b0;")
        elif gate.kind == "CONST1":
            lines.append(f"  assign {out} = 1'b1;")
        elif gate.kind == "MUX2":
            in0, in1, sel = (_net_name(netlist, n) for n in gate.inputs)
            lines.append(f"  assign {out} = {sel} ? {in1} : {in0};")
        else:
            primitive = _PRIMITIVES[gate.kind]
            lines.append(f"  {primitive} g{instance} ({out}, {operands});")
            instance += 1

    if has_flops:
        q_names = [_net_name(netlist, f.q) for f in netlist.flops]
        lines.append("  reg " + ", ".join(q_names) + ";")
        for flop in netlist.flops:
            lines.append(
                f"  initial {_net_name(netlist, flop.q)} = 1'b{flop.init};"
            )
        lines.append("  always @(posedge clk) begin")
        for flop in netlist.flops:
            lines.append(
                f"    {_net_name(netlist, flop.q)} <= "
                f"{_net_name(netlist, flop.d)};"
            )
        lines.append("  end")

    for name, net in netlist.outputs.items():
        source = _net_name(netlist, net)
        if source != name:
            lines.append(f"  assign {name} = {source};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
