"""Gate-level hardware substrate: netlists, simulation, power/area/timing.

This package plays the role of the paper's Synopsys Design Compiler flow:
:mod:`repro.hardware.circuits` holds structural netlists of every datapath
block the paper characterises; :func:`characterize` runs a stimulus
through the cycle simulator and reports area, critical path, and
activity-based dynamic energy against the 45 nm-class cell library.
"""

from . import circuits
from .area import area_by_kind, area_um2, rom_area_um2
from .cells import LIBRARY, Cell, cell
from .netlist import Flop, Gate, Netlist
from .power import EnergyBreakdown, dynamic_energy_fj
from .simulator import Simulator, evaluate_gate
from .synthesis import SynthesisReport, characterize
from .timing import arrival_times_ps, critical_path_ps
from .vcd import VcdRecorder
from .verilog import to_verilog

__all__ = [
    "Netlist",
    "Gate",
    "Flop",
    "Simulator",
    "evaluate_gate",
    "Cell",
    "LIBRARY",
    "cell",
    "EnergyBreakdown",
    "dynamic_energy_fj",
    "area_um2",
    "area_by_kind",
    "rom_area_um2",
    "critical_path_ps",
    "arrival_times_ps",
    "SynthesisReport",
    "characterize",
    "circuits",
    "to_verilog",
    "VcdRecorder",
]
