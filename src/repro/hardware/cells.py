"""A 45 nm-class standard-cell library for energy / area / timing models.

The paper synthesises its checkpoints with Synopsys Design Compiler and a
45 nm cell library.  We substitute a calibrated cell table in the style of
the NanGate FreePDK45 open library: per-cell area, propagation delay under
a nominal load, switching energy per output toggle, and leakage.  Absolute
numbers are library-calibration constants (documented here, asserted
sane-range in tests); the uHD-vs-baseline *ratios* come from gate counts
and switching activity of the actual netlists, not from these constants.

Memory macros (the BRAM holding Sobol codes and the UST ROM) cannot be
built from standard cells; they are modelled as per-bit access energies,
the same first-order treatment a CACTI-style estimator applies.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Cell", "LIBRARY", "ROM_READ_ENERGY_FJ_PER_BIT", "SRAM_READ_ENERGY_FJ_PER_BIT",
           "cell", "DFF_CLOCK_ENERGY_FJ"]


@dataclass(frozen=True)
class Cell:
    """One standard cell's characterisation data.

    Attributes
    ----------
    name:
        Cell kind (also the key in :data:`LIBRARY`).
    area_um2:
        Placement area in square micrometres.
    delay_ps:
        Pin-to-pin propagation delay under nominal fan-out, picoseconds.
    energy_fj:
        Internal + load switching energy per *output toggle*, femtojoules.
    leakage_nw:
        Leakage power in nanowatts (reported, not accumulated into
        dynamic-energy totals).
    inputs:
        Number of input pins (-1 for sequential cells where it differs by
        role); used by netlist validation.
    """

    name: str
    area_um2: float
    delay_ps: float
    energy_fj: float
    leakage_nw: float
    inputs: int


# NanGate FreePDK45-flavoured values (X1 drive, typical corner).
LIBRARY: dict[str, Cell] = {
    "CONST0": Cell("CONST0", 0.0, 0.0, 0.0, 0.0, 0),
    "CONST1": Cell("CONST1", 0.0, 0.0, 0.0, 0.0, 0),
    "BUF": Cell("BUF", 0.798, 35.0, 0.50, 8.0, 1),
    "INV": Cell("INV", 0.532, 20.0, 0.35, 6.0, 1),
    "AND2": Cell("AND2", 1.064, 45.0, 0.85, 12.0, 2),
    "AND3": Cell("AND3", 1.330, 55.0, 1.05, 15.0, 3),
    "AND4": Cell("AND4", 1.596, 65.0, 1.25, 18.0, 4),
    "OR2": Cell("OR2", 1.064, 45.0, 0.85, 12.0, 2),
    "OR3": Cell("OR3", 1.330, 55.0, 1.05, 15.0, 3),
    "OR4": Cell("OR4", 1.596, 65.0, 1.25, 18.0, 4),
    "NAND2": Cell("NAND2", 0.798, 30.0, 0.60, 9.0, 2),
    "NOR2": Cell("NOR2", 0.798, 35.0, 0.60, 9.0, 2),
    "XOR2": Cell("XOR2", 1.596, 60.0, 1.60, 20.0, 2),
    "XNOR2": Cell("XNOR2", 1.596, 60.0, 1.60, 20.0, 2),
    "MUX2": Cell("MUX2", 1.862, 55.0, 1.40, 22.0, 3),
    "DFF": Cell("DFF", 4.522, 90.0, 1.80, 45.0, 1),
}

# Energy a DFF burns on every clock edge even without a Q toggle
# (internal clock buffering); charged per cycle per flip-flop.
DFF_CLOCK_ENERGY_FJ = 0.25

# Memory-macro access energies (per bit read), CACTI-style small-array values.
ROM_READ_ENERGY_FJ_PER_BIT = 0.045
SRAM_READ_ENERGY_FJ_PER_BIT = 0.09


def cell(kind: str) -> Cell:
    """Look up one cell kind, with a clear error for unknown kinds."""
    try:
        return LIBRARY[kind]
    except KeyError:
        raise KeyError(
            f"unknown cell kind {kind!r}; available: {sorted(LIBRARY)}"
        ) from None
