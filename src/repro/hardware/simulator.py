"""Cycle-based netlist simulation with switching-activity capture.

The simulator evaluates the levelized combinational logic once per cycle,
then clocks every flip-flop (two-phase: sample D, then update Q), counting
**output toggles per gate** along the way.  Toggle counts times per-cell
switching energy is the dynamic-power model
(:mod:`repro.hardware.power`) — the same activity-times-energy product a
gate-level power report computes from a simulation VCD.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from .netlist import Gate, Netlist

__all__ = ["Simulator", "TruthTableError", "evaluate_gate"]


class TruthTableError(ValueError):
    """Raised when a gate kind has no evaluation rule."""


_EVAL: dict[str, Callable[[tuple[int, ...]], int]] = {
    "CONST0": lambda v: 0,
    "CONST1": lambda v: 1,
    "BUF": lambda v: v[0],
    "INV": lambda v: 1 - v[0],
    "AND2": lambda v: v[0] & v[1],
    "AND3": lambda v: v[0] & v[1] & v[2],
    "AND4": lambda v: v[0] & v[1] & v[2] & v[3],
    "OR2": lambda v: v[0] | v[1],
    "OR3": lambda v: v[0] | v[1] | v[2],
    "OR4": lambda v: v[0] | v[1] | v[2] | v[3],
    "NAND2": lambda v: 1 - (v[0] & v[1]),
    "NOR2": lambda v: 1 - (v[0] | v[1]),
    "XOR2": lambda v: v[0] ^ v[1],
    "XNOR2": lambda v: 1 - (v[0] ^ v[1]),
    "MUX2": lambda v: v[1] if v[2] else v[0],  # (in0, in1, select)
}


def evaluate_gate(gate: Gate, values: Sequence[int]) -> int:
    """Evaluate one gate's output from current net values."""
    try:
        fn = _EVAL[gate.kind]
    except KeyError:
        raise TruthTableError(f"no evaluation rule for {gate.kind!r}") from None
    return fn(tuple(values[net] for net in gate.inputs))


class Simulator:
    """Stateful cycle simulator for one :class:`Netlist`.

    Parameters
    ----------
    netlist:
        The circuit; levelized once at construction.
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self._order = netlist.levelize()
        self.reset()

    def reset(self) -> "Simulator":
        """Clear net values, flop state, forced faults and all counters."""
        self._values = np.zeros(self.netlist.num_nets, dtype=np.int8)
        for flop in self.netlist.flops:
            self._values[flop.q] = flop.init
        self.gate_toggles: dict[int, int] = {
            gate.output: 0 for gate in self._order
        }
        self.flop_toggles: dict[int, int] = {
            flop.q: 0 for flop in self.netlist.flops
        }
        self.cycles = 0
        self._forced: dict[int, int] = {}
        self._combinational_settled = False
        return self

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def force(self, net: int, value: int) -> "Simulator":
        """Stuck-at fault: pin ``net`` to ``value`` until released.

        Forced nets override their drivers (gates, flops and primary
        inputs alike) — the standard stuck-at-0/1 model used for fault
        simulation and the robustness experiments.
        """
        if not 0 <= net < self.netlist.num_nets:
            raise ValueError(f"net {net} does not exist")
        if value not in (0, 1):
            raise ValueError("forced value must be 0 or 1")
        self._forced[net] = value
        self._values[net] = value
        return self

    def release(self, net: int) -> "Simulator":
        """Remove a stuck-at fault from ``net``."""
        self._forced.pop(net, None)
        return self

    @property
    def forced_nets(self) -> dict[int, int]:
        """Currently active stuck-at faults (net -> value)."""
        return dict(self._forced)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _apply_inputs(self, input_values: Mapping[str, int]) -> None:
        for name, value in input_values.items():
            try:
                net = self.netlist.inputs[name]
            except KeyError:
                raise KeyError(
                    f"unknown input {name!r}; expected "
                    f"{sorted(self.netlist.inputs)}"
                ) from None
            if value not in (0, 1):
                raise ValueError(f"input {name!r} must be 0/1, got {value}")
            if net not in self._forced:
                self._values[net] = value

    def _propagate(self) -> None:
        """Re-evaluate combinational logic, counting output toggles."""
        values = self._values
        forced = self._forced
        for gate in self._order:
            if gate.output in forced:
                continue
            new = evaluate_gate(gate, values)
            if new != values[gate.output]:
                self.gate_toggles[gate.output] += 1
                values[gate.output] = new
        self._combinational_settled = True

    def evaluate(self, input_values: Mapping[str, int] | None = None) -> dict[str, int]:
        """Combinational-only evaluation (no clock edge); returns outputs."""
        if input_values:
            self._apply_inputs(input_values)
        self._propagate()
        return self.outputs()

    def step(self, input_values: Mapping[str, int] | None = None) -> dict[str, int]:
        """One full clock cycle: drive inputs, settle logic, clock flops.

        Output values returned are those *after* the edge (combinational
        logic is re-settled so Moore outputs read correctly).
        """
        if input_values:
            self._apply_inputs(input_values)
        self._propagate()
        # Two-phase flop update: sample all D pins before touching any Q.
        sampled = [(flop, int(self._values[flop.d])) for flop in self.netlist.flops]
        for flop, d_value in sampled:
            if flop.q in self._forced:
                continue
            if self._values[flop.q] != d_value:
                self.flop_toggles[flop.q] += 1
                self._values[flop.q] = d_value
        self.cycles += 1
        self._propagate()
        return self.outputs()

    def run(self, stimulus: Sequence[Mapping[str, int]]) -> list[dict[str, int]]:
        """Apply a sequence of input maps, one clock cycle each."""
        return [self.step(vector) for vector in stimulus]

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def value(self, net: int) -> int:
        """Current value of a net."""
        return int(self._values[net])

    def outputs(self) -> dict[str, int]:
        """Current values of all primary outputs."""
        return {name: int(self._values[net])
                for name, net in self.netlist.outputs.items()}

    def total_gate_toggles(self) -> int:
        """Total combinational output toggles since reset."""
        return sum(self.gate_toggles.values())

    def total_flop_toggles(self) -> int:
        """Total flip-flop Q toggles since reset."""
        return sum(self.flop_toggles.values())
