"""Gate-level models for design checkpoint ➌ (paper Fig. 5, right side).

Both designs accumulate level-hypervector bits with a popcount counter
(``ceil(log2 H)+1`` bits, enabled by the incoming bit).  They differ in
how the sign decision is made:

* :func:`build_masking_binarizer` — uHD: the counter bits corresponding to
  the set bits of TOB = H/2 are hardwired into an AND tree whose output is
  caught by a sticky flip-flop.  No comparator, no subtractor
  (contribution ⑤).
* :func:`build_comparator_binarizer` — baseline: a full magnitude
  comparator evaluates ``count >= TOB`` every cycle (the "separate module
  for thresholding or subtraction").
"""

from __future__ import annotations

import numpy as np

from ..components import (
    binary_comparator_ge,
    constant_bus,
    match_constant_mask,
    sticky_latch,
    sync_counter,
)
from ..netlist import Netlist

__all__ = [
    "build_masking_binarizer",
    "build_comparator_binarizer",
    "bit_stream_stimulus",
]


def _popcount_width(h: int) -> int:
    """Counter width for counts up to H inclusive."""
    return max(int(h).bit_length(), 1)


def build_masking_binarizer(h: int) -> Netlist:
    """Popcount + hardwired masking logic + sticky sign flop (uHD).

    Input ``bit`` streams the level hypervector; output ``sign`` latches 1
    once the ones-count reaches TOB = H/2.
    """
    if h < 2:
        raise ValueError(f"h must be >= 2, got {h}")
    tob = h // 2
    nl = Netlist(name=f"masking_binarizer_h{h}")
    bit = nl.add_input("bit")
    count = sync_counter(nl, _popcount_width(h), enable=bit)
    fire = match_constant_mask(nl, count, tob)
    nl.add_output("sign", sticky_latch(nl, fire))
    for index, net in enumerate(count):
        nl.add_output(f"count{index}", net)
    return nl


def build_comparator_binarizer(h: int) -> Netlist:
    """Popcount + full comparator against TOB (the baseline binarizer)."""
    if h < 2:
        raise ValueError(f"h must be >= 2, got {h}")
    tob = h // 2
    nl = Netlist(name=f"comparator_binarizer_h{h}")
    bit = nl.add_input("bit")
    width = _popcount_width(h)
    count = sync_counter(nl, width, enable=bit)
    threshold = constant_bus(nl, tob, width)
    reached = binary_comparator_ge(nl, count, threshold)
    nl.add_output("sign", sticky_latch(nl, reached))
    for index, net in enumerate(count):
        nl.add_output(f"count{index}", net)
    return nl


def bit_stream_stimulus(
    h: int, ones_fraction: float = 0.5, seed: int = 0
) -> list[dict[str, int]]:
    """H cycles of Bernoulli level-hypervector bits."""
    if not 0.0 <= ones_fraction <= 1.0:
        raise ValueError("ones_fraction must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    bits = rng.random(h) < ones_fraction
    return [{"bit": int(b)} for b in bits]
