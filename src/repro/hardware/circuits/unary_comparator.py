"""Gate-level netlists for design checkpoint ➋ (paper Fig. 4).

* :func:`build_unary_comparator` — the proposed comparator: per bit one
  AND2 (minimum), one INV + OR2 (containment check), then an AND tree.
  Pure combinational, N-bit unary operands.
* :func:`build_binary_comparator` — the conventional M-bit magnitude
  comparator it replaces.
"""

from __future__ import annotations

import numpy as np

from ..components import and_tree, binary_comparator_ge
from ..netlist import Netlist

__all__ = [
    "build_unary_comparator",
    "build_binary_comparator",
    "unary_comparator_stimulus",
    "binary_comparator_stimulus",
]


def build_unary_comparator(n: int) -> Netlist:
    """The Fig. 4 comparator for N-bit unary operands.

    Inputs ``d0..d{n-1}`` (data) and ``s0..s{n-1}`` (Sobol); output ``ge``
    is 1 iff value(d) >= value(s).  The structure is kept literal to the
    figure: minimum via AND, check via OR against the inverted second
    operand, decision via N-input AND.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    nl = Netlist(name=f"unary_comparator_n{n}")
    data = [nl.add_input(f"d{i}") for i in range(n)]
    sobol = [nl.add_input(f"s{i}") for i in range(n)]
    checks = []
    for d_bit, s_bit in zip(data, sobol):
        minimum = nl.add_gate("AND2", d_bit, s_bit)
        inverted = nl.add_gate("INV", s_bit)
        checks.append(nl.add_gate("OR2", minimum, inverted))
    nl.add_output("ge", and_tree(nl, checks))
    return nl


def build_binary_comparator(m: int) -> Netlist:
    """Conventional M-bit magnitude comparator (``a >= b``), the baseline."""
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    nl = Netlist(name=f"binary_comparator_m{m}")
    a = [nl.add_input(f"a{i}") for i in range(m)]
    b = [nl.add_input(f"b{i}") for i in range(m)]
    nl.add_output("ge", binary_comparator_ge(nl, a, b))
    return nl


def unary_comparator_stimulus(
    n: int, pairs: list[tuple[int, int]]
) -> list[dict[str, int]]:
    """Input vectors driving value pairs as trailing-ones unary streams."""
    vectors = []
    for a, b in pairs:
        if not (0 <= a <= n and 0 <= b <= n):
            raise ValueError(f"values must lie in [0, {n}]")
        vector = {}
        for i in range(n):
            vector[f"d{i}"] = 1 if i >= n - a else 0
            vector[f"s{i}"] = 1 if i >= n - b else 0
        vectors.append(vector)
    return vectors


def binary_comparator_stimulus(
    m: int, pairs: list[tuple[int, int]]
) -> list[dict[str, int]]:
    """Input vectors driving value pairs as M-bit binary codes."""
    vectors = []
    for a, b in pairs:
        if not (0 <= a < (1 << m) and 0 <= b < (1 << m)):
            raise ValueError(f"values must fit in {m} bits")
        vector = {}
        for i in range(m):
            vector[f"a{i}"] = (a >> i) & 1
            vector[f"b{i}"] = (b >> i) & 1
        vectors.append(vector)
    return vectors


def random_value_pairs(
    n: int, count: int, seed: int = 0
) -> list[tuple[int, int]]:
    """Uniform operand pairs in [0, n] for energy-averaging stimulus."""
    rng = np.random.default_rng(seed)
    return [tuple(pair) for pair in rng.integers(0, n + 1, size=(count, 2))]
