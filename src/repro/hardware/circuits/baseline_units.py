"""Gate-level units of the baseline HDC datapath (paper Fig. 1, Section IV).

The baseline generates every hypervector bit by comparing an LFSR-supplied
pseudo-random word against a threshold, and binds position and level bits
with an XOR.  These netlists feed the Table II energy model.
"""

from __future__ import annotations

from ...hdc.lfsr import MAXIMAL_TAPS
from ..components import binary_comparator_ge, build_lfsr
from ..netlist import Netlist

__all__ = ["build_lfsr_hv_generator", "build_bind_unit", "lfsr_generator_stimulus"]


def build_lfsr_hv_generator(width: int = 16, compare_bits: int = 8) -> Netlist:
    """LFSR + comparator hypervector-bit generator.

    Every cycle the LFSR advances and its low ``compare_bits`` state bits
    are compared against the threshold input ``t0..``; output ``bit`` is
    the generated hypervector bit (1 where state >= threshold).  This is
    the per-dimension generation cost of the baseline's P and L vectors.
    """
    if width not in MAXIMAL_TAPS:
        raise ValueError(
            f"no maximal taps for width {width}; available {sorted(MAXIMAL_TAPS)}"
        )
    if not 1 <= compare_bits <= width:
        raise ValueError("compare_bits must lie in [1, width]")
    nl = Netlist(name=f"lfsr_hv_gen_w{width}_c{compare_bits}")
    state = build_lfsr(nl, width, MAXIMAL_TAPS[width])
    threshold = [nl.add_input(f"t{i}") for i in range(compare_bits)]
    ge = binary_comparator_ge(nl, state[:compare_bits], threshold)
    nl.add_output("bit", ge)
    for index, net in enumerate(state):
        nl.add_output(f"state{index}", net)
    return nl


def build_bind_unit() -> Netlist:
    """The binding XOR of the record encoder (one per dimension per pixel)."""
    nl = Netlist(name="bind_xor")
    p = nl.add_input("p")
    level = nl.add_input("l")
    nl.add_output("bound", nl.add_gate("XOR2", p, level))
    return nl


def lfsr_generator_stimulus(
    compare_bits: int, threshold: int, cycles: int
) -> list[dict[str, int]]:
    """Hold a constant threshold for ``cycles`` generation steps."""
    if not 0 <= threshold < (1 << compare_bits):
        raise ValueError(f"threshold must fit in {compare_bits} bits")
    vector = {f"t{i}": (threshold >> i) & 1 for i in range(compare_bits)}
    return [dict(vector) for _ in range(cycles)]
