"""Gate-level models for design checkpoint ➊ (paper Fig. 3(b) vs 3(c)).

* :func:`build_counter_comparator_generator` — the conventional dynamic
  unary stream generator: a free-running M-bit counter compared against
  the M-bit input value, one stream bit per cycle for ``2^M`` cycles.
* :class:`UstFetchModel` — the proposed associative fetch: an M-bit
  address register plus one ROM read of the whole N-bit stream.  The ROM
  array is a memory macro, charged per-bit-read
  (:data:`repro.hardware.cells.ROM_READ_ENERGY_FJ_PER_BIT`); the address
  register and its switching are gate-level.
"""

from __future__ import annotations

from ..cells import ROM_READ_ENERGY_FJ_PER_BIT
from ..components import binary_comparator_ge, sync_counter
from ..netlist import Netlist
from ..power import dynamic_energy_fj
from ..simulator import Simulator

__all__ = [
    "build_counter_comparator_generator",
    "counter_generator_stream_energy_fj",
    "UstFetchModel",
]


def build_counter_comparator_generator(m: int) -> Netlist:
    """Counter + comparator stream generator (Fig. 3(b)).

    Inputs ``v0..v{m-1}`` hold the M-bit value; output ``bit`` emits the
    unary stream over ``2^M`` cycles (``bit = value > counter``, i.e. ones
    leading).
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    nl = Netlist(name=f"counter_comparator_gen_m{m}")
    value = [nl.add_input(f"v{i}") for i in range(m)]
    count = sync_counter(nl, m)
    # value > counter  ==  NOT(counter >= value)
    counter_ge_value = binary_comparator_ge(nl, count, value)
    nl.add_output("bit", nl.add_gate("INV", counter_ge_value))
    for index, net in enumerate(count):
        nl.add_output(f"count{index}", net)
    return nl


def counter_generator_stream_energy_fj(m: int, value: int) -> float:
    """Dynamic energy of generating one full ``2^M``-bit stream."""
    if not 0 <= value < (1 << m):
        raise ValueError(f"value must fit in {m} bits")
    nl = build_counter_comparator_generator(m)
    sim = Simulator(nl)
    vector = {f"v{i}": (value >> i) & 1 for i in range(m)}
    for _ in range(1 << m):
        sim.step(vector)
    return dynamic_energy_fj(sim).total_fj


class UstFetchModel:
    """Energy/storage model of the proposed UST associative fetch.

    One fetch = clock the M-bit address register with the new code, then
    read N bits out of the ROM row.  The register is a real netlist (its
    toggles depend on consecutive address Hamming distance); the array
    read is a macro charge.
    """

    def __init__(self, levels: int = 16, length: int | None = None) -> None:
        if levels < 2:
            raise ValueError(f"levels must be >= 2, got {levels}")
        self.levels = levels
        self.length = levels if length is None else length
        self.address_bits = (levels - 1).bit_length()
        self._netlist = self._build_register()
        self._sim = Simulator(self._netlist)

    def _build_register(self) -> Netlist:
        nl = Netlist(name=f"ust_address_reg_m{self.address_bits}")
        for index in range(self.address_bits):
            d = nl.add_input(f"a{index}")
            nl.add_output(f"q{index}", nl.add_flop(d))
        return nl

    @property
    def memory_bits(self) -> int:
        """ROM capacity: every possible stream pre-stored."""
        return self.levels * self.length

    def fetch_sequence_energy_fj(self, codes: list[int]) -> float:
        """Dynamic energy of fetching a sequence of stream codes."""
        for code in codes:
            if not 0 <= code < self.levels:
                raise ValueError(f"code {code} out of range [0, {self.levels})")
        self._sim.reset()
        for code in codes:
            vector = {f"a{i}": (code >> i) & 1 for i in range(self.address_bits)}
            self._sim.step(vector)
        breakdown = dynamic_energy_fj(self._sim)
        breakdown.add_memory_access(
            len(codes) * self.length * ROM_READ_ENERGY_FJ_PER_BIT
        )
        return breakdown.total_fj

    def average_fetch_energy_fj(self, samples: int = 64, seed: int = 0) -> float:
        """Mean per-fetch energy over a random code sequence."""
        import numpy as np

        rng = np.random.default_rng(seed)
        codes = rng.integers(0, self.levels, size=samples).tolist()
        return self.fetch_sequence_energy_fj(codes) / samples
