"""The paper's datapath circuits as structural netlists.

* ➊ stream generation: :mod:`.generator`
* ➋ comparison: :mod:`.unary_comparator`
* ➌ accumulate + binarize: :mod:`.binarizer`
* baseline units (LFSR generator, bind XOR): :mod:`.baseline_units`
"""

from .baseline_units import (
    build_bind_unit,
    build_lfsr_hv_generator,
    lfsr_generator_stimulus,
)
from .binarizer import (
    bit_stream_stimulus,
    build_comparator_binarizer,
    build_masking_binarizer,
)
from .generator import (
    UstFetchModel,
    build_counter_comparator_generator,
    counter_generator_stream_energy_fj,
)
from .unary_comparator import (
    binary_comparator_stimulus,
    build_binary_comparator,
    build_unary_comparator,
    random_value_pairs,
    unary_comparator_stimulus,
)

__all__ = [
    "build_unary_comparator",
    "build_binary_comparator",
    "unary_comparator_stimulus",
    "binary_comparator_stimulus",
    "random_value_pairs",
    "build_counter_comparator_generator",
    "counter_generator_stream_energy_fj",
    "UstFetchModel",
    "build_masking_binarizer",
    "build_comparator_binarizer",
    "bit_stream_stimulus",
    "build_lfsr_hv_generator",
    "build_bind_unit",
    "lfsr_generator_stimulus",
]
