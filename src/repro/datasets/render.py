"""Small rasterisation toolkit for the procedural datasets.

All drawing happens on float64 canvases in [0, 1]; geometry is expressed
in unit coordinates (x right, y down) so the same class templates render
at any resolution.  The generators compose these primitives with seeded
jitter to get within-class variability.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "canvas",
    "draw_segment",
    "draw_polyline",
    "draw_ellipse",
    "draw_rect",
    "add_gaussian_noise",
    "box_blur",
    "affine_warp",
    "normalize_to_uint8",
]


def canvas(size: int, value: float = 0.0) -> np.ndarray:
    """Square float canvas filled with ``value``."""
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    return np.full((size, size), float(value), dtype=np.float64)


def _pixel_grid(size: int) -> tuple[np.ndarray, np.ndarray]:
    """Unit-square coordinates of pixel centres: (x, y) each ``(size, size)``."""
    centers = (np.arange(size) + 0.5) / size
    x, y = np.meshgrid(centers, centers)
    return x, y


def draw_segment(
    img: np.ndarray,
    p0: tuple[float, float],
    p1: tuple[float, float],
    thickness: float = 0.06,
    intensity: float = 1.0,
) -> np.ndarray:
    """Stamp a thick line segment between two unit-coordinate points."""
    size = img.shape[0]
    x, y = _pixel_grid(size)
    x0, y0 = p0
    x1, y1 = p1
    dx, dy = x1 - x0, y1 - y0
    length_sq = dx * dx + dy * dy
    if length_sq == 0.0:
        dist = np.hypot(x - x0, y - y0)
    else:
        t = np.clip(((x - x0) * dx + (y - y0) * dy) / length_sq, 0.0, 1.0)
        dist = np.hypot(x - (x0 + t * dx), y - (y0 + t * dy))
    mask = dist <= thickness / 2.0
    img[mask] = np.maximum(img[mask], intensity)
    return img


def draw_polyline(
    img: np.ndarray,
    points: list[tuple[float, float]],
    thickness: float = 0.06,
    intensity: float = 1.0,
) -> np.ndarray:
    """Stamp consecutive segments through a list of points."""
    for p0, p1 in zip(points[:-1], points[1:]):
        draw_segment(img, p0, p1, thickness=thickness, intensity=intensity)
    return img


def draw_ellipse(
    img: np.ndarray,
    center: tuple[float, float],
    radii: tuple[float, float],
    intensity: float = 1.0,
    filled: bool = True,
    edge: float = 0.04,
    angle: float = 0.0,
) -> np.ndarray:
    """Stamp a (possibly rotated) ellipse, filled or as an outline ring."""
    size = img.shape[0]
    x, y = _pixel_grid(size)
    cx, cy = center
    rx, ry = radii
    if rx <= 0 or ry <= 0:
        raise ValueError("ellipse radii must be positive")
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    u = (x - cx) * cos_a + (y - cy) * sin_a
    v = -(x - cx) * sin_a + (y - cy) * cos_a
    r = np.sqrt((u / rx) ** 2 + (v / ry) ** 2)
    mask = r <= 1.0 if filled else np.abs(r - 1.0) <= edge
    img[mask] = np.maximum(img[mask], intensity)
    return img


def draw_rect(
    img: np.ndarray,
    top_left: tuple[float, float],
    bottom_right: tuple[float, float],
    intensity: float = 1.0,
) -> np.ndarray:
    """Stamp an axis-aligned filled rectangle given unit-coordinate corners."""
    size = img.shape[0]
    x, y = _pixel_grid(size)
    x0, y0 = top_left
    x1, y1 = bottom_right
    mask = (x >= x0) & (x <= x1) & (y >= y0) & (y <= y1)
    img[mask] = np.maximum(img[mask], intensity)
    return img


def add_gaussian_noise(
    img: np.ndarray, rng: np.random.Generator, sigma: float = 0.05
) -> np.ndarray:
    """Additive Gaussian pixel noise, clipped back into [0, 1]."""
    return np.clip(img + rng.normal(0.0, sigma, img.shape), 0.0, 1.0)


def box_blur(img: np.ndarray, radius: int = 1) -> np.ndarray:
    """Separable box blur with edge replication; radius 0 is the identity."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if radius == 0:
        return img.copy()
    width = 2 * radius + 1
    padded = np.pad(img, radius, mode="edge")
    out = np.zeros_like(img)
    for dy in range(width):
        for dx in range(width):
            out += padded[dy : dy + img.shape[0], dx : dx + img.shape[1]]
    return out / (width * width)


def affine_warp(
    img: np.ndarray,
    rng: np.random.Generator,
    max_shift: float = 0.08,
    max_rotate: float = 0.18,
    max_scale: float = 0.12,
) -> np.ndarray:
    """Random small shift / rotation / scale with bilinear resampling.

    The inverse map is applied at each output pixel so the operation is a
    single vectorised gather; out-of-canvas samples read as background 0.
    """
    size = img.shape[0]
    shift_x, shift_y = rng.uniform(-max_shift, max_shift, 2)
    angle = rng.uniform(-max_rotate, max_rotate)
    scale = 1.0 + rng.uniform(-max_scale, max_scale)
    cos_a, sin_a = np.cos(angle) / scale, np.sin(angle) / scale

    x, y = _pixel_grid(size)
    u = cos_a * (x - 0.5 - shift_x) + sin_a * (y - 0.5 - shift_y) + 0.5
    v = -sin_a * (x - 0.5 - shift_x) + cos_a * (y - 0.5 - shift_y) + 0.5

    fu = u * size - 0.5
    fv = v * size - 0.5
    i0 = np.floor(fv).astype(np.int64)
    j0 = np.floor(fu).astype(np.int64)
    di = fv - i0
    dj = fu - j0

    def sample(ii: np.ndarray, jj: np.ndarray) -> np.ndarray:
        inside = (ii >= 0) & (ii < size) & (jj >= 0) & (jj < size)
        values = np.zeros_like(img)
        values[inside] = img[ii[inside], jj[inside]]
        return values

    top = sample(i0, j0) * (1 - dj) + sample(i0, j0 + 1) * dj
    bottom = sample(i0 + 1, j0) * (1 - dj) + sample(i0 + 1, j0 + 1) * dj
    return top * (1 - di) + bottom * di


def normalize_to_uint8(img: np.ndarray) -> np.ndarray:
    """Clip to [0, 1] and scale to uint8 pixel codes."""
    return np.rint(np.clip(img, 0.0, 1.0) * 255.0).astype(np.uint8)
