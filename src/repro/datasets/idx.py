"""Loader for real MNIST IDX files, used when present.

Drop the four classic files (``train-images-idx3-ubyte`` etc., optionally
gzipped) under a directory and :func:`load_real_mnist` returns the genuine
dataset; otherwise callers fall back to the procedural generator.  This
keeps the reproduction honest: with the real data in place, Table IV runs
on actual MNIST.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path

import numpy as np

from .base import ImageDataset

__all__ = ["parse_idx", "load_real_mnist"]

_IDX_DTYPES = {0x08: np.uint8, 0x09: np.int8, 0x0B: ">i2", 0x0C: ">i4",
               0x0D: ">f4", 0x0E: ">f8"}


def parse_idx(data: bytes) -> np.ndarray:
    """Decode one IDX-format buffer into a numpy array."""
    if len(data) < 4:
        raise ValueError("IDX buffer too short")
    zero1, zero2, dtype_code, ndim = struct.unpack(">BBBB", data[:4])
    if zero1 != 0 or zero2 != 0:
        raise ValueError("bad IDX magic")
    if dtype_code not in _IDX_DTYPES:
        raise ValueError(f"unknown IDX dtype code 0x{dtype_code:02x}")
    header_end = 4 + 4 * ndim
    dims = struct.unpack(f">{ndim}I", data[4:header_end])
    array = np.frombuffer(data[header_end:], dtype=_IDX_DTYPES[dtype_code])
    expected = int(np.prod(dims)) if ndim else 0
    if array.size != expected:
        raise ValueError(f"IDX payload size {array.size} != header {expected}")
    return array.reshape(dims)


def _read_maybe_gzip(path: Path) -> bytes:
    raw = path.read_bytes()
    if raw[:2] == b"\x1f\x8b":
        return gzip.decompress(raw)
    return raw


def _find_file(directory: Path, stem: str) -> Path | None:
    for suffix in ("", ".gz"):
        candidate = directory / f"{stem}{suffix}"
        if candidate.is_file():
            return candidate
    return None


def load_real_mnist(directory: str | Path) -> ImageDataset | None:
    """Real MNIST from IDX files, or ``None`` when any file is missing."""
    directory = Path(directory)
    stems = {
        "train_images": "train-images-idx3-ubyte",
        "train_labels": "train-labels-idx1-ubyte",
        "test_images": "t10k-images-idx3-ubyte",
        "test_labels": "t10k-labels-idx1-ubyte",
    }
    paths = {key: _find_file(directory, stem) for key, stem in stems.items()}
    if any(path is None for path in paths.values()):
        return None
    arrays = {key: parse_idx(_read_maybe_gzip(path)) for key, path in paths.items()}
    return ImageDataset(
        name="mnist",
        train_images=arrays["train_images"].astype(np.uint8),
        train_labels=arrays["train_labels"].astype(np.int64),
        test_images=arrays["test_images"].astype(np.uint8),
        test_labels=arrays["test_labels"].astype(np.int64),
        class_names=tuple(str(d) for d in range(10)),
    )
