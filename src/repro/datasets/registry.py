"""Name-keyed access to every dataset the paper evaluates.

``load_dataset("mnist", ...)`` prefers real MNIST IDX files under
``REPRO_MNIST_DIR`` (or ``./data/mnist``) and falls back to the procedural
generator; the other five datasets are always procedural (see DESIGN.md).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable

from .base import ImageDataset
from .cifar import synthetic_cifar10
from .digits import synthetic_mnist
from .fashion import synthetic_fashion
from .idx import load_real_mnist
from .medical import synthetic_blood, synthetic_breast
from .svhn import synthetic_svhn

__all__ = ["DATASET_NAMES", "load_dataset"]

_FACTORIES: dict[str, Callable[..., ImageDataset]] = {
    "mnist": synthetic_mnist,
    "fashion": synthetic_fashion,
    "cifar10": synthetic_cifar10,
    "blood": synthetic_blood,
    "breast": synthetic_breast,
    "svhn": synthetic_svhn,
}

DATASET_NAMES = tuple(_FACTORIES)


def _mnist_directory() -> Path:
    return Path(os.environ.get("REPRO_MNIST_DIR", "data/mnist"))


def load_dataset(
    name: str, n_train: int = 1000, n_test: int = 500, seed: int = 0
) -> ImageDataset:
    """Load one of the paper's six datasets by name.

    Real MNIST is used when IDX files exist (subsetted to the requested
    sizes); everything else is generated procedurally with the given seed.
    """
    if name not in _FACTORIES:
        raise ValueError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    if name == "mnist":
        real = load_real_mnist(_mnist_directory())
        if real is not None:
            return real.subset(n_train, n_test, seed=seed)
    return _FACTORIES[name](n_train=n_train, n_test=n_test, seed=seed)
