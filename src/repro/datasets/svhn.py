"""Procedural street-number crops (the SVHN stand-in).

SVHN's difficulty relative to MNIST comes from colour, clutter and
distractor digits at the crop edges; the generator reproduces all three:
a coloured textured background, a coloured centre digit (reusing the
stroke glyphs of :mod:`repro.datasets.digits`), and partial neighbour
digits clipped by the 32x32 crop.
"""

from __future__ import annotations

import numpy as np

from .base import ImageDataset
from .digits import render_digit
from .render import box_blur, normalize_to_uint8

__all__ = ["render_house_number", "synthetic_svhn", "SVHN_NAMES"]

SVHN_NAMES = tuple(str(d) for d in range(10))


def _paste_digit(
    img: np.ndarray,
    digit_mask: np.ndarray,
    color: np.ndarray,
    x_offset: int,
) -> None:
    """Blend a digit mask into the RGB canvas at a horizontal offset."""
    size = img.shape[0]
    src_x0 = max(0, -x_offset)
    src_x1 = min(size, size - x_offset)
    dst_x0 = max(0, x_offset)
    dst_x1 = dst_x0 + (src_x1 - src_x0)
    region = digit_mask[:, src_x0:src_x1, None]
    img[:, dst_x0:dst_x1, :] = (
        img[:, dst_x0:dst_x1, :] * (1.0 - region) + color[None, None, :] * region
    )


_LUMA = np.array([0.299, 0.587, 0.114])


def render_house_number(
    label: int, size: int, rng: np.random.Generator
) -> np.ndarray:
    """One RGB float image in [0, 1]: centre digit plus edge distractors.

    House-number plates are printed for contrast, so the digit's luminance
    is kept consistently above the background's — without that constraint
    the grayscale view has random contrast polarity per image and carries
    no learnable class signal (real SVHN crops do not have that problem).
    """
    background = rng.random(3) * 0.35 + 0.1
    img = np.ones((size, size, 3)) * background[None, None, :]
    img += rng.normal(0, 0.06, img.shape)
    img = np.clip(img, 0.0, 1.0)

    # Digit colour: any hue, but consistently brighter than the plate.
    while True:
        digit_color = rng.random(3) * 0.6 + 0.4
        if float((digit_color - background) @ _LUMA) > 0.3:
            break

    centre = render_digit(label, size, rng, warp=True, noise_sigma=0.0)
    _paste_digit(img, centre, digit_color, 0)

    # Distractor digits clipped at the crop edges (the SVHN hallmark);
    # drawn dimmer than the centre digit so they clutter without dominating.
    for side in (-1, 1):
        if rng.random() < 0.6:
            distractor = render_digit(int(rng.integers(0, 10)), size, rng,
                                      warp=True, noise_sigma=0.0)
            offset = side * int(size * rng.uniform(0.6, 0.85))
            _paste_digit(img, distractor, digit_color * rng.uniform(0.5, 0.8),
                         offset)

    for channel in range(3):
        img[:, :, channel] = box_blur(img[:, :, channel], radius=1)
    img += rng.normal(0, 0.04, img.shape)
    return np.clip(img, 0.0, 1.0)


def synthetic_svhn(
    n_train: int = 1000, n_test: int = 500, seed: int = 0, size: int = 32
) -> ImageDataset:
    """Balanced 10-class RGB street-number dataset with SVHN's shape."""
    rng = np.random.default_rng(seed)

    def make_split(count: int):
        labels = np.arange(count) % 10
        rng.shuffle(labels)
        images = np.stack(
            [normalize_to_uint8(render_house_number(int(lbl), size, rng))
             for lbl in labels]
        )
        return images, labels.astype(np.int64)

    train_images, train_labels = make_split(n_train)
    test_images, test_labels = make_split(n_test)
    return ImageDataset(
        name="synthetic-svhn",
        train_images=train_images,
        train_labels=train_labels,
        test_images=test_images,
        test_labels=test_labels,
        class_names=SVHN_NAMES,
    )
