"""Image datasets for the paper's evaluation (Section IV).

Six datasets, shape-compatible with the originals; MNIST loads real IDX
files when available.  All access goes through :func:`load_dataset`.
"""

from .base import ImageDataset, stratified_indices
from .cifar import CIFAR_NAMES, render_object, synthetic_cifar10
from .digits import DIGIT_NAMES, render_digit, synthetic_mnist
from .fashion import FASHION_NAMES, render_garment, synthetic_fashion
from .idx import load_real_mnist, parse_idx
from .medical import (
    BLOOD_NAMES,
    BREAST_NAMES,
    render_blood_cell,
    render_breast_scan,
    synthetic_blood,
    synthetic_breast,
)
from .registry import DATASET_NAMES, load_dataset
from .svhn import SVHN_NAMES, render_house_number, synthetic_svhn

__all__ = [
    "ImageDataset",
    "stratified_indices",
    "load_dataset",
    "DATASET_NAMES",
    "synthetic_mnist",
    "synthetic_fashion",
    "synthetic_cifar10",
    "synthetic_blood",
    "synthetic_breast",
    "synthetic_svhn",
    "render_digit",
    "render_garment",
    "render_object",
    "render_blood_cell",
    "render_breast_scan",
    "render_house_number",
    "load_real_mnist",
    "parse_idx",
    "DIGIT_NAMES",
    "FASHION_NAMES",
    "CIFAR_NAMES",
    "BLOOD_NAMES",
    "BREAST_NAMES",
    "SVHN_NAMES",
]
