"""Procedural medical images (BloodMNIST and BreastMNIST stand-ins).

* Blood cells: 8 classes matching BloodMNIST's taxonomy, rendered as RGB
  microscope-style patches — cytoplasm disc plus a class-specific nucleus
  morphology (lobed, kidney-shaped, dense, fragmented, ...).
* Breast ultrasound: binary malignant vs. benign, rendered as grayscale
  speckle textures with a lesion whose border regularity separates the
  classes.
"""

from __future__ import annotations

import numpy as np

from .base import ImageDataset
from .render import add_gaussian_noise, box_blur, canvas, draw_ellipse, normalize_to_uint8

__all__ = [
    "render_blood_cell",
    "render_breast_scan",
    "synthetic_blood",
    "synthetic_breast",
    "BLOOD_NAMES",
    "BREAST_NAMES",
]

BLOOD_NAMES = (
    "basophil", "eosinophil", "erythroblast", "immature-granulocyte",
    "lymphocyte", "monocyte", "neutrophil", "platelet",
)
BREAST_NAMES = ("malignant", "benign")


def _nucleus_blobs(
    label: int, center: tuple[float, float], rng: np.random.Generator
) -> list[tuple[tuple[float, float], tuple[float, float]]]:
    """Class-specific nucleus geometry: list of (center, radii) ellipses."""
    cx, cy = center
    jitter = lambda s: rng.uniform(-s, s)  # noqa: E731 - tiny local helper
    if label == 0:  # basophil: dense round nucleus
        return [((cx, cy), (0.16, 0.16))]
    if label == 1:  # eosinophil: bi-lobed
        return [((cx - 0.08, cy + jitter(0.02)), (0.09, 0.11)),
                ((cx + 0.08, cy + jitter(0.02)), (0.09, 0.11))]
    if label == 2:  # erythroblast: small dark round nucleus
        return [((cx, cy), (0.11, 0.11))]
    if label == 3:  # immature granulocyte: large oval nucleus
        return [((cx + jitter(0.03), cy + jitter(0.03)), (0.17, 0.13))]
    if label == 4:  # lymphocyte: nucleus fills most of the cell
        return [((cx, cy), (0.15, 0.15))]
    if label == 5:  # monocyte: kidney shape = big lobe + notch lobe
        return [((cx - 0.03, cy), (0.15, 0.13)),
                ((cx + 0.10, cy + 0.02), (0.07, 0.08))]
    if label == 6:  # neutrophil: tri-lobed
        return [((cx - 0.10, cy - 0.04), (0.07, 0.07)),
                ((cx + 0.02, cy + 0.08), (0.07, 0.07)),
                ((cx + 0.11, cy - 0.05), (0.07, 0.07))]
    if label == 7:  # platelet: tiny fragment, no true nucleus
        return [((cx, cy), (0.05, 0.04))]
    raise ValueError(f"label must be 0-7, got {label}")


def render_blood_cell(
    label: int, size: int, rng: np.random.Generator
) -> np.ndarray:
    """One RGB float image in [0, 1] of a single blood cell."""
    # Pinkish smear background with illumination gradient.
    base = np.array([0.93, 0.80, 0.84]) + rng.normal(0, 0.02, 3)
    img = np.ones((size, size, 3), dtype=np.float64) * base[None, None, :]
    ramp = np.linspace(-0.04, 0.04, size)
    img += ramp[None, :, None] * rng.uniform(0.3, 1.0)

    center = (0.5 + rng.uniform(-0.06, 0.06), 0.5 + rng.uniform(-0.06, 0.06))
    cell_radius = 0.30 if label != 7 else 0.10  # platelets are fragments
    cyto_color = np.array([0.85, 0.66, 0.78]) + rng.normal(0, 0.03, 3)
    nucleus_color = np.array([0.45, 0.25, 0.55]) + rng.normal(0, 0.03, 3)

    cyto = canvas(size)
    draw_ellipse(cyto, center, (cell_radius * rng.uniform(0.9, 1.1),
                                cell_radius * rng.uniform(0.9, 1.1)), 1.0)
    nucleus = canvas(size)
    for blob_center, blob_radii in _nucleus_blobs(label, center, rng):
        draw_ellipse(nucleus, blob_center, blob_radii, 1.0)
    if label == 1:  # eosinophil granules: bright red speckle in cytoplasm
        granules = (rng.random((size, size)) > 0.85) & (cyto > 0)
        img[granules] = np.array([0.85, 0.35, 0.35])

    for channel in range(3):
        plane = img[:, :, channel]
        plane[cyto > 0] = cyto_color[channel]
        if label == 1:
            granules_plane = granules
            plane[granules_plane] = [0.85, 0.35, 0.35][channel]
        plane[nucleus > 0] = nucleus_color[channel]
        img[:, :, channel] = box_blur(plane, radius=1)
    noise = rng.normal(0.0, 0.03, img.shape)
    return np.clip(img + noise, 0.0, 1.0)


def render_breast_scan(
    label: int, size: int, rng: np.random.Generator
) -> np.ndarray:
    """One grayscale float ultrasound-style image in [0, 1].

    Label 0 (malignant): irregular spiculated hypoechoic mass.
    Label 1 (benign): smooth oval lesion or near-uniform tissue.
    """
    if label not in (0, 1):
        raise ValueError(f"label must be 0 or 1, got {label}")
    # Multiplicative speckle over a depth-attenuated field.
    depth = np.linspace(1.0, 0.55, size)[:, None]
    tissue = 0.55 * depth * np.ones((size, size))
    speckle = rng.gamma(shape=4.0, scale=0.25, size=(size, size))
    img = np.clip(tissue * speckle, 0.0, 1.0)

    center = (0.5 + rng.uniform(-0.08, 0.08), 0.45 + rng.uniform(-0.08, 0.08))
    lesion = canvas(size)
    if label == 1:
        draw_ellipse(lesion, center, (rng.uniform(0.12, 0.18), rng.uniform(0.09, 0.13)),
                     1.0, angle=rng.uniform(-0.4, 0.4))
    else:
        # Malignant: a core blob plus radiating spicule lobes.
        core = (rng.uniform(0.10, 0.14), rng.uniform(0.10, 0.14))
        draw_ellipse(lesion, center, core, 1.0)
        for _ in range(rng.integers(4, 7)):
            angle = rng.uniform(0, 2 * np.pi)
            dist = rng.uniform(0.08, 0.14)
            spike_center = (center[0] + dist * np.cos(angle),
                            center[1] + dist * np.sin(angle))
            spike_center = (float(np.clip(spike_center[0], 0.1, 0.9)),
                            float(np.clip(spike_center[1], 0.1, 0.9)))
            draw_ellipse(lesion, spike_center,
                         (rng.uniform(0.03, 0.06), rng.uniform(0.02, 0.04)),
                         1.0, angle=angle)
    attenuation = 0.75 if label == 1 else 0.88
    img = img * (1.0 - attenuation * lesion)
    img = box_blur(img, radius=1)
    return add_gaussian_noise(img, rng, sigma=0.02)


def _build_rgb_dataset(name, renderer, class_names, n_train, n_test, seed, size):
    rng = np.random.default_rng(seed)
    num_classes = len(class_names)

    def make_split(count: int):
        labels = np.arange(count) % num_classes
        rng.shuffle(labels)
        images = np.stack(
            [normalize_to_uint8(renderer(int(lbl), size, rng)) for lbl in labels]
        )
        return images, labels.astype(np.int64)

    train_images, train_labels = make_split(n_train)
    test_images, test_labels = make_split(n_test)
    return ImageDataset(
        name=name,
        train_images=train_images,
        train_labels=train_labels,
        test_images=test_images,
        test_labels=test_labels,
        class_names=class_names,
    )


def synthetic_blood(
    n_train: int = 800, n_test: int = 400, seed: int = 0, size: int = 28
) -> ImageDataset:
    """Balanced 8-class RGB blood-cell dataset with BloodMNIST's shape."""
    return _build_rgb_dataset(
        "synthetic-blood", render_blood_cell, BLOOD_NAMES, n_train, n_test, seed, size
    )


def synthetic_breast(
    n_train: int = 400, n_test: int = 200, seed: int = 0, size: int = 28
) -> ImageDataset:
    """Balanced binary grayscale breast-ultrasound dataset."""
    return _build_rgb_dataset(
        "synthetic-breast", render_breast_scan, BREAST_NAMES, n_train, n_test, seed, size
    )
