"""Procedural garment silhouettes (the FashionMNIST stand-in).

The ten classes follow FashionMNIST's label order.  Each class composes
rectangles/ellipses/strokes into a distinct silhouette; samples vary by
fill intensity, jitter and noise.
"""

from __future__ import annotations

import numpy as np

from .base import ImageDataset
from .render import (
    add_gaussian_noise,
    affine_warp,
    box_blur,
    canvas,
    draw_ellipse,
    draw_polyline,
    draw_rect,
    normalize_to_uint8,
)

__all__ = ["render_garment", "synthetic_fashion", "FASHION_NAMES"]

FASHION_NAMES = (
    "t-shirt", "trouser", "pullover", "dress", "coat",
    "sandal", "shirt", "sneaker", "bag", "ankle-boot",
)


def _tshirt(img, fill):
    draw_rect(img, (0.36, 0.30), (0.64, 0.75), fill)
    draw_rect(img, (0.22, 0.30), (0.78, 0.44), fill * 0.9)


def _trouser(img, fill):
    draw_rect(img, (0.36, 0.22), (0.64, 0.36), fill)
    draw_rect(img, (0.36, 0.36), (0.47, 0.80), fill)
    draw_rect(img, (0.53, 0.36), (0.64, 0.80), fill)


def _pullover(img, fill):
    draw_rect(img, (0.34, 0.28), (0.66, 0.76), fill)
    draw_rect(img, (0.20, 0.28), (0.80, 0.58), fill * 0.92)
    draw_ellipse(img, (0.5, 0.28), (0.09, 0.05), fill * 0.5)


def _dress(img, fill):
    draw_rect(img, (0.40, 0.24), (0.60, 0.44), fill)
    draw_polyline(img, [(0.40, 0.44), (0.30, 0.80)], thickness=0.05, intensity=fill)
    draw_polyline(img, [(0.60, 0.44), (0.70, 0.80)], thickness=0.05, intensity=fill)
    draw_rect(img, (0.33, 0.60), (0.67, 0.80), fill * 0.95)


def _coat(img, fill):
    draw_rect(img, (0.32, 0.24), (0.68, 0.82), fill)
    draw_rect(img, (0.18, 0.24), (0.82, 0.62), fill * 0.88)
    draw_polyline(img, [(0.5, 0.24), (0.5, 0.82)], thickness=0.03, intensity=fill * 0.4)


def _sandal(img, fill):
    draw_polyline(img, [(0.25, 0.62), (0.75, 0.52)], thickness=0.05, intensity=fill)
    draw_polyline(img, [(0.30, 0.52), (0.45, 0.66)], thickness=0.04, intensity=fill)
    draw_polyline(img, [(0.55, 0.48), (0.68, 0.62)], thickness=0.04, intensity=fill)
    draw_rect(img, (0.22, 0.64), (0.78, 0.72), fill)


def _shirt(img, fill):
    draw_rect(img, (0.35, 0.26), (0.65, 0.78), fill * 0.85)
    draw_rect(img, (0.22, 0.26), (0.78, 0.42), fill * 0.8)
    draw_polyline(img, [(0.44, 0.26), (0.5, 0.34), (0.56, 0.26)],
                  thickness=0.04, intensity=fill)


def _sneaker(img, fill):
    draw_ellipse(img, (0.52, 0.62), (0.28, 0.12), fill)
    draw_rect(img, (0.24, 0.66), (0.80, 0.74), fill * 0.9)
    draw_polyline(img, [(0.40, 0.56), (0.52, 0.50)], thickness=0.03,
                  intensity=fill * 0.5)


def _bag(img, fill):
    draw_rect(img, (0.28, 0.42), (0.72, 0.78), fill)
    draw_ellipse(img, (0.5, 0.40), (0.14, 0.10), fill * 0.9, filled=False, edge=0.28)


def _ankle_boot(img, fill):
    draw_rect(img, (0.42, 0.28), (0.62, 0.62), fill)
    draw_ellipse(img, (0.52, 0.66), (0.24, 0.10), fill)
    draw_rect(img, (0.28, 0.70), (0.78, 0.76), fill * 0.9)


_RENDERERS = (
    _tshirt, _trouser, _pullover, _dress, _coat,
    _sandal, _shirt, _sneaker, _bag, _ankle_boot,
)


def render_garment(
    label: int, size: int, rng: np.random.Generator, noise_sigma: float = 0.07
) -> np.ndarray:
    """One float canvas in [0, 1] with the rendered garment silhouette."""
    if not 0 <= label < len(_RENDERERS):
        raise ValueError(f"label must be 0-9, got {label}")
    img = canvas(size)
    fill = rng.uniform(0.65, 1.0)
    _RENDERERS[label](img, fill)
    img = affine_warp(img, rng, max_rotate=0.10, max_scale=0.10)
    img = box_blur(img, radius=1)
    return add_gaussian_noise(img, rng, sigma=noise_sigma)


def synthetic_fashion(
    n_train: int = 1000, n_test: int = 500, seed: int = 0, size: int = 28
) -> ImageDataset:
    """Balanced procedural garment dataset with FashionMNIST's shape."""
    rng = np.random.default_rng(seed)

    def make_split(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = np.arange(count) % 10
        rng.shuffle(labels)
        images = np.stack(
            [normalize_to_uint8(render_garment(int(lbl), size, rng)) for lbl in labels]
        )
        return images, labels.astype(np.int64)

    train_images, train_labels = make_split(n_train)
    test_images, test_labels = make_split(n_test)
    return ImageDataset(
        name="synthetic-fashion",
        train_images=train_images,
        train_labels=train_labels,
        test_images=test_images,
        test_labels=test_labels,
        class_names=FASHION_NAMES,
    )
