"""Procedural handwritten-digit images (the MNIST stand-in).

Each digit class is a stroke template in unit coordinates; samples get
seeded thickness jitter, affine warping, blur and pixel noise so the
within-class variance is non-trivial.  See DESIGN.md (substitutions) for
why a procedural set is a faithful substrate for the paper's encoder
comparison.
"""

from __future__ import annotations

import numpy as np

from .base import ImageDataset
from .render import (
    add_gaussian_noise,
    affine_warp,
    box_blur,
    canvas,
    draw_ellipse,
    draw_polyline,
    normalize_to_uint8,
)

__all__ = ["render_digit", "synthetic_mnist", "DIGIT_NAMES"]

DIGIT_NAMES = tuple(str(d) for d in range(10))

# Stroke specs per digit: ("line", [points...]) polylines and
# ("ring", center, radii) ellipse outlines, in unit coordinates
# (x right, y down), glyphs roughly in the [0.25, 0.75] box.
_TEMPLATES: dict[int, list[tuple]] = {
    0: [("ring", (0.5, 0.5), (0.17, 0.27))],
    1: [
        ("line", [(0.42, 0.32), (0.54, 0.22), (0.54, 0.78)]),
        ("line", [(0.42, 0.78), (0.66, 0.78)]),
    ],
    2: [
        ("line", [(0.34, 0.32), (0.42, 0.23), (0.58, 0.23), (0.66, 0.32),
                  (0.66, 0.42), (0.34, 0.77)]),
        ("line", [(0.34, 0.77), (0.68, 0.77)]),
    ],
    3: [
        ("line", [(0.34, 0.26), (0.62, 0.26), (0.48, 0.48)]),
        ("ring", (0.49, 0.62), (0.16, 0.15)),
    ],
    4: [
        ("line", [(0.60, 0.78), (0.60, 0.22), (0.32, 0.58), (0.70, 0.58)]),
    ],
    5: [
        ("line", [(0.66, 0.24), (0.36, 0.24), (0.36, 0.48)]),
        ("line", [(0.36, 0.48), (0.56, 0.46)]),
        ("ring", (0.52, 0.62), (0.16, 0.16)),
    ],
    6: [
        ("line", [(0.62, 0.24), (0.44, 0.38), (0.37, 0.56)]),
        ("ring", (0.51, 0.63), (0.15, 0.15)),
    ],
    7: [
        ("line", [(0.33, 0.24), (0.67, 0.24), (0.46, 0.78)]),
    ],
    8: [
        ("ring", (0.5, 0.36), (0.13, 0.12)),
        ("ring", (0.5, 0.63), (0.16, 0.15)),
    ],
    9: [
        ("ring", (0.49, 0.37), (0.15, 0.14)),
        ("line", [(0.63, 0.40), (0.60, 0.60), (0.50, 0.78)]),
    ],
}


def render_digit(
    digit: int,
    size: int,
    rng: np.random.Generator,
    warp: bool = True,
    noise_sigma: float = 0.08,
) -> np.ndarray:
    """One float canvas in [0, 1] with the rendered digit."""
    if digit not in _TEMPLATES:
        raise ValueError(f"digit must be 0-9, got {digit}")
    img = canvas(size)
    thickness = rng.uniform(0.07, 0.11)
    for spec in _TEMPLATES[digit]:
        if spec[0] == "line":
            draw_polyline(img, spec[1], thickness=thickness)
        else:
            _, center, radii = spec
            rx = radii[0] * rng.uniform(0.9, 1.1)
            ry = radii[1] * rng.uniform(0.9, 1.1)
            draw_ellipse(img, center, (rx, ry), filled=False,
                         edge=thickness / 2.0 / max(rx, ry))
    if warp:
        img = affine_warp(img, rng)
    img = box_blur(img, radius=1)
    img = img / max(img.max(), 1e-9)
    img = add_gaussian_noise(img, rng, sigma=noise_sigma)
    # MNIST backgrounds are exact zeros (~80% of pixels); clamp the noise
    # floor so the procedural set shares that sparsity.
    img[img < 0.22] = 0.0
    return img


def synthetic_mnist(
    n_train: int = 1000, n_test: int = 500, seed: int = 0, size: int = 28
) -> ImageDataset:
    """Balanced procedural digit dataset with MNIST's shape (``size`` x ``size``)."""
    rng = np.random.default_rng(seed)

    def make_split(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = np.arange(count) % 10
        rng.shuffle(labels)
        images = np.stack(
            [normalize_to_uint8(render_digit(int(lbl), size, rng)) for lbl in labels]
        )
        return images, labels.astype(np.int64)

    train_images, train_labels = make_split(n_train)
    test_images, test_labels = make_split(n_test)
    return ImageDataset(
        name="synthetic-mnist",
        train_images=train_images,
        train_labels=train_labels,
        test_images=test_images,
        test_labels=test_labels,
        class_names=DIGIT_NAMES,
    )
