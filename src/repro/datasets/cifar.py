"""Procedural natural-image patches (the CIFAR-10 stand-in).

Ten object classes rendered as 32x32 RGB compositions: a class-typical
background (sky / road / grass / water / indoor) plus a simple body
geometry with seeded colour and pose jitter.  CIFAR-10 is the hardest of
the paper's datasets (Table V tops out near 42%), and these textured
scenes keep that relative difficulty: classes overlap heavily in both
colour statistics and layout.
"""

from __future__ import annotations

import numpy as np

from .base import ImageDataset
from .render import box_blur, canvas, draw_ellipse, draw_polyline, draw_rect, normalize_to_uint8

__all__ = ["render_object", "synthetic_cifar10", "CIFAR_NAMES"]

CIFAR_NAMES = (
    "airplane", "automobile", "bird", "cat", "deer",
    "dog", "frog", "horse", "ship", "truck",
)

_SKY = np.array([0.55, 0.70, 0.90])
_GRASS = np.array([0.35, 0.55, 0.30])
_ROAD = np.array([0.45, 0.45, 0.48])
_WATER = np.array([0.25, 0.45, 0.65])


def _background(kind: np.ndarray, size: int, rng: np.random.Generator) -> np.ndarray:
    base = kind + rng.normal(0, 0.04, 3)
    img = np.ones((size, size, 3)) * base[None, None, :]
    gradient = np.linspace(0.08, -0.08, size)[:, None, None]
    img = np.clip(img + gradient, 0.0, 1.0)
    img += rng.normal(0, 0.05, img.shape)
    return np.clip(img, 0.0, 1.0)


def _stamp(img: np.ndarray, mask: np.ndarray, color: np.ndarray) -> None:
    for channel in range(3):
        plane = img[:, :, channel]
        plane[mask > 0] = color[channel]


def _animal_body(size, rng, body_color, ear_kind):
    """Shared quadruped/bird geometry: body ellipse + head + class ears."""
    body = canvas(size)
    cx = 0.5 + rng.uniform(-0.05, 0.05)
    cy = 0.58 + rng.uniform(-0.04, 0.04)
    draw_ellipse(body, (cx, cy), (0.22, 0.13), 1.0)
    head = (cx + 0.20, cy - 0.12)
    draw_ellipse(body, head, (0.09, 0.08), 1.0)
    if ear_kind == "point":  # cat-like triangular ears via short strokes
        draw_polyline(body, [(head[0] - 0.05, head[1] - 0.06),
                             (head[0] - 0.03, head[1] - 0.13)], 0.03)
        draw_polyline(body, [(head[0] + 0.04, head[1] - 0.06),
                             (head[0] + 0.06, head[1] - 0.13)], 0.03)
    elif ear_kind == "antler":
        for side in (-0.04, 0.04):
            draw_polyline(body, [(head[0] + side, head[1] - 0.06),
                                 (head[0] + side * 2.2, head[1] - 0.17)], 0.02)
    elif ear_kind == "floppy":
        draw_ellipse(body, (head[0] - 0.07, head[1] + 0.02), (0.03, 0.07), 1.0)
    legs = canvas(size)
    for offset in (-0.14, -0.05, 0.06, 0.14):
        draw_rect(legs, (cx + offset - 0.015, cy + 0.10),
                  (cx + offset + 0.015, cy + 0.24), 1.0)
    return body, legs


_BACKGROUND_POOL = (_SKY, _GRASS, _ROAD, _WATER, np.array([0.6, 0.5, 0.45]))


def _scene(size: int, rng: np.random.Generator) -> np.ndarray:
    """A background drawn independently of the class.

    Class-typical backgrounds would make the task trivially separable by
    colour statistics; CIFAR-10's difficulty (the paper tops out near 42%)
    comes from objects appearing against arbitrary scenes.
    """
    choice = int(rng.integers(0, len(_BACKGROUND_POOL)))
    return _background(_BACKGROUND_POOL[choice], size, rng)


def render_object(label: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """One RGB float image in [0, 1] of the given CIFAR-like class."""
    if not 0 <= label < 10:
        raise ValueError(f"label must be 0-9, got {label}")
    if label == 0:  # airplane: fuselage + wings on sky
        img = _scene(size, rng)
        shape = canvas(size)
        draw_ellipse(shape, (0.5, 0.5), (0.26, 0.06), 1.0)
        draw_polyline(shape, [(0.42, 0.36), (0.52, 0.5), (0.42, 0.65)], 0.05)
        draw_polyline(shape, [(0.72, 0.42), (0.74, 0.5)], 0.04)
        _stamp(img, shape, np.array([0.85, 0.85, 0.88]) + rng.normal(0, 0.03, 3))
    elif label == 1:  # automobile: body + cabin + wheels on road
        img = _scene(size, rng)
        body_color = rng.random(3) * 0.7 + 0.2
        shape = canvas(size)
        draw_rect(shape, (0.22, 0.48), (0.78, 0.64), 1.0)
        draw_rect(shape, (0.34, 0.36), (0.66, 0.50), 1.0)
        _stamp(img, shape, body_color)
        wheels = canvas(size)
        draw_ellipse(wheels, (0.33, 0.66), (0.06, 0.06), 1.0)
        draw_ellipse(wheels, (0.67, 0.66), (0.06, 0.06), 1.0)
        _stamp(img, wheels, np.array([0.1, 0.1, 0.1]))
    elif label == 2:  # bird: small body on sky, wing stroke
        img = _scene(size, rng)
        shape = canvas(size)
        draw_ellipse(shape, (0.5, 0.52), (0.12, 0.08), 1.0)
        draw_ellipse(shape, (0.61, 0.45), (0.05, 0.05), 1.0)
        draw_polyline(shape, [(0.43, 0.50), (0.30, 0.38)], 0.05)
        _stamp(img, shape, np.array([0.55, 0.40, 0.30]) + rng.normal(0, 0.04, 3))
    elif label == 3:  # cat on indoor-ish warm background
        img = _scene(size, rng)
        body, legs = _animal_body(size, rng, None, "point")
        _stamp(img, body, np.array([0.55, 0.45, 0.40]) + rng.normal(0, 0.05, 3))
        _stamp(img, legs, np.array([0.5, 0.4, 0.35]))
    elif label == 4:  # deer on grass with antlers
        img = _scene(size, rng)
        body, legs = _animal_body(size, rng, None, "antler")
        _stamp(img, body, np.array([0.60, 0.45, 0.30]) + rng.normal(0, 0.04, 3))
        _stamp(img, legs, np.array([0.55, 0.4, 0.28]))
    elif label == 5:  # dog on grass with floppy ears
        img = _scene(size, rng)
        body, legs = _animal_body(size, rng, None, "floppy")
        _stamp(img, body, np.array([0.45, 0.35, 0.25]) + rng.normal(0, 0.05, 3))
        _stamp(img, legs, np.array([0.4, 0.3, 0.22]))
    elif label == 6:  # frog: low green blob, big eyes
        img = _scene(size, rng)
        shape = canvas(size)
        draw_ellipse(shape, (0.5, 0.62), (0.20, 0.10), 1.0)
        draw_ellipse(shape, (0.42, 0.50), (0.04, 0.04), 1.0)
        draw_ellipse(shape, (0.58, 0.50), (0.04, 0.04), 1.0)
        _stamp(img, shape, np.array([0.35, 0.6, 0.25]) + rng.normal(0, 0.04, 3))
    elif label == 7:  # horse: tall quadruped, mane stroke
        img = _scene(size, rng)
        body, legs = _animal_body(size, rng, None, "none")
        mane = canvas(size)
        draw_polyline(mane, [(0.64, 0.38), (0.72, 0.30)], 0.04)
        _stamp(img, body, np.array([0.40, 0.28, 0.20]) + rng.normal(0, 0.04, 3))
        _stamp(img, legs, np.array([0.35, 0.25, 0.18]))
        _stamp(img, mane, np.array([0.2, 0.15, 0.1]))
    elif label == 8:  # ship: hull + superstructure on water
        img = _scene(size, rng)
        shape = canvas(size)
        draw_polyline(shape, [(0.22, 0.58), (0.78, 0.58), (0.68, 0.70), (0.32, 0.70),
                              (0.22, 0.58)], 0.03)
        draw_rect(shape, (0.24, 0.56), (0.76, 0.68), 1.0)
        draw_rect(shape, (0.42, 0.40), (0.62, 0.56), 1.0)
        _stamp(img, shape, np.array([0.75, 0.75, 0.78]) + rng.normal(0, 0.03, 3))
    else:  # truck: big box + cab + wheels on road
        img = _scene(size, rng)
        shape = canvas(size)
        draw_rect(shape, (0.30, 0.34), (0.80, 0.62), 1.0)
        _stamp(img, shape, rng.random(3) * 0.5 + 0.35)
        cab = canvas(size)
        draw_rect(cab, (0.16, 0.46), (0.30, 0.62), 1.0)
        _stamp(img, cab, np.array([0.6, 0.2, 0.2]) + rng.normal(0, 0.04, 3))
        wheels = canvas(size)
        draw_ellipse(wheels, (0.28, 0.66), (0.055, 0.055), 1.0)
        draw_ellipse(wheels, (0.62, 0.66), (0.055, 0.055), 1.0)
        _stamp(img, wheels, np.array([0.08, 0.08, 0.08]))
    for channel in range(3):
        img[:, :, channel] = box_blur(img[:, :, channel], radius=1)
    img += rng.normal(0, 0.04, img.shape)
    return np.clip(img, 0.0, 1.0)


def synthetic_cifar10(
    n_train: int = 1000, n_test: int = 500, seed: int = 0, size: int = 32
) -> ImageDataset:
    """Balanced 10-class RGB object dataset with CIFAR-10's shape."""
    rng = np.random.default_rng(seed)

    def make_split(count: int):
        labels = np.arange(count) % 10
        rng.shuffle(labels)
        images = np.stack(
            [normalize_to_uint8(render_object(int(lbl), size, rng)) for lbl in labels]
        )
        return images, labels.astype(np.int64)

    train_images, train_labels = make_split(n_train)
    test_images, test_labels = make_split(n_test)
    return ImageDataset(
        name="synthetic-cifar10",
        train_images=train_images,
        train_labels=train_labels,
        test_images=test_images,
        test_labels=test_labels,
        class_names=CIFAR_NAMES,
    )
