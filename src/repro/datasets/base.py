"""Common dataset container and split utilities.

Every generator in this package returns an :class:`ImageDataset` whose
images are uint8 with shape ``(n, H, W)`` (grayscale) or ``(n, H, W, 3)``
(RGB).  The HDC pipelines consume flattened grayscale intensities, so RGB
datasets expose a luma conversion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ImageDataset", "stratified_indices"]

_LUMA = np.array([0.299, 0.587, 0.114])


def stratified_indices(
    labels: np.ndarray, per_class: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``per_class`` indices of every label value, shuffled together."""
    labels = np.asarray(labels)
    chosen = []
    for cls in np.unique(labels):
        pool = np.flatnonzero(labels == cls)
        if pool.size < per_class:
            raise ValueError(
                f"class {cls} has only {pool.size} samples, need {per_class}"
            )
        chosen.append(rng.choice(pool, size=per_class, replace=False))
    indices = np.concatenate(chosen)
    rng.shuffle(indices)
    return indices


@dataclass(frozen=True)
class ImageDataset:
    """A labelled train/test image classification dataset."""

    name: str
    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray
    class_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.train_images.shape[0] != self.train_labels.shape[0]:
            raise ValueError("train images and labels disagree in count")
        if self.test_images.shape[0] != self.test_labels.shape[0]:
            raise ValueError("test images and labels disagree in count")
        if self.train_images.dtype != np.uint8 or self.test_images.dtype != np.uint8:
            raise ValueError("images must be uint8")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        return len(self.class_names)

    @property
    def image_shape(self) -> tuple[int, ...]:
        return self.train_images.shape[1:]

    @property
    def is_rgb(self) -> bool:
        return self.train_images.ndim == 4

    @property
    def num_pixels(self) -> int:
        """Pixel count H of the grayscale view (what the encoders see)."""
        shape = self.image_shape
        return int(shape[0]) * int(shape[1])

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def grayscale(self) -> "ImageDataset":
        """Luma-converted copy; grayscale datasets are returned unchanged.

        The paper encodes pixel *intensities*, so RGB datasets (CIFAR-10,
        BloodMNIST, SVHN) are collapsed to a single channel before HDC.
        """
        if not self.is_rgb:
            return self

        def convert(images: np.ndarray) -> np.ndarray:
            return np.rint(images.astype(np.float64) @ _LUMA).astype(np.uint8)

        return ImageDataset(
            name=self.name,
            train_images=convert(self.train_images),
            train_labels=self.train_labels,
            test_images=convert(self.test_images),
            test_labels=self.test_labels,
            class_names=self.class_names,
        )

    def subset(self, n_train: int, n_test: int, seed: int = 0) -> "ImageDataset":
        """Class-stratified subset with ``n_train``/``n_test`` total samples."""
        rng = np.random.default_rng(seed)
        per_train = n_train // self.num_classes
        per_test = n_test // self.num_classes
        if per_train < 1 or per_test < 1:
            raise ValueError("need at least one sample per class in each split")
        train_idx = stratified_indices(self.train_labels, per_train, rng)
        test_idx = stratified_indices(self.test_labels, per_test, rng)
        return ImageDataset(
            name=self.name,
            train_images=self.train_images[train_idx],
            train_labels=self.train_labels[train_idx],
            test_images=self.test_images[test_idx],
            test_labels=self.test_labels[test_idx],
            class_names=self.class_names,
        )
