"""Associative (cleanup) memory over hypervectors.

A standard component of HDC systems: stores named hypervectors and
recalls the best match for a noisy query.  The class-hypervector store of
the centroid classifier is an associative memory specialised to class
prototypes; this generic version supports symbol cleanup after unbinding,
the other canonical HDC use.
"""

from __future__ import annotations

import numpy as np

from .similarity import cosine_similarity

__all__ = ["AssociativeMemory"]


class AssociativeMemory:
    """Name-keyed hypervector store with nearest-neighbour recall."""

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self._names: list[str] = []
        self._vectors: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._names

    def store(self, name: str, vector: np.ndarray) -> "AssociativeMemory":
        """Add or replace an entry."""
        vector = np.asarray(vector)
        if vector.shape != (self.dim,):
            raise ValueError(f"vector must have shape ({self.dim},)")
        if name in self._names:
            self._vectors[self._names.index(name)] = vector.copy()
        else:
            self._names.append(name)
            self._vectors.append(vector.copy())
        return self

    def vector(self, name: str) -> np.ndarray:
        """Stored vector of one entry."""
        try:
            index = self._names.index(name)
        except ValueError:
            raise KeyError(f"no entry named {name!r}") from None
        return self._vectors[index]

    def recall(self, query: np.ndarray, k: int = 1) -> list[tuple[str, float]]:
        """The ``k`` best matches as ``(name, similarity)``, best first."""
        if not self._names:
            raise RuntimeError("memory is empty")
        if not 1 <= k <= len(self._names):
            raise ValueError(f"k must lie in [1, {len(self._names)}]")
        matrix = np.stack(self._vectors)
        similarities = cosine_similarity(np.asarray(query), matrix)[0]
        order = np.argsort(similarities)[::-1][:k]
        return [(self._names[i], float(similarities[i])) for i in order]

    def cleanup(self, query: np.ndarray) -> np.ndarray:
        """The stored vector nearest to the query (symbol cleanup)."""
        name, _ = self.recall(query, k=1)[0]
        return self.vector(name)
