"""Core algebra on bipolar hypervectors.

Hypervectors are ``numpy.int8`` arrays of +1/-1 of dimension ``D`` (the
paper's logic-1/logic-0 in the bit domain).  The three HDC primitives:

* **binding** — element-wise multiplication (bit-wise XOR in 0/1 encoding);
  associates two hypervectors into one dissimilar to both.
* **bundling** — element-wise integer accumulation (popcount in hardware);
  superposes many hypervectors into one similar to each.
* **binarization** — the sign function applied to an accumulator, with the
  paper's tie rule: a popcount exactly at the threshold sets the sign bit,
  so ties map to +1.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ensure_bipolar",
    "random_hypervectors",
    "bind",
    "bundle",
    "binarize",
    "permute",
    "to_bits",
    "from_bits",
]


def ensure_bipolar(hv: np.ndarray) -> np.ndarray:
    """Validate that ``hv`` contains only +1/-1; returns it as int8."""
    hv = np.asarray(hv)
    if hv.size and not np.isin(hv, (-1, 1)).all():
        raise ValueError("hypervector entries must be +1 or -1")
    return hv.astype(np.int8, copy=False)


def random_hypervectors(
    count: int, dim: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` iid Rademacher hypervectors, shape ``(count, dim)`` int8.

    This is the software model of the baseline's comparator-based generator:
    uniform randoms compared against the unbiased threshold t = 0.5.
    """
    if count < 0 or dim <= 0:
        raise ValueError("count must be >= 0 and dim must be > 0")
    uniforms = rng.random((count, dim))
    return np.where(uniforms < 0.5, 1, -1).astype(np.int8)


def bind(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise multiply (XOR binding).  Self-inverse: bind(a, a) = 1s."""
    a = ensure_bipolar(a)
    b = ensure_bipolar(b)
    return (a * b).astype(np.int8)


def bundle(stack: np.ndarray, axis: int = 0) -> np.ndarray:
    """Integer accumulation of hypervectors along ``axis`` (no binarization)."""
    stack = np.asarray(stack)
    return stack.sum(axis=axis, dtype=np.int64)


def binarize(accumulator: np.ndarray, threshold: float = 0.0) -> np.ndarray:
    """Sign of an accumulator with the paper's tie rule (ties -> +1).

    ``threshold`` shifts the decision point; the hardware realisation
    compares a popcount against TOB = H/2, which in the +-1 domain is the
    accumulator reaching zero.
    """
    accumulator = np.asarray(accumulator)
    return np.where(accumulator >= threshold, 1, -1).astype(np.int8)


def permute(hv: np.ndarray, shifts: int = 1) -> np.ndarray:
    """Cyclic-shift permutation (the standard sequence-role operator)."""
    hv = np.asarray(hv)
    return np.roll(hv, shifts, axis=-1)


def to_bits(hv: np.ndarray) -> np.ndarray:
    """Map +1 -> 1, -1 -> 0 (the paper's logic-level view)."""
    hv = ensure_bipolar(hv)
    return (hv > 0).astype(np.uint8)


def from_bits(bits: np.ndarray) -> np.ndarray:
    """Map 1 -> +1, 0 -> -1 (inverse of :func:`to_bits`)."""
    bits = np.asarray(bits)
    if bits.size and not np.isin(bits, (0, 1)).all():
        raise ValueError("bits must be 0/1")
    return np.where(bits > 0, 1, -1).astype(np.int8)
