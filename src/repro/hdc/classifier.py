"""Centroid classifier over hypervectors (training + inference of Fig. 1).

Training is single-pass: every encoded image is bundled into its class
accumulator.  Inference picks the class with the highest cosine similarity.

Binarization policy
-------------------
``binarize=True`` applies the paper's sign rule (popcount vs. TOB = H/2)
to class hypervectors and queries.  That rule assumes the bundled bits are
*balanced*; it holds for the baseline's bound vectors (P XOR L is
Rademacher) but **degenerates for uHD on dark images**: level-only
accumulators sit far below zero in every dimension, so sign-at-zero maps
every class to the constant all-(-1) vector and accuracy collapses to
chance.  The accuracy experiments therefore default to ``binarize=False``
(cosine on the integer centroids — the "subtractor" reading of the paper's
binarization and the usual software practice), and EXPERIMENTS.md
documents the choice.  The hardware energy model is unaffected: it charges
the full popcount + masking-logic datapath either way.

``retrain`` implements the perceptron-style refinement several prior HDC
works use ("w/ retrain" rows of Fig. 6(b)); the paper's headline results
are single-pass, so it is off by default everywhere.
"""

from __future__ import annotations

import warnings
from typing import Any

import numpy as np

from ..api.registry import Backend, get_backend, resolve_backend
from .ops import binarize
from .similarity import classify, cosine_similarity

__all__ = ["CentroidClassifier"]


def _saved_backend(name: str) -> Backend:
    """Resolve a persisted backend name, reporting a missing plugin clearly."""
    try:
        return get_backend(name)
    except ValueError as exc:
        from ..api.persistence import ModelFormatError

        raise ModelFormatError(
            f"model was saved with backend {name!r}, which is not registered "
            "in this process; import/register the backend before loading"
        ) from exc


class CentroidClassifier:
    """Class-hypervector store with single-pass fit and cosine inference.

    ``center=True`` (default) subtracts each vector's scalar mean before
    the cosine in the non-binarized path — i.e. Pearson correlation.  A
    level-only accumulator carries the image's overall brightness as a
    large shared component; centering removes it so similarity ranks by
    *pattern*, which matters on datasets whose per-image brightness varies
    (colour scenes).  For the baseline's bound vectors the mean is already
    ~0 and centering is a no-op, so the comparison stays fair.

    Under ``binarize=True`` and ``backend != "reference"`` inference runs
    on packed words (class HVs and queries XORed and popcounted, see
    :mod:`repro.fastpath.inference`): predictions match the reference
    cosine path wherever the ranking is well-defined (exact integer-dot
    ties are decided by rounding noise in the reference and by lowest
    class index here — see :meth:`predict`), similarity values equal up
    to one float ulp.
    """

    def __init__(
        self,
        num_classes: int,
        dim: int,
        binarize: bool = False,
        center: bool = True,
        backend: "str | Backend | None" = None,
    ) -> None:
        if num_classes < 2 or dim < 1:
            raise ValueError("num_classes must be >= 2 and dim >= 1")
        self.num_classes = num_classes
        self.dim = dim
        self.binarize = binarize
        self.center = center
        if backend is None:
            self._backend = get_backend("auto")
        elif isinstance(backend, str):
            warnings.warn(
                "passing a backend name string directly to CentroidClassifier "
                "is deprecated; resolve it through the registry instead: "
                "CentroidClassifier(..., backend=repro.api.get_backend(name))",
                DeprecationWarning,
                stacklevel=2,
            )
            self._backend = get_backend(backend)
        else:
            self._backend = resolve_backend(backend)  # type-checks the instance
        self._accumulators = np.zeros((num_classes, dim), dtype=np.int64)
        self._fitted = False
        self._packed_classes: np.ndarray | None = None

    @property
    def backend(self) -> str:
        """Name of the execution backend this classifier runs on."""
        return self._backend.name

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, encoded: np.ndarray, labels: np.ndarray) -> "CentroidClassifier":
        """Single-pass bundling of encoded vectors into class accumulators."""
        encoded = np.asarray(encoded)
        labels = np.asarray(labels)
        if encoded.ndim != 2 or encoded.shape[1] != self.dim:
            raise ValueError(f"encoded must be (n, {self.dim})")
        if labels.shape != (encoded.shape[0],):
            raise ValueError("labels must be one per encoded vector")
        if labels.size and (labels.min() < 0 or labels.max() >= self.num_classes):
            raise ValueError(f"labels must lie in [0, {self.num_classes})")
        for cls in range(self.num_classes):
            mask = labels == cls
            if mask.any():
                self._accumulators[cls] += encoded[mask].sum(axis=0, dtype=np.int64)
        self._fitted = True
        self._packed_classes = None
        return self

    def retrain(
        self, encoded: np.ndarray, labels: np.ndarray, epochs: int = 1
    ) -> int:
        """Perceptron-style refinement; returns total corrections applied.

        For each misclassified vector the true class accumulator gains the
        vector and the predicted class loses it, as in AdaptHD-style
        retraining.
        """
        self._require_fitted()
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        encoded = np.asarray(encoded)
        labels = np.asarray(labels)
        corrections = 0
        for _ in range(epochs):
            predictions = self.predict(encoded)
            wrong = np.flatnonzero(predictions != labels)
            if wrong.size == 0:
                break
            for idx in wrong:
                self._accumulators[labels[idx]] += encoded[idx]
                self._accumulators[predictions[idx]] -= encoded[idx]
            corrections += int(wrong.size)
            self._packed_classes = None
        return corrections

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    @property
    def class_hypervectors(self) -> np.ndarray:
        """Sign-binarized class hypervectors, shape ``(num_classes, dim)``."""
        self._require_fitted()
        return binarize(self._accumulators)

    @property
    def accumulators(self) -> np.ndarray:
        """Raw (non-binarized) class accumulators — read-only view."""
        view = self._accumulators.view()
        view.setflags(write=False)
        return view

    def _packed_class_words(self) -> np.ndarray:
        """Packed binarized class HVs, rebuilt lazily after any mutation."""
        from ..fastpath.inference import pack_accumulators

        if self._packed_classes is None:
            self._packed_classes = pack_accumulators(self._accumulators)
        return self._packed_classes

    def _use_packed(self) -> bool:
        return self._backend.use_packed_inference(self.binarize)

    def similarities(self, encoded: np.ndarray) -> np.ndarray:
        """Cosine similarity of queries to every class representative.

        Under ``binarize=True`` both sides are sign-binarized first; under
        the default policy the integer accumulators are compared directly.
        The packed backend computes the binarized cosine as ``dot / D``
        (equal to the reference value up to one float ulp).
        """
        self._require_fitted()
        queries = np.atleast_2d(np.asarray(encoded))
        if self.binarize:
            if self._use_packed():
                from ..fastpath.inference import pack_accumulators

                return self._backend.packed_cosine(
                    pack_accumulators(queries), self._packed_class_words(), self.dim
                )
            return cosine_similarity(binarize(queries), self.class_hypervectors)
        if self.center:
            queries = queries - queries.mean(axis=1, keepdims=True)
            references = (self._accumulators
                          - self._accumulators.mean(axis=1, keepdims=True))
            return cosine_similarity(queries, references)
        return cosine_similarity(queries, self._accumulators)

    def predict(self, encoded: np.ndarray) -> np.ndarray:
        """Winner-take-all class labels for a batch of encoded vectors.

        Identical labels on every backend wherever the ranking is
        well-defined: the packed path ranks by the integer dot product, a
        monotone transform of the binarized cosine.  Where two classes sit
        at *exactly* the same integer dot the ranking has no answer — the
        reference argmax then follows float rounding noise in the cosines
        (which varies with BLAS blocking, i.e. with the batch shape), while
        the packed path deterministically picks the lowest class index.
        """
        if self._use_packed():
            self._require_fitted()
            queries = np.atleast_2d(np.asarray(encoded))
            return self._backend.packed_predict(
                queries, self._packed_class_words(), self.dim
            )
        return classify(self.similarities(encoded))

    def score(self, encoded: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy in ``[0, 1]``."""
        labels = np.asarray(labels)
        predictions = self.predict(encoded)
        if predictions.shape != labels.shape:
            raise ValueError("labels must be one per encoded vector")
        if labels.size == 0:
            raise ValueError("cannot score an empty set")
        return float(np.mean(predictions == labels))

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("classifier has not been fitted")

    # ------------------------------------------------------------------
    # Persistence (see repro.api.persistence for the file format)
    # ------------------------------------------------------------------
    def _save_payload(self) -> dict[str, Any]:
        from ..api.registry import is_registered_backend

        self._require_fitted()
        if not is_registered_backend(self.backend):
            # only the *name* is persisted; an unregistered instance would
            # produce a file no process (including this one) can load
            raise ValueError(
                f"cannot persist a classifier bound to unregistered backend "
                f"{self.backend!r}; repro.api.register_backend it first so "
                "load() can resolve the name"
            )
        return {
            "num_classes": self.num_classes,
            "dim": self.dim,
            "binarize": self.binarize,
            "center": self.center,
            "backend": self.backend,
            "accumulators": self._accumulators,
        }

    @classmethod
    def _from_payload(cls, payload: dict[str, np.ndarray]) -> "CentroidClassifier":
        model = cls(
            int(payload["num_classes"]),
            int(payload["dim"]),
            binarize=bool(payload["binarize"]),
            center=bool(payload["center"]),
            backend=_saved_backend(str(payload["backend"].item())),
        )
        model._restore_accumulators(payload["accumulators"])
        return model

    def _restore_accumulators(self, accumulators: np.ndarray) -> None:
        """Install trained state (the save/load path; no data re-encoding)."""
        accumulators = np.asarray(accumulators)
        if accumulators.shape != (self.num_classes, self.dim):
            from ..api.persistence import ModelFormatError

            raise ModelFormatError(
                f"accumulators have shape {accumulators.shape}, expected "
                f"({self.num_classes}, {self.dim})"
            )
        self._accumulators = accumulators.astype(np.int64, copy=True)
        self._packed_classes = None
        self._fitted = True

    def save(self, path: Any) -> None:
        """Persist the fitted classifier (versioned ``.npz``, bit-exact)."""
        from ..api.persistence import save_model

        save_model(self, path)

    @classmethod
    def load(cls, path: Any) -> "CentroidClassifier":
        """Rebuild a fitted classifier saved by :meth:`save`."""
        from ..api.persistence import load_model

        return load_model(path, expected=cls)
