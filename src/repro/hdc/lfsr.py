"""Linear-feedback shift registers — the baseline's hardware RNG.

The paper's baseline design uses LFSR modules for hypervector generation
(Section IV).  This is the software model; the gate-level netlist used for
energy accounting is built by :func:`repro.hardware.components.build_lfsr`.

Taps are the classic maximal-length feedback polynomials (Xilinx XAPP052
table), so a width-``w`` register sweeps all ``2^w - 1`` non-zero states —
a property the tests verify directly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LFSR", "MAXIMAL_TAPS", "lfsr_uniform_matrix"]

# Maximal-length Fibonacci taps (1-based bit positions, MSB = width).
MAXIMAL_TAPS: dict[int, tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    13: (13, 12, 11, 8),
    14: (14, 13, 12, 2),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 18, 17, 14),
    20: (20, 17),
    24: (24, 23, 22, 17),
    32: (32, 22, 2, 1),
}


class LFSR:
    """Fibonacci LFSR with maximal-length taps.

    Parameters
    ----------
    width:
        Register width in bits; must be a key of :data:`MAXIMAL_TAPS`.
    seed:
        Initial non-zero state (default: all ones).
    taps:
        Override the feedback taps (1-based positions); callers doing so
        are responsible for maximality.
    """

    def __init__(
        self,
        width: int,
        seed: int | None = None,
        taps: tuple[int, ...] | None = None,
    ) -> None:
        if taps is None:
            if width not in MAXIMAL_TAPS:
                raise ValueError(
                    f"no maximal taps tabulated for width {width}; "
                    f"available: {sorted(MAXIMAL_TAPS)}"
                )
            taps = MAXIMAL_TAPS[width]
        if any(not 1 <= t <= width for t in taps):
            raise ValueError(f"taps must lie in [1, {width}], got {taps}")
        self.width = width
        self.taps = tuple(taps)
        self._mask = (1 << width) - 1
        state = self._mask if seed is None else seed & self._mask
        if state == 0:
            raise ValueError("LFSR state must be non-zero")
        self._state = state

    @property
    def state(self) -> int:
        """Current register contents."""
        return self._state

    def step(self) -> int:
        """Advance one clock; returns the output bit (the last stage).

        XAPP052 convention: stages shift toward higher indices, the XOR of
        the tapped stages feeds stage 1.  Stage ``i`` lives at bit
        ``i - 1``, so the register shifts left and the feedback enters at
        bit 0.
        """
        out = (self._state >> (self.width - 1)) & 1
        feedback = 0
        for t in self.taps:
            feedback ^= (self._state >> (t - 1)) & 1
        self._state = ((self._state << 1) | feedback) & self._mask
        return out

    def next_state(self) -> int:
        """Advance one clock; returns the new state (a pseudo-random word)."""
        self.step()
        return self._state

    def uniform(self) -> float:
        """One pseudo-random value in ``(0, 1)`` from the next state."""
        return self.next_state() / float(1 << self.width)

    def sequence(self, n: int) -> np.ndarray:
        """The next ``n`` uniform values as a float64 vector."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return np.fromiter((self.uniform() for _ in range(n)), dtype=np.float64, count=n)

    def period(self, limit: int | None = None) -> int:
        """Number of steps until the state recurs (2^width - 1 when maximal).

        ``limit`` bounds the search; defaults to ``2^width`` steps.
        """
        if limit is None:
            limit = 1 << self.width
        start = self._state
        probe = LFSR(self.width, seed=start, taps=self.taps)
        for count in range(1, limit + 1):
            probe.next_state()
            if probe.state == start:
                return count
        raise RuntimeError(f"no recurrence within {limit} steps")


def lfsr_uniform_matrix(
    rows: int, cols: int, width: int = 16, seed: int = 1
) -> np.ndarray:
    """Matrix of LFSR-driven uniforms, one independent register per row.

    Row ``r`` is seeded with ``seed + r`` (kept non-zero), modelling the
    baseline architecture's bank of per-hypervector LFSR generators.
    """
    if rows < 0 or cols < 0:
        raise ValueError("rows and cols must be non-negative")
    out = np.empty((rows, cols), dtype=np.float64)
    mask = (1 << width) - 1
    for r in range(rows):
        register_seed = ((seed + r) & mask) or 1
        out[r] = LFSR(width, seed=register_seed).sequence(cols)
    return out
