"""Record encoder for generic tabular feature vectors.

The paper frames its encoder around images, but the same construction
applies to any fixed-length feature vector ("the amplitude of a discrete
signal, or a numerical feature of data", Section II).  This module wraps
both the baseline record encoding and the uHD level-only encoding behind
a small scikit-learn-flavoured API for tabular data, with per-feature
min/max normalisation learned from the training split.
"""

from __future__ import annotations

import numpy as np

from ..core.config import UHDConfig
from ..core.encoder import SobolLevelEncoder
from .baseline import BaselineConfig
from .classifier import CentroidClassifier
from .encoding import RecordEncoder, quantize_levels
from .item_memory import LevelItemMemory, RandomItemMemory

__all__ = ["TabularHDC"]


class TabularHDC:
    """HDC classifier over tabular feature vectors.

    Parameters
    ----------
    num_features:
        Length of each feature vector.
    num_classes:
        Number of target classes.
    encoding:
        ``"uhd"`` (Sobol level-only) or ``"record"`` (baseline
        position x level).
    dim / levels / seed:
        The usual HDC hyper-parameters.
    """

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        encoding: str = "uhd",
        dim: int = 1024,
        levels: int = 16,
        seed: int = 2024,
    ) -> None:
        if encoding not in ("uhd", "record"):
            raise ValueError(f"encoding must be 'uhd' or 'record', got {encoding!r}")
        if num_features < 1:
            raise ValueError("num_features must be >= 1")
        self.num_features = num_features
        self.num_classes = num_classes
        self.encoding = encoding
        self.levels = levels
        self.dim = dim
        if encoding == "uhd":
            self._encoder = SobolLevelEncoder(
                num_features, UHDConfig(dim=dim, levels=levels, seed=seed)
            )
        else:
            rng = np.random.default_rng(BaselineConfig(dim=dim, seed=seed).seed)
            positions = RandomItemMemory(num_features, dim, rng)
            level_memory = LevelItemMemory(levels, dim, rng, scheme="threshold")
            self._encoder = RecordEncoder(positions, level_memory)
        self._classifier = CentroidClassifier(num_classes, dim)
        self._lo: np.ndarray | None = None
        self._hi: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Normalisation
    # ------------------------------------------------------------------
    def _fit_scaler(self, features: np.ndarray) -> None:
        self._lo = features.min(axis=0)
        self._hi = features.max(axis=0)

    def _scale(self, features: np.ndarray) -> np.ndarray:
        if self._lo is None or self._hi is None:
            raise RuntimeError("model has not been fitted")
        span = np.where(self._hi > self._lo, self._hi - self._lo, 1.0)
        return np.clip((features - self._lo) / span, 0.0, 1.0)

    def _encode(self, features: np.ndarray) -> np.ndarray:
        scaled = self._scale(np.asarray(features, dtype=np.float64))
        if self.encoding == "uhd":
            return self._encoder.encode_batch(scaled)
        level_indices = quantize_levels(scaled, self.levels)
        return self._encoder.encode_batch(level_indices)

    # ------------------------------------------------------------------
    # Train / evaluate
    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "TabularHDC":
        """Single-pass training with min/max scaling learned here."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.num_features:
            raise ValueError(f"features must be (n, {self.num_features})")
        self._fit_scaler(features)
        self._classifier.fit(self._encode(features), np.asarray(labels))
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Class labels for a feature batch."""
        return self._classifier.predict(self._encode(features))

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy."""
        return self._classifier.score(self._encode(features), np.asarray(labels))
