"""Similarity kernels and the winner-take-all classification rule.

The paper classifies by the highest cosine similarity between a test
hypervector and the trained class hypervectors.  Dot and normalized-Hamming
kernels are provided for ablation; on binarized +-1 vectors of equal
dimension all three produce the same ranking.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cosine_similarity",
    "dot_similarity",
    "hamming_similarity",
    "classify",
]


def _as_matrix(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x)
    if x.ndim == 1:
        return x[None, :]
    if x.ndim != 2:
        raise ValueError("expected a vector or a matrix of hypervectors")
    return x


def cosine_similarity(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Cosine similarity matrix, shape ``(n_queries, n_references)``.

    Zero vectors are treated as orthogonal to everything (similarity 0)
    rather than raising, since an all-zero accumulator is a legal edge case
    of bundling an empty class.
    """
    q = _as_matrix(queries).astype(np.float64)
    r = _as_matrix(references).astype(np.float64)
    if q.shape[1] != r.shape[1]:
        raise ValueError(
            f"dimension mismatch: queries D={q.shape[1]}, references D={r.shape[1]}"
        )
    q_norm = np.linalg.norm(q, axis=1, keepdims=True)
    r_norm = np.linalg.norm(r, axis=1, keepdims=True)
    q_norm[q_norm == 0.0] = 1.0
    r_norm[r_norm == 0.0] = 1.0
    return (q / q_norm) @ (r / r_norm).T


def dot_similarity(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Raw inner-product similarity matrix."""
    q = _as_matrix(queries).astype(np.float64)
    r = _as_matrix(references).astype(np.float64)
    if q.shape[1] != r.shape[1]:
        raise ValueError("dimension mismatch between queries and references")
    return q @ r.T


def _is_bipolar(x: np.ndarray) -> bool:
    return x.dtype.kind in ("i", "u", "f") and (np.abs(x) == 1).all()


def hamming_similarity(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Fraction of agreeing positions between +-1 hypervectors, in [0, 1].

    For +-1 inputs ``agreements = (D + q @ r.T) / 2`` (each agreeing pair
    contributes +1 to the dot, each disagreeing pair -1), so the kernel is
    a single integer matmul instead of an ``(n_queries, n_refs, D)``
    broadcast tensor.  Non-+-1 inputs (arbitrary symbols) fall back to the
    elementwise comparison.
    """
    q = _as_matrix(queries)
    r = _as_matrix(references)
    if q.shape[1] != r.shape[1]:
        raise ValueError("dimension mismatch between queries and references")
    dim = q.shape[1]
    if dim and q.size and r.size and _is_bipolar(q) and _is_bipolar(r):
        dots = q.astype(np.int64) @ r.astype(np.int64).T
        agreements = (dim + dots) // 2
    else:
        agreements = (q[:, None, :] == r[None, :, :]).sum(axis=2)
    return agreements / dim


def classify(similarities: np.ndarray) -> np.ndarray:
    """Winner-take-all over the reference axis of a similarity matrix."""
    similarities = np.asarray(similarities)
    if similarities.ndim != 2:
        raise ValueError("expected a (n_queries, n_references) matrix")
    return similarities.argmax(axis=1)
