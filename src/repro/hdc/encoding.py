"""Hypervector encoders: record-based (baseline) and n-gram (extension).

The baseline record encoder is Fig. 1(b) of the paper: every pixel binds
its position hypervector with the level hypervector of its quantized
intensity, and the bound vectors are bundled across the image:

``V = sum_p  P_p * L_level(x_p)``

uHD's whole point is eliminating ``P`` and the binding multiply — its
encoder lives in :mod:`repro.core.encoder` and shares this module's
conventions so the two are directly comparable.
"""

from __future__ import annotations

import numpy as np

from .item_memory import LevelItemMemory, RandomItemMemory
from .ops import binarize, permute

__all__ = ["RecordEncoder", "NGramEncoder", "quantize_levels"]


def quantize_levels(images: np.ndarray, levels: int, max_value: int = 255) -> np.ndarray:
    """Map raw intensities to level indices in ``[0, levels - 1]``.

    Accepts uint8 images or float arrays already scaled to [0, 1]; output
    shape mirrors the input.
    """
    images = np.asarray(images)
    if images.dtype.kind in ("u", "i"):
        scaled = images.astype(np.float64) / float(max_value)
    else:
        scaled = np.clip(images.astype(np.float64), 0.0, 1.0)
    return np.rint(scaled * (levels - 1)).astype(np.int64)


class RecordEncoder:
    """Baseline position-times-level image encoder.

    Parameters
    ----------
    positions:
        Item memory with one orthogonal hypervector per pixel position
        (``num_items = H``).
    level_memory:
        Correlated item memory over quantized intensity levels.
    """

    def __init__(
        self, positions: RandomItemMemory, level_memory: LevelItemMemory
    ) -> None:
        if positions.dim != level_memory.dim:
            raise ValueError("position and level memories must share a dimension")
        self.positions = positions
        self.level_memory = level_memory
        self.dim = positions.dim
        self.num_pixels = positions.num_items
        self.levels = level_memory.levels

    def encode(self, level_indices: np.ndarray) -> np.ndarray:
        """Accumulator hypervector of one image, given per-pixel level indices."""
        level_indices = np.asarray(level_indices).reshape(-1)
        if level_indices.size != self.num_pixels:
            raise ValueError(
                f"expected {self.num_pixels} pixels, got {level_indices.size}"
            )
        bound = self.positions.matrix * self.level_memory.encode(level_indices)
        return bound.sum(axis=0, dtype=np.int64)

    def encode_batch(
        self, level_indices: np.ndarray, chunk: int = 16
    ) -> np.ndarray:
        """Accumulators for a batch of images, shape ``(batch, dim)``.

        Processes ``chunk`` images at a time so the transient
        ``(chunk, H, D)`` gather stays within memory for D = 8K.
        """
        level_indices = np.asarray(level_indices)
        batch = level_indices.shape[0]
        flat = level_indices.reshape(batch, -1)
        if flat.shape[1] != self.num_pixels:
            raise ValueError(
                f"expected {self.num_pixels} pixels per image, got {flat.shape[1]}"
            )
        out = np.empty((batch, self.dim), dtype=np.int64)
        pos = self.positions.matrix.astype(np.int16)
        for start in range(0, batch, chunk):
            stop = min(start + chunk, batch)
            gathered = self.level_memory.matrix[flat[start:stop]].astype(np.int16)
            gathered *= pos[None, :, :]
            out[start:stop] = gathered.sum(axis=1, dtype=np.int64)
        return out

    def encode_binarized(self, level_indices: np.ndarray) -> np.ndarray:
        """Sign-binarized hypervector of one image."""
        return binarize(self.encode(level_indices))


class NGramEncoder:
    """Permutation-based n-gram encoder for symbol sequences.

    Not used by the image experiments, but part of a complete HDC substrate
    (the paper's introduction motivates HDC with language tasks).  Symbol
    ``s`` at offset ``o`` inside an n-gram contributes
    ``permute(item[s], n - 1 - o)``; the n-gram binds its members and the
    sequence bundles its n-grams.
    """

    def __init__(self, items: RandomItemMemory, n: int = 3) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.items = items
        self.n = n
        self.dim = items.dim

    def encode_ngram(self, symbols: np.ndarray) -> np.ndarray:
        """Bound hypervector of a single n-gram."""
        symbols = np.asarray(symbols).reshape(-1)
        if symbols.size != self.n:
            raise ValueError(f"expected {self.n} symbols, got {symbols.size}")
        result = np.ones(self.dim, dtype=np.int8)
        for offset, symbol in enumerate(symbols):
            rolled = permute(self.items.vector(int(symbol)), self.n - 1 - offset)
            result = (result * rolled).astype(np.int8)
        return result

    def encode(self, sequence: np.ndarray) -> np.ndarray:
        """Accumulator over all n-grams of a symbol sequence."""
        sequence = np.asarray(sequence).reshape(-1)
        if sequence.size < self.n:
            raise ValueError(f"sequence shorter than n = {self.n}")
        acc = np.zeros(self.dim, dtype=np.int64)
        for start in range(sequence.size - self.n + 1):
            acc += self.encode_ngram(sequence[start : start + self.n])
        return acc
