"""Hyperdimensional-computing substrate (paper Section II, Fig. 1).

Public surface:

* :mod:`repro.hdc.ops` — bind / bundle / binarize / permute on bipolar
  hypervectors.
* :mod:`repro.hdc.similarity` — cosine / dot / Hamming kernels.
* :class:`RandomItemMemory` / :class:`LevelItemMemory` — codebooks.
* :class:`RecordEncoder` / :class:`NGramEncoder` — encoders.
* :class:`CentroidClassifier` — single-pass training + cosine inference.
* :class:`BaselineHDC` — the complete baseline image classifier.
* :class:`LFSR` — the baseline's hardware RNG model.
"""

from .associative_memory import AssociativeMemory
from .baseline import BaselineConfig, BaselineHDC
from .classifier import CentroidClassifier
from .features import TabularHDC
from .encoding import NGramEncoder, RecordEncoder, quantize_levels
from .item_memory import LevelItemMemory, RandomItemMemory
from .lfsr import LFSR, MAXIMAL_TAPS, lfsr_uniform_matrix
from .ops import (
    binarize,
    bind,
    bundle,
    ensure_bipolar,
    from_bits,
    permute,
    random_hypervectors,
    to_bits,
)
from .similarity import classify, cosine_similarity, dot_similarity, hamming_similarity

__all__ = [
    "AssociativeMemory",
    "BaselineConfig",
    "BaselineHDC",
    "CentroidClassifier",
    "TabularHDC",
    "RecordEncoder",
    "NGramEncoder",
    "quantize_levels",
    "RandomItemMemory",
    "LevelItemMemory",
    "LFSR",
    "MAXIMAL_TAPS",
    "lfsr_uniform_matrix",
    "bind",
    "bundle",
    "binarize",
    "permute",
    "ensure_bipolar",
    "random_hypervectors",
    "to_bits",
    "from_bits",
    "cosine_similarity",
    "dot_similarity",
    "hamming_similarity",
    "classify",
]
