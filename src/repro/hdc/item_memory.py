"""Item memories: the stored codebooks of baseline HDC (paper Fig. 1(a)).

* :class:`RandomItemMemory` — orthogonal codes for symbolic data (the
  *position* hypervectors P of the baseline encoder).
* :class:`LevelItemMemory` — correlated codes for scalar data (the *level*
  hypervectors L), in both classic constructions:

  - ``"flip"``: start from a random hypervector and flip cumulative random
    position chunks, so adjacent levels differ in ``D / (2 (levels - 1))``
    positions and the extremes are near-orthogonal.
  - ``"threshold"``: compare each level's normalized value against one
    shared vector of pseudo-random thresholds — the construction the paper
    describes (R vs ``t = k * D / 2^n``), and the exact pseudo-random
    counterpart of uHD's Sobol comparison (quasi-random thresholds).
"""

from __future__ import annotations

import numpy as np

from .ops import random_hypervectors

__all__ = ["RandomItemMemory", "LevelItemMemory"]

_LEVEL_SCHEMES = ("flip", "threshold")


class RandomItemMemory:
    """Fixed codebook of iid Rademacher hypervectors, one per symbol."""

    def __init__(self, num_items: int, dim: int, rng: np.random.Generator) -> None:
        if num_items < 1 or dim < 1:
            raise ValueError("num_items and dim must be >= 1")
        self.num_items = num_items
        self.dim = dim
        self._matrix = random_hypervectors(num_items, dim, rng)
        self._matrix.setflags(write=False)

    @property
    def matrix(self) -> np.ndarray:
        """Read-only ``(num_items, dim)`` int8 codebook."""
        return self._matrix

    def vector(self, item: int) -> np.ndarray:
        """Hypervector of one symbol."""
        if not 0 <= item < self.num_items:
            raise ValueError(f"item {item} out of range [0, {self.num_items})")
        return self._matrix[item]

    def encode(self, items: np.ndarray) -> np.ndarray:
        """Gather hypervectors for an index array; shape ``items.shape + (dim,)``."""
        items = np.asarray(items)
        if items.size and (items.min() < 0 or items.max() >= self.num_items):
            raise ValueError(f"items must lie in [0, {self.num_items})")
        return self._matrix[items]


class LevelItemMemory:
    """Correlated codebook over quantized scalar levels."""

    def __init__(
        self,
        levels: int,
        dim: int,
        rng: np.random.Generator,
        scheme: str = "flip",
    ) -> None:
        if levels < 2 or dim < 1:
            raise ValueError("levels must be >= 2 and dim >= 1")
        if scheme not in _LEVEL_SCHEMES:
            raise ValueError(f"scheme must be one of {_LEVEL_SCHEMES}, got {scheme!r}")
        self.levels = levels
        self.dim = dim
        self.scheme = scheme
        self._matrix = self._build(rng)
        self._matrix.setflags(write=False)

    def _build(self, rng: np.random.Generator) -> np.ndarray:
        if self.scheme == "threshold":
            # L_k[j] = +1 iff k / (levels - 1) >= R_j with one shared
            # pseudo-random threshold vector R (the paper's construction).
            thresholds = rng.random(self.dim)
            values = np.arange(self.levels, dtype=np.float64) / (self.levels - 1)
            return np.where(values[:, None] >= thresholds[None, :], 1, -1).astype(
                np.int8
            )
        # "flip": cumulative flips over a random permutation of D/2 positions.
        base = random_hypervectors(1, self.dim, rng)[0]
        flip_pool = rng.permutation(self.dim)[: self.dim // 2]
        matrix = np.tile(base, (self.levels, 1))
        for level in range(1, self.levels):
            flips = round(level * len(flip_pool) / (self.levels - 1))
            matrix[level, flip_pool[:flips]] *= -1
        return matrix.astype(np.int8)

    @property
    def matrix(self) -> np.ndarray:
        """Read-only ``(levels, dim)`` int8 codebook, row ``k`` = level ``k``."""
        return self._matrix

    def vector(self, level: int) -> np.ndarray:
        """Hypervector of one quantized level."""
        if not 0 <= level < self.levels:
            raise ValueError(f"level {level} out of range [0, {self.levels})")
        return self._matrix[level]

    def encode(self, levels: np.ndarray) -> np.ndarray:
        """Gather hypervectors for a level-index array."""
        levels = np.asarray(levels)
        if levels.size and (levels.min() < 0 or levels.max() >= self.levels):
            raise ValueError(f"levels must lie in [0, {self.levels})")
        return self._matrix[levels]
