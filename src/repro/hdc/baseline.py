"""The baseline HDC image classifier the paper compares against.

End-to-end model of Fig. 1: pseudo-random position and level hypervectors
(fresh draws per *iteration*, the knob behind Table IV's ``i = 1..100``
sweep and Fig. 6(a)'s fluctuation plot), record encoding with XOR binding,
bundling, sign binarization, and cosine inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .classifier import CentroidClassifier
from .encoding import RecordEncoder, quantize_levels
from .item_memory import LevelItemMemory, RandomItemMemory

__all__ = ["BaselineConfig", "BaselineHDC"]


@dataclass(frozen=True)
class BaselineConfig:
    """Hyper-parameters of the baseline HDC model.

    Attributes
    ----------
    dim:
        Hypervector dimension D (1K-10K in the paper).
    levels:
        Intensity quantization levels (2^n); 16 matches uHD's xi = 16 so
        accuracy comparisons are iso-quantization.
    level_scheme:
        Level item-memory construction: ``"threshold"`` (the paper's
        conventional random-sequence generation; default) or ``"flip"``.
    seed:
        Base seed; ``reseed`` derives per-iteration draws from it.
    binarize:
        Classifier policy — see :class:`repro.hdc.classifier.CentroidClassifier`.
    """

    dim: int = 1024
    levels: int = 16
    level_scheme: str = "threshold"
    seed: int = 0
    binarize: bool = False
    encode_chunk: int = field(default=16, repr=False)

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError(f"dim must be >= 1, got {self.dim}")
        if self.levels < 2:
            raise ValueError(f"levels must be >= 2, got {self.levels}")


class BaselineHDC:
    """Position-times-level HDC classifier with re-drawable hypervectors."""

    def __init__(self, num_pixels: int, num_classes: int, config: BaselineConfig) -> None:
        if num_pixels < 1:
            raise ValueError(f"num_pixels must be >= 1, got {num_pixels}")
        self.num_pixels = num_pixels
        self.num_classes = num_classes
        self.config = config
        self._classifier: CentroidClassifier | None = None
        self.reseed(config.seed)

    def reseed(self, seed: int) -> "BaselineHDC":
        """Draw a fresh set of position/level hypervectors (one "iteration").

        Invalidates any previous fit, since class hypervectors built from
        the old codebooks are meaningless under the new ones.
        """
        rng = np.random.default_rng(seed)
        positions = RandomItemMemory(self.num_pixels, self.config.dim, rng)
        levels = LevelItemMemory(
            self.config.levels, self.config.dim, rng, scheme=self.config.level_scheme
        )
        self.encoder = RecordEncoder(positions, levels)
        self.active_seed = seed  # the draw the current codebooks came from
        self._classifier = None
        return self

    # ------------------------------------------------------------------
    # Data plumbing
    # ------------------------------------------------------------------
    def _encode_images(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images)
        flat = images.reshape(images.shape[0], -1)
        if flat.shape[1] != self.num_pixels:
            raise ValueError(
                f"expected {self.num_pixels} pixels per image, got {flat.shape[1]}"
            )
        level_indices = quantize_levels(flat, self.config.levels)
        return self.encoder.encode_batch(level_indices, chunk=self.config.encode_chunk)

    # ------------------------------------------------------------------
    # Train / evaluate
    # ------------------------------------------------------------------
    def fit(self, images: np.ndarray, labels: np.ndarray) -> "BaselineHDC":
        """Single-pass training on a labelled image batch."""
        encoded = self._encode_images(images)
        self._classifier = CentroidClassifier(
            self.num_classes, self.config.dim, binarize=self.config.binarize
        )
        self._classifier.fit(encoded, np.asarray(labels))
        return self

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Class labels for a batch of images."""
        if self._classifier is None:
            raise RuntimeError("model has not been fitted")
        return self._classifier.predict(self._encode_images(images))

    def score(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled image batch."""
        if self._classifier is None:
            raise RuntimeError("model has not been fitted")
        return self._classifier.score(self._encode_images(images), np.asarray(labels))

    @property
    def classifier(self) -> CentroidClassifier:
        """The underlying centroid classifier (fitted)."""
        if self._classifier is None:
            raise RuntimeError("model has not been fitted")
        return self._classifier

    # ------------------------------------------------------------------
    # Persistence (see repro.api.persistence for the file format)
    # ------------------------------------------------------------------
    def _save_payload(self) -> dict[str, Any]:
        from ..api.persistence import config_to_json

        if self._classifier is None:
            raise RuntimeError("cannot save an unfitted model")
        return {
            "config_json": config_to_json(self.config),
            "num_pixels": self.num_pixels,
            "num_classes": self.num_classes,
            # codebooks are a pure function of this draw's seed, so the
            # seed (not the item memories) is what gets persisted
            "active_seed": self.active_seed,
            "accumulators": self._classifier.accumulators,
        }

    @classmethod
    def _from_payload(cls, payload: dict[str, np.ndarray]) -> "BaselineHDC":
        from ..api.persistence import config_from_json

        config = config_from_json(str(payload["config_json"].item()), BaselineConfig)
        model = cls(int(payload["num_pixels"]), int(payload["num_classes"]), config)
        active_seed = int(payload["active_seed"])
        if active_seed != model.active_seed:  # __init__ already drew config.seed
            model.reseed(active_seed)
        model._classifier = CentroidClassifier(
            model.num_classes, config.dim, binarize=config.binarize
        )
        model._classifier._restore_accumulators(payload["accumulators"])
        return model

    def save(self, path: Any) -> None:
        """Persist config + the active draw's seed + trained accumulators."""
        from ..api.persistence import save_model

        save_model(self, path)

    @classmethod
    def load(cls, path: Any) -> "BaselineHDC":
        """Rebuild a fitted baseline saved by :meth:`save`, bit-exactly."""
        from ..api.persistence import load_model

        return load_model(path, expected=cls)
