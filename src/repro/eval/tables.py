"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Fixed-width ASCII table; floats are shown with four significant digits."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            magnitude = abs(value)
            if magnitude >= 1e4 or magnitude < 1e-2:
                return f"{value:.3e}"
            return f"{value:.4g}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in cells))
        if cells else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in cells:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
