"""Figure-series export: CSV files plus terminal-renderable ASCII charts.

The evaluation box has no plotting stack, so figures are emitted as data
(CSV) with an ASCII sparkline preview — enough to eyeball the shape the
paper plots (Fig. 6's fluctuation band vs uHD's flat deterministic line).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

__all__ = ["write_series_csv", "ascii_chart"]

_BARS = " .:-=+*#%@"


def write_series_csv(
    path: str | Path,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> Path:
    """Write one figure's data series as CSV; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def ascii_chart(
    values: Sequence[float],
    width: int = 60,
    label: str = "",
) -> str:
    """Single-row intensity sparkline of a series, with min/max legend."""
    if not values:
        raise ValueError("need at least one value")
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    # Resample to the display width.
    resampled = [
        values[int(i * len(values) / width)] for i in range(min(width, len(values)))
    ]
    chars = "".join(
        _BARS[int((v - lo) / span * (len(_BARS) - 1))] for v in resampled
    )
    prefix = f"{label}: " if label else ""
    return f"{prefix}[{chars}] min={lo:.2f} max={hi:.2f}"
