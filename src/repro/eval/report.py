"""Assemble the EXPERIMENTS report from published benchmark results.

Every benchmark writes its rendered table under ``benchmarks/results/``;
this module stitches those files into one markdown document so
EXPERIMENTS.md can be refreshed with a single command
(``repro-uhd report``) after a bench run.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["build_experiments_markdown", "RESULT_SECTIONS"]

# Ordered (result-file stem, section heading) pairs.
RESULT_SECTIONS: tuple[tuple[str, str], ...] = (
    ("table1_embedded", "Table I — embedded platform performance"),
    ("table2_energy_area", "Table II — energy and area-delay"),
    ("table3_sota", "Table III — energy efficiency vs SOTA"),
    ("table4_mnist", "Table IV — MNIST accuracy"),
    ("table5_datasets", "Table V — accuracy across datasets"),
    ("fig6_accuracy", "Fig. 6 — accuracy monitoring"),
    ("checkpoints", "Design checkpoints ➊➋➌ — block energies"),
    ("ablation_quantization", "Ablation — quantization depth"),
    ("ablation_lds_family", "Ablation — LD family / digital shift"),
    ("ablation_binding", "Ablation — binding vs position-free"),
)


def build_experiments_markdown(results_dir: str | Path) -> str:
    """Markdown report of every published result table.

    Missing sections are listed as "not yet generated" rather than
    silently dropped, so a partial bench run is visible.
    """
    results_dir = Path(results_dir)
    lines = [
        "# Measured results",
        "",
        "Generated from `benchmarks/results/` — run",
        "`pytest benchmarks/ --benchmark-only` to refresh"
        " (`REPRO_FULL=1` for paper-leaning workloads).",
        "",
    ]
    for stem, heading in RESULT_SECTIONS:
        lines.append(f"## {heading}")
        lines.append("")
        path = results_dir / f"{stem}.txt"
        if path.is_file():
            lines.append("```text")
            lines.append(path.read_text().rstrip())
            lines.append("```")
        else:
            lines.append("*not yet generated*")
        lines.append("")
    return "\n".join(lines)
