"""Per-operation energies and datapath compositions for Tables II/III and
the design checkpoints ➊➋➌.

Every number here is produced by simulating the gate-level netlists of
:mod:`repro.hardware.circuits` with representative stimulus and applying
the activity-based power model.  Composition formulas:

uHD, one level hypervector (one pixel, D dimensions):
    ``E = D * (E_sobol_fetch + E_unary_compare) + E_data_fetch``
    (the data operand's stream is fetched once and reused across D).

Baseline, one bound hypervector (one pixel, D dimensions):
    ``E = D * (2 * E_lfsr_generate(ceil(log2 D) bits) + E_bind_xor)``
    (position *and* level bits are generated per dimension; the comparator
    width grows with D because the paper's level thresholds live in
    ``[0, D]``).

Per image: ``H`` hypervectors plus ``D`` accumulate-and-binarize runs of
``H`` cycles each.
"""

from __future__ import annotations

import math
from functools import lru_cache

from ..hardware.circuits import (
    UstFetchModel,
    bit_stream_stimulus,
    build_bind_unit,
    build_comparator_binarizer,
    build_lfsr_hv_generator,
    build_masking_binarizer,
    build_unary_comparator,
    counter_generator_stream_energy_fj,
    lfsr_generator_stimulus,
    random_value_pairs,
    unary_comparator_stimulus,
)
from ..hardware.power import dynamic_energy_fj
from ..hardware.simulator import Simulator

__all__ = [
    "unary_compare_energy_fj",
    "ust_fetch_energy_fj",
    "counter_generator_energy_per_bit_fj",
    "lfsr_generate_energy_fj",
    "bind_energy_fj",
    "binarizer_energy_per_feature_fj",
    "uhd_hv_energy_fj",
    "baseline_hv_energy_fj",
    "uhd_image_energy_fj",
    "baseline_image_energy_fj",
]

_SAMPLES = 200


@lru_cache(maxsize=None)
def unary_compare_energy_fj(n: int = 16) -> float:
    """Mean energy of one N-bit unary comparison (checkpoint ➋, uHD side)."""
    netlist = build_unary_comparator(n)
    sim = Simulator(netlist)
    pairs = random_value_pairs(n, _SAMPLES, seed=11)
    sim.run(unary_comparator_stimulus(n, pairs))
    return dynamic_energy_fj(sim).total_fj / _SAMPLES


@lru_cache(maxsize=None)
def ust_fetch_energy_fj(levels: int = 16) -> float:
    """Mean energy of one UST stream fetch (checkpoint ➊, uHD side)."""
    return UstFetchModel(levels).average_fetch_energy_fj(samples=_SAMPLES, seed=12)


@lru_cache(maxsize=None)
def counter_generator_energy_per_bit_fj(m: int = 4) -> float:
    """Per-bit energy of the conventional counter+comparator generator
    (checkpoint ➊, baseline side), averaged over operand values."""
    total = 0.0
    values = range(0, 1 << m, max(1, (1 << m) // 8))
    for value in values:
        total += counter_generator_stream_energy_fj(m, value)
    streams = len(list(values))
    return total / (streams * (1 << m))


@lru_cache(maxsize=None)
def lfsr_generate_energy_fj(compare_bits: int) -> float:
    """Energy of generating one pseudo-random hypervector bit: one LFSR
    step plus one ``compare_bits``-wide magnitude comparison (checkpoint
    ➋, baseline side)."""
    width = 16 if compare_bits <= 16 else 20
    netlist = build_lfsr_hv_generator(width=width, compare_bits=compare_bits)
    sim = Simulator(netlist)
    threshold = (1 << compare_bits) // 2
    sim.run(lfsr_generator_stimulus(compare_bits, threshold, _SAMPLES))
    return dynamic_energy_fj(sim).total_fj / _SAMPLES


@lru_cache(maxsize=None)
def bind_energy_fj() -> float:
    """Mean energy of one binding XOR under random operands."""
    import numpy as np

    netlist = build_bind_unit()
    sim = Simulator(netlist)
    rng = np.random.default_rng(13)
    stimulus = [{"p": int(p), "l": int(l)}
                for p, l in rng.integers(0, 2, size=(_SAMPLES, 2))]
    sim.run(stimulus)
    return dynamic_energy_fj(sim).total_fj / _SAMPLES


@lru_cache(maxsize=None)
def binarizer_energy_per_feature_fj(h: int, design: str) -> float:
    """Accumulate+binarize energy per incoming feature bit (checkpoint ➌).

    ``design`` is ``"masking"`` (uHD) or ``"comparator"`` (baseline); the
    netlist counts one full H-bit stream at a balanced ones-fraction.
    """
    if design == "masking":
        netlist = build_masking_binarizer(h)
    elif design == "comparator":
        netlist = build_comparator_binarizer(h)
    else:
        raise ValueError(f"design must be 'masking' or 'comparator', got {design!r}")
    sim = Simulator(netlist)
    sim.run(bit_stream_stimulus(h, ones_fraction=0.5, seed=14))
    return dynamic_energy_fj(sim).total_fj / h


def _baseline_compare_bits(dim: int) -> int:
    """Width of the baseline's threshold comparator: levels span [0, D]."""
    return max(int(math.ceil(math.log2(dim))), 4)


def uhd_hv_energy_fj(dim: int, levels: int = 16) -> float:
    """uHD energy to generate one level hypervector (D dimensions)."""
    fetch = ust_fetch_energy_fj(levels)
    compare = unary_compare_energy_fj(levels)
    return dim * (fetch + compare) + fetch


def baseline_hv_energy_fj(dim: int) -> float:
    """Baseline energy to generate one bound P*L hypervector."""
    generate = lfsr_generate_energy_fj(_baseline_compare_bits(dim))
    return dim * (2.0 * generate + bind_energy_fj())


def uhd_image_energy_fj(dim: int, num_pixels: int = 784, levels: int = 16) -> float:
    """uHD energy to encode one image: H hypervectors + D binarizer runs."""
    per_hv = uhd_hv_energy_fj(dim, levels)
    binarize = binarizer_energy_per_feature_fj(num_pixels, "masking") * num_pixels
    return num_pixels * per_hv + dim * binarize


def baseline_image_energy_fj(dim: int, num_pixels: int = 784) -> float:
    """Baseline energy to encode one image, comparator binarizer included."""
    per_hv = baseline_hv_energy_fj(dim)
    binarize = binarizer_energy_per_feature_fj(num_pixels, "comparator") * num_pixels
    return num_pixels * per_hv + dim * binarize
