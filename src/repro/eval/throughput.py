"""Machine-readable throughput benchmarks across registered backends.

Runs the hot paths a downstream serving system cares about — batch
encoding and binarized inference — on the reference, packed and threaded
backends, checks bit-exactness *before* timing anything, and returns a
JSON-friendly record so successive PRs accumulate a perf trajectory
(``BENCH_throughput.json``) to regress against.

Timings interleave the backends round-robin so machine noise (shared
cores, frequency drift) hits both distributions equally, and report the
median, which pytest-benchmark also favours.

The threaded backend only fans out when a batch spans several encode
chunks, so it is measured on a larger batch (``thread_batch``) against
the packed encoder on that same batch — its ``speedup_vs_packed`` is the
number the ROADMAP's threaded rung is judged on (≥ 1.5x expected on
≥ 4 cores; on fewer cores it degrades to ~1x by design, never below the
serial path by more than scheduling noise).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass

import numpy as np

from ..api.registry import get_backend
from ..core.config import UHDConfig
from ..core.encoder import SobolLevelEncoder
from ..fastpath import HAS_BITWISE_COUNT, PackedLevelEncoder
from ..hdc.classifier import CentroidClassifier

__all__ = ["BenchResult", "run_throughput_suite", "write_bench_json", "render_results"]


@dataclass(frozen=True)
class BenchResult:
    """One benchmark row: timings plus speedup ratios against peers."""

    name: str
    median_s: float
    ops_per_s: float
    speedup_vs_reference: float | None = None
    speedup_vs_packed: float | None = None


def _interleaved_medians(
    callables: dict[str, object], repeats: int, block: int = 8
) -> dict[str, float]:
    """Median wall time per callable, sampled in alternating blocks.

    Blocks of ``block`` consecutive runs keep each callable's working set
    cache-hot (matching how pytest-benchmark times each test in its own
    loop) while alternating blocks spreads machine noise across all
    callables instead of letting a burst hit only one.
    """
    samples: dict[str, list[float]] = {name: [] for name in callables}
    for _ in range(-(-repeats // block)):
        for name, fn in callables.items():
            times = samples[name]
            for _ in range(min(block, repeats - len(times))):
                start = time.perf_counter()
                fn()
                times.append(time.perf_counter() - start)
    return {name: float(np.median(times)) for name, times in samples.items()}


def run_throughput_suite(
    pixels: int = 784,
    dim: int = 1024,
    levels: int = 16,
    batch: int = 32,
    thread_batch: int = 256,
    queries: int = 512,
    num_classes: int = 10,
    repeats: int = 15,
    seed: int = 0,
) -> dict:
    """Encode + binarized-predict throughput across backends.

    Returns a dict with a ``benchmarks`` list (name, median_s, ops_per_s,
    speedup_vs_reference, speedup_vs_packed) and the workload ``config``;
    raises if any fast backend is not bit-exact with its baseline on this
    workload.
    """
    rng = np.random.default_rng(seed)
    side = int(np.sqrt(pixels))

    def draw(count: int) -> np.ndarray:
        shape = (count, side, side) if side * side == pixels else (count, pixels)
        return rng.integers(0, 256, size=shape, dtype=np.uint8)

    images = draw(batch)
    images_large = draw(thread_batch)

    config = UHDConfig(dim=dim, levels=levels)
    reference = SobolLevelEncoder(pixels, config)
    packed = PackedLevelEncoder(pixels, config)
    threaded = get_backend("threaded").make_encoder(pixels, config)
    # warm past pair-table promotion and first-touch page faults
    warm_batches = max(2, -(-PackedLevelEncoder.PAIR_PROMOTE_IMAGES // batch) + 1)
    for _ in range(warm_batches):
        packed.encode_batch(images)
    threaded.encode_batch(images_large)
    threaded.encode_batch(images_large)
    reference.encode_batch(images)
    if not np.array_equal(reference.encode_batch(images), packed.encode_batch(images)):
        raise AssertionError("packed encoder is not bit-exact with the reference")
    if not np.array_equal(
        packed.encode_batch(images_large), threaded.encode_batch(images_large)
    ):
        raise AssertionError("threaded encoder is not bit-exact with packed")

    encoded = rng.integers(-pixels, pixels + 1, size=(queries, dim), dtype=np.int64)
    labels = rng.integers(0, num_classes, size=queries)
    ref_clf = CentroidClassifier(
        num_classes, dim, binarize=True, backend=get_backend("reference")
    )
    packed_clf = CentroidClassifier(
        num_classes, dim, binarize=True, backend=get_backend("packed")
    )
    threaded_clf = CentroidClassifier(
        num_classes, dim, binarize=True, backend=get_backend("threaded")
    )
    for clf in (ref_clf, packed_clf, threaded_clf):
        clf.fit(encoded, labels)
        clf.predict(encoded)  # warm the packed class-HV caches
    # compare where the binarized ranking is well-defined; on exact
    # integer-dot ties the reference argmax is float-rounding noise
    # (batch-shape dependent), the packed path picks the lowest index
    from ..hdc.ops import binarize

    dots = (
        binarize(encoded).astype(np.int64)
        @ binarize(ref_clf.accumulators).astype(np.int64).T
    )
    well_defined = (dots == dots.max(axis=1, keepdims=True)).sum(axis=1) == 1
    if not np.array_equal(
        ref_clf.predict(encoded)[well_defined],
        packed_clf.predict(encoded)[well_defined],
    ):
        raise AssertionError("packed inference disagrees with the reference")
    # threaded shards the identical integer kernel: equal on every row
    if not np.array_equal(packed_clf.predict(encoded), threaded_clf.predict(encoded)):
        raise AssertionError("threaded inference disagrees with packed")

    # interleave each fast benchmark only with its own baseline so both
    # sides of a ratio see identical machine noise; the predict trio's
    # multi-MB query arrays would otherwise evict the encoder's
    # cache-resident workspace between rounds
    medians = _interleaved_medians(
        {
            "uhd_encode_reference": lambda: reference.encode_batch(images),
            "uhd_encode_packed": lambda: packed.encode_batch(images),
        },
        repeats,
    )
    medians.update(
        _interleaved_medians(
            {
                "uhd_encode_packed_large": lambda: packed.encode_batch(images_large),
                "uhd_encode_threaded_large": lambda: threaded.encode_batch(
                    images_large
                ),
            },
            repeats,
        )
    )
    medians.update(
        _interleaved_medians(
            {
                "uhd_predict_binarized_reference": lambda: ref_clf.predict(encoded),
                "uhd_predict_binarized_packed": lambda: packed_clf.predict(encoded),
                "uhd_predict_binarized_threaded": lambda: threaded_clf.predict(
                    encoded
                ),
            },
            repeats,
        )
    )

    def result(
        name: str,
        ops: int,
        reference_name: str | None = None,
        packed_name: str | None = None,
    ) -> BenchResult:
        median = medians[name]
        return BenchResult(
            name,
            median,
            ops / median,
            medians[reference_name] / median if reference_name else None,
            medians[packed_name] / median if packed_name else None,
        )

    benchmarks = [
        result("uhd_encode_reference", batch),
        result("uhd_encode_packed", batch, reference_name="uhd_encode_reference"),
        result("uhd_encode_packed_large", thread_batch),
        result(
            "uhd_encode_threaded_large",
            thread_batch,
            packed_name="uhd_encode_packed_large",
        ),
        result("uhd_predict_binarized_reference", queries),
        result(
            "uhd_predict_binarized_packed",
            queries,
            reference_name="uhd_predict_binarized_reference",
        ),
        result(
            "uhd_predict_binarized_threaded",
            queries,
            reference_name="uhd_predict_binarized_reference",
            packed_name="uhd_predict_binarized_packed",
        ),
    ]
    return {
        "config": {
            "pixels": pixels,
            "dim": dim,
            "levels": levels,
            "batch": batch,
            "thread_batch": thread_batch,
            "queries": queries,
            "num_classes": num_classes,
            "repeats": repeats,
            "numpy": np.__version__,
            "bitwise_count": HAS_BITWISE_COUNT,
            "cpu_count": os.cpu_count(),
            "threaded_workers": getattr(threaded, "max_workers", 1),
        },
        "benchmarks": [asdict(b) for b in benchmarks],
    }


def write_bench_json(results: dict, path: str, merge: bool = True) -> None:
    """Write suite results as indented JSON (the checked-in perf record).

    With ``merge=True`` (default) an existing record at ``path`` is
    *updated*, not clobbered: benchmark rows are replaced by name and
    rows the new results do not produce are preserved, as are top-level
    sections the new results do not carry.  That lets independent
    benchmark writers — ``run_bench.py`` (encode/predict rows plus the
    ``config`` section) and ``bench_serving.py`` (``serve_*`` rows plus
    ``serve_config``) — share one ``BENCH_throughput.json`` without
    erasing each other's recorded speedups.
    """
    merged = results
    if merge:
        try:
            with open(path, encoding="utf-8") as handle:
                existing = json.load(handle)
        except (OSError, json.JSONDecodeError):
            existing = None
        if isinstance(existing, dict):
            merged = dict(existing)
            for key, value in results.items():
                if key != "benchmarks":
                    merged[key] = value
            new_rows = {b["name"]: b for b in results.get("benchmarks", [])}
            rows = [
                new_rows.pop(b["name"], b)
                for b in existing.get("benchmarks", [])
            ]
            rows.extend(new_rows.values())  # rows recorded for the first time
            merged["benchmarks"] = rows
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")


def render_results(results: dict) -> str:
    """Human-readable table of a suite run."""
    lines = ["throughput (median over interleaved repeats):"]
    for bench in results["benchmarks"]:
        suffix = ""
        if bench.get("speedup_vs_reference"):
            suffix += f"  ({bench['speedup_vs_reference']:.1f}x vs reference)"
        if bench.get("speedup_vs_packed"):
            suffix += f"  ({bench['speedup_vs_packed']:.1f}x vs packed)"
        lines.append(
            f"  {bench['name']:<34} {bench['median_s'] * 1e3:8.3f} ms "
            f"{bench['ops_per_s']:10.0f} ops/s{suffix}"
        )
    return "\n".join(lines)
