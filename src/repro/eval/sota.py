"""Published reference numbers quoted by the paper (Tables III, Fig. 6(b)).

These rows come from the surveys the paper cites (Hassan et al., IEEE
Access 2022; Chang et al., JETCAS 2023) and from the prior-art accuracy
points of Fig. 6(b).  They are *quoted constants*, not measurements of
this reproduction — only the "This work" row of Table III is computed (by
:func:`repro.eval.experiments.table3_sota`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SotaFramework", "SOTA_ENERGY_EFFICIENCY", "PRIOR_ART_MNIST",
           "PAPER_TABLE_III_THIS_WORK"]


@dataclass(frozen=True)
class SotaFramework:
    """One row of Table III: a framework and its energy-efficiency ratio."""

    name: str
    platform: str
    energy_efficiency: float  # x over its reference baseline


SOTA_ENERGY_EFFICIENCY: tuple[SotaFramework, ...] = (
    SotaFramework("Semi-HD", "Raspberry Pi", 12.60),
    SotaFramework("Voice-HD", "Central Processing Unit", 11.90),
    SotaFramework("tiny-HD", "Microprocessor", 11.20),
    SotaFramework("PULP-HD", "ARM Microprocessor", 9.90),
    SotaFramework("Hierarchical-MHD", "Central Processing Unit", 6.60),
    SotaFramework("AdaptHD", "Raspberry Pi", 6.30),
    SotaFramework("Laelaps", "Central Processing Unit", 1.40),
)

# The paper's own Table III entry, for paper-vs-measured reporting.
PAPER_TABLE_III_THIS_WORK = 31.83


@dataclass(frozen=True)
class PriorArtPoint:
    """One MNIST accuracy point of Fig. 6(b)."""

    label: str
    accuracy_percent: float
    dim: int
    retrained: bool


PRIOR_ART_MNIST: tuple[PriorArtPoint, ...] = (
    PriorArtPoint("Datta et al. [4]", 75.40, 2048, False),
    PriorArtPoint("Hassan et al. [19]", 86.00, 10240, False),
    PriorArtPoint("FL-HDC [28]", 88.00, 10240, True),
    PriorArtPoint("QuantHD / LDC [9,29]", 87.38, 10240, True),
)
