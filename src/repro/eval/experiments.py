"""Reproduction runners: one function per table/figure of the paper.

Each function returns structured rows (lists of dataclasses) that the
benchmarks print and EXPERIMENTS.md records.  Paper values are attached
wherever the paper states them, so every output is a paper-vs-measured
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..embedded import (
    ArmCoreModel,
    BASELINE_CODE_BYTES,
    UHD_CODE_BYTES,
    baseline_image_ops,
    baseline_memory,
    uhd_image_ops,
    uhd_memory,
)
from ..hardware.area import area_um2, rom_area_um2
from ..hardware.circuits import (
    build_comparator_binarizer,
    build_lfsr_hv_generator,
    build_masking_binarizer,
    build_unary_comparator,
)
from ..hardware.timing import critical_path_ps
from . import energy
from .accuracy import (
    baseline_iteration_accuracies,
    prepare_dataset,
    run_scale,
    uhd_accuracy,
)
from .sota import PAPER_TABLE_III_THIS_WORK, PRIOR_ART_MNIST, SOTA_ENERGY_EFFICIENCY

__all__ = [
    "Table1Row",
    "table1_embedded",
    "Table2Row",
    "table2_energy_area",
    "Table3Row",
    "table3_sota",
    "Table4Row",
    "table4_mnist_accuracy",
    "Table5Row",
    "table5_datasets",
    "fig6a_iteration_series",
    "fig6c_uhd_series",
    "CheckpointResult",
    "checkpoint1_generation",
    "checkpoint2_comparator",
    "checkpoint3_binarize",
]

_MNIST_PIXELS = 784
_DEFAULT_DIMS = (1024, 2048, 8192)


# ----------------------------------------------------------------------
# Table I — embedded platform performance
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Row:
    design: str
    dim: int
    runtime_s: float
    dynamic_memory_kb: float
    code_memory_kb: float
    paper_runtime_s: float | None
    paper_memory_kb: float | None


_PAPER_TABLE1 = {
    ("baseline", 1024): (0.701, 8496.0),
    ("uhd", 1024): (0.016, 816.0),
    ("baseline", 8192): (5.938, 52401.0),
    ("uhd", 8192): (0.058, 2220.0),
}


def table1_embedded(dims: tuple[int, ...] = (1024, 8192)) -> list[Table1Row]:
    """Runtime / memory of both designs on the ARM-class core model."""
    core = ArmCoreModel()
    baseline_code_kb = sum(BASELINE_CODE_BYTES.values()) / 1024.0
    uhd_code_kb = sum(UHD_CODE_BYTES.values()) / 1024.0
    rows = []
    for dim in dims:
        for design in ("baseline", "uhd"):
            if design == "baseline":
                ops = baseline_image_ops(_MNIST_PIXELS, dim)
                memory = baseline_memory(_MNIST_PIXELS, dim)
                code_kb = baseline_code_kb
            else:
                ops = uhd_image_ops(_MNIST_PIXELS, dim)
                memory = uhd_memory(_MNIST_PIXELS, dim)
                code_kb = uhd_code_kb
            paper = _PAPER_TABLE1.get((design, dim), (None, None))
            rows.append(
                Table1Row(
                    design=design,
                    dim=dim,
                    runtime_s=core.runtime_seconds(ops),
                    dynamic_memory_kb=memory.total_kb,
                    code_memory_kb=code_kb,
                    paper_runtime_s=paper[0],
                    paper_memory_kb=paper[1],
                )
            )
    return rows


# ----------------------------------------------------------------------
# Table II — energy and area-delay of hypervector generation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table2Row:
    design: str
    dim: int
    energy_per_hv_pj: float
    energy_per_image_pj: float
    area_delay_m2s: float
    paper_energy_per_hv_pj: float | None
    paper_area_delay_m2s: float | None


_PAPER_TABLE2 = {
    ("uhd", 1024): (0.79, 40.60e-12),
    ("uhd", 2048): (1.58, 81.20e-12),
    ("uhd", 8192): (6.32, 324.80e-12),
    ("baseline", 1024): (171.42, 11.79e-9),
    ("baseline", 2048): (415.41, 25.55e-9),
    ("baseline", 8192): (4023.82, 230.33e-9),
}


def _uhd_datapath_area_um2(levels: int = 16) -> float:
    comparator = area_um2(build_unary_comparator(levels))
    binarizer = area_um2(build_masking_binarizer(_MNIST_PIXELS))
    rom = rom_area_um2(levels * levels)
    return comparator + binarizer + rom


def _baseline_datapath_area_um2(dim: int) -> float:
    compare_bits = max(int(np.ceil(np.log2(dim))), 4)
    generator = area_um2(build_lfsr_hv_generator(width=16, compare_bits=compare_bits))
    binarizer = area_um2(build_comparator_binarizer(_MNIST_PIXELS))
    return 2 * generator + binarizer  # P and L generator lanes


def _datapath_delay_s(netlist_cp_ps: float, cycles: int) -> float:
    return netlist_cp_ps * 1e-12 * cycles


def table2_energy_area(
    dims: tuple[int, ...] = _DEFAULT_DIMS, num_pixels: int = _MNIST_PIXELS
) -> list[Table2Row]:
    """Energy per HV / per image and area-delay for both designs."""
    uhd_cp = max(
        critical_path_ps(build_unary_comparator(16)),
        critical_path_ps(build_masking_binarizer(num_pixels)),
    )
    rows = []
    for dim in dims:
        compare_bits = max(int(np.ceil(np.log2(dim))), 4)
        base_cp = max(
            critical_path_ps(build_lfsr_hv_generator(width=16,
                                                     compare_bits=compare_bits)),
            critical_path_ps(build_comparator_binarizer(num_pixels)),
        )
        for design in ("uhd", "baseline"):
            if design == "uhd":
                hv_fj = energy.uhd_hv_energy_fj(dim)
                image_fj = energy.uhd_image_energy_fj(dim, num_pixels)
                area = _uhd_datapath_area_um2()
                delay = _datapath_delay_s(uhd_cp, dim)
            else:
                hv_fj = energy.baseline_hv_energy_fj(dim)
                image_fj = energy.baseline_image_energy_fj(dim, num_pixels)
                area = _baseline_datapath_area_um2(dim)
                delay = _datapath_delay_s(base_cp, dim)
            paper = _PAPER_TABLE2.get((design, dim), (None, None))
            rows.append(
                Table2Row(
                    design=design,
                    dim=dim,
                    energy_per_hv_pj=hv_fj / 1000.0,
                    energy_per_image_pj=image_fj / 1000.0,
                    area_delay_m2s=area * 1e-12 * delay,
                    paper_energy_per_hv_pj=paper[0],
                    paper_area_delay_m2s=paper[1],
                )
            )
    return rows


# ----------------------------------------------------------------------
# Table III — energy efficiency vs SOTA
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table3Row:
    framework: str
    platform: str
    energy_efficiency: float
    is_this_work: bool


def table3_sota(dim: int = 1024) -> list[Table3Row]:
    """SOTA ranking with this reproduction's own efficiency row computed.

    Our ratio follows the paper's definition: whole-pipeline energy of the
    baseline over uHD on the embedded platform model (memory access +
    generation + binding + bundling all fold into the instruction trace).
    """
    core = ArmCoreModel()
    ours = core.energy_joules(baseline_image_ops(_MNIST_PIXELS, dim)) / core.energy_joules(
        uhd_image_ops(_MNIST_PIXELS, dim)
    )
    rows = [
        Table3Row(fw.name, fw.platform, fw.energy_efficiency, False)
        for fw in SOTA_ENERGY_EFFICIENCY
    ]
    rows.append(Table3Row("This work (measured)", "ARM Microprocessor", ours, True))
    rows.append(
        Table3Row("This work (paper)", "ARM Microprocessor",
                  PAPER_TABLE_III_THIS_WORK, True)
    )
    return sorted(rows, key=lambda r: r.energy_efficiency, reverse=True)


# ----------------------------------------------------------------------
# Table IV — MNIST accuracy: baseline iteration sweep vs single-pass uHD
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table4Row:
    dim: int
    baseline_by_checkpoint: dict[int, float]
    uhd: float
    paper_baseline_i1: float | None
    paper_uhd: float | None


_PAPER_TABLE4 = {
    1024: (82.93, 84.44),
    2048: (86.24, 87.04),
    8192: (88.30, 88.41),
}
_TABLE4_CHECKPOINTS = (1, 5, 20, 50, 75, 100)


def table4_mnist_accuracy(
    dims: tuple[int, ...] = _DEFAULT_DIMS, seed: int = 0, backend: str = "auto"
) -> list[Table4Row]:
    """Baseline average accuracy at iteration checkpoints vs uHD (i = 1)."""
    scale = run_scale()
    data = prepare_dataset("mnist", scale, seed=seed)
    checkpoints = [c for c in _TABLE4_CHECKPOINTS if c <= scale.max_iterations]
    rows = []
    for dim in dims:
        series = baseline_iteration_accuracies(data, dim, max(checkpoints))
        by_checkpoint = {
            c: float(np.mean(series[:c]) * 100.0) for c in checkpoints
        }
        uhd = uhd_accuracy(data, dim, backend=backend) * 100.0
        paper = _PAPER_TABLE4.get(dim, (None, None))
        rows.append(
            Table4Row(
                dim=dim,
                baseline_by_checkpoint=by_checkpoint,
                uhd=uhd,
                paper_baseline_i1=paper[0],
                paper_uhd=paper[1],
            )
        )
    return rows


# ----------------------------------------------------------------------
# Table V — accuracy across the five additional datasets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table5Row:
    dataset: str
    dim: int
    uhd: float
    baseline: float
    paper_uhd: float | None
    paper_baseline: float | None


_PAPER_TABLE5 = {
    ("cifar10", 1024): (39.29, 38.21),
    ("cifar10", 2048): (40.28, 40.26),
    ("cifar10", 8192): (41.97, 41.71),
    ("blood", 1024): (53.05, 48.52),
    ("blood", 2048): (55.86, 51.20),
    ("blood", 8192): (57.88, 51.82),
    ("breast", 1024): (68.59, 68.47),
    ("breast", 2048): (69.23, 69.11),
    ("breast", 8192): (71.15, 70.93),
    ("fashion", 1024): (68.60, 54.19),
    ("fashion", 2048): (70.06, 69.97),
    ("fashion", 8192): (71.37, 70.87),
    ("svhn", 1024): (60.29, 60.06),
    ("svhn", 2048): (61.73, 61.24),
    ("svhn", 8192): (62.87, 62.82),
}
TABLE5_DATASETS = ("cifar10", "blood", "breast", "fashion", "svhn")


def table5_datasets(
    dims: tuple[int, ...] = _DEFAULT_DIMS,
    datasets: tuple[str, ...] = TABLE5_DATASETS,
    seed: int = 0,
    backend: str = "auto",
) -> list[Table5Row]:
    """uHD vs baseline accuracy on the five non-MNIST datasets."""
    from .accuracy import baseline_accuracy

    scale = run_scale()
    rows = []
    for name in datasets:
        data = prepare_dataset(name, scale, seed=seed)
        for dim in dims:
            uhd = uhd_accuracy(data, dim, backend=backend) * 100.0
            base = baseline_accuracy(data, dim, seed=1) * 100.0
            paper = _PAPER_TABLE5.get((name, dim), (None, None))
            rows.append(
                Table5Row(
                    dataset=name,
                    dim=dim,
                    uhd=uhd,
                    baseline=base,
                    paper_uhd=paper[0],
                    paper_baseline=paper[1],
                )
            )
    return rows


# ----------------------------------------------------------------------
# Fig. 6 — accuracy monitoring
# ----------------------------------------------------------------------
def fig6a_iteration_series(dim: int = 1024, seed: int = 0) -> list[float]:
    """Baseline accuracy per random draw (the fluctuation plot), percent."""
    scale = run_scale()
    data = prepare_dataset("mnist", scale, seed=seed)
    series = baseline_iteration_accuracies(data, dim, scale.max_iterations)
    return [a * 100.0 for a in series]


def fig6c_uhd_series(
    dims: tuple[int, ...] = _DEFAULT_DIMS, seed: int = 0, backend: str = "auto"
) -> dict[int, float]:
    """uHD single-pass accuracy per dimension, percent."""
    scale = run_scale()
    data = prepare_dataset("mnist", scale, seed=seed)
    return {dim: uhd_accuracy(data, dim, backend=backend) * 100.0 for dim in dims}


def fig6b_prior_art() -> tuple:
    """The quoted prior-art points of Fig. 6(b)."""
    return PRIOR_ART_MNIST


# ----------------------------------------------------------------------
# Design checkpoints ➊ ➋ ➌
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CheckpointResult:
    name: str
    uhd_fj: float
    baseline_fj: float
    paper_uhd_fj: float
    paper_baseline_fj: float

    @property
    def measured_ratio(self) -> float:
        return self.baseline_fj / self.uhd_fj

    @property
    def paper_ratio(self) -> float:
        return self.paper_baseline_fj / self.paper_uhd_fj


def checkpoint1_generation(levels: int = 16) -> CheckpointResult:
    """➊ energy per generated stream bit: UST fetch vs counter+comparator."""
    m = (levels - 1).bit_length()
    return CheckpointResult(
        name="checkpoint1_stream_generation_per_bit",
        uhd_fj=energy.ust_fetch_energy_fj(levels) / levels,
        baseline_fj=energy.counter_generator_energy_per_bit_fj(m),
        paper_uhd_fj=0.77,          # 0.77 fJ
        paper_baseline_fj=167.0,    # 0.167 pJ
    )


def checkpoint2_comparator(dim: int = 1024, levels: int = 16) -> CheckpointResult:
    """➋ energy per hypervector-bit generation: unary vs conventional."""
    compare_bits = max(int(np.ceil(np.log2(dim))), 4)
    uhd = energy.ust_fetch_energy_fj(levels) + energy.unary_compare_energy_fj(levels)
    baseline = energy.lfsr_generate_energy_fj(compare_bits)
    return CheckpointResult(
        name="checkpoint2_hv_bit_generation",
        uhd_fj=uhd,
        baseline_fj=baseline,
        paper_uhd_fj=240.0,         # 0.24 pJ
        paper_baseline_fj=2490.0,   # 2.49 pJ
    )


def checkpoint3_binarize(num_pixels: int = _MNIST_PIXELS) -> CheckpointResult:
    """➌ accumulate+binarize energy per feature: masking vs comparator."""
    return CheckpointResult(
        name="checkpoint3_accumulate_binarize_per_feature",
        uhd_fj=energy.binarizer_energy_per_feature_fj(num_pixels, "masking"),
        baseline_fj=energy.binarizer_energy_per_feature_fj(num_pixels, "comparator"),
        paper_uhd_fj=34700.0,       # 34.7 pJ
        paper_baseline_fj=68700.0,  # 68.7 pJ
    )
