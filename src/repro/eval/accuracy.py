"""Accuracy experiment helpers shared by Tables IV/V and Fig. 6.

The paper's accuracy protocol: single-pass centroid training, cosine
inference, no retraining, no NN assistance.  The baseline re-draws its
pseudo-random hypervectors per iteration ``i`` and reports accuracy per
draw; uHD is deterministic and runs once.

Workload scale is environment-switchable: the default sizes keep every
bench minutes-scale on one core, ``REPRO_FULL=1`` lifts them toward the
paper's (60k-image) regime.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..core import UHDClassifier, UHDConfig
from ..datasets import ImageDataset, load_dataset
from ..hdc import BaselineConfig, BaselineHDC

__all__ = [
    "RunScale",
    "run_scale",
    "prepare_dataset",
    "uhd_accuracy",
    "baseline_accuracy",
    "baseline_iteration_accuracies",
]


@dataclass(frozen=True)
class RunScale:
    """Sample counts and sweep depths for the accuracy experiments."""

    n_train: int
    n_test: int
    max_iterations: int


def run_scale() -> RunScale:
    """The active scale: reduced by default, paper-leaning with REPRO_FULL=1."""
    if os.environ.get("REPRO_FULL", "0") == "1":
        return RunScale(n_train=6000, n_test=1500, max_iterations=100)
    return RunScale(n_train=800, n_test=400, max_iterations=20)


def prepare_dataset(name: str, scale: RunScale | None = None, seed: int = 0) -> ImageDataset:
    """Load, grayscale and size a dataset for the accuracy protocol."""
    scale = scale or run_scale()
    data = load_dataset(name, n_train=scale.n_train, n_test=scale.n_test, seed=seed)
    return data.grayscale()


def uhd_accuracy(data: ImageDataset, dim: int, levels: int = 16,
                 seed: int = 2024, backend: str = "auto") -> float:
    """Single-run uHD accuracy (the paper's i = 1 column).

    ``backend`` selects the compute path (see :mod:`repro.fastpath`); the
    packed path is bit-exact with the reference, so accuracies match to
    the last digit whichever is used.
    """
    model = UHDClassifier(
        data.num_pixels, data.num_classes,
        UHDConfig(dim=dim, levels=levels, seed=seed, backend=backend),
    )
    model.fit(data.train_images, data.train_labels)
    return model.score(data.test_images, data.test_labels)


def baseline_accuracy(data: ImageDataset, dim: int, seed: int,
                      levels: int = 16) -> float:
    """One baseline draw-and-train run at the given iteration seed."""
    model = BaselineHDC(
        data.num_pixels, data.num_classes,
        BaselineConfig(dim=dim, levels=levels, seed=seed),
    )
    model.fit(data.train_images, data.train_labels)
    return model.score(data.test_images, data.test_labels)


def baseline_iteration_accuracies(
    data: ImageDataset, dim: int, iterations: int, levels: int = 16
) -> list[float]:
    """Accuracy per random hypervector draw, i = 1..iterations.

    This is the fluctuation series of Fig. 6(a); Table IV averages its
    prefixes at the paper's checkpoints.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    model = BaselineHDC(
        data.num_pixels, data.num_classes,
        BaselineConfig(dim=dim, levels=levels, seed=0),
    )
    accuracies = []
    for iteration in range(iterations):
        model.reseed(iteration)
        model.fit(data.train_images, data.train_labels)
        accuracies.append(model.score(data.test_images, data.test_labels))
    return accuracies
