"""Argument validation helpers with uniform error messages."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

__all__ = ["as_image_batch", "require_positive", "require_in_range"]


def as_image_batch(images: Any, num_pixels: int | None) -> "np.ndarray":
    """Normalize user-supplied images to a ``(batch, num_pixels)`` array.

    The single accepted-shape policy of every image-facing entry point
    (``UHDServer.submit``, ``StreamingUHD.partial_fit/predict/score``),
    so train and predict time can never disagree about what a "single
    image" is:

    * ``(pixels,)`` — one flattened image → batch of 1;
    * ``(h, h)`` with ``h * h == num_pixels`` — one unflattened square
      image → batch of 1 (the only 2-D shape reinterpreted: a same-sized
      non-square array, e.g. a ``(2, 392)`` batch of half-width rows,
      raises the pixel-count error instead of silently becoming one
      image);
    * ``(n, pixels)`` — a flat batch, passed through;
    * ``(n, h, w, ...)`` — a batch of unflattened images, flattened.

    Raises ``ValueError`` when the per-image pixel count disagrees with
    ``num_pixels`` (skipped when ``num_pixels`` is None).
    """
    import numpy as np

    arr = np.asarray(images)
    if arr.ndim == 1:
        arr = arr[None, :]  # single sample
    elif (
        arr.ndim == 2
        and num_pixels is not None
        and arr.shape[1] != num_pixels
        and arr.size == num_pixels
        and arr.shape[0] == arr.shape[1]
    ):
        arr = arr.reshape(1, -1)
    if arr.ndim > 2:
        # explicit trailing size: reshape(0, -1) is ambiguous on numpy
        arr = arr.reshape(arr.shape[0], int(np.prod(arr.shape[1:])))
    if arr.ndim != 2:
        raise ValueError(
            f"images must be (n, pixels), (n, h, w) or a single (pixels,) "
            f"vector, got shape {np.asarray(images).shape}"
        )
    if num_pixels is not None and arr.shape[1] != num_pixels:
        raise ValueError(
            f"images have {arr.shape[1]} pixels, model expects {num_pixels}"
        )
    return arr


def require_positive(value: float, name: str) -> None:
    """Raise ValueError unless ``value > 0``."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def require_in_range(value: float, lo: float, hi: float, name: str) -> None:
    """Raise ValueError unless ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise ValueError(f"{name} must lie in [{lo}, {hi}], got {value}")
