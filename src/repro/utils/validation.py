"""Argument validation helpers with uniform error messages."""

from __future__ import annotations

__all__ = ["require_positive", "require_in_range"]


def require_positive(value: float, name: str) -> None:
    """Raise ValueError unless ``value > 0``."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def require_in_range(value: float, lo: float, hi: float, name: str) -> None:
    """Raise ValueError unless ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise ValueError(f"{name} must lie in [{lo}, {hi}], got {value}")
