"""Wall-clock helpers for examples and experiment logs."""

from __future__ import annotations

import time

__all__ = ["Stopwatch"]


class Stopwatch:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Stopwatch() as sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
