"""Small shared utilities."""

from .timing import Stopwatch
from .validation import require_in_range, require_positive

__all__ = ["Stopwatch", "require_positive", "require_in_range"]
