"""Command-line interface: regenerate any table or figure by ID.

Usage::

    repro-uhd list
    repro-uhd table1
    repro-uhd table4 --dims 1024 2048 --backend packed
    repro-uhd fig6
    repro-uhd checkpoints
    repro-uhd bench --out BENCH_throughput.json

Accuracy experiments honour ``REPRO_FULL=1`` for paper-leaning workload
sizes; ``--backend`` switches the bit-exact compute backend (see
:mod:`repro.fastpath`).
"""

from __future__ import annotations

import argparse
import sys

from .eval import experiments as ex
from .eval.figures import ascii_chart
from .eval.tables import render_table

__all__ = ["main"]


def _dims_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dims", type=int, nargs="+", default=[1024, 2048, 8192],
        help="hypervector dimensions to sweep",
    )
    parser.add_argument(
        "--backend", choices=["auto", "packed", "reference"], default="auto",
        help="uHD compute backend (see repro.fastpath); bit-exact either way",
    )


def _cmd_table1(_: argparse.Namespace) -> str:
    rows = ex.table1_embedded()
    return render_table(
        ["design", "D", "runtime_s", "dyn_mem_KB", "code_KB",
         "paper_runtime_s", "paper_mem_KB"],
        [(r.design, r.dim, r.runtime_s, r.dynamic_memory_kb, r.code_memory_kb,
          r.paper_runtime_s, r.paper_memory_kb) for r in rows],
        title="Table I - embedded platform performance",
    )


def _cmd_table2(args: argparse.Namespace) -> str:
    rows = ex.table2_energy_area(dims=tuple(args.dims))
    return render_table(
        ["design", "D", "E/HV (pJ)", "E/image (pJ)", "AxD (m^2 s)",
         "paper E/HV", "paper AxD"],
        [(r.design, r.dim, r.energy_per_hv_pj, r.energy_per_image_pj,
          r.area_delay_m2s, r.paper_energy_per_hv_pj, r.paper_area_delay_m2s)
         for r in rows],
        title="Table II - energy and area-delay",
    )


def _cmd_table3(_: argparse.Namespace) -> str:
    rows = ex.table3_sota()
    return render_table(
        ["framework", "platform", "energy efficiency (x)"],
        [(r.framework, r.platform, r.energy_efficiency) for r in rows],
        title="Table III - energy efficiency vs SOTA",
    )


def _cmd_table4(args: argparse.Namespace) -> str:
    rows = ex.table4_mnist_accuracy(dims=tuple(args.dims), backend=args.backend)
    checkpoints = sorted(rows[0].baseline_by_checkpoint) if rows else []
    headers = ["D"] + [f"base i<={c}" for c in checkpoints] + [
        "uHD", "paper base i=1", "paper uHD"]
    body = [
        [r.dim] + [r.baseline_by_checkpoint[c] for c in checkpoints]
        + [r.uhd, r.paper_baseline_i1, r.paper_uhd]
        for r in rows
    ]
    return render_table(headers, body, title="Table IV - MNIST accuracy (%)")


def _cmd_table5(args: argparse.Namespace) -> str:
    rows = ex.table5_datasets(dims=tuple(args.dims), backend=args.backend)
    return render_table(
        ["dataset", "D", "uHD", "baseline", "paper uHD", "paper baseline"],
        [(r.dataset, r.dim, r.uhd, r.baseline, r.paper_uhd, r.paper_baseline)
         for r in rows],
        title="Table V - accuracy across datasets (%)",
    )


def _cmd_fig6(args: argparse.Namespace) -> str:
    series = ex.fig6a_iteration_series(dim=args.dims[0])
    uhd = ex.fig6c_uhd_series(dims=tuple(args.dims), backend=args.backend)
    lines = [
        "Fig. 6(a) - baseline accuracy per random draw:",
        ascii_chart(series, label=f"D={args.dims[0]}"),
        "",
        "Fig. 6(b) - prior art (quoted):",
    ]
    for point in ex.fig6b_prior_art():
        retrain = "w/ retrain" if point.retrained else "w/o retrain"
        lines.append(f"  {point.label}: {point.accuracy_percent:.2f}% "
                     f"@ D={point.dim} ({retrain})")
    lines.append("")
    lines.append("Fig. 6(c) - uHD single-pass accuracy:")
    for dim, acc in uhd.items():
        lines.append(f"  D={dim}: {acc:.2f}%")
    return "\n".join(lines)


def _cmd_checkpoints(_: argparse.Namespace) -> str:
    rows = [
        ex.checkpoint1_generation(),
        ex.checkpoint2_comparator(),
        ex.checkpoint3_binarize(),
    ]
    return render_table(
        ["checkpoint", "uHD (fJ)", "baseline (fJ)", "measured ratio",
         "paper ratio"],
        [(r.name, r.uhd_fj, r.baseline_fj, r.measured_ratio, r.paper_ratio)
         for r in rows],
        title="Design checkpoints 1-3 - energy",
    )


def _cmd_report(_: argparse.Namespace) -> str:
    from .eval.report import build_experiments_markdown

    return build_experiments_markdown("benchmarks/results")


def _cmd_bench(args: argparse.Namespace) -> str:
    from .eval.throughput import render_results, run_throughput_suite, write_bench_json

    results = run_throughput_suite(dim=args.dims[0], repeats=args.repeats)
    if args.out:
        write_bench_json(results, args.out)
    return render_results(results)


_COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "table5": _cmd_table5,
    "fig6": _cmd_fig6,
    "checkpoints": _cmd_checkpoints,
    "report": _cmd_report,
    "bench": _cmd_bench,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-uhd``."""
    parser = argparse.ArgumentParser(
        prog="repro-uhd",
        description="Regenerate tables/figures of the uHD paper (DATE 2024).",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiment IDs")
    for name in _COMMANDS:
        cmd = sub.add_parser(name, help=f"reproduce {name}")
        _dims_arg(cmd)
        if name == "bench":
            cmd.add_argument(
                "--out", default=None,
                help="write BENCH_throughput.json-style results here",
            )
            cmd.add_argument(
                "--repeats", type=int, default=15,
                help="timing repeats per benchmark (median reported)",
            )
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("available experiments:", ", ".join(sorted(_COMMANDS)))
        return 0
    print(_COMMANDS[args.command](args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
