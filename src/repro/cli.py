"""Command-line interface: regenerate tables/figures, and model lifecycle.

Usage::

    repro-uhd list
    repro-uhd table1
    repro-uhd table4 --dims 1024 2048 --backend packed
    repro-uhd fig6
    repro-uhd checkpoints
    repro-uhd bench --out BENCH_throughput.json
    repro-uhd save --out model.npz --dataset mnist --dim 2048 --backend threaded
    repro-uhd save --out model.npz --dim 2048 --include-tables
    repro-uhd load --model model.npz --dataset mnist
    repro-uhd serve-check --model model.npz --batch 64
    repro-uhd serve --model model.npz --workers 2 --rounds 3 --batch 16
    repro-uhd serve --model model.npz --workers 2 --start-method spawn --table-store shm
    repro-uhd serve --model model.npz --http-port 8080 --serve-forever
    repro-uhd serve --model model.npz --http-port 0 \
        --lane interactive:16:1:4 --lane bulk:64:50 --deadline-ms 5000

Accuracy experiments honour ``REPRO_FULL=1`` for paper-leaning workload
sizes; ``--backend`` accepts any backend registered with
:func:`repro.api.register_backend` (bit-exact built-ins: auto, packed,
threaded, reference).  ``save``/``load`` round-trip trained models through
the versioned :mod:`repro.api.persistence` format; ``serve-check`` is the
serving-readiness probe — it loads a warm model (no retraining) and
reports prediction latency; ``serve`` stands up the
:mod:`repro.serve` worker pool (each worker runs the serve-check probe
before accepting traffic), answers ``--rounds`` predict round-trips
bit-exactly, prints batching stats, and shuts down cleanly —
SIGTERM/SIGINT drain in-flight lanes (``--drain-timeout-s``) before the
workers exit.  ``--http-port`` puts the stdlib threaded HTTP transport
in front (``/predict``, ``/healthz``, ``/stats``, Prometheus
``/metrics``): the round-trips then
go over real HTTP (still verified bit-exact), and ``--serve-forever``
keeps serving until a signal arrives.  ``--lane NAME[:MAX_BATCH[
:MAX_WAIT_MS[:WEIGHT]]]`` (repeatable) declares priority lanes; the
first is the default lane the round-trips use.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
import threading
import time

from .api import list_backends
from .eval import experiments as ex
from .eval.figures import ascii_chart
from .eval.tables import render_table

__all__ = ["main"]


def _dims_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dims", type=int, nargs="+", default=[1024, 2048, 8192],
        help="hypervector dimensions to sweep",
    )
    _backend_arg(parser)


def _backend_arg(parser: argparse.ArgumentParser, default: str | None = "auto") -> None:
    parser.add_argument(
        "--backend", choices=sorted(list_backends()), default=default,
        help="execution backend from the repro.api registry; bit-exact either way",
    )


def _cmd_table1(_: argparse.Namespace) -> str:
    rows = ex.table1_embedded()
    return render_table(
        ["design", "D", "runtime_s", "dyn_mem_KB", "code_KB",
         "paper_runtime_s", "paper_mem_KB"],
        [(r.design, r.dim, r.runtime_s, r.dynamic_memory_kb, r.code_memory_kb,
          r.paper_runtime_s, r.paper_memory_kb) for r in rows],
        title="Table I - embedded platform performance",
    )


def _cmd_table2(args: argparse.Namespace) -> str:
    rows = ex.table2_energy_area(dims=tuple(args.dims))
    return render_table(
        ["design", "D", "E/HV (pJ)", "E/image (pJ)", "AxD (m^2 s)",
         "paper E/HV", "paper AxD"],
        [(r.design, r.dim, r.energy_per_hv_pj, r.energy_per_image_pj,
          r.area_delay_m2s, r.paper_energy_per_hv_pj, r.paper_area_delay_m2s)
         for r in rows],
        title="Table II - energy and area-delay",
    )


def _cmd_table3(_: argparse.Namespace) -> str:
    rows = ex.table3_sota()
    return render_table(
        ["framework", "platform", "energy efficiency (x)"],
        [(r.framework, r.platform, r.energy_efficiency) for r in rows],
        title="Table III - energy efficiency vs SOTA",
    )


def _cmd_table4(args: argparse.Namespace) -> str:
    rows = ex.table4_mnist_accuracy(dims=tuple(args.dims), backend=args.backend)
    checkpoints = sorted(rows[0].baseline_by_checkpoint) if rows else []
    headers = ["D"] + [f"base i<={c}" for c in checkpoints] + [
        "uHD", "paper base i=1", "paper uHD"]
    body = [
        [r.dim] + [r.baseline_by_checkpoint[c] for c in checkpoints]
        + [r.uhd, r.paper_baseline_i1, r.paper_uhd]
        for r in rows
    ]
    return render_table(headers, body, title="Table IV - MNIST accuracy (%)")


def _cmd_table5(args: argparse.Namespace) -> str:
    rows = ex.table5_datasets(dims=tuple(args.dims), backend=args.backend)
    return render_table(
        ["dataset", "D", "uHD", "baseline", "paper uHD", "paper baseline"],
        [(r.dataset, r.dim, r.uhd, r.baseline, r.paper_uhd, r.paper_baseline)
         for r in rows],
        title="Table V - accuracy across datasets (%)",
    )


def _cmd_fig6(args: argparse.Namespace) -> str:
    series = ex.fig6a_iteration_series(dim=args.dims[0])
    uhd = ex.fig6c_uhd_series(dims=tuple(args.dims), backend=args.backend)
    lines = [
        "Fig. 6(a) - baseline accuracy per random draw:",
        ascii_chart(series, label=f"D={args.dims[0]}"),
        "",
        "Fig. 6(b) - prior art (quoted):",
    ]
    for point in ex.fig6b_prior_art():
        retrain = "w/ retrain" if point.retrained else "w/o retrain"
        lines.append(f"  {point.label}: {point.accuracy_percent:.2f}% "
                     f"@ D={point.dim} ({retrain})")
    lines.append("")
    lines.append("Fig. 6(c) - uHD single-pass accuracy:")
    for dim, acc in uhd.items():
        lines.append(f"  D={dim}: {acc:.2f}%")
    return "\n".join(lines)


def _cmd_checkpoints(_: argparse.Namespace) -> str:
    rows = [
        ex.checkpoint1_generation(),
        ex.checkpoint2_comparator(),
        ex.checkpoint3_binarize(),
    ]
    return render_table(
        ["checkpoint", "uHD (fJ)", "baseline (fJ)", "measured ratio",
         "paper ratio"],
        [(r.name, r.uhd_fj, r.baseline_fj, r.measured_ratio, r.paper_ratio)
         for r in rows],
        title="Design checkpoints 1-3 - energy",
    )


def _cmd_report(_: argparse.Namespace) -> str:
    from .eval.report import build_experiments_markdown

    return build_experiments_markdown("benchmarks/results")


def _cmd_bench(args: argparse.Namespace) -> str:
    from .eval.throughput import render_results, run_throughput_suite, write_bench_json

    results = run_throughput_suite(dim=args.dims[0], repeats=args.repeats)
    if args.out:
        write_bench_json(results, args.out)
    return render_results(results)


# ----------------------------------------------------------------------
# Model lifecycle: save / load / serve-check (the repro.api surface)
# ----------------------------------------------------------------------
def _load_split(name: str, n_train: int, n_test: int, seed: int):
    from .datasets import load_dataset

    return load_dataset(name, n_train=n_train, n_test=n_test, seed=seed).grayscale()


def _cmd_save(args: argparse.Namespace) -> str:
    from .api.persistence import save_model, table_sidecar_path
    from .core.config import UHDConfig
    from .core.model import UHDClassifier

    data = _load_split(args.dataset, args.n_train, args.n_test, args.seed)
    config = UHDConfig(dim=args.dim, backend=args.backend)
    model = UHDClassifier(data.num_pixels, data.num_classes, config)
    if args.include_tables and not hasattr(model.encoder, "export_tables"):
        # fail before the (potentially long) fit, not after
        raise SystemExit(
            f"--include-tables: backend {args.backend!r} resolves to an "
            "encoder without exportable gather tables; use a "
            "packed-capable backend (auto/packed/threaded)"
        )
    start = time.perf_counter()
    model.fit(data.train_images, data.train_labels)
    fit_s = time.perf_counter() - start
    accuracy = model.score(data.test_images, data.test_labels)
    save_model(model, args.out, include_tables=args.include_tables)
    lines = [
        f"trained UHDClassifier on {args.dataset} "
        f"(n={data.train_images.shape[0]}, D={args.dim}, "
        f"backend={args.backend}) in {fit_s:.2f}s; "
        f"test accuracy {accuracy * 100.0:.2f}%",
        f"saved model to {args.out}",
    ]
    if args.include_tables:
        lines.append(
            f"flushed warm gather tables to {table_sidecar_path(args.out)} "
            "(loads will attach, not rebuild)"
        )
    return "\n".join(lines)


def _cmd_load(args: argparse.Namespace) -> str:
    from .core.model import UHDClassifier

    model = UHDClassifier.load(args.model)
    if args.backend is not None and args.backend != model.config.backend:
        model = model.with_backend(args.backend)
    data = _load_split(args.dataset, args.n_train, args.n_test, args.seed)
    accuracy = model.score(data.test_images, data.test_labels)
    return (
        f"loaded UHDClassifier from {args.model} "
        f"(D={model.config.dim}, levels={model.config.levels}, "
        f"backend={model.config.backend}, classes={model.num_classes}) "
        "without retraining\n"
        f"test accuracy on {args.dataset}: {accuracy * 100.0:.2f}%"
    )


def _cmd_serve_check(args: argparse.Namespace) -> str:
    """Serving-readiness probe: warm-load a model and time its predictions.

    Runs :func:`repro.serve.readiness_probe` — the *same* function every
    ``repro-uhd serve`` worker runs before accepting traffic, so a
    passing serve-check here means the worker handshake will pass too.
    """
    from .core.model import UHDClassifier
    from .serve import readiness_probe

    model = UHDClassifier.load(args.model)
    if args.backend is not None and args.backend != model.config.backend:
        model = model.with_backend(args.backend)
    probe = readiness_probe(
        model, model.num_pixels,
        batch=args.batch, repeats=args.repeats, seed=args.seed,
    )
    return (
        f"serve-check OK: {args.model} "
        f"(D={model.config.dim}, backend={model.config.backend})\n"
        f"  loaded warm (no retraining), predictions deterministic\n"
        f"  batch={probe.batch}: median {probe.median_ms:.3f} ms "
        f"({probe.images_per_s:.0f} images/s over {probe.repeats} repeats)"
    )


def _parse_lane(spec: str):
    """``NAME[:MAX_BATCH[:MAX_WAIT_MS[:WEIGHT]]]`` -> LaneConfig.

    Empty fields inherit the server-wide knob: ``bulk::50`` is a lane
    named bulk with the global max_batch and a 50 ms window.
    """
    from .serve import LaneConfig

    fields = spec.split(":")
    if len(fields) > 4:
        raise argparse.ArgumentTypeError(
            f"lane spec {spec!r} has too many fields; expected "
            "NAME[:MAX_BATCH[:MAX_WAIT_MS[:WEIGHT]]]"
        )

    def _field(index: int, cast):
        if len(fields) <= index or fields[index] == "":
            return None
        try:
            return cast(fields[index])
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"lane spec {spec!r}: field {index} ({fields[index]!r}) "
                f"is not a valid {cast.__name__}"
            ) from None

    weight = _field(3, float)
    try:
        return LaneConfig(
            name=fields[0],
            max_batch=_field(1, int),
            max_wait_ms=_field(2, float),
            weight=1.0 if weight is None else weight,
        )
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"lane spec {spec!r}: {exc}") from None


@contextlib.contextmanager
def _graceful_shutdown():
    """Install SIGTERM/SIGINT handlers that request a drain, not a kill.

    Yields a ``threading.Event`` set when either signal arrives; the
    caller's ``with UHDServer(...)`` block then exits normally and
    ``close()`` drains in-flight lanes (``ServeConfig.drain_timeout_s``)
    before stopping the workers — instead of the default SIGTERM action
    killing the pool with queued requests.  Handlers are restored on
    exit; outside the main thread (where signals cannot be installed)
    the event is yielded unarmed.
    """
    stop = threading.Event()

    def _handler(signum, frame):  # pragma: no cover - exercised via CI/tests
        stop.set()

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _handler)
        except ValueError:  # not the main thread
            pass
    try:
        yield stop
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)


def _http_round_trips(
    transport, queries, lane: str | None, deadline_ms: float | None,
    path: str = "/predict",
):
    """POST each query batch to ``path`` over real HTTP; returns answers."""
    import json
    import urllib.request

    import numpy as np

    answers = []
    for batch in queries:
        payload: dict = {"images": batch.tolist()}
        if lane is not None:
            payload["lane"] = lane
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        request = urllib.request.Request(
            transport.address + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60.0) as response:
            answers.append(np.asarray(json.load(response)["labels"]))
    return answers


def _binary_round_trips(
    binary, queries, lane: str | None, deadline_ms: float | None,
    model: str | None = None,
):
    """Pipeline each query batch over the framed binary transport."""
    from .serve import BinaryClient

    answers = []
    with BinaryClient(binary.host, binary.port) as client:
        for batch in queries:
            client.send(
                batch, lane=lane, model=model, deadline_ms=deadline_ms
            )
        # responses for one connection on one lane return in order here;
        # the bench and loadgen match by request id instead
        for _ in range(len(queries)):
            _request_id, labels = client.recv()
            answers.append(labels)
    return answers


def _cmd_serve(args: argparse.Namespace) -> str:
    """Start a serving pool, answer predict round-trips, shut down cleanly.

    With ``--verify`` (default) every served label array is compared
    bit-for-bit against ``UHDClassifier.predict`` on a directly loaded
    copy of the model — the serving layer's core contract, over both the
    in-process and the HTTP transport.  SIGTERM/SIGINT drain in-flight
    lanes before the workers exit.
    """
    import json
    import urllib.request

    import numpy as np

    from .serve import HttpTransport, ServeConfig, SocketTransport, UHDServer

    if args.serve_forever and args.http_port is None and args.binary_port is None:
        # fail fast: a supervisor that believes it started a daemon must
        # not get a self-test run that exits after --rounds
        raise SystemExit(
            "repro-uhd serve: --serve-forever requires --http-port or "
            "--binary-port (there is no transport to keep serving "
            "without one)"
        )
    config = ServeConfig(
        workers=args.workers,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        lanes=tuple(args.lane or ()),
        backend=args.backend,
        start_method=args.start_method,
        table_store=args.table_store,
        drain_timeout_s=args.drain_timeout_s,
    )
    rng = np.random.default_rng(args.seed)
    lines: list[str] = []
    start = time.perf_counter()
    with _graceful_shutdown() as stop:
        with UHDServer(args.model, config) as server:
            startup_s = time.perf_counter() - start
            stats = server.stats()
            mode = "in-process fallback" if config.workers == 0 else (
                f"{config.workers} worker process(es)"
            )
            lane_names = ", ".join(lane.name for lane in server.lanes)
            lines.append(
                f"serve: {args.model} up in {startup_s:.2f}s ({mode}, "
                f"max_batch={config.max_batch}, "
                f"max_wait={config.max_wait_ms:g}ms, lanes: {lane_names})"
            )
            builds = stats.worker_table_builds
            for slot, probe_ms in enumerate(stats.worker_probe_ms):
                warm = ""
                if slot < len(builds):
                    warm = (
                        ", tables attached (0 builds)" if builds[slot] == 0
                        else f", tables built ({builds[slot]})"
                    )
                lines.append(
                    f"  worker {slot}: ready, serve-check probe median "
                    f"{probe_ms:.3f} ms{warm}"
                )
            transport = None
            binary = None
            if args.http_port is not None:
                transport = HttpTransport(
                    server, host=args.http_host, port=args.http_port
                ).start()
                lines.append(
                    f"  http: listening on {transport.address} "
                    "(POST /predict, GET /healthz, GET /stats, GET /metrics)"
                )
            if args.binary_port is not None:
                # both transports feed the same scheduler — the binary
                # fast lane coexists with HTTP on one server
                binary = SocketTransport(
                    server, host=args.http_host, port=args.binary_port
                ).start()
                lines.append(
                    f"  binary: listening on {binary.address} "
                    "(framed predict protocol; repro.serve.BinaryClient)"
                )
            try:
                if (transport is not None or binary is not None) and \
                        args.serve_forever:
                    # daemon mode: print what we have, then block until a
                    # signal asks for the drain-and-exit path
                    print("\n".join(lines), flush=True)
                    lines = []
                    stop.wait()
                    lines.append("  signal received: draining lanes")
                else:
                    lines.extend(
                        _serve_round_trips(
                            args, server, transport, rng, stop, binary=binary
                        )
                    )
                if transport is not None:
                    health = json.load(
                        urllib.request.urlopen(
                            transport.address + "/healthz", timeout=10.0
                        )
                    )
                    http_stats = json.load(
                        urllib.request.urlopen(
                            transport.address + "/stats", timeout=10.0
                        )
                    )
                    lane_report = ", ".join(
                        f"{lane['name']}: served {lane['served_rows']} "
                        f"row(s), expired {lane['expired']}"
                        for lane in http_stats["lanes"]
                    )
                    lines.append(
                        f"  healthz: {health['status']} "
                        f"({health['workers_live']}/{health['workers']} "
                        "workers live)"
                    )
                    lines.append(f"  stats: {lane_report}")
            finally:
                if binary is not None:
                    binary.close()
                if transport is not None:
                    transport.close()
            final = server.stats()
            lines.append(
                f"  batching: {final.batches} batch(es) for {final.requests} "
                f"request(s), mean batch {final.mean_batch_size:.1f}, "
                f"max {final.max_batch_seen}"
            )
    lines.append("  shutdown clean")
    return "\n".join(lines)


def _serve_round_trips(
    args, server, transport, rng, stop, binary=None
) -> list[str]:
    """The self-test rounds: submit, time, verify bit-exactness."""
    import numpy as np

    lines: list[str] = []
    queries = rng.integers(
        0, 256,
        size=(args.rounds, args.batch, server.num_pixels),
        dtype=np.uint8,
    )
    t0 = time.perf_counter()
    if binary is not None:
        # over the framed socket: one persistent pipelined connection
        answers = _binary_round_trips(
            binary, queries, lane=None, deadline_ms=args.deadline_ms
        )
        via = " via binary"
    elif transport is not None:
        # over real HTTP: loopback socket, handler threads, JSON codec
        answers = _http_round_trips(
            transport, queries, lane=None, deadline_ms=args.deadline_ms
        )
        via = " via HTTP"
    else:
        handles = [
            server.submit(batch, deadline_ms=args.deadline_ms)
            for batch in queries
            if not stop.is_set()  # a signal stops new submissions
        ]
        answers = [handle.result(timeout=60.0) for handle in handles]
        via = ""
    elapsed = time.perf_counter() - t0
    total = len(answers) * args.batch
    lines.append(
        f"  served {len(answers)} request(s) x {args.batch} image(s) in "
        f"{elapsed * 1e3:.2f} ms ({total / max(elapsed, 1e-9):.0f} "
        f"images/s){via}"
    )
    if args.verify:
        from .api import load_model

        # load_model, not UHDClassifier.load: the server fronts any
        # persisted image model (StreamingUHD included), and the
        # backend= re-home is the same path the workers took
        direct = load_model(args.model, backend=args.backend)
        for batch, answer in zip(queries, answers):
            if not np.array_equal(direct.predict(batch), answer):
                raise AssertionError(
                    "served labels differ from UHDClassifier.predict"
                )
        lines.append(
            f"  verify OK: all {total} labels bit-exact with "
            "UHDClassifier.predict"
        )
    return lines


@contextlib.contextmanager
def _reload_on_sighup():
    """Install a SIGHUP handler that requests a rolling hot reload.

    Yields a ``threading.Event`` the daemon loop polls: set means "an
    operator sent SIGHUP, reload every deployment".  Platforms without
    SIGHUP (Windows) and non-main threads get the event unarmed — the
    daemon still runs, reload is just unavailable by signal there.
    """
    trigger = threading.Event()

    def _handler(signum, frame):  # pragma: no cover - exercised via CI
        trigger.set()

    sighup = getattr(signal, "SIGHUP", None)
    previous = None
    armed = False
    if sighup is not None:
        try:
            previous = signal.signal(sighup, _handler)
            armed = True
        except ValueError:  # not the main thread
            pass
    try:
        yield trigger
    finally:
        if armed:
            signal.signal(sighup, previous)


def _parse_model_spec(spec: str) -> tuple[str, str]:
    """``NAME=PATH`` -> (model id, model path) for ``route --model``."""
    name, sep, path = spec.partition("=")
    if not sep or not name or not path:
        raise argparse.ArgumentTypeError(
            f"model spec {spec!r} must be NAME=PATH (e.g. mnist=mnist.npz)"
        )
    if "/" in name:
        raise argparse.ArgumentTypeError(
            f"model id {name!r} must be slash-free (it becomes a URL segment)"
        )
    return name, path


def _cmd_route(args: argparse.Namespace) -> str:
    """Start a multi-model router, mix traffic across models, shut down.

    Each ``--model NAME=PATH`` becomes a deployment of ``--replicas``
    servers with least-loaded dispatch.  The self-test rounds cycle
    through every model (optionally performing a rolling hot reload
    halfway with ``--reload``) and, with ``--verify`` (default), compare
    every answer bit-for-bit against a directly loaded copy of that
    model.  Daemon mode (``--serve-forever``) reloads every deployment
    on SIGHUP and drains all deployments **concurrently** on
    SIGTERM/SIGINT — total shutdown is bounded by the slowest
    deployment's drain window, not the sum.
    """
    import numpy as np

    from .serve import (
        DeploymentSpec,
        HttpTransport,
        Router,
        ServeConfig,
        SocketTransport,
    )

    if args.serve_forever and args.http_port is None and args.binary_port is None:
        raise SystemExit(
            "repro-uhd route: --serve-forever requires --http-port or "
            "--binary-port (there is no transport to keep serving "
            "without one)"
        )
    config = ServeConfig(
        workers=args.workers,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        backend=args.backend,
        start_method=args.start_method,
        table_store=args.table_store,
        drain_timeout_s=args.drain_timeout_s,
    )
    specs: dict[str, DeploymentSpec] = {}
    for name, path in args.model:
        if name in specs:
            raise SystemExit(f"repro-uhd route: duplicate model id {name!r}")
        specs[name] = DeploymentSpec(
            path,
            replicas=args.replicas,
            min_ready=args.min_ready,
            serve=config,
        )
    rng = np.random.default_rng(args.seed)
    lines: list[str] = []
    start = time.perf_counter()
    with _graceful_shutdown() as stop, _reload_on_sighup() as hup:
        with Router(specs) as router:
            startup_s = time.perf_counter() - start
            mode = "in-process fallback" if config.workers == 0 else (
                f"{config.workers} worker process(es) per replica"
            )
            lines.append(
                f"route: {len(specs)} model(s) x {args.replicas} replica(s) "
                f"up in {startup_s:.2f}s ({mode})"
            )
            for row in router.models():
                lines.append(
                    f"  model {row['model']}: generation {row['generation']}, "
                    f"{row['ready']}/{row['replicas']} replica(s) ready "
                    f"({row['path']})"
                )
            transport = None
            binary = None
            if args.http_port is not None:
                transport = HttpTransport(
                    router, host=args.http_host, port=args.http_port
                ).start()
                lines.append(
                    f"  http: listening on {transport.address} "
                    "(POST /models/<id>/predict, GET /models, GET /healthz, "
                    "GET /metrics)"
                )
            if args.binary_port is not None:
                binary = SocketTransport(
                    router, host=args.http_host, port=args.binary_port
                ).start()
                lines.append(
                    f"  binary: listening on {binary.address} "
                    "(framed predict protocol, model id in-frame; "
                    "repro.serve.BinaryClient)"
                )
            try:
                if (transport is not None or binary is not None) and \
                        args.serve_forever:
                    print("\n".join(lines), flush=True)
                    lines = []
                    while not stop.wait(0.2):
                        if hup.is_set():
                            hup.clear()
                            for model_id in list(router.deployments):
                                report = router.reload(model_id)
                                print(
                                    f"  reload: {model_id} generation "
                                    f"{report['from_generation']} -> "
                                    f"{report['to_generation']} "
                                    f"({report['replaced']} replica(s) "
                                    f"swapped in {report['duration_s']:.2f}s)",
                                    flush=True,
                                )
                    lines.append("  signal received: draining deployments")
                    # one-line per-lane latency summary at drain time —
                    # the last chance an operator has to see the run's
                    # tail before the process exits (merged across every
                    # replica and retired generation)
                    for model_id, deployment in router.deployments.items():
                        for lane, snap in deployment.lane_snapshots().items():
                            lines.append(
                                f"  drain {model_id}/{lane}: "
                                f"{snap.count} served, "
                                f"p50 {snap.p50_ms:.2f}ms, "
                                f"p95 {snap.p95_ms:.2f}ms, "
                                f"{snap.excluded} expired"
                            )
                else:
                    lines.extend(
                        _route_round_trips(
                            args, router, transport, rng, stop, binary=binary
                        )
                    )
                health = router.healthz()
                lines.append(
                    f"  healthz: {health['status']} "
                    f"({health['ready_replicas']} replica(s) ready across "
                    f"{health['deployments']} deployment(s))"
                )
                for dep in router.stats()["models"]:
                    lines.append(
                        f"  stats {dep['model']}: generation "
                        f"{dep['generation']}, {dep['requests']} request(s), "
                        f"{dep['images']} image(s), {dep['retired_replicas']} "
                        "retired replica(s)"
                    )
            finally:
                if binary is not None:
                    binary.close()
                if transport is not None:
                    transport.close()
    lines.append("  shutdown clean")
    return "\n".join(lines)


def _route_round_trips(
    args, router, transport, rng, stop, binary=None
) -> list[str]:
    """Mixed-model self-test rounds, optionally reloading mid-run."""
    import numpy as np

    lines: list[str] = []
    model_ids = list(router.deployments)
    direct = {}
    if args.verify:
        from .api import load_model

        direct = {
            model_id: load_model(router.deployment(model_id).model_path)
            for model_id in model_ids
        }
    reload_round = args.rounds // 2 if args.reload else None
    total = 0
    t0 = time.perf_counter()
    for round_idx in range(args.rounds):
        if stop.is_set():
            break
        if reload_round is not None and round_idx == reload_round:
            for model_id in model_ids:
                report = router.reload(model_id)
                lines.append(
                    f"  reload: {model_id} generation "
                    f"{report['from_generation']} -> "
                    f"{report['to_generation']} ({report['replaced']} "
                    "replica(s) swapped)"
                )
        for model_id in model_ids:
            pixels = router.deployment(model_id).num_pixels
            batch = rng.integers(
                0, 256, size=(args.batch, pixels), dtype=np.uint8
            )
            if binary is not None:
                answer = _binary_round_trips(
                    binary, [batch], lane=None, deadline_ms=None,
                    model=model_id,
                )[0]
            elif transport is not None:
                answer = _http_round_trips(
                    transport, [batch], lane=None, deadline_ms=None,
                    path=f"/models/{model_id}/predict",
                )[0]
            else:
                answer = router.predict(model_id, batch, timeout=60.0)
            total += args.batch
            if args.verify and not np.array_equal(
                direct[model_id].predict(batch), answer
            ):
                raise AssertionError(
                    f"routed labels for {model_id!r} differ from "
                    "UHDClassifier.predict"
                )
    elapsed = time.perf_counter() - t0
    via = " via HTTP" if transport is not None else ""
    lines.append(
        f"  served {total} image(s) across {len(model_ids)} model(s) in "
        f"{elapsed * 1e3:.2f} ms{via}"
    )
    if args.verify:
        lines.append(
            "  verify OK: all labels bit-exact with UHDClassifier.predict "
            "per model"
        )
    return lines


def _model_io_args(parser: argparse.ArgumentParser, needs_model: bool) -> None:
    if needs_model:
        parser.add_argument("--model", required=True, help="saved model (.npz) path")
    parser.add_argument(
        "--dataset", default="mnist",
        help="dataset name (see repro.datasets; synthetic fallback, no network)",
    )
    parser.add_argument("--n-train", type=int, default=2000,
                        help="training samples")
    parser.add_argument("--n-test", type=int, default=500, help="test samples")
    parser.add_argument("--seed", type=int, default=0, help="data/query seed")


def _configure_save(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--out", required=True, help="output model (.npz) path")
    parser.add_argument("--dim", type=int, default=1024,
                        help="hypervector dimension D")
    parser.add_argument(
        "--include-tables", action="store_true",
        help="also flush the warm gather tables to <out>.tables so "
        "loads warm-start by attaching instead of rebuilding",
    )
    _model_io_args(parser, needs_model=False)
    _backend_arg(parser)


def _configure_load(parser: argparse.ArgumentParser) -> None:
    _model_io_args(parser, needs_model=True)
    _backend_arg(parser, default=None)


def _configure_serve_check(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", required=True, help="saved model (.npz) path")
    parser.add_argument("--batch", type=int, default=64,
                        help="images per timed predict call")
    parser.add_argument("--repeats", type=int, default=10,
                        help="timed predict calls (median reported)")
    parser.add_argument("--seed", type=int, default=0, help="query seed")
    _backend_arg(parser, default=None)


def _configure_serve(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", required=True, help="saved model (.npz) path")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (0 = synchronous in-process fallback)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=64,
        help="micro-batching bound: images per dispatched batch",
    )
    parser.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="micro-batching window before a partial batch flushes",
    )
    parser.add_argument(
        "--start-method", default="auto",
        choices=("auto", "fork", "spawn", "forkserver"),
        help="multiprocessing start method (auto = fork where available)",
    )
    parser.add_argument(
        "--table-store", default="heap",
        choices=("heap", "mmap", "shm"),
        help="where the warm gather tables are published for workers to "
        "attach: heap (fork shares copy-on-write; spawn rebuilds), mmap "
        "(versioned table file, np.memmap attach) or shm "
        "(multiprocessing.shared_memory) — mmap/shm make spawn workers "
        "warm-start without rebuilding tables",
    )
    parser.add_argument(
        "--lane", action="append", type=_parse_lane, metavar="SPEC",
        help="declare a priority lane: NAME[:MAX_BATCH[:MAX_WAIT_MS[:WEIGHT]]]"
        " (repeatable; empty fields inherit --max-batch/--max-wait-ms; the"
        " first lane is the default one round-trips use)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-request queueing deadline for the self-test round-trips; "
        "requests still queued when it passes fail loudly instead of "
        "being served late",
    )
    parser.add_argument(
        "--drain-timeout-s", type=float, default=10.0,
        help="how long shutdown (close / SIGTERM / SIGINT) waits for "
        "in-flight lanes to drain before failing the stragglers",
    )
    parser.add_argument(
        "--http-port", type=int, default=None, metavar="PORT",
        help="put the stdlib threaded HTTP transport in front (POST "
        "/predict, GET /healthz, GET /stats, GET /metrics); 0 binds an "
        "ephemeral port; the self-test round-trips then go over real HTTP",
    )
    parser.add_argument(
        "--binary-port", type=int, default=None, metavar="PORT",
        help="put the framed binary transport in front (length-prefixed "
        "predict frames over persistent connections; see repro.serve."
        "BinaryClient); 0 binds an ephemeral port; may coexist with "
        "--http-port — both feed the same scheduler; when set, the "
        "self-test round-trips go over the binary wire",
    )
    parser.add_argument(
        "--http-host", default="127.0.0.1",
        help="interface the HTTP and binary transports bind "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--serve-forever", action="store_true",
        help="with --http-port/--binary-port: skip the self-test rounds "
        "and serve until SIGTERM/SIGINT, then drain and exit",
    )
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="predict requests to serve before shutting down",
    )
    parser.add_argument(
        "--batch", type=int, default=16, help="images per served request"
    )
    parser.add_argument("--seed", type=int, default=0, help="query seed")
    parser.add_argument(
        "--no-verify", dest="verify", action="store_false",
        help="skip the bit-exactness check against UHDClassifier.predict",
    )
    _backend_arg(parser, default=None)


def _configure_route(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model", action="append", required=True, type=_parse_model_spec,
        metavar="NAME=PATH",
        help="deployment spec: model id and saved .npz path (repeatable; "
        "the id becomes the /models/<id>/... URL segment)",
    )
    parser.add_argument(
        "--replicas", type=int, default=1,
        help="servers per model deployment (least-loaded dispatch)",
    )
    parser.add_argument(
        "--min-ready", type=int, default=1,
        help="healthz floor: a deployment stays healthy while at least "
        "this many replicas are ready (rolling reload never drops below)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per replica (0 = in-process fallback)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=64,
        help="micro-batching bound: images per dispatched batch",
    )
    parser.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="micro-batching window before a partial batch flushes",
    )
    parser.add_argument(
        "--start-method", default="auto",
        choices=("auto", "fork", "spawn", "forkserver"),
        help="multiprocessing start method (auto = fork where available)",
    )
    parser.add_argument(
        "--table-store", default="heap",
        choices=("heap", "mmap", "shm"),
        help="where each replica publishes its warm gather tables for "
        "workers to attach (see `serve --table-store`)",
    )
    parser.add_argument(
        "--drain-timeout-s", type=float, default=10.0,
        help="per-deployment drain window on shutdown; deployments drain "
        "concurrently, so total shutdown is bounded by the max, not the sum",
    )
    parser.add_argument(
        "--http-port", type=int, default=None, metavar="PORT",
        help="put the HTTP transport in front (POST /models/<id>/predict, "
        "GET /models, GET /models/<id>/stats, GET /healthz); 0 binds an "
        "ephemeral port; the self-test round-trips then go over real HTTP",
    )
    parser.add_argument(
        "--binary-port", type=int, default=None, metavar="PORT",
        help="put the framed binary transport in front (model id travels "
        "in-frame; see repro.serve.BinaryClient); 0 binds an ephemeral "
        "port; may coexist with --http-port — both feed the same router",
    )
    parser.add_argument(
        "--http-host", default="127.0.0.1",
        help="interface the HTTP and binary transports bind "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--serve-forever", action="store_true",
        help="with --http-port/--binary-port: serve until SIGTERM/SIGINT "
        "(concurrent drain), performing a rolling hot reload of every "
        "model on SIGHUP",
    )
    parser.add_argument(
        "--reload", action="store_true",
        help="self-test mode: rolling-hot-reload every model halfway "
        "through the rounds (daemon mode reloads on SIGHUP instead)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="round-trip rounds; each round sends one batch per model",
    )
    parser.add_argument(
        "--batch", type=int, default=16, help="images per served request"
    )
    parser.add_argument("--seed", type=int, default=0, help="query seed")
    parser.add_argument(
        "--no-verify", dest="verify", action="store_false",
        help="skip the bit-exactness check against UHDClassifier.predict",
    )
    _backend_arg(parser, default=None)


_MODEL_COMMANDS = {
    "save": (_cmd_save, _configure_save),
    "load": (_cmd_load, _configure_load),
    "serve-check": (_cmd_serve_check, _configure_serve_check),
    "serve": (_cmd_serve, _configure_serve),
    "route": (_cmd_route, _configure_route),
}

_COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "table5": _cmd_table5,
    "fig6": _cmd_fig6,
    "checkpoints": _cmd_checkpoints,
    "report": _cmd_report,
    "bench": _cmd_bench,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-uhd``."""
    parser = argparse.ArgumentParser(
        prog="repro-uhd",
        description="Regenerate tables/figures of the uHD paper (DATE 2024).",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiment IDs")
    for name in _COMMANDS:
        cmd = sub.add_parser(name, help=f"reproduce {name}")
        _dims_arg(cmd)
        if name == "bench":
            cmd.add_argument(
                "--out", default=None,
                help="write BENCH_throughput.json-style results here",
            )
            cmd.add_argument(
                "--repeats", type=int, default=15,
                help="timing repeats per benchmark (median reported)",
            )
    for name, (_, configure) in _MODEL_COMMANDS.items():
        configure(sub.add_parser(name, help=f"model lifecycle: {name}"))
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("available experiments:", ", ".join(sorted(_COMMANDS)))
        print("model lifecycle:", ", ".join(sorted(_MODEL_COMMANDS)))
        return 0
    if args.command in _MODEL_COMMANDS:
        print(_MODEL_COMMANDS[args.command][0](args))
        return 0
    print(_COMMANDS[args.command](args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
