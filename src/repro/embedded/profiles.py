"""Operation traces of the two encoders' inner loops (Table I).

These mirror, operation by operation, the C inner loops the paper times:

Baseline, per pixel per dimension (and per hypervector: position *and*
level), executed fresh each image under the paper's "dynamic and
independent training" target:

    r = rand() / normalize      <- software divide on ARM11
    bit = (r > t) ? -1 : +1     <- compare + select
    bound = p_bit * l_bit       <- binding multiply (XOR in bit domain)
    acc[j] += bound             <- load + add + store

uHD, per pixel per dimension:

    s = sobol_q[p][j]           <- one M-bit load (amortised by packing)
    bit = (x_q >= s) ? +1 : -1  <- compare + select (x_q register-resident)
    acc[j] += bit               <- load + add + store

No rand() calls, no binding multiply, and half the generated vectors —
that asymmetry is the whole of Table I.
"""

from __future__ import annotations

from .cost_model import OperationCounts

__all__ = [
    "baseline_pixel_dim_ops",
    "uhd_pixel_dim_ops",
    "baseline_image_ops",
    "uhd_image_ops",
    "BASELINE_CODE_BYTES",
    "UHD_CODE_BYTES",
]

# Static code-size model: routine footprints in bytes of a -O2 ARM build.
# The baseline carries the RNG/normalisation and binding routines that the
# paper reports shaving ~5 KB off the deployed image.
BASELINE_CODE_BYTES = {
    "rng_and_normalize": 3200,
    "position_hv_generation": 2100,
    "level_hv_generation": 2300,
    "bind_bundle_loop": 2600,
    "binarize_comparator": 1500,
    "classify_cosine": 1800,
}
UHD_CODE_BYTES = {
    "sobol_fetch_compare": 2400,
    "bundle_loop": 1900,
    "binarize_masking": 900,
    "classify_cosine": 1800,
    "ust_table_init": 1400,
}


def baseline_pixel_dim_ops() -> OperationCounts:
    """Baseline inner-loop body: one (pixel, dimension) step.

    Two pseudo-random generations (P and L), two threshold compares, one
    binding multiply, one accumulate.
    """
    return OperationCounts(
        rng_calls=2,      # P bit and L bit
        alu=5,            # two compares + select logic + loop increment
        mul=1,            # binding multiply
        loads=3,          # accumulator + table operands
        stores=1,         # accumulator write-back
        branches=1,       # loop
    )


def uhd_pixel_dim_ops() -> OperationCounts:
    """uHD inner-loop body: one (pixel, dimension) step.

    One packed M-bit Sobol load, one compare-select, one accumulate.
    """
    return OperationCounts(
        loads=2,          # packed Sobol word (amortised) + accumulator
        alu=3,            # unpack shift + compare + loop increment
        stores=1,         # accumulator write-back
        branches=1,       # loop
    )


def baseline_image_ops(num_pixels: int, dim: int) -> OperationCounts:
    """Full baseline encode of one image (plus binarization pass)."""
    inner = baseline_pixel_dim_ops().scaled(num_pixels * dim)
    binarize = OperationCounts(loads=1, alu=2, stores=1).scaled(dim)
    return inner + binarize


def uhd_image_ops(num_pixels: int, dim: int) -> OperationCounts:
    """Full uHD encode of one image (plus masking binarization pass)."""
    inner = uhd_pixel_dim_ops().scaled(num_pixels * dim)
    binarize = OperationCounts(loads=1, alu=1, stores=1).scaled(dim)
    return inner + binarize
