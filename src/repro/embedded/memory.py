"""Byte-accurate dynamic-memory model of both encoders (Table I).

Counts the resident data structures of each design during per-image
processing, mirroring the C implementations' allocations:

Baseline — the position and level codebooks dominate.  Under the paper's
dynamic-training target they are materialised as word-addressed arrays
(int32 elements: ARM stores +-1 hypervector elements in words for the
multiply-accumulate loop), plus a floating-point RNG scratch row.

uHD — only the M-bit quantized Sobol codes (two codes packed per byte at
M = 4), the 16-entry UST, and the accumulators.  No position hypervectors
at all (contribution ②).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryFootprint", "baseline_memory", "uhd_memory"]

_INT32 = 4
_INT64 = 8
_DOUBLE = 8
_INT8 = 1


@dataclass(frozen=True)
class MemoryFootprint:
    """Named byte counts; ``total_kb`` mirrors Table I's unit."""

    parts: dict[str, int]

    @property
    def total_bytes(self) -> int:
        return sum(self.parts.values())

    @property
    def total_kb(self) -> float:
        return self.total_bytes / 1024.0


def baseline_memory(num_pixels: int, dim: int, levels: int = 16) -> MemoryFootprint:
    """Resident bytes of the baseline encoder."""
    return MemoryFootprint(
        parts={
            "position_hypervectors": num_pixels * dim * _INT32,
            "level_hypervectors": levels * dim * _INT32,
            "rng_scratch": dim * _DOUBLE,
            "image_accumulator": dim * _INT64,
            "class_accumulators": 10 * dim * _INT64,
        }
    )


def uhd_memory(
    num_pixels: int, dim: int, levels: int = 16, quantization_bits: int = 4
) -> MemoryFootprint:
    """Resident bytes of the uHD encoder."""
    packed_sobol = (num_pixels * dim * quantization_bits + 7) // 8
    return MemoryFootprint(
        parts={
            "quantized_sobol_codes": packed_sobol,
            "unary_stream_table": levels * levels // 8,
            "quantized_image": num_pixels * _INT8,
            "image_accumulator": dim * _INT64,
            "class_accumulators": 10 * dim * _INT64,
        }
    )
