"""Embedded-platform cost models (paper Table I).

* :class:`ArmCoreModel` — ARM1176-class cycle costs.
* :mod:`repro.embedded.profiles` — op-by-op traces of both encoders.
* :mod:`repro.embedded.memory` — resident-byte accounting.
"""

from .cost_model import ArmCoreModel, OperationCounts
from .memory import MemoryFootprint, baseline_memory, uhd_memory
from .profiles import (
    BASELINE_CODE_BYTES,
    UHD_CODE_BYTES,
    baseline_image_ops,
    baseline_pixel_dim_ops,
    uhd_image_ops,
    uhd_pixel_dim_ops,
)

__all__ = [
    "ArmCoreModel",
    "OperationCounts",
    "MemoryFootprint",
    "baseline_memory",
    "uhd_memory",
    "baseline_image_ops",
    "uhd_image_ops",
    "baseline_pixel_dim_ops",
    "uhd_pixel_dim_ops",
    "BASELINE_CODE_BYTES",
    "UHD_CODE_BYTES",
]
