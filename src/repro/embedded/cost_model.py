"""ARM11-class instruction cost model (paper Table I substrate).

The paper runs low-level C implementations of both encoders on an
ARM1176JZF-S (700 MHz, single issue, no hardware integer divide).  We
model runtime as operation counts times per-class cycle costs — the
standard first-order embedded estimate.  The cycle costs are
ARM1176-flavoured calibration constants:

* ``load``/``store``: L1-hit costs.
* ``alu``: single-cycle data-processing ops (ADD/CMP/EOR/shift).
* ``mul``: 32-bit MUL (2 cycles on ARM11).
* ``branch``: folded/predicted average.
* ``rng_call``: one ``rand()``-and-normalize step.  ARM1176 has **no
  integer divide instruction** — libc ``rand()`` plus the modulo/divide
  normalisation compiles to a software division loop, which is why a
  pseudo-random hypervector bit costs two orders of magnitude more than a
  table-compare (the effect Table I measures).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OperationCounts", "ArmCoreModel"]


@dataclass
class OperationCounts:
    """Dynamic operation counts of one routine execution."""

    loads: int = 0
    stores: int = 0
    alu: int = 0
    mul: int = 0
    branches: int = 0
    rng_calls: int = 0

    def __add__(self, other: "OperationCounts") -> "OperationCounts":
        return OperationCounts(
            loads=self.loads + other.loads,
            stores=self.stores + other.stores,
            alu=self.alu + other.alu,
            mul=self.mul + other.mul,
            branches=self.branches + other.branches,
            rng_calls=self.rng_calls + other.rng_calls,
        )

    def scaled(self, factor: int) -> "OperationCounts":
        """The counts of ``factor`` repetitions."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return OperationCounts(
            loads=self.loads * factor,
            stores=self.stores * factor,
            alu=self.alu * factor,
            mul=self.mul * factor,
            branches=self.branches * factor,
            rng_calls=self.rng_calls * factor,
        )

    @property
    def total_ops(self) -> int:
        return (self.loads + self.stores + self.alu + self.mul
                + self.branches + self.rng_calls)


@dataclass(frozen=True)
class ArmCoreModel:
    """Cycle-cost table and clock of the modelled core."""

    clock_hz: float = 700e6
    load_cycles: float = 3.0
    store_cycles: float = 2.0
    alu_cycles: float = 1.0
    mul_cycles: float = 2.0
    branch_cycles: float = 2.0
    rng_call_cycles: float = 220.0
    energy_per_cycle_nj: float = field(default=0.45, repr=False)

    def cycles(self, ops: OperationCounts) -> float:
        """Total cycles of an operation mix."""
        return (
            ops.loads * self.load_cycles
            + ops.stores * self.store_cycles
            + ops.alu * self.alu_cycles
            + ops.mul * self.mul_cycles
            + ops.branches * self.branch_cycles
            + ops.rng_calls * self.rng_call_cycles
        )

    def runtime_seconds(self, ops: OperationCounts) -> float:
        """Wall-clock seconds at the modelled clock."""
        return self.cycles(ops) / self.clock_hz

    def energy_joules(self, ops: OperationCounts) -> float:
        """First-order core energy (cycles x energy-per-cycle)."""
        return self.cycles(ops) * self.energy_per_cycle_nj * 1e-9
