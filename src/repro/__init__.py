"""uHD: Unary Processing for Lightweight and Dynamic Hyperdimensional Computing.

Full reproduction of Aygun, Shoushtari Moghadam & Najafi (DATE 2024).

Quickstart::

    from repro import UHDClassifier, UHDConfig, load_dataset

    data = load_dataset("mnist", n_train=1000, n_test=500).grayscale()
    model = UHDClassifier(data.num_pixels, data.num_classes,
                          UHDConfig(dim=1024))
    model.fit(data.train_images, data.train_labels)
    print(model.score(data.test_images, data.test_labels))

Subpackages: :mod:`repro.core` (the uHD contribution), :mod:`repro.hdc`
(baseline HDC substrate), :mod:`repro.fastpath` (bit-packed backend:
packed hypervectors, LUT encoding, popcount inference — bit-exact with
the reference and selected via ``UHDConfig.backend``), :mod:`repro.unary`
(unary bit-stream computing), :mod:`repro.lds` (low-discrepancy
sequences), :mod:`repro.hardware` (gate-level netlists + 45 nm
energy/area model), :mod:`repro.embedded` (ARM-class cost model for
Table I), :mod:`repro.datasets`, :mod:`repro.eval` (per-table experiment
runners + throughput benchmarks).
"""

from .core import (
    SobolLevelEncoder,
    UHDClassifier,
    UHDConfig,
    UnaryDomainEncoder,
    masking_binarize,
)
from .datasets import ImageDataset, load_dataset
from .fastpath import PackedLevelEncoder
from .hdc import BaselineConfig, BaselineHDC

__version__ = "1.0.0"

__all__ = [
    "UHDClassifier",
    "UHDConfig",
    "SobolLevelEncoder",
    "PackedLevelEncoder",
    "UnaryDomainEncoder",
    "masking_binarize",
    "BaselineHDC",
    "BaselineConfig",
    "ImageDataset",
    "load_dataset",
    "__version__",
]
