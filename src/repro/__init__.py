"""uHD: Unary Processing for Lightweight and Dynamic Hyperdimensional Computing.

Full reproduction of Aygun, Shoushtari Moghadam & Najafi (DATE 2024).

Quickstart::

    from repro import UHDClassifier, UHDConfig, load_dataset

    data = load_dataset("mnist", n_train=1000, n_test=500).grayscale()
    model = UHDClassifier(data.num_pixels, data.num_classes,
                          UHDConfig(dim=1024))
    model.fit(data.train_images, data.train_labels)
    print(model.score(data.test_images, data.test_labels))

Subpackages: :mod:`repro.api` (the stable public surface: Estimator
protocol, named backend registry, versioned model persistence),
:mod:`repro.serve` (multi-process serving: pluggable transports —
in-process, stdlib HTTP, and a framed binary socket fast lane — in
front of a priority-lane scheduler and a warm-started worker pool,
readiness probing — see ``docs/serving.md``),
:mod:`repro.core` (the uHD contribution), :mod:`repro.hdc`
(baseline HDC substrate), :mod:`repro.fastpath` (bit-packed and threaded
backends: packed hypervectors, LUT encoding, popcount inference —
bit-exact with the reference and selected via ``UHDConfig.backend``
through the registry — plus the shared gather-table stores of
:mod:`repro.fastpath.tablestore`), :mod:`repro.unary` (unary bit-stream
computing),
:mod:`repro.lds` (low-discrepancy sequences), :mod:`repro.hardware`
(gate-level netlists + 45 nm energy/area model), :mod:`repro.embedded`
(ARM-class cost model for Table I), :mod:`repro.datasets`,
:mod:`repro.eval` (per-table experiment runners + throughput benchmarks).
"""

from . import api
from .api import (
    Backend,
    Estimator,
    ModelFormatError,
    get_backend,
    list_backends,
    load_model,
    register_backend,
    save_model,
)
from .core import (
    SobolLevelEncoder,
    StreamingUHD,
    UHDClassifier,
    UHDConfig,
    UnaryDomainEncoder,
    masking_binarize,
)
from .datasets import ImageDataset, load_dataset
from .fastpath import PackedLevelEncoder, ThreadedLevelEncoder
from .hdc import BaselineConfig, BaselineHDC, CentroidClassifier

__version__ = "1.7.0"

__all__ = [
    "Backend",
    "BaselineConfig",
    "BaselineHDC",
    "CentroidClassifier",
    "Estimator",
    "ImageDataset",
    "ModelFormatError",
    "PackedLevelEncoder",
    "SobolLevelEncoder",
    "StreamingUHD",
    "ThreadedLevelEncoder",
    "UHDClassifier",
    "UHDConfig",
    "UnaryDomainEncoder",
    "api",
    "get_backend",
    "list_backends",
    "load_dataset",
    "load_model",
    "masking_binarize",
    "register_backend",
    "save_model",
    "__version__",
]
