#!/usr/bin/env python
"""Markdown link checker: every relative link must point at a real file.

Stdlib-only (runs in CI's docs job with no dependencies installed and
in the test suite via ``tests/docs/test_markdown_links.py``).  Checks
``[text](target)`` links in the given markdown files/directories:

* relative targets must exist on disk (resolved against the file's
  directory; ``#anchor`` suffixes are stripped; a bare ``#anchor`` is
  accepted as a same-file reference);
* absolute URLs (``http(s)://``, ``mailto:``) are *not* fetched — CI
  must stay hermetic — but obviously malformed ones (``http:/x``) fail.

Usage::

    python scripts/check_md_links.py README.md ROADMAP.md docs
    python scripts/check_md_links.py            # defaults: repo *.md + docs/

Exits non-zero listing every broken link as ``file:line: target``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: [text](target) — excluding images' leading "!" is unnecessary: image
#: targets must exist just the same
_LINK = re.compile(r"\[[^\]\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_SCHEMES = ("http://", "https://", "mailto:")


def iter_markdown(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def check_file(path: Path) -> list[str]:
    """Broken-link report lines for one markdown file."""
    problems: list[str] = []
    in_code_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_SCHEMES):
                continue
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):
                problems.append(
                    f"{path}:{lineno}: unrecognized URL scheme in {target!r}"
                )
                continue
            if target.startswith("#"):
                continue  # same-file anchor
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(f"{path}:{lineno}: broken link -> {target}")
    return problems


def main(argv: list[str] | None = None) -> int:
    args = (argv if argv is not None else sys.argv[1:]) or None
    if args:
        roots = [Path(arg) for arg in args]
    else:
        repo = Path(__file__).resolve().parents[1]
        roots = sorted(repo.glob("*.md")) + [repo / "docs"]
    missing = [str(root) for root in roots if not root.exists()]
    if missing:
        print(f"no such file or directory: {', '.join(missing)}", file=sys.stderr)
        return 2
    files = iter_markdown(roots)
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(
        f"checked {len(files)} markdown file(s): "
        + (f"{len(problems)} broken link(s)" if problems else "all links OK")
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
