"""Matousek linear matrix scrambling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lds import SobolEngine, matousek_scramble, random_lower_triangular
from repro.lds.discrepancy import is_zero_one_sequence_prefix


class TestRandomLowerTriangular:
    def test_unit_diagonal(self):
        bits = 8
        masks = random_lower_triangular(np.random.default_rng(0), bits)
        for row in range(bits):
            assert (int(masks[row]) >> (bits - 1 - row)) & 1 == 1

    def test_strictly_lower(self):
        bits = 8
        masks = random_lower_triangular(np.random.default_rng(1), bits)
        for row in range(bits):
            # No digit below position `row` may contribute.
            for k in range(row + 1, bits):
                assert (int(masks[row]) >> (bits - 1 - k)) & 1 == 0

    def test_bad_bits(self):
        with pytest.raises(ValueError):
            random_lower_triangular(np.random.default_rng(0), 0)


class TestMatousekScramble:
    @given(seed=st.integers(0, 1000), k=st.integers(3, 8))
    @settings(max_examples=20, deadline=None)
    def test_preserves_zero_one_property(self, seed, k):
        ints = SobolEngine(3, seed=5).integers(1 << k)
        scrambled = matousek_scramble(ints, seed=seed)
        points = scrambled.astype(np.float64) / 2**32
        for dim in range(3):
            assert is_zero_one_sequence_prefix(points[:, dim], k)

    def test_deterministic(self):
        ints = SobolEngine(2, seed=5).integers(64)
        a = matousek_scramble(ints, seed=7)
        b = matousek_scramble(ints, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_output(self):
        ints = SobolEngine(2, seed=5).integers(64)
        a = matousek_scramble(ints, seed=7)
        b = matousek_scramble(ints, seed=8)
        assert not np.array_equal(a, b)

    def test_dimensions_scrambled_independently(self):
        # Same input column in two dimensions must scramble differently.
        column = SobolEngine(1, seed=5).integers(64)
        doubled = np.hstack([column, column])
        scrambled = matousek_scramble(doubled, seed=3)
        assert not np.array_equal(scrambled[:, 0], scrambled[:, 1])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            matousek_scramble(np.zeros(8, dtype=np.uint64), seed=0)

    def test_actually_changes_points(self):
        ints = SobolEngine(2, seed=5).integers(64)
        scrambled = matousek_scramble(ints, seed=11)
        assert not np.array_equal(ints, scrambled)
