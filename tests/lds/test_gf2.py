"""GF(2) polynomial arithmetic and primitive-polynomial enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lds import gf2

# Non-zero polynomials as integers; keep degrees modest for speed.
polys = st.integers(min_value=1, max_value=1 << 12)


class TestDegree:
    def test_zero_polynomial(self):
        assert gf2.degree(0) == -1

    def test_constant_one(self):
        assert gf2.degree(1) == 0

    def test_known_degrees(self):
        assert gf2.degree(0b10) == 1
        assert gf2.degree(0b1011) == 3
        assert gf2.degree(1 << 13) == 13


class TestMul:
    def test_by_zero(self):
        assert gf2.mul(0b1011, 0) == 0

    def test_by_one(self):
        assert gf2.mul(0b1011, 1) == 0b1011

    def test_x_times_x(self):
        assert gf2.mul(0b10, 0b10) == 0b100

    def test_known_product(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2)
        assert gf2.mul(0b11, 0b11) == 0b101

    @given(a=polys, b=polys)
    @settings(max_examples=60)
    def test_degree_additivity(self, a, b):
        assert gf2.degree(gf2.mul(a, b)) == gf2.degree(a) + gf2.degree(b)

    @given(a=polys, b=polys)
    @settings(max_examples=60)
    def test_commutative(self, a, b):
        assert gf2.mul(a, b) == gf2.mul(b, a)


class TestDivMod:
    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf2.divmod_poly(0b101, 0)

    @given(a=polys, b=polys)
    @settings(max_examples=60)
    def test_reconstruction(self, a, b):
        q, r = gf2.divmod_poly(a, b)
        assert gf2.mul(q, b) ^ r == a
        assert gf2.degree(r) < gf2.degree(b)

    def test_exact_division(self):
        product = gf2.mul(0b1011, 0b111)
        q, r = gf2.divmod_poly(product, 0b1011)
        assert (q, r) == (0b111, 0)


class TestGcd:
    def test_coprime(self):
        # x and x + 1 are coprime
        assert gf2.gcd(0b10, 0b11) == 1

    def test_common_factor(self):
        a = gf2.mul(0b1011, 0b11)
        b = gf2.mul(0b1011, 0b111)
        assert gf2.gcd(a, b) == 0b1011

    @given(a=polys, b=polys)
    @settings(max_examples=40)
    def test_gcd_divides_both(self, a, b):
        g = gf2.gcd(a, b)
        assert gf2.mod(a, g) == 0
        assert gf2.mod(b, g) == 0


class TestPowMod:
    def test_identity_exponent(self):
        assert gf2.pow_mod(0b10, 1, 0b1011) == 0b10

    def test_zero_exponent(self):
        assert gf2.pow_mod(0b10, 0, 0b1011) == 1

    def test_fermat_like(self):
        # In GF(8) built from x^3+x+1: x^7 = 1.
        assert gf2.pow_mod(0b10, 7, 0b1011) == 1


class TestPrimeFactors:
    def test_small(self):
        assert gf2.prime_factors(12) == [2, 3]
        assert gf2.prime_factors(1) == []
        assert gf2.prime_factors(8191) == [8191]  # 2^13 - 1 is prime

    def test_mersenne_composite(self):
        assert gf2.prime_factors((1 << 11) - 1) == [23, 89]


class TestIrreducible:
    def test_known_irreducible(self):
        assert gf2.is_irreducible(0b1011)   # x^3 + x + 1
        assert gf2.is_irreducible(0b10011)  # x^4 + x + 1

    def test_known_reducible(self):
        assert not gf2.is_irreducible(0b101)   # (x+1)^2
        assert not gf2.is_irreducible(0b1111)  # (x+1)(x^2+x+1)

    def test_divisible_by_x(self):
        assert not gf2.is_irreducible(0b110)

    @given(a=st.integers(2, 200), b=st.integers(2, 200))
    @settings(max_examples=40)
    def test_products_never_irreducible(self, a, b):
        assert not gf2.is_irreducible(gf2.mul(a, b))


class TestPrimitive:
    def test_degree_one(self):
        assert gf2.is_primitive(0b11)
        assert not gf2.is_primitive(0b10)

    def test_known_primitive(self):
        assert gf2.is_primitive(0b1011)    # x^3 + x + 1
        assert gf2.is_primitive(0b10011)   # x^4 + x + 1

    def test_irreducible_but_not_primitive(self):
        # x^4 + x^3 + x^2 + x + 1 is irreducible but x has order 5 != 15.
        assert gf2.is_irreducible(0b11111)
        assert not gf2.is_primitive(0b11111)

    def test_counts_per_degree(self):
        # phi(2^d - 1) / d for d = 1..8: 1 1 2 2 6 6 18 16
        expected = [1, 1, 2, 2, 6, 6, 18, 16]
        for degree, count in enumerate(expected, start=1):
            assert len(list(gf2.primitive_polynomials(degree))) == count


class TestFirstPrimitivePolynomials:
    def test_prefix(self):
        assert gf2.first_primitive_polynomials(4) == [0b11, 0b111, 0b1011, 0b1101]

    def test_all_distinct_and_primitive(self):
        found = gf2.first_primitive_polynomials(60)
        assert len(set(found)) == 60
        assert all(gf2.is_primitive(p) for p in found)

    def test_ordering_by_degree(self):
        found = gf2.first_primitive_polynomials(30)
        degrees = [gf2.degree(p) for p in found]
        assert degrees == sorted(degrees)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            gf2.first_primitive_polynomials(-1)

    def test_zero_count(self):
        assert gf2.first_primitive_polynomials(0) == []
