"""Quantization of LD scalars and intensities (paper Fig. 3(a))."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lds import bits_for_levels, dequantize, quantize_intensity, quantize_unit


class TestPaperWorkedExample:
    def test_figure_3a_values(self):
        # Fig. 3(a): Sobol scalars and their xi=16 quantized codes.
        scalars = np.array([0.671875, 0.359375, 0.859375, 0.609375,
                            0.109375, 0.984375, 0.484375])
        expected = np.array([10, 5, 13, 9, 2, 15, 7])
        np.testing.assert_array_equal(quantize_unit(scalars, 16), expected)


class TestQuantizeUnit:
    def test_endpoints(self):
        assert quantize_unit(np.array([0.0]), 16)[0] == 0
        assert quantize_unit(np.array([1.0]), 16)[0] == 15

    def test_dtype_small(self):
        assert quantize_unit(np.array([0.5]), 16).dtype == np.uint8

    def test_dtype_large(self):
        assert quantize_unit(np.array([0.5]), 1024).dtype == np.uint16

    @given(levels=st.integers(2, 256))
    @settings(max_examples=40)
    def test_range(self, levels):
        values = np.linspace(0.0, 1.0, 53)
        codes = quantize_unit(values, levels)
        assert codes.min() >= 0
        assert codes.max() <= levels - 1

    @given(levels=st.integers(2, 64))
    @settings(max_examples=30)
    def test_monotonic(self, levels):
        values = np.linspace(0.0, 1.0, 101)
        codes = quantize_unit(values, levels)
        assert (np.diff(codes.astype(int)) >= 0).all()

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            quantize_unit(np.array([1.5]), 16)
        with pytest.raises(ValueError):
            quantize_unit(np.array([-0.1]), 16)

    def test_bad_levels(self):
        with pytest.raises(ValueError):
            quantize_unit(np.array([0.5]), 1)


class TestQuantizeIntensity:
    def test_uint8_full_scale(self):
        codes = quantize_intensity(np.array([0, 255], dtype=np.uint8), 16)
        np.testing.assert_array_equal(codes, [0, 15])

    def test_matches_unit_path(self):
        pixels = np.arange(256, dtype=np.uint8)
        via_int = quantize_intensity(pixels, 16)
        via_unit = quantize_unit(pixels / 255.0, 16)
        np.testing.assert_array_equal(via_int, via_unit)

    def test_float_input_clipped(self):
        codes = quantize_intensity(np.array([-0.5, 0.5, 2.0]), 16)
        np.testing.assert_array_equal(codes, [0, 8, 15])

    def test_preserves_shape(self):
        image = np.zeros((4, 5), dtype=np.uint8)
        assert quantize_intensity(image, 16).shape == (4, 5)


class TestDequantize:
    @given(levels=st.integers(2, 64))
    @settings(max_examples=30)
    def test_round_trip(self, levels):
        codes = np.arange(levels)
        recovered = quantize_unit(dequantize(codes, levels), levels)
        np.testing.assert_array_equal(recovered, codes)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            dequantize(np.array([16]), 16)

    def test_bad_levels(self):
        with pytest.raises(ValueError):
            dequantize(np.array([0]), 1)


class TestBitsForLevels:
    def test_known(self):
        assert bits_for_levels(16) == 4
        assert bits_for_levels(2) == 1
        assert bits_for_levels(17) == 5
        assert bits_for_levels(256) == 8

    def test_bad(self):
        with pytest.raises(ValueError):
            bits_for_levels(1)
