"""Uniformity diagnostics."""

import numpy as np
import pytest

from repro.lds import SobolEngine
from repro.lds.discrepancy import (
    hypervector_orthogonality,
    is_zero_one_sequence_prefix,
    max_pairwise_correlation,
    star_discrepancy_1d,
    stratification_counts,
)


class TestStarDiscrepancy:
    def test_single_point_at_zero(self):
        assert star_discrepancy_1d(np.array([0.0])) == pytest.approx(1.0)

    def test_midpoint(self):
        assert star_discrepancy_1d(np.array([0.5])) == pytest.approx(0.5)

    def test_equispaced_offset_grid_is_optimal(self):
        n = 64
        points = (np.arange(n) + 0.5) / n
        assert star_discrepancy_1d(points) == pytest.approx(0.5 / n)

    def test_sobol_beats_random(self):
        n = 1024
        sobol = SobolEngine(1).random(n)[:, 0]
        random = np.random.default_rng(0).random(n)
        assert star_discrepancy_1d(sobol) < star_discrepancy_1d(random) / 5

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            star_discrepancy_1d(np.array([1.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            star_discrepancy_1d(np.array([]))


class TestStratification:
    def test_sobol_perfect(self):
        points = SobolEngine(1).random(64)[:, 0]
        counts = stratification_counts(points, 6)
        assert (counts == 1).all()

    def test_detects_clumping(self):
        points = np.full(16, 0.3)
        counts = stratification_counts(points, 4)
        assert counts.max() == 16
        assert not is_zero_one_sequence_prefix(points, 4)

    def test_needs_enough_points(self):
        with pytest.raises(ValueError):
            stratification_counts(np.array([0.1]), 3)

    def test_negative_k(self):
        with pytest.raises(ValueError):
            stratification_counts(np.array([0.1]), -1)


class TestPairwiseCorrelation:
    def test_identical_rows(self):
        row = np.random.default_rng(1).random(256)
        matrix = np.vstack([row, row])
        assert max_pairwise_correlation(matrix) == pytest.approx(1.0)

    def test_independent_rows_small(self):
        matrix = np.random.default_rng(2).random((8, 4096))
        assert max_pairwise_correlation(matrix) < 0.1

    def test_sampling_caps_rows(self):
        matrix = np.random.default_rng(3).random((64, 128))
        # Must not raise and must return a bounded value.
        value = max_pairwise_correlation(matrix, sample=8)
        assert 0.0 <= value <= 1.0

    def test_needs_two_rows(self):
        with pytest.raises(ValueError):
            max_pairwise_correlation(np.random.random((1, 8)))


class TestHypervectorOrthogonality:
    def test_orthogonal_pair(self):
        hv = np.array([[1, 1, -1, -1], [1, -1, 1, -1]], dtype=np.int8)
        assert hypervector_orthogonality(hv) == pytest.approx(0.0)

    def test_identical_pair(self):
        hv = np.array([[1, -1, 1, -1]] * 2, dtype=np.int8)
        assert hypervector_orthogonality(hv) == pytest.approx(1.0)

    def test_random_scales_with_dimension(self):
        rng = np.random.default_rng(4)
        small = np.where(rng.random((10, 128)) < 0.5, 1, -1)
        large = np.where(rng.random((10, 8192)) < 0.5, 1, -1)
        assert hypervector_orthogonality(large) < hypervector_orthogonality(small)

    def test_needs_two_rows(self):
        with pytest.raises(ValueError):
            hypervector_orthogonality(np.ones((1, 8)))
