"""Van der Corput / Halton sequences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lds import first_primes, halton_sequences, radical_inverse, van_der_corput


class TestRadicalInverse:
    def test_base2_known(self):
        assert radical_inverse(0, 2) == 0.0
        assert radical_inverse(1, 2) == 0.5
        assert radical_inverse(2, 2) == 0.25
        assert radical_inverse(3, 2) == 0.75
        assert radical_inverse(6, 2) == 0.375

    def test_base3_known(self):
        assert radical_inverse(1, 3) == pytest.approx(1 / 3)
        assert radical_inverse(2, 3) == pytest.approx(2 / 3)
        assert radical_inverse(3, 3) == pytest.approx(1 / 9)

    @given(index=st.integers(0, 10_000), base=st.integers(2, 13))
    @settings(max_examples=60)
    def test_unit_interval(self, index, base):
        assert 0.0 <= radical_inverse(index, base) < 1.0

    def test_bad_base(self):
        with pytest.raises(ValueError):
            radical_inverse(1, 1)

    def test_bad_index(self):
        with pytest.raises(ValueError):
            radical_inverse(-1, 2)


class TestVanDerCorput:
    def test_base2_vectorized_matches_scalar(self):
        points = van_der_corput(64, base=2)
        expected = [radical_inverse(i, 2) for i in range(64)]
        np.testing.assert_allclose(points, expected)

    def test_base3(self):
        points = van_der_corput(10, base=3)
        expected = [radical_inverse(i, 3) for i in range(10)]
        np.testing.assert_allclose(points, expected)

    def test_start_offset(self):
        offset = van_der_corput(8, base=2, start=8)
        full = van_der_corput(16, base=2)
        np.testing.assert_allclose(offset, full[8:])

    def test_stratification(self):
        points = van_der_corput(16, base=2)
        bins = np.floor(points * 16).astype(int)
        assert sorted(bins) == list(range(16))

    def test_negative_length(self):
        with pytest.raises(ValueError):
            van_der_corput(-1)

    def test_empty(self):
        assert van_der_corput(0).size == 0


class TestFirstPrimes:
    def test_known_prefix(self):
        assert first_primes(10) == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_zero(self):
        assert first_primes(0) == []

    def test_negative(self):
        with pytest.raises(ValueError):
            first_primes(-2)


class TestHalton:
    def test_shape(self):
        seqs = halton_sequences(5, 32)
        assert seqs.shape == (5, 32)

    def test_rows_are_prime_base_vdc(self):
        seqs = halton_sequences(3, 16)
        np.testing.assert_allclose(seqs[0], van_der_corput(16, base=2))
        np.testing.assert_allclose(seqs[1], van_der_corput(16, base=3))
        np.testing.assert_allclose(seqs[2], van_der_corput(16, base=5))

    def test_start_burn_in(self):
        seqs = halton_sequences(2, 8, start=4)
        np.testing.assert_allclose(seqs[0], van_der_corput(8, base=2, start=4))

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            halton_sequences(0, 8)

    def test_dtype(self):
        assert halton_sequences(2, 8, dtype=np.float32).dtype == np.float32
