"""Sobol engine: paper-listed sequence, (0,1)-sequence property, API."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lds import SobolEngine, sobol_sequences
from repro.lds.discrepancy import is_zero_one_sequence_prefix


class TestFirstDimension:
    def test_matches_paper_listing(self):
        # Fig. 2 lists dimension 0 as 0, 1/2, 1/4, 3/4, 1/8, 5/8, 3/8, ...
        points = SobolEngine(1).random(8)[:, 0]
        expected = [0.0, 0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875]
        np.testing.assert_allclose(points, expected)

    def test_gray_order_same_point_set(self):
        natural = SobolEngine(2, order="natural").random(16)
        gray = SobolEngine(2, order="gray").random(16)
        for dim in range(2):
            assert set(natural[:, dim]) == set(gray[:, dim])


class TestZeroOneSequenceProperty:
    @given(dim=st.integers(1, 64), k=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_every_dimension_stratifies(self, dim, k):
        engine = SobolEngine(max(dim, 1), seed=99)
        points = engine.random(1 << k)
        assert is_zero_one_sequence_prefix(points[:, dim - 1], k)

    def test_recurrence_init_also_stratifies(self):
        seqs = sobol_sequences(16, 256, seed=5, init="recurrence")
        for row in seqs:
            assert is_zero_one_sequence_prefix(row, 8)

    def test_digital_shift_preserves_stratification(self):
        seqs = sobol_sequences(8, 256, seed=5, digital_shift=True)
        for row in seqs:
            assert is_zero_one_sequence_prefix(row, 8)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SobolEngine(10, seed=3).random(100)
        b = SobolEngine(10, seed=3).random(100)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = SobolEngine(10, seed=3).random(100)
        b = SobolEngine(10, seed=4).random(100)
        assert not np.array_equal(a, b)

    def test_seed_does_not_change_dimension_zero(self):
        a = SobolEngine(4, seed=1).random(64)[:, 0]
        b = SobolEngine(4, seed=2).random(64)[:, 0]
        np.testing.assert_array_equal(a, b)


class TestStatefulApi:
    def test_chunked_equals_bulk(self):
        bulk = SobolEngine(5, seed=7).random(64)
        engine = SobolEngine(5, seed=7)
        chunked = np.vstack([engine.random(16) for _ in range(4)])
        np.testing.assert_array_equal(bulk, chunked)

    def test_fast_forward(self):
        bulk = SobolEngine(3, seed=7).random(64)
        engine = SobolEngine(3, seed=7).fast_forward(32)
        np.testing.assert_array_equal(engine.random(32), bulk[32:])

    def test_reset(self):
        engine = SobolEngine(3, seed=7)
        first = engine.random(16)
        engine.reset()
        np.testing.assert_array_equal(engine.random(16), first)

    def test_index_property(self):
        engine = SobolEngine(2)
        assert engine.index == 0
        engine.random(5)
        assert engine.index == 5

    def test_zero_points(self):
        assert SobolEngine(2).random(0).shape == (0, 2)

    def test_integers_in_range(self):
        values = SobolEngine(4, max_bits=16).integers(256)
        assert values.min() >= 0
        assert values.max() < (1 << 16)


class TestValidation:
    def test_bad_dimension(self):
        with pytest.raises(ValueError, match="dimension"):
            SobolEngine(0)

    def test_bad_max_bits(self):
        with pytest.raises(ValueError, match="max_bits"):
            SobolEngine(1, max_bits=63)

    def test_bad_init(self):
        with pytest.raises(ValueError, match="init"):
            SobolEngine(1, init="tables")

    def test_bad_order(self):
        with pytest.raises(ValueError, match="order"):
            SobolEngine(1, order="shuffled")

    def test_negative_n(self):
        with pytest.raises(ValueError):
            SobolEngine(1).random(-1)

    def test_negative_fast_forward(self):
        with pytest.raises(ValueError):
            SobolEngine(1).fast_forward(-1)


class TestSobolSequences:
    def test_shape_and_dtype(self):
        seqs = sobol_sequences(12, 64, dtype=np.float32)
        assert seqs.shape == (12, 64)
        assert seqs.dtype == np.float32
        assert seqs.flags["C_CONTIGUOUS"]

    def test_rows_are_engine_columns(self):
        seqs = sobol_sequences(6, 32, seed=9)
        engine = SobolEngine(6, seed=9)
        np.testing.assert_array_equal(seqs, engine.random(32).T)

    def test_range(self):
        seqs = sobol_sequences(20, 128)
        assert seqs.min() >= 0.0
        assert seqs.max() < 1.0
