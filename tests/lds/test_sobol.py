"""Sobol engine: paper-listed sequence, (0,1)-sequence property, API."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lds import SobolEngine, sobol_sequences
from repro.lds.discrepancy import is_zero_one_sequence_prefix


class TestFirstDimension:
    def test_matches_paper_listing(self):
        # Fig. 2 lists dimension 0 as 0, 1/2, 1/4, 3/4, 1/8, 5/8, 3/8, ...
        points = SobolEngine(1).random(8)[:, 0]
        expected = [0.0, 0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875]
        np.testing.assert_allclose(points, expected)

    def test_gray_order_same_point_set(self):
        natural = SobolEngine(2, order="natural").random(16)
        gray = SobolEngine(2, order="gray").random(16)
        for dim in range(2):
            assert set(natural[:, dim]) == set(gray[:, dim])


class TestZeroOneSequenceProperty:
    @given(dim=st.integers(1, 64), k=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_every_dimension_stratifies(self, dim, k):
        engine = SobolEngine(max(dim, 1), seed=99)
        points = engine.random(1 << k)
        assert is_zero_one_sequence_prefix(points[:, dim - 1], k)

    def test_recurrence_init_also_stratifies(self):
        seqs = sobol_sequences(16, 256, seed=5, init="recurrence")
        for row in seqs:
            assert is_zero_one_sequence_prefix(row, 8)

    def test_digital_shift_preserves_stratification(self):
        seqs = sobol_sequences(8, 256, seed=5, digital_shift=True)
        for row in seqs:
            assert is_zero_one_sequence_prefix(row, 8)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SobolEngine(10, seed=3).random(100)
        b = SobolEngine(10, seed=3).random(100)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = SobolEngine(10, seed=3).random(100)
        b = SobolEngine(10, seed=4).random(100)
        assert not np.array_equal(a, b)

    def test_seed_does_not_change_dimension_zero(self):
        a = SobolEngine(4, seed=1).random(64)[:, 0]
        b = SobolEngine(4, seed=2).random(64)[:, 0]
        np.testing.assert_array_equal(a, b)


class TestStatefulApi:
    def test_chunked_equals_bulk(self):
        bulk = SobolEngine(5, seed=7).random(64)
        engine = SobolEngine(5, seed=7)
        chunked = np.vstack([engine.random(16) for _ in range(4)])
        np.testing.assert_array_equal(bulk, chunked)

    def test_fast_forward(self):
        bulk = SobolEngine(3, seed=7).random(64)
        engine = SobolEngine(3, seed=7).fast_forward(32)
        np.testing.assert_array_equal(engine.random(32), bulk[32:])

    def test_reset(self):
        engine = SobolEngine(3, seed=7)
        first = engine.random(16)
        engine.reset()
        np.testing.assert_array_equal(engine.random(16), first)

    def test_index_property(self):
        engine = SobolEngine(2)
        assert engine.index == 0
        engine.random(5)
        assert engine.index == 5

    def test_zero_points(self):
        assert SobolEngine(2).random(0).shape == (0, 2)

    def test_integers_in_range(self):
        values = SobolEngine(4, max_bits=16).integers(256)
        assert values.min() >= 0
        assert values.max() < (1 << 16)


class TestValidation:
    def test_bad_dimension(self):
        with pytest.raises(ValueError, match="dimension"):
            SobolEngine(0)

    def test_bad_max_bits(self):
        with pytest.raises(ValueError, match="max_bits"):
            SobolEngine(1, max_bits=63)

    def test_bad_init(self):
        with pytest.raises(ValueError, match="init"):
            SobolEngine(1, init="tables")

    def test_bad_order(self):
        with pytest.raises(ValueError, match="order"):
            SobolEngine(1, order="shuffled")

    def test_negative_n(self):
        with pytest.raises(ValueError):
            SobolEngine(1).random(-1)

    def test_negative_fast_forward(self):
        with pytest.raises(ValueError):
            SobolEngine(1).fast_forward(-1)


class TestSobolSequences:
    def test_shape_and_dtype(self):
        seqs = sobol_sequences(12, 64, dtype=np.float32)
        assert seqs.shape == (12, 64)
        assert seqs.dtype == np.float32
        assert seqs.flags["C_CONTIGUOUS"]

    def test_rows_are_engine_columns(self):
        seqs = sobol_sequences(6, 32, seed=9)
        engine = SobolEngine(6, seed=9)
        np.testing.assert_array_equal(seqs, engine.random(32).T)

    def test_range(self):
        seqs = sobol_sequences(20, 128)
        assert seqs.min() >= 0.0
        assert seqs.max() < 1.0


class TestSequenceMemo:
    """sobol_sequences memoizes generation per (dims, length, seed, shift)."""

    def test_same_key_returns_same_object(self):
        from repro.lds.sobol import clear_sobol_cache

        clear_sobol_cache()
        a = sobol_sequences(8, 32, seed=3)
        b = sobol_sequences(8, 32, seed=3)
        assert a is b

    def test_dtype_variants_share_one_generation(self):
        from repro.lds.sobol import clear_sobol_cache

        clear_sobol_cache()
        master = sobol_sequences(8, 32, seed=3)
        cast = sobol_sequences(8, 32, seed=3, dtype=np.float32)
        assert cast.dtype == np.float32
        np.testing.assert_array_equal(cast, master.astype(np.float32))
        assert sobol_sequences(8, 32, seed=3, dtype=np.float32) is cast

    def test_distinct_keys_distinct_tables(self):
        assert not np.array_equal(
            sobol_sequences(8, 32, seed=3), sobol_sequences(8, 32, seed=4)
        )
        assert not np.array_equal(
            sobol_sequences(8, 32, seed=3),
            sobol_sequences(8, 32, seed=3, digital_shift=True),
        )

    def test_results_are_read_only(self):
        seqs = sobol_sequences(8, 32, seed=3)
        with pytest.raises(ValueError):
            seqs[0, 0] = 0.5

    def test_mutation_error_points_at_copy_kwarg(self):
        seqs = sobol_sequences(8, 32, seed=3)
        with pytest.raises(ValueError, match="copy=True"):
            seqs[0, 0] = 0.5
        # in-place ufuncs hit NumPy's own read-only guard instead
        with pytest.raises(ValueError):
            seqs += 1.0

    def test_copy_returns_private_writable_array(self):
        shared = sobol_sequences(8, 32, seed=3)
        before = shared.copy()
        private = sobol_sequences(8, 32, seed=3, copy=True)
        assert private.flags.writeable
        assert private is not shared
        np.testing.assert_array_equal(private, shared)
        private[0, 0] = 0.123  # must not corrupt the shared table
        np.testing.assert_array_equal(sobol_sequences(8, 32, seed=3), before)

    def test_copy_with_dtype(self):
        private = sobol_sequences(8, 32, seed=3, dtype=np.float32, copy=True)
        assert private.dtype == np.float32
        assert private.flags.writeable
        private *= 2.0  # writable through ufuncs too

    def test_cache_is_bounded(self):
        from repro.lds import sobol as sobol_module

        sobol_module.clear_sobol_cache()
        for seed in range(2 * sobol_module._SEQUENCE_CACHE_MAX):
            sobol_sequences(4, 8, seed=seed)
        assert len(sobol_module._SEQUENCE_CACHE) <= sobol_module._SEQUENCE_CACHE_MAX

    def test_encoders_share_generation(self):
        """Arithmetic + unary encoders for one config generate once."""
        from repro.core import SobolLevelEncoder, UnaryDomainEncoder, UHDConfig
        from repro.lds import sobol as sobol_module

        sobol_module.clear_sobol_cache()
        config = UHDConfig(dim=16, seed=77)
        calls = {"n": 0}
        original = sobol_module.SobolEngine

        class CountingEngine(original):
            def __init__(self, *args, **kwargs):
                calls["n"] += 1
                super().__init__(*args, **kwargs)

        sobol_module.SobolEngine = CountingEngine
        try:
            SobolLevelEncoder(6, config)
            UnaryDomainEncoder(6, config)
        finally:
            sobol_module.SobolEngine = original
        assert calls["n"] == 1
