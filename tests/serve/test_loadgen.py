"""The open-loop load harness: schedules, run table, and a live smoke.

The schedule builder is the heart of open-loop honesty — it must be
deterministic in the seed (same arguments => byte-identical offered
load) and hold the requested rate for every arrival process.  The live
test drives a real server over HTTP exactly like CI's metrics-smoke
job does and asserts the fixed CSV schema with zero failed requests.
"""

from __future__ import annotations

import csv
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
if str(BENCHMARKS_DIR) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS_DIR))

import loadgen  # noqa: E402  (needs the path bootstrap above)

from repro.serve import (  # noqa: E402
    HttpTransport,
    LaneConfig,
    ServeConfig,
    UHDServer,
)


class TestSchedules:
    @pytest.mark.parametrize("process", ["poisson", "uniform", "bursty"])
    def test_deterministic_in_seed(self, process):
        lanes = [("interactive", 4), ("bulk", 1)]
        a = loadgen.build_schedule(process, 50.0, 2.0, lanes, seed=7)
        b = loadgen.build_schedule(process, 50.0, 2.0, lanes, seed=7)
        c = loadgen.build_schedule(process, 50.0, 2.0, lanes, seed=8)
        assert a == b
        assert a != c

    @pytest.mark.parametrize("process", ["poisson", "uniform", "bursty"])
    def test_holds_the_requested_rate(self, process):
        rps, duration = 200.0, 5.0
        schedule = loadgen.build_schedule(
            process, rps, duration, [(None, 1)], seed=3
        )
        assert len(schedule) == pytest.approx(rps * duration, rel=0.15)
        times = [t for t, _ in schedule]
        assert times == sorted(times)
        assert all(0 <= t < duration for t in times)

    def test_lane_mix_respects_weights(self):
        schedule = loadgen.build_schedule(
            "poisson", 500.0, 4.0, [("hot", 3), ("cold", 1)], seed=5
        )
        hot = sum(1 for _, lane in schedule if lane == "hot")
        assert hot / len(schedule) == pytest.approx(0.75, abs=0.08)

    def test_bursty_arrivals_actually_burst(self):
        schedule = loadgen.build_schedule(
            "bursty", 40.0, 2.0, [(None, 1)], seed=1, burst_size=8
        )
        times = [t for t, _ in schedule]
        # arrivals arrive in ties of burst_size at shared epochs
        assert times.count(times[0]) == 8

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="rps"):
            loadgen.build_schedule("poisson", 0.0, 1.0, [(None, 1)], seed=0)
        with pytest.raises(ValueError, match="duration"):
            loadgen.build_schedule("poisson", 1.0, 0.0, [(None, 1)], seed=0)
        with pytest.raises(ValueError, match="process"):
            loadgen.build_schedule("exponential", 1.0, 1.0, [(None, 1)], seed=0)

    def test_ramp_stages_change_rate(self):
        low = loadgen.build_schedule("uniform", 10.0, 2.0, [(None, 1)], seed=0)
        high = loadgen.build_schedule("uniform", 80.0, 2.0, [(None, 1)], seed=0)
        assert len(high) > 4 * len(low)


class TestLaneSpecs:
    def test_empty_spec_is_the_default_lane(self):
        assert loadgen.parse_lanes("") == [(None, 1)]

    def test_named_weights(self):
        assert loadgen.parse_lanes("interactive:4,bulk:1") == [
            ("interactive", 4),
            ("bulk", 1),
        ]

    def test_bare_name_gets_weight_one(self):
        assert loadgen.parse_lanes("bulk") == [("bulk", 1)]

    def test_bad_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            loadgen.parse_lanes("bulk:fast")
        with pytest.raises(ValueError, match="weight"):
            loadgen.parse_lanes("bulk:0")


class TestRunTable:
    def test_csv_schema_is_pinned(self):
        assert loadgen.CSV_COLUMNS == (
            "run", "process", "transport", "lane", "offered_rps",
            "achieved_rps", "duration_s", "requests", "ok", "failed",
            "expired", "failure_rate", "expiry_rate", "p50_ms", "p95_ms",
            "p99_ms", "mean_ms", "cpu_pct", "rss_mb", "joules_per_request",
        )

    def test_stage_rows_aggregate_lanes(self):
        tallies = {
            "interactive": loadgen.LaneTally(ok=3),
            "bulk": loadgen.LaneTally(ok=1, failed=1, expired=1),
        }
        tallies["interactive"].hist.record_many([0.001, 0.002, 0.003])
        tallies["bulk"].hist.record(0.05)
        tallies["bulk"].hist.exclude()
        rows = loadgen.stage_rows(
            "stage0", "poisson", "http", 10.0, 1.0, 1.0, tallies,
            cpu_pct=12.5, rss_mb=64.0, joules_per_request=1e-9,
        )
        assert all(row["transport"] == "http" for row in rows)
        assert [row["lane"] for row in rows] == [
            "bulk", "interactive", loadgen.ALL_LANES,
        ]
        total = rows[-1]
        assert total["requests"] == 6
        assert total["ok"] == 4
        assert total["failed"] == 1
        assert total["expired"] == 1
        assert total["failure_rate"] == pytest.approx(1 / 6)
        assert total["cpu_pct"] == 12.5
        assert rows[0]["cpu_pct"] is None  # whole-stage numbers only on (all)


class TestLiveSmoke:
    def test_smoke_run_against_a_real_server(
        self, model_path, serve_data, tmp_path
    ):
        """End-to-end: loadgen --smoke over HTTP, zero failures, CSV
        schema intact — the same invocation CI's metrics-smoke job runs."""
        config = ServeConfig(
            workers=0,
            lanes=(
                LaneConfig("interactive", max_wait_ms=1.0, weight=4.0),
                LaneConfig("bulk", max_wait_ms=10.0),
            ),
        )
        csv_path = tmp_path / "run_table.csv"
        with UHDServer(model_path, config) as server:
            with HttpTransport(server) as transport:
                rc = loadgen.main([
                    "--url", transport.address,
                    "--smoke",
                    "--rps", "25",
                    "--duration", "1.0",
                    "--lanes", "interactive:4,bulk:1",
                    "--pixels", str(serve_data.num_pixels),
                    "--dim", "256",
                    "--csv", str(csv_path),
                ])
                stats = server.stats()
        assert rc == 0
        with open(csv_path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert rows, "run table is empty"
        assert tuple(rows[0].keys()) == loadgen.CSV_COLUMNS
        all_rows = [r for r in rows if r["lane"] == loadgen.ALL_LANES]
        assert len(all_rows) == 1
        total = all_rows[0]
        assert int(total["failed"]) == 0
        assert int(total["ok"]) >= 1
        assert float(total["p95_ms"]) > 0.0
        assert float(total["joules_per_request"]) > 0.0
        # client- and server-side accounting agree on request count
        assert int(total["ok"]) == stats.requests

    def test_smoke_run_over_the_binary_transport(
        self, model_path, serve_data, tmp_path
    ):
        """Same smoke over the framed socket wire — zero failures, same
        CSV schema, transport column says 'binary'."""
        from repro.serve import SocketTransport

        csv_path = tmp_path / "run_table.csv"
        with UHDServer(model_path, ServeConfig(workers=0)) as server:
            with SocketTransport(server) as transport:
                rc = loadgen.main([
                    "--url", transport.address,  # uhd://host:port
                    "--transport", "binary",
                    "--smoke",
                    "--rps", "25",
                    "--duration", "1.0",
                    "--pixels", str(serve_data.num_pixels),
                    "--dim", "256",
                    "--csv", str(csv_path),
                ])
                stats = server.stats()
        assert rc == 0
        with open(csv_path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert rows, "run table is empty"
        assert tuple(rows[0].keys()) == loadgen.CSV_COLUMNS
        assert all(row["transport"] == "binary" for row in rows)
        total = next(r for r in rows if r["lane"] == loadgen.ALL_LANES)
        assert int(total["failed"]) == 0
        assert int(total["ok"]) >= 1
        assert int(total["ok"]) == stats.requests
        (snap,) = stats.transports
        assert snap.name == "binary"
        assert snap.frames_in == stats.requests

    def test_smoke_fails_loudly_when_requests_fail(self, tmp_path):
        """Against a dead endpoint every request fails -> exit code 1."""
        csv_path = tmp_path / "run_table.csv"
        rc = loadgen.main([
            "--url", "http://127.0.0.1:9",  # discard port: refused
            "--smoke",
            "--process", "uniform",  # guaranteed arrivals in the window
            "--rps", "20",
            "--duration", "0.5",
            "--no-energy",
            "--csv", str(csv_path),
        ])
        assert rc == 1
