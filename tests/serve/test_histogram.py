"""The shared latency histogram: buckets, quantiles, merge, thread safety.

The whole observability story rests on two properties pinned here:
bucket bounds are *fixed and shared* (so merging snapshots is lossless
element-wise addition — the router's cross-generation invariant), and
quantiles are deterministic functions of the counts alone (so client-
and server-side p95s computed from the same buckets agree exactly).
"""

from __future__ import annotations

import threading

import pytest

from repro.serve.histogram import (
    BUCKET_BOUNDS_S,
    BUCKET_MAX_S,
    BUCKET_MIN_S,
    BUCKETS_PER_DECADE,
    HistogramSnapshot,
    LatencyHistogram,
    bucket_index,
)

NUM_BUCKETS = len(BUCKET_BOUNDS_S) + 1  # + overflow


class TestBucketLayout:
    def test_bounds_are_log_spaced_and_cover_the_range(self):
        assert BUCKET_BOUNDS_S[0] == pytest.approx(BUCKET_MIN_S)
        assert BUCKET_BOUNDS_S[-1] == pytest.approx(BUCKET_MAX_S)
        ratio = 10.0 ** (1.0 / BUCKETS_PER_DECADE)
        for lo, hi in zip(BUCKET_BOUNDS_S, BUCKET_BOUNDS_S[1:]):
            assert hi / lo == pytest.approx(ratio, rel=1e-9)

    def test_bounds_strictly_increasing(self):
        assert list(BUCKET_BOUNDS_S) == sorted(set(BUCKET_BOUNDS_S))

    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (0.0, 0),
            (-1.0, 0),  # record() clamps, bucket_index must not blow up
            (BUCKET_MIN_S, 0),
            (BUCKET_MAX_S * 10, NUM_BUCKETS - 1),
            (float("inf"), NUM_BUCKETS - 1),
        ],
    )
    def test_edge_inputs(self, seconds, expected):
        assert bucket_index(seconds) == expected

    def test_every_bound_lands_in_its_own_bucket(self):
        """Upper edges are inclusive: bucket i covers (bounds[i-1], bounds[i]]."""
        for i, bound in enumerate(BUCKET_BOUNDS_S):
            assert bucket_index(bound) == i

    def test_values_just_past_a_bound_land_in_the_next_bucket(self):
        for i, bound in enumerate(BUCKET_BOUNDS_S[:-1]):
            assert bucket_index(bound * 1.000001) == i + 1

    def test_interior_points_respect_the_invariant(self):
        """Dense sweep: bucket_index(s) always satisfies lo < s <= hi."""
        import math

        steps = 2000
        lo_log = math.log10(BUCKET_MIN_S / 3)
        hi_log = math.log10(BUCKET_MAX_S * 3)
        for k in range(steps + 1):
            s = 10.0 ** (lo_log + (hi_log - lo_log) * k / steps)
            index = bucket_index(s)
            if index == NUM_BUCKETS - 1:
                assert s > BUCKET_BOUNDS_S[-1]
                continue
            assert s <= BUCKET_BOUNDS_S[index]
            if index > 0:
                assert s > BUCKET_BOUNDS_S[index - 1]


class TestRecorder:
    def test_record_and_snapshot(self):
        hist = LatencyHistogram()
        hist.record(0.001)
        hist.record(0.002)
        hist.record(0.5)
        snap = hist.snapshot()
        assert snap.count == 3 == len(hist)
        assert snap.sum_s == pytest.approx(0.503)
        assert sum(snap.counts) == 3
        assert len(snap.counts) == NUM_BUCKETS

    def test_record_many_matches_individual_records(self):
        values = [10 ** (-4 + i / 7) for i in range(30)]
        one = LatencyHistogram()
        many = LatencyHistogram()
        for v in values:
            one.record(v)
        many.record_many(values)
        assert one.snapshot() == many.snapshot()

    def test_negative_latency_clamps_to_zero(self):
        hist = LatencyHistogram()
        hist.record(-5.0)
        snap = hist.snapshot()
        assert snap.counts[0] == 1
        assert snap.sum_s == 0.0

    def test_exclude_counts_without_polluting_quantiles(self):
        hist = LatencyHistogram()
        hist.record(0.001)
        hist.exclude(3)
        snap = hist.snapshot()
        assert snap.excluded == 3
        assert snap.count == 1  # excluded requests never enter the buckets
        assert sum(snap.counts) == 1

    def test_concurrent_recording_loses_nothing(self):
        """8 threads x 500 records under contention: exact totals."""
        hist = LatencyHistogram()
        per_thread = 500
        values = [1e-4 * (1 + i % 50) for i in range(per_thread)]

        def pound():
            for v in values:
                hist.record(v)

        threads = [threading.Thread(target=pound) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = hist.snapshot()
        assert snap.count == 8 * per_thread
        assert sum(snap.counts) == 8 * per_thread
        assert snap.sum_s == pytest.approx(8 * sum(values))


class TestSnapshot:
    def test_empty_snapshot(self):
        snap = HistogramSnapshot.empty()
        assert snap.count == 0
        assert snap.quantile(0.5) == 0.0
        assert snap.p50_ms == 0.0
        assert snap.mean_ms == 0.0

    def test_quantile_bounds_the_recorded_value(self):
        """Any quantile of a single-value histogram lies in its bucket."""
        hist = LatencyHistogram()
        hist.record(0.0123)
        snap = hist.snapshot()
        i = bucket_index(0.0123)
        lower = BUCKET_BOUNDS_S[i - 1]
        upper = BUCKET_BOUNDS_S[i]
        for q in (0.0, 0.5, 0.95, 1.0):
            assert lower <= snap.quantile(q) <= upper

    def test_quantiles_are_monotone_in_q(self):
        hist = LatencyHistogram()
        for i in range(100):
            hist.record(1e-4 * (i + 1))
        snap = hist.snapshot()
        qs = [snap.quantile(q / 20) for q in range(21)]
        assert qs == sorted(qs)

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="quantile"):
            HistogramSnapshot.empty().quantile(1.5)

    def test_overflow_quantile_reports_the_last_finite_bound(self):
        hist = LatencyHistogram()
        hist.record(BUCKET_MAX_S * 50)
        assert hist.snapshot().quantile(0.99) == BUCKET_MAX_S

    def test_as_dict_shape(self):
        hist = LatencyHistogram()
        hist.record(0.01)
        hist.exclude()
        payload = hist.snapshot().as_dict()
        assert set(payload) == {
            "count", "excluded", "sum_ms", "mean_ms",
            "p50_ms", "p95_ms", "p99_ms", "le_ms", "counts",
        }
        assert payload["count"] == 1
        assert payload["excluded"] == 1
        assert len(payload["le_ms"]) == len(payload["counts"]) == NUM_BUCKETS
        assert payload["le_ms"][-1] is None  # the +Inf overflow bucket


class TestMerge:
    def test_merge_is_elementwise_addition(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        for i in range(40):
            a.record(1e-3 * (i + 1))
        for i in range(25):
            b.record(5e-2 * (i + 1))
        b.exclude(2)
        sa, sb = a.snapshot(), b.snapshot()
        merged = HistogramSnapshot.merge((sa, sb))
        assert merged.count == sa.count + sb.count
        assert merged.excluded == sa.excluded + sb.excluded
        assert merged.sum_s == pytest.approx(sa.sum_s + sb.sum_s)
        for i in range(NUM_BUCKETS):
            assert merged.counts[i] == sa.counts[i] + sb.counts[i]

    def test_merge_of_nothing_is_empty(self):
        assert HistogramSnapshot.merge(()) == HistogramSnapshot.empty()

    def test_merge_is_associative(self):
        snaps = []
        for k in range(3):
            hist = LatencyHistogram()
            for i in range(10 + k):
                hist.record(1e-4 * (i + 1) * (k + 1))
            snaps.append(hist.snapshot())
        left = HistogramSnapshot.merge(
            (HistogramSnapshot.merge(snaps[:2]), snaps[2])
        )
        right = HistogramSnapshot.merge(
            (snaps[0], HistogramSnapshot.merge(snaps[1:]))
        )
        assert left.counts == right.counts
        assert left.count == right.count
        assert left.sum_s == pytest.approx(right.sum_s)

    def test_merged_quantiles_bracket_the_inputs(self):
        """Merging cannot move a quantile outside the inputs' envelope."""
        fast, slow = LatencyHistogram(), LatencyHistogram()
        for _ in range(100):
            fast.record(1e-3)
            slow.record(1e-1)
        merged = HistogramSnapshot.merge((fast.snapshot(), slow.snapshot()))
        assert fast.snapshot().p50_ms <= merged.p50_ms <= slow.snapshot().p50_ms
        assert merged.p95_ms <= slow.snapshot().p95_ms

    def test_merge_rejects_foreign_bucket_layout(self):
        alien = HistogramSnapshot(counts=(1, 2, 3), count=6, sum_s=1.0)
        with pytest.raises(ValueError, match="bucket"):
            HistogramSnapshot.merge((HistogramSnapshot.empty(), alien))
