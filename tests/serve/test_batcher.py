"""Micro-batcher semantics: coalescing, windows, bounds, close."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.batcher import MicroBatcher


class Item:
    """Minimal Batchable: a row count and an identity."""

    def __init__(self, rows: int, tag: object = None) -> None:
        self.rows = rows
        self.tag = tag


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0, max_wait_s=0.0)
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=1, max_wait_s=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=1, max_wait_s=0.0, queue_depth=0)

    def test_oversized_item_rejected_at_put(self):
        batcher = MicroBatcher(max_batch=4, max_wait_s=0.0)
        with pytest.raises(ValueError, match="split it before"):
            batcher.put(Item(5))


class TestCoalescing:
    def test_empty_flush_on_timeout_returns_empty_list(self):
        batcher = MicroBatcher(max_batch=8, max_wait_s=0.05)
        start = time.monotonic()
        assert batcher.next_batch(poll_s=0.02) == []
        assert time.monotonic() - start < 1.0  # bounded wait, not a hang

    def test_single_item_batch(self):
        batcher = MicroBatcher(max_batch=8, max_wait_s=0.0)
        item = Item(1, tag="only")
        batcher.put(item)
        batch = batcher.next_batch(poll_s=0.1)
        assert [entry.tag for entry in batch] == ["only"]

    def test_queued_items_coalesce_up_to_max_batch(self):
        batcher = MicroBatcher(max_batch=4, max_wait_s=0.0)
        for index in range(6):
            batcher.put(Item(1, tag=index))
        first = batcher.next_batch(poll_s=0.1)
        second = batcher.next_batch(poll_s=0.1)
        assert [i.tag for i in first] == [0, 1, 2, 3]  # FIFO, full batch
        assert [i.tag for i in second] == [4, 5]

    def test_overflow_item_left_for_next_batch(self):
        batcher = MicroBatcher(max_batch=4, max_wait_s=0.0)
        batcher.put(Item(3, tag="a"))
        batcher.put(Item(2, tag="b"))  # 3 + 2 > 4: must not join "a"
        assert [i.tag for i in batcher.next_batch(poll_s=0.1)] == ["a"]
        assert [i.tag for i in batcher.next_batch(poll_s=0.1)] == ["b"]

    def test_wait_window_collects_late_items(self):
        batcher = MicroBatcher(max_batch=4, max_wait_s=0.5)

        def late_put():
            time.sleep(0.05)
            batcher.put(Item(1, tag="late"))

        thread = threading.Thread(target=late_put)
        batcher.put(Item(1, tag="early"))
        thread.start()
        batch = batcher.next_batch(poll_s=0.1)
        thread.join()
        assert [i.tag for i in batch] == ["early", "late"]

    def test_zero_wait_flushes_immediately(self):
        batcher = MicroBatcher(max_batch=64, max_wait_s=0.0)
        batcher.put(Item(1, tag="a"))
        start = time.monotonic()
        batch = batcher.next_batch(poll_s=0.1)
        assert time.monotonic() - start < 0.5
        assert [i.tag for i in batch] == ["a"]


class TestBoundsAndClose:
    def test_put_blocks_when_full_then_times_out(self):
        batcher = MicroBatcher(max_batch=1, max_wait_s=0.0, queue_depth=1)
        batcher.put(Item(1))
        with pytest.raises(TimeoutError):
            batcher.put(Item(1), timeout=0.05)

    def test_put_unblocks_when_batch_drained(self):
        batcher = MicroBatcher(max_batch=1, max_wait_s=0.0, queue_depth=1)
        batcher.put(Item(1, tag="first"))
        unblocked = threading.Event()

        def blocked_put():
            batcher.put(Item(1, tag="second"), timeout=5.0)
            unblocked.set()

        thread = threading.Thread(target=blocked_put)
        thread.start()
        assert batcher.next_batch(poll_s=0.5)[0].tag == "first"
        assert unblocked.wait(5.0)
        thread.join()
        assert batcher.next_batch(poll_s=0.5)[0].tag == "second"

    def test_close_rejects_put_but_drains_queue(self):
        batcher = MicroBatcher(max_batch=8, max_wait_s=0.0)
        batcher.put(Item(1, tag="queued"))
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.put(Item(1))
        assert [i.tag for i in batcher.next_batch(poll_s=0.1)] == ["queued"]
        assert batcher.next_batch(poll_s=0.01) is None  # closed and drained

    def test_close_wakes_blocked_consumer(self):
        batcher = MicroBatcher(max_batch=8, max_wait_s=5.0)
        result = []

        def consume():
            result.append(batcher.next_batch(poll_s=5.0))

        thread = threading.Thread(target=consume)
        thread.start()
        time.sleep(0.05)
        batcher.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert result == [None]
