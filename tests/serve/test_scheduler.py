"""Scheduler policy: lanes, weighted draining, urgency, deadlines, close.

The single-lane FIFO/coalescing/bounds/close semantics are covered by
``tests/serve/test_batcher.py`` running unchanged against the
:class:`MicroBatcher` shim; this file covers everything the lanes add.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.scheduler import LaneConfig, ScheduledBatch, Scheduler


class Item:
    """Minimal Batchable: a row count and an identity."""

    def __init__(self, rows: int, tag: object = None) -> None:
        self.rows = rows
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Item({self.rows}, {self.tag!r})"


def lane(name, max_batch=8, max_wait_ms=0.0, weight=1.0, queue_depth=64):
    return LaneConfig(
        name=name, max_batch=max_batch, max_wait_ms=max_wait_ms,
        weight=weight, queue_depth=queue_depth,
    )


class TestValidation:
    def test_needs_at_least_one_lane(self):
        with pytest.raises(ValueError, match="at least one lane"):
            Scheduler([])

    def test_duplicate_lane_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Scheduler([lane("a"), lane("a")])

    def test_unresolved_lane_rejected(self):
        with pytest.raises(ValueError, match="not fully resolved"):
            Scheduler([LaneConfig(name="a")])  # max_batch et al. still None

    def test_lane_config_validation(self):
        with pytest.raises(ValueError):
            LaneConfig(name="")
        with pytest.raises(ValueError):
            LaneConfig(name="a", max_batch=0)
        with pytest.raises(ValueError):
            LaneConfig(name="a", max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            LaneConfig(name="a", weight=0.0)
        with pytest.raises(ValueError):
            LaneConfig(name="a", queue_depth=0)

    def test_resolved_fills_only_none_fields(self):
        partial = LaneConfig(name="a", max_wait_ms=5.0)
        full = partial.resolved(max_batch=32, max_wait_ms=2.0, queue_depth=9)
        assert full.max_batch == 32
        assert full.max_wait_ms == 5.0  # kept, not overwritten
        assert full.queue_depth == 9

    def test_unknown_lane_on_put(self):
        scheduler = Scheduler([lane("only")])
        with pytest.raises(ValueError, match="unknown lane"):
            scheduler.put(Item(1), lane="nope")

    def test_oversize_checked_against_the_lane_not_the_widest(self):
        scheduler = Scheduler([lane("narrow", max_batch=2), lane("wide", max_batch=64)])
        with pytest.raises(ValueError, match="split it before"):
            scheduler.put(Item(3), lane="narrow")
        scheduler.put(Item(3), lane="wide")  # fine there


class TestLaneRouting:
    def test_default_lane_is_first(self):
        scheduler = Scheduler([lane("a"), lane("b")])
        scheduler.put(Item(1, "x"))  # no lane named
        batch = scheduler.next_batch(poll_s=0.1)
        assert batch.lane == "a"
        assert [i.tag for i in batch] == ["x"]

    def test_batches_never_mix_lanes(self):
        scheduler = Scheduler([lane("a", max_batch=8), lane("b", max_batch=8)])
        scheduler.put(Item(1, "a1"), lane="a")
        scheduler.put(Item(1, "b1"), lane="b")
        scheduler.put(Item(1, "a2"), lane="a")
        first = scheduler.next_batch(poll_s=0.1)
        second = scheduler.next_batch(poll_s=0.1)
        assert {first.lane, second.lane} == {"a", "b"}
        for batch in (first, second):
            want = {"a": ["a1", "a2"], "b": ["b1"]}[batch.lane]
            assert [i.tag for i in batch] == want  # FIFO within the lane

    def test_empty_heartbeat_has_no_lane(self):
        scheduler = Scheduler([lane("a")])
        batch = scheduler.next_batch(poll_s=0.01)
        assert isinstance(batch, ScheduledBatch)
        assert not batch and batch.lane is None and batch.rows == 0

    def test_per_lane_queue_depth_backpressure(self):
        scheduler = Scheduler(
            [lane("tiny", max_batch=1, queue_depth=1), lane("big", queue_depth=64)]
        )
        scheduler.put(Item(1), lane="tiny")
        with pytest.raises(TimeoutError, match="lane 'tiny'"):
            scheduler.put(Item(1), lane="tiny", timeout=0.05)
        scheduler.put(Item(1), lane="big")  # other lanes unaffected


class TestWeightedDraining:
    def test_weights_set_the_drain_ratio(self):
        """Weight 3 vs 1 with both lanes saturated: 3x the batches."""
        scheduler = Scheduler(
            [
                lane("heavy", max_batch=4, max_wait_ms=60_000.0, weight=3.0),
                lane("light", max_batch=4, max_wait_ms=60_000.0, weight=1.0),
            ]
        )
        for index in range(32):
            scheduler.put(Item(1, index), lane="heavy")
            scheduler.put(Item(1, index), lane="light")
        served = {"heavy": 0, "light": 0}
        for _ in range(8):
            batch = scheduler.next_batch(poll_s=0.1)
            served[batch.lane] += batch.rows
        assert served["heavy"] == 24
        assert served["light"] == 8

    def test_idle_lane_banks_no_credit(self):
        """A lane idle for many rounds must not monopolize once it wakes."""
        scheduler = Scheduler(
            [
                lane("busy", max_batch=4, max_wait_ms=60_000.0, weight=1.0),
                lane("idle", max_batch=4, max_wait_ms=60_000.0, weight=1.0),
            ]
        )
        for index in range(40):
            scheduler.put(Item(1, index), lane="busy")
        for _ in range(5):  # busy drains alone; its vtime advances
            assert scheduler.next_batch(poll_s=0.1).lane == "busy"
        for index in range(20):
            scheduler.put(Item(1, index), lane="idle")
        # equal weights from here on: strict alternation, not an idle binge
        lanes = [scheduler.next_batch(poll_s=0.1).lane for _ in range(4)]
        assert lanes.count("idle") == 2 and lanes.count("busy") == 2


class TestUrgencyAntiStarvation:
    def test_bulk_flood_cannot_stall_interactive_beyond_its_window(self):
        """The headline bound: interactive waits ~its own max_wait_ms even
        while a huge-weight bulk lane holds a deep backlog."""
        scheduler = Scheduler(
            [
                lane("bulk", max_batch=4, max_wait_ms=200.0, weight=1000.0),
                lane("interactive", max_batch=4, max_wait_ms=10.0, weight=1.0),
            ]
        )
        for index in range(60):  # < queue_depth: the flood fits, put never blocks
            scheduler.put(Item(1, index), lane="bulk")
        scheduler.put(Item(1, "urgent"), lane="interactive")
        start = time.monotonic()
        while True:
            batch = scheduler.next_batch(poll_s=0.1)
            if batch.lane == "interactive":
                break
            assert time.monotonic() - start < 2.0, "interactive lane starved"
        elapsed = time.monotonic() - start
        # bound: its own 10ms window plus scheduling noise — nowhere near
        # the bulk lane's 200ms window (CI boxes get generous slack)
        assert elapsed < 0.15
        assert [i.tag for i in batch] == ["urgent"]

    def test_forming_batch_window_cut_short_by_urgent_peer(self):
        """A bulk batch holding its 500ms window open must flush as soon
        as an interactive item exceeds interactive's own 20ms window."""
        scheduler = Scheduler(
            [
                lane("bulk", max_batch=64, max_wait_ms=500.0),
                lane("interactive", max_batch=4, max_wait_ms=20.0),
            ]
        )
        scheduler.put(Item(1, "b"), lane="bulk")

        def late_interactive():
            time.sleep(0.05)
            scheduler.put(Item(1, "i"), lane="interactive")

        thread = threading.Thread(target=late_interactive)
        thread.start()
        start = time.monotonic()
        first = scheduler.next_batch(poll_s=0.1)  # starts forming bulk
        elapsed = time.monotonic() - start
        thread.join()
        assert first.lane == "bulk" and [i.tag for i in first] == ["b"]
        assert elapsed < 0.4, "bulk window was not cut short"
        second = scheduler.next_batch(poll_s=0.1)
        assert second.lane == "interactive"


class TestDeadlines:
    def test_expired_mid_queue_is_failed_not_served(self):
        """An item whose deadline passes while a wide head blocks it must
        be expired out of the middle of the lane."""
        expired: list[tuple[Item, str]] = []
        scheduler = Scheduler(
            [lane("a", max_batch=4, max_wait_ms=0.0)],
            on_expired=lambda item, name: expired.append((item, name)),
        )
        scheduler.put(Item(3, "head"))
        scheduler.put(
            Item(2, "doomed"), deadline=time.monotonic() + 0.02
        )  # 3+2 > 4: cannot join head's batch
        time.sleep(0.05)
        batch = scheduler.next_batch(poll_s=0.1)
        assert [i.tag for i in batch] == ["head"]
        assert [(i.tag, name) for i, name in expired] == [("doomed", "a")]
        heartbeat = scheduler.next_batch(poll_s=0.01)
        assert not heartbeat  # doomed was never served
        stats = {s.name: s for s in scheduler.stats()}
        assert stats["a"].expired == 1
        assert stats["a"].served == 1

    def test_already_expired_deadline_never_serves(self):
        expired = []
        scheduler = Scheduler(
            [lane("a")], on_expired=lambda item, name: expired.append(item.tag)
        )
        scheduler.put(Item(1, "late"), deadline=time.monotonic() - 1.0)
        assert not scheduler.next_batch(poll_s=0.05)
        assert expired == ["late"]

    def test_future_deadline_serves_normally(self):
        expired = []
        scheduler = Scheduler(
            [lane("a")], on_expired=lambda item, name: expired.append(item.tag)
        )
        scheduler.put(Item(1, "fine"), deadline=time.monotonic() + 30.0)
        batch = scheduler.next_batch(poll_s=0.1)
        assert [i.tag for i in batch] == ["fine"]
        assert expired == []

    def test_waiting_consumer_wakes_for_an_expiry(self):
        """next_batch blocked on an empty poll window must still fire the
        expiry of an item whose deadline passes mid-wait."""
        expired = []
        scheduler = Scheduler(
            [lane("a", max_wait_ms=0.0)],
            on_expired=lambda item, name: expired.append(item.tag),
        )
        scheduler.put(Item(1, "fleeting"), deadline=time.monotonic() + 0.05)
        start = time.monotonic()
        batch = scheduler.next_batch(poll_s=0.02)  # served: still fresh
        assert [i.tag for i in batch] == ["fleeting"]
        scheduler.put(Item(1, "gone"), deadline=time.monotonic() + 0.03)
        time.sleep(0.05)
        assert not scheduler.next_batch(poll_s=0.02)
        assert expired == ["gone"]
        assert time.monotonic() - start < 2.0


class TestOversizeSplitAcrossLanes:
    def test_each_lane_splits_to_its_own_max_batch(self):
        """The server-facing contract: parts are sized per lane, so an
        identical request splits differently on different lanes."""
        scheduler = Scheduler(
            [lane("small", max_batch=2), lane("large", max_batch=8)]
        )
        # simulate UHDServer.submit's split: chunk to the lane's bound
        for name, total in (("small", 5), ("large", 5)):
            bound = scheduler.lane_config(name).max_batch
            for offset in range(0, total, bound):
                scheduler.put(
                    Item(min(bound, total - offset), f"{name}{offset}"),
                    lane=name,
                )
        small_batches = []
        large_batches = []
        for _ in range(4):
            batch = scheduler.next_batch(poll_s=0.1)
            if not batch:
                break
            (small_batches if batch.lane == "small" else large_batches).append(
                batch.rows
            )
        assert small_batches == [2, 2, 1]  # 5 rows through a 2-row lane
        assert large_batches == [5]  # one batch through the 8-row lane


class TestCloseAndStats:
    def test_close_drains_every_lane_then_returns_none(self):
        scheduler = Scheduler([lane("a"), lane("b")])
        scheduler.put(Item(1, "a1"), lane="a")
        scheduler.put(Item(1, "b1"), lane="b")
        scheduler.close()
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.put(Item(1), lane="a")
        drained = {scheduler.next_batch(poll_s=0.1).lane,
                   scheduler.next_batch(poll_s=0.1).lane}
        assert drained == {"a", "b"}
        assert scheduler.next_batch(poll_s=0.01) is None

    def test_stats_track_depth_and_served(self):
        scheduler = Scheduler([lane("a", max_batch=4), lane("b")])
        for index in range(6):
            scheduler.put(Item(1, index), lane="a")
        stats = {s.name: s for s in scheduler.stats()}
        assert stats["a"].depth == 6 and stats["a"].queued_rows == 6
        assert stats["a"].submitted == 6 and stats["a"].served == 0
        assert stats["b"].depth == 0
        scheduler.next_batch(poll_s=0.1)
        stats = {s.name: s for s in scheduler.stats()}
        assert stats["a"].depth == 2
        assert stats["a"].served == 4 and stats["a"].served_rows == 4
        assert stats["a"].batches == 1

    def test_len_sums_all_lanes(self):
        scheduler = Scheduler([lane("a"), lane("b")])
        scheduler.put(Item(1), lane="a")
        scheduler.put(Item(1), lane="b")
        assert len(scheduler) == 2


class TestMicroBatcherShim:
    """The compatibility shim really is a single-lane scheduler."""

    def test_shim_is_backed_by_one_default_lane(self):
        from repro.serve.batcher import MicroBatcher

        batcher = MicroBatcher(max_batch=4, max_wait_s=0.1, queue_depth=7)
        assert batcher._scheduler.lane_names == ("default",)
        config = batcher._scheduler.lane_config()
        assert config.max_batch == 4
        assert config.max_wait_ms == pytest.approx(100.0)
        assert config.queue_depth == 7

    def test_shim_attributes_preserved(self):
        from repro.serve.batcher import MicroBatcher

        batcher = MicroBatcher(max_batch=4, max_wait_s=0.5)
        assert batcher.max_batch == 4
        assert batcher.max_wait_s == 0.5
        assert batcher.queue_depth == 256
        assert not batcher.closed
        batcher.close()
        assert batcher.closed
