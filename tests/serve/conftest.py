"""Shared fixtures for the serving tests: one tiny trained model on disk."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import UHDConfig
from repro.core.model import UHDClassifier
from repro.datasets import synthetic_mnist


@pytest.fixture(scope="session")
def serve_data():
    """Small deterministic dataset the served model was trained on."""
    return synthetic_mnist(n_train=200, n_test=64, seed=11)


@pytest.fixture(scope="session")
def served_model(serve_data):
    """A small fitted UHDClassifier (packed backend, binarized inference)."""
    model = UHDClassifier(
        serve_data.num_pixels,
        serve_data.num_classes,
        UHDConfig(dim=256, backend="packed", binarize=True),
    )
    model.fit(serve_data.train_images, serve_data.train_labels)
    return model


@pytest.fixture(scope="session")
def model_path(served_model, tmp_path_factory):
    """The fitted model persisted once for every serving test to warm-load."""
    path = tmp_path_factory.mktemp("serve") / "model.npz"
    served_model.save(path)
    return str(path)


@pytest.fixture(scope="session")
def direct_labels(served_model, serve_data) -> np.ndarray:
    """Ground truth every served prediction must equal bit-for-bit."""
    return served_model.predict(serve_data.test_images)
