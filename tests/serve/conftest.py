"""Shared fixtures for the serving tests: one tiny trained model on disk.

Setting ``REPRO_FORCE_SPAWN=1`` (the CI serve-smoke spawn leg) forces
the ``spawn`` start method globally: ``multiprocessing``'s default
context is switched, every ``start_method="auto"`` server resolves to
spawn, and the :func:`start_method` parametrization drops fork — so the
whole suite exercises the exact path macOS/Windows users get.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.core.config import UHDConfig
from repro.core.model import UHDClassifier
from repro.datasets import load_dataset, synthetic_mnist

FORCED_SPAWN = bool(os.environ.get("REPRO_FORCE_SPAWN"))

if FORCED_SPAWN:
    multiprocessing.set_start_method("spawn", force=True)


@pytest.fixture(scope="session", autouse=True)
def _forced_spawn_context():
    """Route every UHDServer start method through spawn when forced."""
    if not FORCED_SPAWN:
        yield
        return
    from repro.serve import server as server_module

    original = server_module._resolve_start_method
    server_module._resolve_start_method = lambda method: "spawn"
    yield
    server_module._resolve_start_method = original


def _start_methods() -> list[str]:
    """The start methods this host offers, fork first (fast) when present."""
    if FORCED_SPAWN:
        return ["spawn"]
    available = multiprocessing.get_all_start_methods()
    return [m for m in ("fork", "spawn") if m in available]


@pytest.fixture(params=_start_methods())
def start_method(request) -> str:
    """Parametrizes worker-pool tests over every available start method.

    ``fork`` exercises copy-on-write table sharing; ``spawn`` exercises
    the cold-child path (and, with a non-heap table store, the
    attach-instead-of-rebuild warm start) — the macOS/Windows default
    the serving layer must stay correct under.
    """
    return request.param


@pytest.fixture(scope="session")
def serve_data():
    """Small deterministic dataset the served model was trained on."""
    return synthetic_mnist(n_train=200, n_test=64, seed=11)


@pytest.fixture(scope="session")
def served_model(serve_data):
    """A small fitted UHDClassifier (packed backend, binarized inference)."""
    model = UHDClassifier(
        serve_data.num_pixels,
        serve_data.num_classes,
        UHDConfig(dim=256, backend="packed", binarize=True),
    )
    model.fit(serve_data.train_images, serve_data.train_labels)
    return model


@pytest.fixture(scope="session")
def model_path(served_model, tmp_path_factory):
    """The fitted model persisted once for every serving test to warm-load."""
    path = tmp_path_factory.mktemp("serve") / "model.npz"
    served_model.save(path)
    return str(path)


@pytest.fixture(scope="session")
def direct_labels(served_model, serve_data) -> np.ndarray:
    """Ground truth every served prediction must equal bit-for-bit."""
    return served_model.predict(serve_data.test_images)


#: the registry datasets the router model zoo spans (contract 5 extended:
#: one harness, many datasets — routing never changes labels for any)
ZOO_DATASETS = ("mnist", "fashion")


@pytest.fixture(scope="session")
def zoo_data():
    """Two small registry datasets for the multi-model router tests."""
    return {
        name: load_dataset(name, n_train=150, n_test=40, seed=13 + i).grayscale()
        for i, name in enumerate(ZOO_DATASETS)
    }


@pytest.fixture(scope="session")
def zoo_model_paths(zoo_data, tmp_path_factory):
    """Tiny fitted models for each zoo dataset, persisted once per session."""
    root = tmp_path_factory.mktemp("zoo")
    paths = {}
    for name, data in zoo_data.items():
        model = UHDClassifier(
            data.num_pixels,
            data.num_classes,
            UHDConfig(dim=256, backend="packed", binarize=True),
        )
        model.fit(data.train_images, data.train_labels)
        path = root / f"{name}.npz"
        model.save(path)
        paths[name] = str(path)
    return paths


@pytest.fixture(scope="session")
def zoo_direct_labels(zoo_data, zoo_model_paths) -> dict[str, np.ndarray]:
    """Per-model ground truth every routed prediction must match bit-for-bit."""
    from repro.api import load_model

    return {
        name: load_model(zoo_model_paths[name]).predict(zoo_data[name].test_images)
        for name in zoo_data
    }
