"""Router layer: model zoo dispatch, rolling hot reload, fleet health.

Contract 5 extended to the fleet: the router only *routes* — for every
model in the zoo, over every transport, across replica failover and
generation swaps, labels stay bit-exact with ``load_model(path).predict``
on that model's file.  Rolling reload must complete under sustained
traffic with zero failed or dropped requests, and a deployment mid-swap
(or down a replica) must report healthy while at/above ``min_ready``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import load_model
from repro.serve import (
    DeploymentSpec,
    HttpTransport,
    Router,
    ServeConfig,
    ServeError,
)


def _post_json(address: str, path: str, payload: dict, timeout: float = 30.0) -> dict:
    request = urllib.request.Request(
        address + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


def _get_json(address: str, path: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(address + path, timeout=timeout) as response:
        return json.load(response)


def _zoo_specs(zoo_model_paths, replicas=2, min_ready=1, **serve_kwargs):
    config = ServeConfig(workers=0, **serve_kwargs)
    return {
        name: DeploymentSpec(
            path, replicas=replicas, min_ready=min_ready, serve=config
        )
        for name, path in zoo_model_paths.items()
    }


@pytest.fixture
def zoo_router(zoo_model_paths):
    """A two-model, two-replica router on the in-process fallback."""
    with Router(_zoo_specs(zoo_model_paths)) as router:
        yield router


class TestSpecValidation:
    def test_replicas_floor(self):
        with pytest.raises(ValueError, match="replicas"):
            DeploymentSpec("m.npz", replicas=0)

    def test_min_ready_bounds(self):
        with pytest.raises(ValueError, match="min_ready"):
            DeploymentSpec("m.npz", replicas=2, min_ready=3)
        with pytest.raises(ValueError, match="min_ready"):
            DeploymentSpec("m.npz", replicas=2, min_ready=0)

    def test_model_ids_are_url_segments(self):
        with pytest.raises(ValueError, match="slash-free"):
            Router({"a/b": "m.npz"})
        with pytest.raises(ValueError, match="slash-free"):
            Router({"": "m.npz"})

    def test_empty_router_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Router({})


class TestDispatch:
    def test_zoo_bit_exact_per_model(self, zoo_router, zoo_data, zoo_direct_labels):
        for name, data in zoo_data.items():
            labels = zoo_router.predict(name, data.test_images, timeout=30.0)
            assert np.array_equal(labels, zoo_direct_labels[name]), name

    def test_unknown_model_lists_known_ids(self, zoo_router, zoo_data):
        with pytest.raises(ValueError, match="fashion.*mnist|mnist.*fashion"):
            zoo_router.predict("nope", next(iter(zoo_data.values())).test_images)

    def test_least_loaded_picks_idle_replica(self, zoo_router, zoo_data):
        name = next(iter(zoo_data))
        deployment = zoo_router.deployment(name)
        first = deployment._acquire()
        second = deployment._acquire()
        # with slot 0 holding one in-flight request, dispatch must prefer
        # the idle sibling; ties break deterministically on slot order
        assert first.slot == 0
        assert second.slot == 1
        deployment._release(second)
        deployment._release(first)

    def test_requests_aggregate_across_replicas(self, zoo_router, zoo_data):
        name, data = next(iter(zoo_data.items()))
        for _ in range(6):
            zoo_router.predict(name, data.test_images[:4], timeout=30.0)
        stats = zoo_router.deployment(name).stats()
        assert stats["requests"] == 6
        assert stats["images"] == 24

    def test_failover_marks_dead_replica_and_serves(self, zoo_router, zoo_data):
        name, data = next(iter(zoo_data.items()))
        deployment = zoo_router.deployment(name)
        victim = deployment._replicas[0]
        victim.server.close(0.0)  # simulate a died-in-place server
        labels = zoo_router.predict(name, data.test_images[:4], timeout=30.0)
        assert labels.shape == (4,)
        health = deployment.healthz()
        assert health["failed"] == 1 and health["ok"]

    def test_submit_handle_reports_model_and_replica(self, zoo_router, zoo_data):
        name, data = next(iter(zoo_data.items()))
        handle = zoo_router.submit(name, data.test_images[:3], timeout=30.0)
        assert handle.model_id == name
        assert handle.rows == 3
        assert name in handle.replica_name
        handle.result(30.0)


class TestHealthz:
    def test_healthy_at_target(self, zoo_router):
        health = zoo_router.healthz()
        assert health["ok"] and health["status"] == "ok"
        assert not health["degraded"]
        assert health["ready_replicas"] == 2 * len(zoo_router.deployments)

    def test_degraded_below_target_above_min(self, zoo_router, zoo_data):
        name = next(iter(zoo_data))
        deployment = zoo_router.deployment(name)
        deployment._mark_failed(deployment._replicas[0])
        dep_health = deployment.healthz()
        assert dep_health["ok"], "min_ready satisfied -> still healthy"
        assert dep_health["degraded"] and dep_health["status"] == "degraded"
        router_health = zoo_router.healthz()
        assert router_health["ok"] and router_health["status"] == "degraded"

    def test_unavailable_below_min_ready(self, zoo_router, zoo_data):
        name = next(iter(zoo_data))
        deployment = zoo_router.deployment(name)
        for replica in list(deployment._replicas):
            deployment._mark_failed(replica)
        dep_health = deployment.healthz()
        assert not dep_health["ok"]
        assert dep_health["status"] == "unavailable"
        assert not zoo_router.healthz()["ok"]
        with pytest.raises(ServeError, match="no ready replicas"):
            deployment.predict(np.zeros((1, deployment.num_pixels or 784)))


class TestReload:
    def test_rolling_reload_same_path_new_generation(
        self, zoo_router, zoo_data, zoo_direct_labels
    ):
        name, data = next(iter(zoo_data.items()))
        before = zoo_router.deployment(name).stats()
        report = zoo_router.reload(name)
        assert report["from_generation"] == 1
        assert report["to_generation"] == 2
        assert report["replaced"] == 2
        labels = zoo_router.predict(name, data.test_images, timeout=30.0)
        assert np.array_equal(labels, zoo_direct_labels[name])
        after = zoo_router.deployment(name).stats()
        assert after["generation"] == 2
        assert after["retired_replicas"] == 2
        # aggregation carries retired generations: totals never reset
        assert after["requests"] >= before["requests"] + 1

    def test_reload_swaps_model_file(self, zoo_router, zoo_data, zoo_direct_labels):
        # both zoo models share the 28x28x10 geometry, so hot-swapping
        # the fashion weights into the mnist deployment is a real
        # new-model-version rollout: labels must track the new file
        ids = list(zoo_data)
        target, donor = ids[0], ids[1]
        donor_path = zoo_router.deployment(donor).model_path
        zoo_router.reload(target, donor_path)
        labels = zoo_router.predict(
            target, zoo_data[donor].test_images, timeout=30.0
        )
        assert np.array_equal(labels, zoo_direct_labels[donor])
        assert zoo_router.deployment(target).model_path == donor_path

    def test_reload_under_sustained_traffic_zero_failures(
        self, zoo_model_paths, zoo_data, zoo_direct_labels
    ):
        """The tentpole invariant: a rolling swap drops nothing, ever."""
        specs = _zoo_specs(zoo_model_paths, replicas=2)
        failures: list[str] = []
        mismatches: list[str] = []
        stop = threading.Event()

        with Router(specs) as router:
            def client(name: str, queries: np.ndarray) -> None:
                while not stop.is_set():
                    try:
                        labels = router.predict(name, queries, timeout=30.0)
                    except Exception as exc:  # noqa: BLE001 - recorded
                        failures.append(f"{name}: {type(exc).__name__}: {exc}")
                        return
                    if not np.array_equal(labels, zoo_direct_labels[name][:8]):
                        mismatches.append(name)
                        return

            threads = [
                threading.Thread(
                    target=client, args=(name, data.test_images[:8])
                )
                for name, data in zoo_data.items()
                for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.1)  # let traffic establish
            reports = [router.reload(name) for name in zoo_data]
            time.sleep(0.1)  # keep serving on the new generation
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)

            assert failures == []
            assert mismatches == []
            for report in reports:
                assert report["to_generation"] == 2
                assert report["replaced"] == 2
            health = router.healthz()
            assert health["ok"] and not health["degraded"]

    def test_reload_missing_file_keeps_old_generation(
        self, zoo_router, zoo_data, zoo_direct_labels
    ):
        name, data = next(iter(zoo_data.items()))
        with pytest.raises(ServeError, match="replica start failed"):
            zoo_router.reload(name, "/nonexistent/model.npz")
        # old generation still serves, still bit-exact
        deployment = zoo_router.deployment(name)
        assert deployment.generation == 1
        health = deployment.healthz()
        assert health["ok"] and health["ready_replicas"] == 2
        labels = zoo_router.predict(name, data.test_images, timeout=30.0)
        assert np.array_equal(labels, zoo_direct_labels[name])


class TestConcurrentClose:
    def test_close_is_bounded_by_max_not_sum(self, zoo_model_paths):
        specs = _zoo_specs(zoo_model_paths, replicas=1)
        router = Router(specs).start()
        delay = 0.4
        for deployment in router.deployments.values():
            for replica in deployment._replicas:
                original = replica.close

                def slow_close(t=None, _orig=original):
                    time.sleep(delay)
                    _orig(t)

                replica.close = slow_close
        t0 = time.monotonic()
        router.close()
        elapsed = time.monotonic() - t0
        assert elapsed >= delay  # every deployment really drained
        # serial would be >= len(specs) * delay; concurrent stays near one
        assert elapsed < delay * len(specs), (
            f"close took {elapsed:.2f}s for {len(specs)} deployments — "
            "drains must run concurrently under a shared deadline"
        )

    def test_close_idempotent_and_blocks_new_traffic(self, zoo_model_paths, zoo_data):
        router = Router(_zoo_specs(zoo_model_paths, replicas=1)).start()
        router.close()
        router.close()  # second close is a no-op, not an error
        name, data = next(iter(zoo_data.items()))
        with pytest.raises(ServeError, match="closed"):
            router.predict(name, data.test_images[:2])


class TestHttpRouting:
    """Satellite: registry datasets -> model zoo over real HTTP."""

    def test_zoo_round_trip_bit_exact_over_http(
        self, start_method, zoo_model_paths, zoo_data, zoo_direct_labels
    ):
        """Worker pools per replica, fork and spawn, per-model bit-exact."""
        config = ServeConfig(
            workers=1, max_batch=32, start_method=start_method
        )
        specs = {
            name: DeploymentSpec(path, replicas=1, serve=config)
            for name, path in zoo_model_paths.items()
        }
        with Router(specs) as router:
            with HttpTransport(router) as transport:
                for name, data in zoo_data.items():
                    reply = _post_json(
                        transport.address,
                        f"/models/{name}/predict",
                        {"images": data.test_images.tolist()},
                    )
                    assert reply["model"] == name
                    assert np.array_equal(
                        np.asarray(reply["labels"]), zoo_direct_labels[name]
                    ), name

    def test_models_listing(self, zoo_router, zoo_model_paths):
        with HttpTransport(zoo_router) as transport:
            listing = _get_json(transport.address, "/models")["models"]
            assert {row["model"] for row in listing} == set(zoo_model_paths)
            for row in listing:
                assert row["generation"] == 1
                assert row["ready"] == row["replicas"] == 2
                assert row["status"] == "ok"

    def test_default_predict_routes_to_first_model(
        self, zoo_router, zoo_data, zoo_direct_labels
    ):
        default = zoo_router.default_model
        with HttpTransport(zoo_router) as transport:
            reply = _post_json(
                transport.address,
                "/predict",
                {"images": zoo_data[default].test_images[:6].tolist()},
            )
            assert reply["model"] == default
            assert np.array_equal(
                np.asarray(reply["labels"]), zoo_direct_labels[default][:6]
            )

    def test_per_model_stats_and_healthz(self, zoo_router, zoo_data):
        name = next(iter(zoo_data))
        zoo_router.predict(name, zoo_data[name].test_images[:4], timeout=30.0)
        with HttpTransport(zoo_router) as transport:
            stats = _get_json(transport.address, f"/models/{name}/stats")
            assert stats["model"] == name
            assert stats["requests"] >= 1
            health = _get_json(transport.address, f"/models/{name}/healthz")
            assert health["ok"] and "degraded" in health

    def test_router_healthz_aggregates(self, zoo_router):
        with HttpTransport(zoo_router) as transport:
            health = _get_json(transport.address, "/healthz")
            assert health["ok"] and health["status"] == "ok"
            assert len(health["models"]) == len(zoo_router.deployments)
            stats = _get_json(transport.address, "/stats")
            assert len(stats["models"]) == len(zoo_router.deployments)

    def test_unknown_model_404(self, zoo_router, zoo_data):
        name = next(iter(zoo_data))
        with HttpTransport(zoo_router) as transport:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post_json(
                    transport.address,
                    "/models/nope/predict",
                    {"images": zoo_data[name].test_images[:2].tolist()},
                )
            assert excinfo.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get_json(transport.address, "/models/nope/stats")
            assert excinfo.value.code == 404

    def test_generation_visible_after_reload_over_http(
        self, zoo_router, zoo_data
    ):
        name = next(iter(zoo_data))
        with HttpTransport(zoo_router) as transport:
            zoo_router.reload(name)
            listing = _get_json(transport.address, "/models")["models"]
            by_id = {row["model"]: row for row in listing}
            assert by_id[name]["generation"] == 2
