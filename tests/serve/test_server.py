"""UHDServer: bit-exactness, splitting/reassembly, coalescing, lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (
    PredictionHandle,
    ServeConfig,
    ServeError,
    UHDServer,
    encoder_cache,
    readiness_probe,
)


class TestServeConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": -1},
            {"max_batch": 0},
            {"max_wait_ms": -0.1},
            {"queue_depth": 0},
            {"restart_limit": -1},
            {"start_method": "threads"},
            {"probe_batch": 0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)

    def test_unknown_backend_fails_at_start(self, model_path):
        server = UHDServer(model_path, ServeConfig(workers=0, backend="nope"))
        with pytest.raises(ValueError, match="unknown backend"):
            server.start()


class TestInProcessFallback:
    def test_bit_exact_with_direct_predict(
        self, model_path, serve_data, direct_labels
    ):
        with UHDServer(model_path, ServeConfig(workers=0, max_batch=16)) as server:
            got = server.predict(serve_data.test_images)
        assert np.array_equal(got, direct_labels)

    def test_single_sample_request(self, model_path, serve_data, direct_labels):
        with UHDServer(model_path, ServeConfig(workers=0)) as server:
            flat = serve_data.test_images[3].reshape(-1)  # (pixels,) vector
            unflat = serve_data.test_images[3]  # (h, w) image
            assert np.array_equal(server.predict(flat), direct_labels[3:4])
            assert np.array_equal(server.predict(unflat), direct_labels[3:4])

    def test_request_larger_than_max_batch_is_chunked(
        self, model_path, serve_data, direct_labels
    ):
        config = ServeConfig(workers=0, max_batch=7)  # 64 test rows -> 10 chunks
        with UHDServer(model_path, config) as server:
            got = server.predict(serve_data.test_images)
            stats = server.stats()
        assert np.array_equal(got, direct_labels)
        assert stats.batches == -(-serve_data.test_images.shape[0] // 7)
        assert stats.max_batch_seen <= 7

    def test_empty_request_returns_empty_labels(self, model_path, serve_data):
        with UHDServer(model_path, ServeConfig(workers=0)) as server:
            got = server.predict(serve_data.test_images[:0])
        assert got.shape == (0,)

    def test_wrong_pixel_count_rejected(self, model_path):
        with UHDServer(model_path, ServeConfig(workers=0)) as server:
            with pytest.raises(ValueError, match="pixels"):
                server.predict(np.zeros((2, 9), dtype=np.uint8))

    def test_nonsquare_batch_totalling_num_pixels_rejected(self, model_path):
        """(2, 392) must error, not be misread as one 784-pixel image."""
        with UHDServer(model_path, ServeConfig(workers=0)) as server:
            with pytest.raises(ValueError, match="pixels"):
                server.predict(np.zeros((2, 392), dtype=np.uint8))

    def test_submit_before_start_and_after_close_raise(self, model_path):
        server = UHDServer(model_path, ServeConfig(workers=0))
        with pytest.raises(ServeError, match="not started"):
            server.predict(np.zeros(4, dtype=np.uint8))
        server.start()
        server.close()
        with pytest.raises(ServeError, match="closed"):
            server.predict(np.zeros(4, dtype=np.uint8))

    def test_front_probe_reported(self, model_path):
        with UHDServer(model_path, ServeConfig(workers=0)) as server:
            assert server.front_probe is not None
            assert server.front_probe.deterministic
            assert server.front_probe.median_s > 0


class TestWorkerPool:
    def test_bit_exact_with_direct_predict(
        self, model_path, serve_data, direct_labels, start_method
    ):
        config = ServeConfig(
            workers=2, max_batch=16, max_wait_ms=1.0, start_method=start_method
        )
        with UHDServer(model_path, config) as server:
            got = server.predict(serve_data.test_images, timeout=30.0)
            stats = server.stats()
        assert np.array_equal(got, direct_labels)
        assert stats.mode == "pool"
        assert len(stats.worker_probe_ms) == 2  # every worker probed ready

    def test_single_sample_round_trips(
        self, model_path, serve_data, direct_labels
    ):
        with UHDServer(model_path, ServeConfig(workers=1)) as server:
            handles = [
                server.submit(serve_data.test_images[i]) for i in range(8)
            ]
            for i, handle in enumerate(handles):
                assert np.array_equal(
                    handle.result(timeout=30.0), direct_labels[i:i + 1]
                )

    def test_oversized_request_split_and_reassembled_in_order(
        self, model_path, serve_data, direct_labels
    ):
        config = ServeConfig(workers=2, max_batch=8)  # 64 rows -> 8 parts
        with UHDServer(model_path, config) as server:
            handle = server.submit(serve_data.test_images)
            assert isinstance(handle, PredictionHandle)
            got = handle.result(timeout=30.0)
        assert np.array_equal(got, direct_labels)

    def test_small_requests_coalesce(self, model_path, serve_data, direct_labels):
        config = ServeConfig(workers=1, max_batch=64, max_wait_ms=50.0)
        with UHDServer(model_path, config) as server:
            handles = [
                server.submit(serve_data.test_images[i]) for i in range(16)
            ]
            for i, handle in enumerate(handles):
                assert np.array_equal(
                    handle.result(timeout=30.0), direct_labels[i:i + 1]
                )
            stats = server.stats()
        assert stats.requests == 16
        # the batcher must have merged most single-image requests
        assert stats.batches < 16
        assert stats.max_batch_seen > 1

    def test_backend_override_is_bit_exact(
        self, model_path, serve_data, direct_labels
    ):
        config = ServeConfig(workers=1, backend="reference")
        with UHDServer(model_path, config) as server:
            got = server.predict(serve_data.test_images, timeout=30.0)
        assert np.array_equal(got, direct_labels)

    def test_close_is_idempotent(self, model_path, serve_data):
        server = UHDServer(model_path, ServeConfig(workers=1)).start()
        server.predict(serve_data.test_images[:4], timeout=30.0)
        server.close()
        server.close()

    def test_graceful_close_drains_submitted_requests(
        self, model_path, serve_data, direct_labels
    ):
        """A request submitted before close() completes within the drain
        window — including one the dispatcher holds mid-flight."""
        config = ServeConfig(workers=1, max_batch=16, max_wait_ms=0.0)
        for _ in range(5):  # repeat to widen the pop-vs-register race window
            server = UHDServer(model_path, config).start()
            handle = server.submit(serve_data.test_images[:8])
            server.close(drain_timeout=10.0)
            assert np.array_equal(handle.result(timeout=5.0), direct_labels[:8])

    def test_close_never_leaves_handles_hanging(self, model_path, serve_data):
        """Requests still queued at close() fail loudly instead of hanging."""
        config = ServeConfig(workers=1, max_batch=1, max_wait_ms=0.0)
        server = UHDServer(model_path, config).start()
        handles = [
            server.submit(serve_data.test_images[i]) for i in range(40)
        ]
        server.close(drain_timeout=0.0)  # give queued requests no grace
        completed = failed = 0
        for handle in handles:
            try:
                handle.result(timeout=5.0)  # TimeoutError here = the bug
                completed += 1
            except ServeError:
                failed += 1
        assert completed + failed == len(handles)


class TestTableStoreServing:
    """The shared gather-table arena: workers attach, never rebuild.

    ``worker_table_builds`` comes from the build-counter hook on
    ``PackedLevelEncoder`` reported through the ready handshake: 0 means
    the worker served its readiness probe (and therefore all traffic)
    on *attached* tables.
    """

    @pytest.mark.parametrize("table_store", ["mmap", "shm"])
    def test_spawn_workers_attach_published_tables(
        self, model_path, serve_data, direct_labels, table_store
    ):
        """The headline property: under spawn, tables are built exactly
        once (by the front-end) and every worker attaches zero-copy."""
        import multiprocessing

        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn not available")  # pragma: no cover
        config = ServeConfig(
            workers=2, max_batch=16, start_method="spawn",
            table_store=table_store,
        )
        with UHDServer(model_path, config) as server:
            got = server.predict(serve_data.test_images, timeout=60.0)
            stats = server.stats()
        assert np.array_equal(got, direct_labels)
        assert stats.worker_table_builds == (0, 0)

    def test_fork_workers_inherit_without_building(
        self, model_path, serve_data, direct_labels
    ):
        import multiprocessing
        import os

        if os.environ.get("REPRO_FORCE_SPAWN") or (
            "fork" not in multiprocessing.get_all_start_methods()
        ):
            pytest.skip("fork not available")  # pragma: no cover
        config = ServeConfig(workers=2, max_batch=16, start_method="fork")
        with UHDServer(model_path, config) as server:
            got = server.predict(serve_data.test_images, timeout=60.0)
            stats = server.stats()
        assert np.array_equal(got, direct_labels)
        # copy-on-write adoption: zero builds inside the workers
        assert stats.worker_table_builds == (0, 0)

    def test_spawn_heap_store_falls_back_to_building(
        self, model_path, serve_data, direct_labels
    ):
        """A heap handle cannot cross a spawn boundary: the worker builds
        its own table (the pre-store behavior) and still serves
        bit-exactly — slower, never wrong."""
        import multiprocessing

        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn not available")  # pragma: no cover
        config = ServeConfig(
            workers=1, max_batch=16, start_method="spawn", table_store="heap"
        )
        with UHDServer(model_path, config) as server:
            got = server.predict(serve_data.test_images, timeout=60.0)
            stats = server.stats()
        assert np.array_equal(got, direct_labels)
        assert stats.worker_table_builds == (1,)

    def test_store_released_on_close(self, model_path, serve_data):
        import os

        config = ServeConfig(workers=1, max_batch=16, table_store="mmap")
        server = UHDServer(model_path, config).start()
        store = server._table_store
        handle = server._table_handle
        assert handle is not None and os.path.exists(handle.ref)
        assert any(
            name == "mmap" for name, _, _ in encoder_cache().stats().published
        )
        server.close()
        assert not os.path.exists(handle.ref)  # table file cleaned up
        assert server._table_store is None and store._paths == []


class TestEncoderCache:
    def test_same_key_shares_one_encoder(self, served_model, serve_data):
        cache = encoder_cache()
        first = cache.get(serve_data.num_pixels, served_model.config)
        second = cache.get(serve_data.num_pixels, served_model.config)
        assert first is second

    def test_front_end_model_uses_shared_encoder(self, model_path, served_model):
        with UHDServer(model_path, ServeConfig(workers=0)) as server:
            shared = encoder_cache().get(
                server.num_pixels, served_model.config
            )
            assert server._model.encoder is shared

    def test_distinct_configs_get_distinct_encoders(self, served_model, serve_data):
        from dataclasses import replace

        cache = encoder_cache()
        base = cache.get(serve_data.num_pixels, served_model.config)
        other = cache.get(
            serve_data.num_pixels, replace(served_model.config, seed=99)
        )
        assert base is not other

    def test_adopt_installs_shared_encoder_and_returns_its_lock(
        self, model_path, served_model, serve_data
    ):
        """Worker bootstrap relies on adopt() for fork-time table sharing."""
        from repro.core.model import UHDClassifier

        cache = encoder_cache()
        loaded = UHDClassifier.load(model_path)
        lock = cache.adopt(loaded)
        assert loaded.encoder is cache.get(serve_data.num_pixels, loaded.config)
        assert lock is cache.lock(serve_data.num_pixels, loaded.config)

    def test_two_servers_same_key_share_one_encoder_lock(self, model_path):
        """Concurrent in-process servers serialize on the *encoder's* lock."""
        first = UHDServer(model_path, ServeConfig(workers=0)).start()
        second = UHDServer(model_path, ServeConfig(workers=0)).start()
        try:
            assert first._model.encoder is second._model.encoder
            assert first._encoder_lock is second._encoder_lock
        finally:
            first.close()
            second.close()


class TestCacheIntrospection:
    """EncoderCache.stats()/clear(): observability and handle release."""

    def _fresh_cache(self, served_model, serve_data):
        from repro.serve import EncoderCache

        cache = EncoderCache()
        cache.warm(serve_data.num_pixels, served_model.config)
        return cache

    def test_stats_reports_entries_and_table_bytes(
        self, served_model, serve_data
    ):
        cache = self._fresh_cache(served_model, serve_data)
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.table_bytes > 0  # warmed: tables are materialized
        assert stats.published == ()

    def test_publish_appears_in_stats_and_clear_releases(
        self, served_model, serve_data
    ):
        import os

        from repro.fastpath.tablestore import MmapStore, attach_handle

        cache = self._fresh_cache(served_model, serve_data)
        store = MmapStore()
        handle = cache.publish(serve_data.num_pixels, served_model.config, store)
        assert handle is not None and os.path.exists(handle.ref)
        stats = cache.stats()
        assert len(stats.published) == 1
        name, kind, nbytes = stats.published[0]
        assert name == "mmap" and kind == "pair" and nbytes > 0
        cache.clear()
        empty = cache.stats()
        assert empty.entries == 0 and empty.published == ()
        # clear() released the publication: the handle no longer resolves
        assert attach_handle(handle) is None
        store.close()

    def test_republish_same_store_reuses_handle(self, served_model, serve_data):
        from repro.fastpath.tablestore import HeapStore

        cache = self._fresh_cache(served_model, serve_data)
        store = HeapStore()
        first = cache.publish(serve_data.num_pixels, served_model.config, store)
        second = cache.publish(serve_data.num_pixels, served_model.config, store)
        assert first is second  # deterministic tables: one publication
        cache.release_store(store)
        assert cache.stats().published == ()

    def test_publish_without_exportable_tables_returns_none(self, serve_data):
        from repro.core.config import UHDConfig
        from repro.fastpath.tablestore import HeapStore
        from repro.serve import EncoderCache

        cache = EncoderCache()
        config = UHDConfig(dim=128, backend="reference")
        cache.get(serve_data.num_pixels, config)
        store = HeapStore()
        assert cache.publish(serve_data.num_pixels, config, store) is None
        store.close()

    def test_adopt_seeds_cache_with_a_warm_encoder(
        self, model_path, serve_data
    ):
        """A model arriving with warm tables (sidecar attach, in-process
        training) becomes the cache entry instead of being discarded."""
        from repro.core.model import UHDClassifier
        from repro.serve import EncoderCache

        loaded = UHDClassifier.load(model_path)
        loaded.encoder.export_tables()  # warm it (builds the table)
        warm_encoder = loaded.encoder
        cache = EncoderCache()
        cache.adopt(loaded)
        assert loaded.encoder is warm_encoder  # kept, not replaced
        assert cache.get(serve_data.num_pixels, loaded.config) is warm_encoder


class TestReadinessProbe:
    def test_probe_reports_latency_and_determinism(self, served_model, serve_data):
        probe = readiness_probe(
            served_model, serve_data.num_pixels, batch=4, repeats=2
        )
        assert probe.deterministic
        assert probe.median_s > 0
        assert probe.images_per_s > 0
        assert probe.batch == 4

    def test_probe_validates_arguments(self, served_model, serve_data):
        with pytest.raises(ValueError):
            readiness_probe(served_model, serve_data.num_pixels, batch=0)
