"""``/metrics``: exposition conformance, HTTP serving, expiry accounting.

The renderer is validated through the strict parser (the same gate CI
runs), over both a single server and a router fleet; the parser itself
is then attacked with malformed documents.  The deadline-expiry tests
pin the accounting contract end to end over HTTP: one 504 == exactly
one lane's ``expired`` increment == exactly one ``latency.excluded``,
and never a histogram observation.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (
    DeploymentSpec,
    HttpTransport,
    LaneConfig,
    Router,
    ServeConfig,
    UHDServer,
    parse_exposition,
    render_metrics,
)

TWO_LANES = (
    LaneConfig("interactive", max_batch=16, max_wait_ms=1.0, weight=4.0),
    LaneConfig("bulk", max_wait_ms=20.0),
)


def _get(address: str, path: str, timeout: float = 30.0):
    with urllib.request.urlopen(address + path, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read()


def _sample(families: dict, family: str, name: str | None = None, **labels):
    """The single sample matching (name, labels), or fail loudly."""
    name = name or family
    matches = [
        value
        for sample_name, sample_labels, value in families[family]["samples"]
        if sample_name == name
        and all(sample_labels.get(k) == v for k, v in labels.items())
    ]
    assert len(matches) == 1, (family, name, labels, matches)
    return matches[0]


class TestRenderSingleServer:
    def test_exposition_parses_and_counts_match_stats(
        self, model_path, serve_data
    ):
        config = ServeConfig(workers=0, lanes=TWO_LANES)
        with UHDServer(model_path, config) as server:
            server.predict(serve_data.test_images[:8], lane="interactive")
            server.predict(serve_data.test_images[:4], lane="bulk")
            text = render_metrics(server)
            stats = server.stats()
        families = parse_exposition(text)  # raises on any violation
        assert _sample(families, "uhd_requests_total") == stats.requests
        assert _sample(families, "uhd_images_total") == stats.images
        assert _sample(families, "uhd_workers") == 0
        for lane in stats.lanes:
            served = _sample(
                families, "uhd_lane_served_total", lane=lane.name
            )
            assert served == lane.served
            count = _sample(
                families,
                "uhd_lane_latency_seconds",
                name="uhd_lane_latency_seconds_count",
                lane=lane.name,
            )
            assert count == lane.latency.count

    def test_families_are_typed_and_helped(self, model_path):
        with UHDServer(model_path, ServeConfig(workers=0)) as server:
            families = parse_exposition(render_metrics(server))
        for family, entry in families.items():
            assert entry["help"], f"{family} has no HELP"
            assert entry["type"] != "untyped", f"{family} has no TYPE"
        assert families["uhd_requests_total"]["type"] == "counter"
        assert families["uhd_workers"]["type"] == "gauge"
        assert families["uhd_lane_latency_seconds"]["type"] == "histogram"

    def test_cache_gauges_present(self, model_path):
        with UHDServer(model_path, ServeConfig(workers=0)) as server:
            families = parse_exposition(render_metrics(server))
        assert _sample(families, "uhd_cache_encoders") >= 1
        assert _sample(families, "uhd_cache_table_bytes") > 0


class TestMetricsOverHttp:
    def test_endpoint_content_type_and_conformance(
        self, model_path, serve_data
    ):
        config = ServeConfig(workers=0, lanes=TWO_LANES)
        with UHDServer(model_path, config) as server:
            with HttpTransport(server) as transport:
                server.predict(serve_data.test_images[:8], lane="interactive")
                status, headers, body = _get(transport.address, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        families = parse_exposition(body.decode("utf-8"))
        assert _sample(families, "uhd_requests_total") == 1
        assert body.endswith(b"\n")

    def test_router_mode_adds_model_labels_and_fleet_gauges(
        self, zoo_model_paths, zoo_data
    ):
        specs = {
            name: DeploymentSpec(
                path, replicas=1, serve=ServeConfig(workers=0)
            )
            for name, path in zoo_model_paths.items()
        }
        with Router(specs) as router:
            first = next(iter(zoo_data))
            images = zoo_data[first].test_images[:4]
            router.predict(first, images)
            with HttpTransport(router) as transport:
                status, _, body = _get(transport.address, "/metrics")
        assert status == 200
        families = parse_exposition(body.decode("utf-8"))
        for name in specs:
            assert _sample(families, "uhd_deployment_generation", model=name) == 1
            assert (
                _sample(families, "uhd_deployment_ready_replicas", model=name)
                == 1
            )
            assert (
                _sample(
                    families, "uhd_deployment_retired_replicas_total", model=name
                )
                == 0
            )
        assert _sample(families, "uhd_requests_total", model=first) == 1
        # per-lane histogram rows carry both model and lane labels
        count = _sample(
            families,
            "uhd_lane_latency_seconds",
            name="uhd_lane_latency_seconds_count",
            model=first,
            lane="default",
        )
        assert count >= 1


class TestParserStrictness:
    def test_sample_before_type_rejected(self):
        with pytest.raises(ValueError, match="before its # TYPE"):
            parse_exposition("uhd_thing_total 3\n")

    def test_duplicate_series_rejected(self):
        text = (
            "# HELP x_total things\n# TYPE x_total counter\n"
            'x_total{a="1"} 1\nx_total{a="1"} 2\n'
        )
        with pytest.raises(ValueError, match="duplicate series"):
            parse_exposition(text)

    def test_histogram_missing_inf_bucket_rejected(self):
        text = (
            "# TYPE h_seconds histogram\n"
            'h_seconds_bucket{le="0.1"} 1\n'
            "h_seconds_sum 0.05\nh_seconds_count 1\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_exposition(text)

    def test_histogram_non_cumulative_rejected(self):
        text = (
            "# TYPE h_seconds histogram\n"
            'h_seconds_bucket{le="0.1"} 5\n'
            'h_seconds_bucket{le="1"} 3\n'
            'h_seconds_bucket{le="+Inf"} 5\n'
            "h_seconds_sum 0.5\nh_seconds_count 5\n"
        )
        with pytest.raises(ValueError, match="cumulative"):
            parse_exposition(text)

    def test_histogram_count_disagreeing_with_inf_rejected(self):
        text = (
            "# TYPE h_seconds histogram\n"
            'h_seconds_bucket{le="+Inf"} 5\n'
            "h_seconds_sum 0.5\nh_seconds_count 4\n"
        )
        with pytest.raises(ValueError, match="disagrees"):
            parse_exposition(text)

    def test_malformed_labels_rejected(self):
        with pytest.raises(ValueError):
            parse_exposition('# TYPE x gauge\nx{a=unquoted} 1\n')
        with pytest.raises(ValueError):
            parse_exposition('# TYPE x gauge\nx{a="open 1\n')

    def test_escaped_label_values_round_trip(self):
        text = '# TYPE x gauge\nx{a="q\\"uote\\\\slash\\nnl"} 1\n'
        families = parse_exposition(text)
        ((_, labels, _),) = families["x"]["samples"]
        assert labels["a"] == 'q"uote\\slash\nnl'

    def test_renderer_escapes_hostile_lane_names(self, model_path):
        hostile = 'la"ne\\x'
        config = ServeConfig(workers=0, lanes=(LaneConfig(hostile),))
        with UHDServer(model_path, config) as server:
            families = parse_exposition(render_metrics(server))
        assert _sample(families, "uhd_lane_queue_depth", lane=hostile) == 0


class TestExpiryAccountingOverHttp:
    def test_504_increments_exactly_one_lane(self, model_path, serve_data):
        """One expired deadline over HTTP: a 504 reply, one ``expired``
        tick on the flooded lane only, mirrored in that lane's
        ``latency.excluded`` — and never a latency observation."""
        config = ServeConfig(
            workers=1,
            max_batch=1,
            max_wait_ms=0.0,
            lanes=(
                LaneConfig("interactive", max_batch=1, max_wait_ms=0.0),
                LaneConfig("bulk", max_batch=1, max_wait_ms=0.0),
            ),
        )
        with UHDServer(model_path, config) as server:
            with HttpTransport(server) as transport:
                flood = [
                    server.submit(serve_data.test_images[i % 8], lane="bulk")
                    for i in range(60)
                ]
                request = urllib.request.Request(
                    transport.address + "/predict?lane=bulk&deadline_ms=1",
                    data=np.ascontiguousarray(
                        serve_data.test_images[:1], dtype=np.uint8
                    ).tobytes(),
                    headers={"Content-Type": "application/octet-stream"},
                )
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(request, timeout=30.0)
                assert excinfo.value.code == 504
                for handle in flood:
                    handle.result(timeout=60.0)
                stats = server.stats()
                status, _, body = _get(transport.address, "/metrics")
        lanes = {lane.name: lane for lane in stats.lanes}
        assert lanes["bulk"].expired == 1
        assert lanes["interactive"].expired == 0
        assert lanes["bulk"].latency.excluded == 1
        assert lanes["interactive"].latency.excluded == 0
        # the expired request never entered the distribution
        assert lanes["bulk"].latency.count == lanes["bulk"].served
        # and /metrics agrees with /stats
        families = parse_exposition(body.decode("utf-8"))
        assert _sample(families, "uhd_lane_expired_total", lane="bulk") == 1
        assert (
            _sample(families, "uhd_lane_expired_total", lane="interactive") == 0
        )
        assert (
            _sample(
                families,
                "uhd_lane_latency_seconds",
                name="uhd_lane_latency_seconds_count",
                lane="bulk",
            )
            == lanes["bulk"].served
        )

    def test_stats_json_carries_the_excluded_count(
        self, model_path, serve_data
    ):
        """The JSON view exposes the same accounting (`/stats` endpoint)."""
        config = ServeConfig(workers=1, max_batch=1, max_wait_ms=0.0)
        with UHDServer(model_path, config) as server:
            flood = [
                server.submit(serve_data.test_images[i % 8]) for i in range(40)
            ]
            doomed = server.submit(serve_data.test_images[0], deadline_ms=1.0)
            with pytest.raises(Exception, match="expired"):
                doomed.result(timeout=30.0)
            for handle in flood:
                handle.result(timeout=60.0)
            payload = server.stats().as_dict()
        (lane,) = payload["lanes"]
        assert lane["expired"] == 1
        assert lane["latency"]["excluded"] == 1
        assert lane["latency"]["count"] == lane["served"]
        assert sum(lane["latency"]["counts"]) == lane["latency"]["count"]
