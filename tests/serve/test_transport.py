"""Transport layer: HTTP bit-exactness, endpoints, lanes/deadlines, errors.

The HTTP transport must be a pure pipe: labels served over the socket
are bit-exact with ``UHDClassifier.predict`` (and therefore with
in-process ``submit``) on every backend and start method — the server
routes, the transport only encodes/decodes.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (
    DeadlineExpiredError,
    HttpTransport,
    InProcessTransport,
    LaneConfig,
    ServeConfig,
    Transport,
    UHDServer,
)


def _post_json(address: str, payload: dict, timeout: float = 30.0) -> dict:
    request = urllib.request.Request(
        address + "/predict",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


def _get_json(address: str, path: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(address + path, timeout=timeout) as response:
        return json.load(response)


@pytest.fixture
def inproc_http(model_path):
    """An HTTP transport over the in-process fallback (fast, no pool)."""
    config = ServeConfig(
        workers=0,
        max_batch=16,
        lanes=(
            LaneConfig("interactive", max_batch=16, max_wait_ms=1.0, weight=4.0),
            LaneConfig("bulk", max_wait_ms=20.0),
        ),
    )
    with UHDServer(model_path, config) as server:
        with HttpTransport(server) as transport:
            yield server, transport


class TestHttpPredict:
    def test_json_round_trip_bit_exact(
        self, inproc_http, serve_data, direct_labels
    ):
        _, transport = inproc_http
        reply = _post_json(
            transport.address, {"images": serve_data.test_images[:8].tolist()}
        )
        assert reply["rows"] == 8
        assert np.array_equal(np.asarray(reply["labels"]), direct_labels[:8])

    def test_raw_bytes_round_trip_bit_exact(
        self, inproc_http, serve_data, direct_labels
    ):
        _, transport = inproc_http
        body = np.ascontiguousarray(
            serve_data.test_images[:5], dtype=np.uint8
        ).tobytes()
        request = urllib.request.Request(
            transport.address + "/predict",
            data=body,
            headers={"Content-Type": "application/octet-stream"},
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            reply = json.load(response)
        assert np.array_equal(np.asarray(reply["labels"]), direct_labels[:5])

    def test_octet_stream_response_bit_exact(
        self, inproc_http, serve_data, direct_labels
    ):
        """``Accept: application/octet-stream`` skips the JSON response
        codec: the body is raw little-endian int64 labels, with the row
        count echoed in ``X-UHD-Rows``."""
        _, transport = inproc_http
        request = urllib.request.Request(
            transport.address + "/predict",
            data=np.ascontiguousarray(
                serve_data.test_images[:6], dtype=np.uint8
            ).tobytes(),
            headers={
                "Content-Type": "application/octet-stream",
                "Accept": "application/octet-stream",
            },
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            assert response.headers["Content-Type"] == (
                "application/octet-stream"
            )
            assert int(response.headers["X-UHD-Rows"]) == 6
            raw = response.read()
        labels = np.frombuffer(raw, dtype="<i8")
        assert np.array_equal(labels, direct_labels[:6])

    def test_lane_selected_via_body_and_query(
        self, inproc_http, serve_data, direct_labels
    ):
        server, transport = inproc_http
        reply = _post_json(
            transport.address,
            {"images": serve_data.test_images[:2].tolist(), "lane": "bulk"},
        )
        assert reply["lane"] == "bulk"
        assert np.array_equal(np.asarray(reply["labels"]), direct_labels[:2])
        body = np.ascontiguousarray(
            serve_data.test_images[:2], dtype=np.uint8
        ).tobytes()
        request = urllib.request.Request(
            transport.address + "/predict?lane=bulk&deadline_ms=60000",
            data=body,
            headers={"Content-Type": "application/octet-stream"},
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            assert json.load(response)["lane"] == "bulk"
        lanes = {s.name: s for s in server.stats().lanes}
        assert lanes["bulk"].served_rows == 4

    def test_unknown_lane_is_400(self, inproc_http, serve_data):
        _, transport = inproc_http
        with pytest.raises(urllib.error.HTTPError) as err:
            _post_json(
                transport.address,
                {"images": serve_data.test_images[:1].tolist(), "lane": "vip"},
            )
        assert err.value.code == 400
        assert "unknown lane" in json.load(err.value)["error"]

    def test_wrong_pixel_count_is_400(self, inproc_http):
        _, transport = inproc_http
        with pytest.raises(urllib.error.HTTPError) as err:
            _post_json(transport.address, {"images": [[1, 2, 3]]})
        assert err.value.code == 400
        assert "pixels" in json.load(err.value)["error"]

    @pytest.mark.parametrize(
        "payload",
        [
            {"images": [[0.5] * 4]},  # non-integer intensities
            {"images": [[300] * 4]},  # out of uint8 range
            {"wrong_key": []},
            {"images": [[1, 2], [3]]},  # ragged
        ],
    )
    def test_malformed_payloads_are_400(self, inproc_http, payload):
        _, transport = inproc_http
        with pytest.raises(urllib.error.HTTPError) as err:
            _post_json(transport.address, payload)
        assert err.value.code == 400

    def test_invalid_json_is_400(self, inproc_http):
        _, transport = inproc_http
        request = urllib.request.Request(
            transport.address + "/predict",
            data=b"this is not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30.0)
        assert err.value.code == 400

    def test_raw_bytes_length_mismatch_is_400(self, inproc_http):
        _, transport = inproc_http
        request = urllib.request.Request(
            transport.address + "/predict",
            data=b"\x00" * 13,  # not a multiple of num_pixels
            headers={"Content-Type": "application/octet-stream"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30.0)
        assert err.value.code == 400

    def test_unknown_path_is_404(self, inproc_http):
        _, transport = inproc_http
        with pytest.raises(urllib.error.HTTPError) as err:
            _get_json(transport.address, "/nope")
        assert err.value.code == 404

    def test_keep_alive_connection_survives_an_error_response(
        self, inproc_http, serve_data, direct_labels
    ):
        """An error reply must not poison a persistent connection: the
        server closes it (Connection: close) instead of leaving unread
        body bytes to be parsed as the next request line."""
        import http.client

        _, transport = inproc_http
        conn = http.client.HTTPConnection("127.0.0.1", transport.port,
                                          timeout=30.0)
        try:
            # malformed deadline in the query string, with an unread body
            conn.request(
                "POST", "/predict?deadline_ms=notanumber",
                body=json.dumps(
                    {"images": serve_data.test_images[:2].tolist()}
                ),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            assert response.headers.get("Connection") == "close"
            response.read()
            # a fresh request (http.client reconnects transparently after
            # a server-side close) must succeed with correct labels
            conn.request(
                "POST", "/predict",
                body=json.dumps(
                    {"images": serve_data.test_images[:2].tolist()}
                ),
                headers={"Content-Type": "application/json"},
            )
            reply = json.loads(conn.getresponse().read())
        finally:
            conn.close()
        assert np.array_equal(np.asarray(reply["labels"]), direct_labels[:2])

    def test_close_waits_for_in_flight_handlers(
        self, model_path, serve_data, direct_labels
    ):
        """transport.close() must join handler threads: a request accepted
        before close gets its answer, not a reset."""
        # a long coalescing window holds the lone request in flight: the
        # dispatcher waits ~300ms for more traffic before dispatching it
        config = ServeConfig(workers=1, max_batch=64, max_wait_ms=300.0)
        with UHDServer(model_path, config) as server:
            transport = HttpTransport(server).start()
            reply: dict = {}

            def slow_post():
                reply.update(
                    _post_json(
                        transport.address,
                        {"images": serve_data.test_images[:1].tolist()},
                        timeout=60.0,
                    )
                )

            thread = threading.Thread(target=slow_post)
            thread.start()
            time.sleep(0.1)  # the request is accepted and mid-window now
            transport.close()  # must block until the handler answered
            assert reply, "close() returned before the in-flight answer"
            thread.join(timeout=30.0)
            assert not thread.is_alive()
        assert np.array_equal(
            np.asarray(reply["labels"]), direct_labels[:1]
        )


class TestHttpObservability:
    def test_healthz_reports_ok_and_probe(self, inproc_http):
        _, transport = inproc_http
        health = _get_json(transport.address, "/healthz")
        assert health["ok"] is True and health["status"] == "ok"
        assert health["mode"] == "inproc"
        assert health["lanes"] == ["interactive", "bulk"]
        assert health["probe"]["deterministic"] is True
        assert health["probe"]["median_ms"] > 0

    def test_stats_exposes_lanes_and_cache(
        self, inproc_http, serve_data
    ):
        _, transport = inproc_http
        _post_json(
            transport.address, {"images": serve_data.test_images[:4].tolist()}
        )
        stats = _get_json(transport.address, "/stats")
        assert stats["requests"] >= 1
        lanes = {lane["name"]: lane for lane in stats["lanes"]}
        assert lanes["interactive"]["served_rows"] >= 4  # default lane
        assert lanes["bulk"]["expired"] == 0
        # the operator's one-stop view: encoder cache surfaces here too
        assert stats["cache"]["entries"] >= 1
        assert stats["cache"]["table_bytes"] > 0

    def test_healthz_unavailable_after_close(self, model_path):
        server = UHDServer(model_path, ServeConfig(workers=0)).start()
        transport = HttpTransport(server).start()
        try:
            server.close()
            with pytest.raises(urllib.error.HTTPError) as err:
                _get_json(transport.address, "/healthz")
            assert err.value.code == 503
        finally:
            transport.close()


class TestHttpPool:
    """The real deployment shape: handler threads feeding the pool."""

    def test_pool_round_trip_bit_exact_under_both_start_methods(
        self, model_path, serve_data, direct_labels, start_method
    ):
        config = ServeConfig(
            workers=2, max_batch=16, max_wait_ms=1.0, start_method=start_method,
            table_store="shm" if start_method == "spawn" else "heap",
        )
        with UHDServer(model_path, config) as server:
            with HttpTransport(server) as transport:
                reply = _post_json(
                    transport.address,
                    {"images": serve_data.test_images.tolist()},
                    timeout=60.0,
                )
                health = _get_json(transport.address, "/healthz")
        assert np.array_equal(np.asarray(reply["labels"]), direct_labels)
        assert health["mode"] == "pool" and health["workers_live"] == 2

    @pytest.mark.parametrize("backend", ["packed", "threaded"])
    def test_backends_bit_exact_over_http(
        self, model_path, serve_data, direct_labels, backend
    ):
        config = ServeConfig(workers=1, backend=backend)
        with UHDServer(model_path, config) as server:
            with HttpTransport(server) as transport:
                reply = _post_json(
                    transport.address,
                    {"images": serve_data.test_images.tolist()},
                    timeout=60.0,
                )
        assert np.array_equal(np.asarray(reply["labels"]), direct_labels)

    def test_concurrent_posts_coalesce_and_stay_bit_exact(
        self, model_path, serve_data, direct_labels
    ):
        """Many handler threads feed the scheduler at once — answers must
        come back bit-exact and matched to their own request."""
        config = ServeConfig(workers=1, max_batch=64, max_wait_ms=20.0)
        with UHDServer(model_path, config) as server:
            with HttpTransport(server) as transport:
                results: dict[int, np.ndarray] = {}
                errors: list[Exception] = []

                def post(index: int) -> None:
                    try:
                        reply = _post_json(
                            transport.address,
                            {"images": serve_data.test_images[index].tolist()},
                            timeout=60.0,
                        )
                        results[index] = np.asarray(reply["labels"])
                    except Exception as exc:  # pragma: no cover - surfaced below
                        errors.append(exc)

                threads = [
                    threading.Thread(target=post, args=(i,)) for i in range(16)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60.0)
                stats = server.stats()
        assert not errors
        for index, labels in results.items():
            assert np.array_equal(labels, direct_labels[index:index + 1])
        assert len(results) == 16
        assert stats.batches < 16  # concurrency actually coalesced


class TestDeadlinesThroughTheServer:
    def test_deadline_expires_behind_a_flood(
        self, model_path, serve_data
    ):
        """A tiny deadline behind a deep single-row queue cannot be met:
        the handle fails with DeadlineExpiredError, never serves late."""
        config = ServeConfig(workers=1, max_batch=1, max_wait_ms=0.0)
        with UHDServer(model_path, config) as server:
            flood = [
                server.submit(serve_data.test_images[i % 8]) for i in range(60)
            ]
            doomed = server.submit(
                serve_data.test_images[0], deadline_ms=1.0
            )
            with pytest.raises(DeadlineExpiredError, match="expired"):
                doomed.result(timeout=30.0)
            for handle in flood:
                handle.result(timeout=60.0)
            stats = server.stats()
        assert stats.expired >= 1
        assert sum(lane.expired for lane in stats.lanes) == stats.expired

    def test_invalid_deadline_rejected(self, model_path, serve_data):
        with UHDServer(model_path, ServeConfig(workers=0)) as server:
            with pytest.raises(ValueError, match="deadline_ms"):
                server.submit(serve_data.test_images[:1], deadline_ms=0.0)


class TestLaneServing:
    def test_unknown_lane_rejected_at_submit(self, model_path, serve_data):
        with UHDServer(model_path, ServeConfig(workers=0)) as server:
            with pytest.raises(ValueError, match="unknown lane"):
                server.submit(serve_data.test_images[:1], lane="vip")

    def test_oversize_request_splits_to_the_lane_bound(
        self, model_path, serve_data, direct_labels
    ):
        """A request routed to a narrow lane splits to *that* lane's
        max_batch, not the server-wide bound."""
        config = ServeConfig(
            workers=1,
            max_batch=64,
            lanes=(
                LaneConfig("wide", max_batch=64),
                LaneConfig("narrow", max_batch=8, max_wait_ms=0.0),
            ),
        )
        with UHDServer(model_path, config) as server:
            got = server.predict(
                serve_data.test_images, lane="narrow", timeout=60.0
            )
            stats = server.stats()
        assert np.array_equal(got, direct_labels)
        lanes = {s.name: s for s in stats.lanes}
        rows = serve_data.test_images.shape[0]
        assert lanes["narrow"].served == -(-rows // 8)  # split into 8-row parts
        assert stats.max_batch_seen <= 8

    def test_lane_stats_surface_in_pool_mode(
        self, model_path, serve_data, direct_labels
    ):
        config = ServeConfig(
            workers=1,
            lanes=(
                LaneConfig("interactive", max_batch=16, max_wait_ms=1.0),
                LaneConfig("bulk", max_wait_ms=20.0),
            ),
        )
        with UHDServer(model_path, config) as server:
            assert np.array_equal(
                server.predict(serve_data.test_images[:8], lane="interactive",
                               timeout=60.0),
                direct_labels[:8],
            )
            assert np.array_equal(
                server.predict(serve_data.test_images[:4], lane="bulk",
                               timeout=60.0),
                direct_labels[:4],
            )
            stats = server.stats()
        lanes = {s.name: s for s in stats.lanes}
        assert lanes["interactive"].served_rows == 8
        assert lanes["bulk"].served_rows == 4
        assert stats.as_dict()["lanes"][0]["name"] == "interactive"


class TestInProcessTransport:
    def test_satisfies_protocol_and_delegates(
        self, model_path, serve_data, direct_labels
    ):
        with UHDServer(model_path, ServeConfig(workers=0)) as server:
            transport = InProcessTransport(server).start()
            assert isinstance(transport, Transport)
            assert isinstance(HttpTransport(server), Transport)
            assert transport.address.startswith("inproc://")
            got = transport.predict(serve_data.test_images[:4])
            transport.close()
        assert np.array_equal(got, direct_labels[:4])


class TestGracefulShutdown:
    def test_close_default_honors_config_drain_timeout(
        self, model_path, serve_data, direct_labels
    ):
        """close() with no argument uses ServeConfig.drain_timeout_s —
        submitted work completes inside that window."""
        config = ServeConfig(
            workers=1, max_batch=16, max_wait_ms=0.0, drain_timeout_s=10.0
        )
        server = UHDServer(model_path, config).start()
        handle = server.submit(serve_data.test_images[:8])
        server.close()  # no explicit timeout: config value applies
        assert np.array_equal(handle.result(timeout=5.0), direct_labels[:8])

    def test_zero_drain_timeout_fails_queued_loudly(
        self, model_path, serve_data
    ):
        from repro.serve import ServeError

        config = ServeConfig(
            workers=1, max_batch=1, max_wait_ms=0.0, drain_timeout_s=0.0
        )
        server = UHDServer(model_path, config).start()
        handles = [server.submit(serve_data.test_images[i]) for i in range(40)]
        server.close()
        outcomes = 0
        for handle in handles:
            try:
                handle.result(timeout=5.0)
            except ServeError:
                pass
            outcomes += 1
        assert outcomes == len(handles)

    def test_cli_signal_helper_converts_sigterm_to_drain(self):
        """The CLI's handler turns SIGTERM into a stop event (drain path)
        instead of the default kill, and restores handlers after."""
        import os
        import signal

        from repro.cli import _graceful_shutdown

        before = signal.getsignal(signal.SIGTERM)
        with _graceful_shutdown() as stop:
            assert not stop.is_set()
            os.kill(os.getpid(), signal.SIGTERM)
            assert stop.wait(5.0)
        assert signal.getsignal(signal.SIGTERM) is before
