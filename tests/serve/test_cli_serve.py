"""CLI integration: repro-uhd serve / serve-check over a saved model."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestServeCheckCli:
    def test_serve_check_reports_probe(self, model_path, capsys):
        assert main([
            "serve-check", "--model", model_path, "--batch", "8",
            "--repeats", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "serve-check OK" in out
        assert "predictions deterministic" in out


class TestServeCli:
    def test_serve_round_trip_pool(self, model_path, capsys):
        assert main([
            "serve", "--model", model_path, "--workers", "2",
            "--rounds", "2", "--batch", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "worker 0: ready" in out and "worker 1: ready" in out
        assert "verify OK" in out  # bit-exact with UHDClassifier.predict
        assert "shutdown clean" in out

    def test_serve_in_process_fallback(self, model_path, capsys):
        assert main([
            "serve", "--model", model_path, "--workers", "0",
            "--rounds", "1", "--batch", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "in-process fallback" in out
        assert "verify OK" in out
        assert "shutdown clean" in out

    def test_serve_backend_override(self, model_path, capsys):
        assert main([
            "serve", "--model", model_path, "--workers", "1",
            "--rounds", "1", "--batch", "4", "--backend", "threaded",
        ]) == 0
        assert "verify OK" in capsys.readouterr().out

    def test_serve_requires_model(self):
        with pytest.raises(SystemExit):
            main(["serve"])

    def test_serve_verifies_streaming_model_too(
        self, serve_data, tmp_path, capsys
    ):
        """--verify must load generically, not assume UHDClassifier."""
        from repro.core.config import UHDConfig
        from repro.core.streaming import StreamingUHD

        model = StreamingUHD(
            serve_data.num_pixels,
            serve_data.num_classes,
            UHDConfig(dim=128, backend="packed", binarize=True),
        )
        model.fit(serve_data.train_images, serve_data.train_labels)
        path = str(tmp_path / "streaming.npz")
        model.save(path)
        assert main([
            "serve", "--model", path, "--workers", "1",
            "--rounds", "1", "--batch", "4",
        ]) == 0
        assert "verify OK" in capsys.readouterr().out

    def test_serve_listed_in_lifecycle_commands(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "serve" in out and "serve-check" in out
