"""CLI integration: repro-uhd serve / serve-check over a saved model."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestServeCheckCli:
    def test_serve_check_reports_probe(self, model_path, capsys):
        assert main([
            "serve-check", "--model", model_path, "--batch", "8",
            "--repeats", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "serve-check OK" in out
        assert "predictions deterministic" in out


class TestServeCli:
    def test_serve_round_trip_pool(self, model_path, capsys):
        assert main([
            "serve", "--model", model_path, "--workers", "2",
            "--rounds", "2", "--batch", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "worker 0: ready" in out and "worker 1: ready" in out
        assert "verify OK" in out  # bit-exact with UHDClassifier.predict
        assert "shutdown clean" in out

    def test_serve_in_process_fallback(self, model_path, capsys):
        assert main([
            "serve", "--model", model_path, "--workers", "0",
            "--rounds", "1", "--batch", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "in-process fallback" in out
        assert "verify OK" in out
        assert "shutdown clean" in out

    def test_serve_backend_override(self, model_path, capsys):
        assert main([
            "serve", "--model", model_path, "--workers", "1",
            "--rounds", "1", "--batch", "4", "--backend", "threaded",
        ]) == 0
        assert "verify OK" in capsys.readouterr().out

    def test_serve_requires_model(self):
        with pytest.raises(SystemExit):
            main(["serve"])

    def test_serve_verifies_streaming_model_too(
        self, serve_data, tmp_path, capsys
    ):
        """--verify must load generically, not assume UHDClassifier."""
        from repro.core.config import UHDConfig
        from repro.core.streaming import StreamingUHD

        model = StreamingUHD(
            serve_data.num_pixels,
            serve_data.num_classes,
            UHDConfig(dim=128, backend="packed", binarize=True),
        )
        model.fit(serve_data.train_images, serve_data.train_labels)
        path = str(tmp_path / "streaming.npz")
        model.save(path)
        assert main([
            "serve", "--model", path, "--workers", "1",
            "--rounds", "1", "--batch", "4",
        ]) == 0
        assert "verify OK" in capsys.readouterr().out

    def test_serve_listed_in_lifecycle_commands(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "serve" in out and "serve-check" in out


class TestServeHttpCli:
    def test_http_round_trip_with_lanes_and_deadline(self, model_path, capsys):
        """The CI HTTP leg: --http-port 0 round-trips go over real HTTP,
        verify bit-exactness, and hit /healthz and /stats."""
        assert main([
            "serve", "--model", model_path, "--workers", "1",
            "--rounds", "2", "--batch", "4", "--http-port", "0",
            "--lane", "interactive:16:1:4", "--lane", "bulk:64:20",
            "--deadline-ms", "60000",
        ]) == 0
        out = capsys.readouterr().out
        assert "http: listening on http://127.0.0.1:" in out
        assert "via HTTP" in out
        assert "verify OK" in out  # HTTP labels bit-exact with direct predict
        assert "healthz: ok" in out
        assert "interactive: served 8 row(s), expired 0" in out
        assert "shutdown clean" in out

    def test_http_in_process_fallback(self, model_path, capsys):
        assert main([
            "serve", "--model", model_path, "--workers", "0",
            "--rounds", "1", "--batch", "4", "--http-port", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "via HTTP" in out and "verify OK" in out
        assert "healthz: ok" in out

    def test_lane_spec_parsing(self):
        from repro.cli import _parse_lane

        lane = _parse_lane("bulk::50")
        assert lane.name == "bulk"
        assert lane.max_batch is None  # inherits --max-batch
        assert lane.max_wait_ms == 50.0
        assert lane.weight == 1.0
        full = _parse_lane("interactive:16:1:4")
        assert (full.max_batch, full.max_wait_ms, full.weight) == (16, 1.0, 4.0)

    @pytest.mark.parametrize(
        "spec", ["", "a:b", "a:1:x", "a:1:2:3:4:5", "a:0"]
    )
    def test_bad_lane_spec_rejected(self, spec):
        import argparse

        from repro.cli import _parse_lane

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_lane(spec)

    def test_serve_forever_without_http_port_fails_fast(self, model_path):
        """A supervisor must get an error, not a self-test run that exits."""
        with pytest.raises(SystemExit, match="requires --http-port"):
            main([
                "serve", "--model", model_path, "--workers", "0",
                "--serve-forever",
            ])

    def test_duplicate_lane_names_fail_at_config(self, model_path):
        with pytest.raises(ValueError, match="duplicate"):
            main([
                "serve", "--model", model_path, "--workers", "0",
                "--rounds", "1", "--lane", "a", "--lane", "a",
            ])


class TestRouteCli:
    def test_route_two_models_in_process(self, zoo_model_paths, capsys):
        argv = ["route", "--replicas", "2", "--workers", "0",
                "--rounds", "2", "--batch", "4"]
        for name, path in zoo_model_paths.items():
            argv += ["--model", f"{name}={path}"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        for name in zoo_model_paths:
            assert f"model {name}: generation 1, 2/2 replica(s) ready" in out
        assert "verify OK" in out
        assert "shutdown clean" in out

    def test_route_http_with_reload(self, zoo_model_paths, capsys):
        argv = ["route", "--replicas", "2", "--workers", "0",
                "--rounds", "2", "--batch", "4", "--http-port", "0",
                "--reload"]
        for name, path in zoo_model_paths.items():
            argv += ["--model", f"{name}={path}"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "via HTTP" in out
        for name in zoo_model_paths:
            assert f"reload: {name} generation 1 -> 2" in out
            assert f"stats {name}: generation 2" in out
        assert "verify OK" in out
        assert "shutdown clean" in out

    def test_route_duplicate_model_id_fails_fast(self, zoo_model_paths):
        path = next(iter(zoo_model_paths.values()))
        with pytest.raises(SystemExit, match="duplicate model id"):
            main(["route", "--model", f"m={path}", "--model", f"m={path}",
                  "--workers", "0"])

    def test_route_bad_model_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["route", "--model", "no-equals-sign", "--workers", "0"])

    def test_route_serve_forever_without_http_port_fails_fast(
        self, zoo_model_paths
    ):
        name, path = next(iter(zoo_model_paths.items()))
        with pytest.raises(SystemExit, match="requires --http-port"):
            main(["route", "--model", f"{name}={path}", "--workers", "0",
                  "--serve-forever"])


class TestRouteDaemonDrainSummary:
    def test_sigterm_drain_logs_per_lane_quantiles(
        self, model_path, serve_data
    ):
        """``route --serve-forever`` must end with a per-lane p50/p95
        summary line (from the merged histogram snapshots) when SIGTERM
        asks for the drain — the operator's last look at the tail."""
        import json
        import re
        import signal
        import subprocess
        import sys
        import urllib.request

        process = subprocess.Popen(
            [
                sys.executable, "-c",
                "from repro.cli import main; raise SystemExit(main("
                f"['route', '--model', 'm={model_path}', '--workers', '0',"
                " '--replicas', '1', '--http-port', '0',"
                " '--serve-forever']))",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            address = None
            for _ in range(200):
                line = process.stdout.readline()
                assert line, "daemon exited before listening"
                match = re.search(r"listening on (http://[\d.:]+)", line)
                if match:
                    address = match.group(1)
                    break
            assert address, "never saw the listening line"
            payload = json.dumps(
                {"images": serve_data.test_images[:3].tolist()}
            ).encode()
            for _ in range(2):
                request = urllib.request.Request(
                    address + "/predict",
                    data=payload,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request, timeout=30.0) as reply:
                    assert json.load(reply)["rows"] == 3
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=60.0)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0
        assert "signal received: draining deployments" in out
        drain = re.search(
            r"drain m/default: (\d+) served, "
            r"p50 ([\d.]+)ms, p95 ([\d.]+)ms, (\d+) expired",
            out,
        )
        assert drain, f"no drain summary in output:\n{out}"
        assert int(drain.group(1)) == 2
        assert float(drain.group(3)) >= float(drain.group(2)) >= 0.0
        assert int(drain.group(4)) == 0
        assert "shutdown clean" in out
