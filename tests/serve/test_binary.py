"""The binary fast lane: codec, framing fuzz, and wire-level contracts.

Three layers of guarantees:

* **Codec** — ``encode_frame``/``decode_frame`` are exact inverses,
  partial streams decode to ``None`` (never a wrong frame), and every
  bounds violation raises :class:`FrameError` instead of reading junk.
* **Server robustness** — garbage bytes, truncated frames, oversized
  declarations and mid-frame disconnects get an ERROR frame (where one
  can still be delivered) and never take the event loop down: the next
  well-formed client must be served normally.
* **Semantics** — lanes, deadlines, and the error taxonomy behave
  exactly as over HTTP because it is the same scheduler: an expired
  request moves exactly one lane's ``expired`` counter and
  ``latency.excluded`` with it, and labels are bit-exact with both
  in-process submit and direct ``predict`` on every backend and start
  method.
"""

from __future__ import annotations

import socket
import time

import numpy as np
import pytest

from repro.serve import (
    BinaryClient,
    DeadlineExpiredError,
    HttpTransport,
    InProcessTransport,
    LaneConfig,
    ServeConfig,
    ServeError,
    SocketTransport,
    UHDServer,
)
from repro.serve.binary import (
    ERR_MALFORMED,
    FRAME_ERROR,
    FRAME_LABELS,
    FRAME_PREDICT,
    HEADER_SIZE,
    MAGIC,
    MAX_ID_BYTES,
    Frame,
    FrameError,
    decode_frame,
    encode_frame,
)


# ------------------------------------------------------------------ codec


class TestCodec:
    def test_round_trip_preserves_every_field(self):
        payload = bytes(range(200))
        encoded = encode_frame(
            FRAME_PREDICT,
            lane="interactive",
            model="mnist-a",
            request_id=0xDEADBEEF,
            deadline_ms=1234.5,
            rows=4,
            payload=payload,
        )
        frame, consumed = decode_frame(encoded)
        assert consumed == len(encoded)
        assert frame == Frame(
            frame_type=FRAME_PREDICT,
            code=0,
            lane="interactive",
            model="mnist-a",
            request_id=0xDEADBEEF,
            deadline_ms=1234.5,
            rows=4,
            payload=payload,
        )

    def test_decode_consumes_only_one_frame(self):
        first = encode_frame(FRAME_LABELS, request_id=1, rows=1,
                             payload=b"\x07" + b"\x00" * 7)
        second = encode_frame(FRAME_ERROR, code=2, request_id=2,
                              payload=b"nope")
        stream = first + second
        frame, consumed = decode_frame(stream)
        assert frame.request_id == 1
        assert consumed == len(first)
        frame2, consumed2 = decode_frame(stream[consumed:])
        assert frame2.request_id == 2
        assert frame2.code == 2
        assert consumed + consumed2 == len(stream)

    def test_partial_stream_decodes_to_none_at_every_cut(self):
        encoded = encode_frame(
            FRAME_PREDICT, lane="bulk", request_id=9, rows=1, payload=b"px"
        )
        for cut in range(len(encoded)):
            assert decode_frame(encoded[:cut]) is None

    def test_bad_magic_raises(self):
        encoded = bytearray(encode_frame(FRAME_PREDICT, rows=0))
        encoded[:4] = b"HTTP"
        with pytest.raises(FrameError, match="magic"):
            decode_frame(bytes(encoded))

    def test_unknown_frame_type_raises(self):
        encoded = bytearray(encode_frame(FRAME_PREDICT, rows=0))
        encoded[4] = 99
        with pytest.raises(FrameError, match="frame type"):
            decode_frame(bytes(encoded))
        with pytest.raises(FrameError, match="frame type"):
            encode_frame(99)

    def test_nonzero_reserved_field_raises(self):
        encoded = bytearray(encode_frame(FRAME_PREDICT, rows=0))
        encoded[10] = 1
        with pytest.raises(FrameError, match="reserved"):
            decode_frame(bytes(encoded))

    def test_oversized_payload_declaration_raises(self):
        encoded = encode_frame(FRAME_PREDICT, rows=1, payload=b"xx")
        with pytest.raises(FrameError, match="cap"):
            decode_frame(encoded, max_payload=1)

    def test_id_length_cap_enforced_both_ways(self):
        with pytest.raises(FrameError, match="capped"):
            encode_frame(FRAME_PREDICT, lane="x" * (MAX_ID_BYTES + 1))
        # a forged header declaring an oversized id must also be refused
        forged = bytearray(encode_frame(FRAME_PREDICT, rows=0))
        forged[6:8] = (MAX_ID_BYTES + 1).to_bytes(2, "little")
        with pytest.raises(FrameError, match="cap"):
            decode_frame(bytes(forged))

    def test_non_utf8_ids_raise(self):
        header_ok = encode_frame(FRAME_PREDICT, lane="ab", rows=0)
        forged = header_ok[:HEADER_SIZE] + b"\xff\xfe"
        with pytest.raises(FrameError, match="utf-8"):
            decode_frame(forged)


# -------------------------------------------------------- live-wire fuzz


@pytest.fixture()
def live(model_path):
    """A workers=0 server fronted by a SocketTransport, torn down clean."""
    with UHDServer(model_path, ServeConfig(workers=0)) as server:
        with SocketTransport(server) as transport:
            yield server, transport


def _raw_connection(transport: SocketTransport) -> socket.socket:
    sock = socket.create_connection(
        (transport.host, transport.port), timeout=10.0
    )
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def _read_error_frame(sock: socket.socket) -> Frame:
    buf = b""
    while True:
        frame_and_size = decode_frame(buf)
        if frame_and_size is not None:
            return frame_and_size[0]
        chunk = sock.recv(4096)
        assert chunk, "connection closed before an error frame arrived"
        buf += chunk


def _connection_is_closed(sock: socket.socket) -> bool:
    # the server may close with unread bytes in its receive buffer, in
    # which case TCP answers RST (reset) instead of a clean FIN
    try:
        return sock.recv(4096) == b""
    except (ConnectionResetError, OSError):
        return True


class TestServerSurvivesBadInput:
    def _server_still_works(self, live, serve_data, direct_labels):
        server, transport = live
        with BinaryClient(transport.host, transport.port) as client:
            labels = client.predict(serve_data.test_images[:4])
        assert np.array_equal(labels, direct_labels[:4])

    def test_garbage_bytes_get_an_error_frame_and_a_close(
        self, live, serve_data, direct_labels
    ):
        _, transport = live
        sock = _raw_connection(transport)
        try:
            sock.sendall(b"GET / HTTP/1.1\r\n" + b"\x00" * 64)
            frame = _read_error_frame(sock)
            assert frame.frame_type == FRAME_ERROR
            assert frame.code == ERR_MALFORMED
            assert b"magic" in frame.payload
            assert _connection_is_closed(sock)
        finally:
            sock.close()
        self._server_still_works(live, serve_data, direct_labels)

    def test_oversized_payload_declaration_is_refused(
        self, live, serve_data, direct_labels
    ):
        _, transport = live
        forged = bytearray(encode_frame(FRAME_PREDICT, request_id=5, rows=1))
        forged[32:36] = (2**31).to_bytes(4, "little")  # 2 GiB declared
        sock = _raw_connection(transport)
        try:
            sock.sendall(bytes(forged))
            frame = _read_error_frame(sock)
            assert frame.code == ERR_MALFORMED
            assert b"cap" in frame.payload
            assert _connection_is_closed(sock)
        finally:
            sock.close()
        self._server_still_works(live, serve_data, direct_labels)

    def test_truncated_frame_then_disconnect_is_survived(
        self, live, serve_data, direct_labels
    ):
        _, transport = live
        pixels = serve_data.num_pixels
        encoded = encode_frame(
            FRAME_PREDICT, request_id=1, rows=1,
            payload=bytes(serve_data.test_images[0].reshape(-1)),
        )
        sock = _raw_connection(transport)
        sock.sendall(encoded[: HEADER_SIZE + pixels // 2])
        sock.close()  # mid-frame hangup
        self._server_still_works(live, serve_data, direct_labels)

    def test_response_frames_get_an_error_and_a_close(
        self, live, serve_data, direct_labels
    ):
        """A client sending server->client frame types is out of protocol."""
        _, transport = live
        sock = _raw_connection(transport)
        try:
            sock.sendall(encode_frame(FRAME_LABELS, request_id=3, rows=0))
            frame = _read_error_frame(sock)
            assert frame.code == ERR_MALFORMED
            assert _connection_is_closed(sock)
        finally:
            sock.close()
        self._server_still_works(live, serve_data, direct_labels)

    def test_slow_client_dripping_bytes_reassembles(
        self, live, serve_data, direct_labels
    ):
        """One frame delivered in tiny chunks across many event-loop
        wakeups must decode into exactly one correct prediction."""
        _, transport = live
        images = serve_data.test_images[:3]
        encoded = encode_frame(
            FRAME_PREDICT, request_id=77, rows=3,
            payload=np.ascontiguousarray(
                images.reshape(3, -1), dtype=np.uint8
            ).tobytes(),
        )
        sock = _raw_connection(transport)
        try:
            for start in range(0, len(encoded), 97):
                sock.sendall(encoded[start:start + 97])
                time.sleep(0.002)
            buf = b""
            while True:
                decoded = decode_frame(buf)
                if decoded is not None:
                    break
                buf += sock.recv(4096)
            frame, _ = decoded
            assert frame.frame_type == FRAME_LABELS
            assert frame.request_id == 77
            labels = np.frombuffer(frame.payload, dtype="<i8")
            assert np.array_equal(labels, direct_labels[:3])
        finally:
            sock.close()


# ------------------------------------------------------------- semantics


class TestWireSemantics:
    def test_unknown_lane_errors_but_connection_survives(
        self, live, serve_data, direct_labels
    ):
        _, transport = live
        with BinaryClient(transport.host, transport.port) as client:
            with pytest.raises(ValueError, match="lane"):
                client.predict(serve_data.test_images[:2], lane="no-such")
            # semantic errors never poison the connection
            labels = client.predict(serve_data.test_images[:2])
            assert np.array_equal(labels, direct_labels[:2])

    def test_model_id_on_a_single_server_is_unknown(self, live, serve_data):
        _, transport = live
        with BinaryClient(transport.host, transport.port) as client:
            with pytest.raises(ValueError, match="model"):
                client.predict(serve_data.test_images[:1], model="mnist")

    def test_wrong_pixel_count_is_malformed(self, live):
        _, transport = live
        with BinaryClient(transport.host, transport.port) as client:
            bad = np.zeros((2, 7), dtype=np.uint8)  # wrong width
            with pytest.raises(ValueError, match="pixels"):
                client.predict(bad)

    def test_empty_request_is_malformed(self, live, serve_data):
        _, transport = live
        with BinaryClient(transport.host, transport.port) as client:
            empty = np.zeros((0, serve_data.num_pixels), dtype=np.uint8)
            with pytest.raises(ValueError, match="empty|rows"):
                client.predict(empty)

    def test_pipelined_responses_match_by_request_id(
        self, live, serve_data, direct_labels
    ):
        _, transport = live
        chunks = [serve_data.test_images[i:i + 4] for i in range(0, 16, 4)]
        with BinaryClient(transport.host, transport.port) as client:
            ids = [client.send(chunk) for chunk in chunks]
            got = {}
            for _ in ids:
                rid, labels = client.recv()
                got[rid] = labels
        assert sorted(got) == sorted(ids)
        for index, rid in enumerate(ids):
            assert np.array_equal(
                got[rid], direct_labels[index * 4:(index + 1) * 4]
            )

    def test_deadline_expiry_moves_exactly_one_lanes_counters(
        self, model_path, serve_data
    ):
        """A deadline that passes while queued must answer EXPIRED and
        move the *binary-submitting* lane's ``expired`` (and its
        histogram's ``excluded``) by exactly one — same contract, same
        scheduler, as HTTP's 504 path."""
        config = ServeConfig(
            workers=1,
            max_batch=1,
            max_wait_ms=0.0,
            lanes=(LaneConfig("slow", max_batch=1), LaneConfig("other")),
        )
        with UHDServer(model_path, config) as server:
            with SocketTransport(server) as transport:
                # a deep single-row backlog makes a 1 ms deadline
                # unmeetable for the request queued behind it
                flood = [
                    server.submit(serve_data.test_images[i % 8], lane="slow")
                    for i in range(60)
                ]
                with BinaryClient(transport.host, transport.port) as client:
                    with pytest.raises(DeadlineExpiredError, match="expired"):
                        client.predict(
                            serve_data.test_images[:1],
                            lane="slow",
                            deadline_ms=1.0,
                        )
                for handle in flood:
                    handle.result(timeout=60.0)
                stats = server.stats()
        by_name = {lane.name: lane for lane in stats.lanes}
        assert by_name["slow"].expired == 1
        assert by_name["slow"].latency.excluded == 1  # expired == excluded
        assert by_name["other"].expired == 0
        assert by_name["other"].latency.excluded == 0

    def test_draining_server_refuses_new_predicts(self, model_path, serve_data):
        with UHDServer(model_path, ServeConfig(workers=0)) as server:
            transport = SocketTransport(server).start()
            client = BinaryClient(transport.host, transport.port)
            try:
                client.predict(serve_data.test_images[:1])
                transport.close()
                with pytest.raises((ServeError, ConnectionError, OSError)):
                    client.predict(serve_data.test_images[:1])
            finally:
                client.close()
                transport.close()

    def test_transport_counters_reach_server_stats(
        self, live, serve_data
    ):
        server, transport = live
        with BinaryClient(transport.host, transport.port) as client:
            client.predict(serve_data.test_images[:2])
            client.predict(serve_data.test_images[:2])
            (snap,) = server.stats().transports
            assert snap.name == "binary"
            assert snap.connections_open == 1
            assert snap.frames_in == 2
            assert snap.frames_out == 2
            assert snap.bytes_in > 2 * serve_data.num_pixels
            assert snap.bytes_out > 0


# --------------------------------------------------------- bit-exactness


class TestBitExactAcrossTransports:
    @pytest.mark.parametrize("backend", ["packed", "threaded"])
    def test_all_three_transports_agree_with_direct_predict(
        self, model_path, serve_data, direct_labels, start_method, backend
    ):
        """Contract 5 extends to the binary wire: InProcess, HTTP and
        Socket transports must serve byte-identical labels on every
        backend under every start method."""
        config = ServeConfig(
            workers=1, start_method=start_method, backend=backend
        )
        images = serve_data.test_images[:16]
        want = direct_labels[:16]
        with UHDServer(model_path, config) as server:
            inproc = InProcessTransport(server).start()
            got_inproc = inproc.submit(images).result(timeout=60.0)
            with HttpTransport(server) as http:
                got_http = _http_predict(http, images)
            with SocketTransport(server) as binary:
                with BinaryClient(binary.host, binary.port) as client:
                    got_binary = client.predict(images)
        assert np.array_equal(got_inproc, want)
        assert np.array_equal(got_http, want)
        assert np.array_equal(got_binary, want)


def _http_predict(transport: HttpTransport, images: np.ndarray) -> np.ndarray:
    import http.client
    import json

    conn = http.client.HTTPConnection(
        "127.0.0.1", transport.port, timeout=60.0
    )
    try:
        conn.request(
            "POST", "/predict",
            body=json.dumps({"images": images.tolist()}).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        reply = json.loads(conn.getresponse().read())
        return np.asarray(reply["labels"])
    finally:
        conn.close()
