"""Schema stability of the observability surfaces, plus generation merge.

Dashboards, the Prometheus renderer, and the load harness all key into
``/stats`` JSON by name — a silently dropped or renamed key breaks them
without any test noticing.  These golden key-sets pin every section of
``ServerStats.as_dict()`` and the router's ``stats()`` documents:
adding a key is a deliberate one-line test update, removing one is a
loud failure.

``TestGenerationMerge`` pins the cross-hot-reload invariant: a
deployment's per-lane histogram is the lossless element-wise merge of
every generation's buckets — merged count == sum of generation counts,
no bucket loss, quantiles monotonic-consistent.
"""

from __future__ import annotations

import json

import pytest

from repro.serve import (
    DeploymentSpec,
    LaneConfig,
    Router,
    ServeConfig,
    UHDServer,
)

SERVER_STATS_KEYS = {
    "mode",
    "workers",
    "requests",
    "images",
    "batches",
    "max_batch_seen",
    "mean_batch_size",
    "restarts",
    "worker_probe_ms",
    "worker_table_builds",
    "lanes",
    "expired",
    "cache",
    "transports",
}

LANE_KEYS = {
    "name",
    "depth",
    "queued_rows",
    "submitted",
    "served",
    "served_rows",
    "batches",
    "expired",
    "latency",
}

LATENCY_KEYS = {
    "count",
    "excluded",
    "sum_ms",
    "mean_ms",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "le_ms",
    "counts",
}

CACHE_KEYS = {"entries", "table_bytes", "published"}

DEPLOYMENT_STATS_KEYS = {
    "model",
    "path",
    "generation",
    "target_replicas",
    "ready_replicas",
    "retired_replicas",
    "requests",
    "images",
    "batches",
    "restarts",
    "expired",
    "lanes",
    "replicas",
}

DEPLOYMENT_LANE_KEYS = {"name", "served", "served_rows", "expired", "latency"}

REPLICA_ROW_KEYS = {
    "name",
    "generation",
    "state",
    "inflight",
    "model_path",
    "workers",
    "requests",
    "images",
    "batches",
    "mean_batch_size",
    "restarts",
    "expired",
}


class TestServerStatsSchema:
    @pytest.fixture()
    def payload(self, model_path, serve_data):
        config = ServeConfig(
            workers=0,
            lanes=(LaneConfig("interactive", weight=4.0), LaneConfig("bulk")),
        )
        with UHDServer(model_path, config) as server:
            server.predict(serve_data.test_images[:8], lane="interactive")
            return server.stats().as_dict()

    def test_top_level_keys(self, payload):
        assert set(payload) == SERVER_STATS_KEYS

    def test_lane_section_keys(self, payload):
        assert len(payload["lanes"]) == 2
        for lane in payload["lanes"]:
            assert set(lane) == LANE_KEYS
            assert set(lane["latency"]) == LATENCY_KEYS

    def test_cache_section_keys(self, payload):
        assert set(payload["cache"]) == CACHE_KEYS

    def test_document_is_json_serializable(self, payload):
        round_tripped = json.loads(json.dumps(payload))
        assert set(round_tripped) == SERVER_STATS_KEYS


class TestRouterStatsSchema:
    @pytest.fixture()
    def documents(self, model_path, serve_data):
        spec = DeploymentSpec(
            model_path, replicas=1, serve=ServeConfig(workers=0)
        )
        with Router({"m": spec}) as router:
            router.predict("m", serve_data.test_images[:4])
            return router.stats(), router.deployment("m").stats()

    def test_router_document(self, documents):
        router_stats, _ = documents
        assert set(router_stats) == {"models", "transports"}
        assert len(router_stats["models"]) == 1
        assert router_stats["transports"] == []  # no transport attached

    def test_deployment_document(self, documents):
        _, deployment_stats = documents
        assert set(deployment_stats) == DEPLOYMENT_STATS_KEYS

    def test_deployment_lane_rows(self, documents):
        _, deployment_stats = documents
        assert deployment_stats["lanes"], "expected at least the default lane"
        for lane in deployment_stats["lanes"]:
            assert set(lane) == DEPLOYMENT_LANE_KEYS
            assert set(lane["latency"]) == LATENCY_KEYS

    def test_replica_rows(self, documents):
        _, deployment_stats = documents
        assert len(deployment_stats["replicas"]) == 1
        for row in deployment_stats["replicas"]:
            assert set(row) == REPLICA_ROW_KEYS

    def test_documents_are_json_serializable(self, documents):
        router_stats, deployment_stats = documents
        json.dumps(router_stats)
        json.dumps(deployment_stats)


class TestGenerationMerge:
    def test_histograms_merge_losslessly_across_hot_reloads(
        self, model_path, serve_data
    ):
        """Two generations of traffic; the deployment's lane histogram
        must be their exact element-wise sum (no bucket loss) and its
        quantiles must stay inside the generations' envelope."""
        spec = DeploymentSpec(
            model_path, replicas=1, serve=ServeConfig(workers=0)
        )
        with Router({"m": spec}) as router:
            deployment = router.deployment("m")
            for _ in range(6):
                router.predict("m", serve_data.test_images[:4])
            gen1 = deployment.lane_snapshots()["default"]
            assert gen1.count == 6

            report = router.reload("m")  # same path, new generation
            assert report["to_generation"] == 2

            for _ in range(4):
                router.predict("m", serve_data.test_images[:2])
            merged = deployment.lane_snapshots()["default"]
            stats = deployment.stats()

        live = deployment_live = merged.count - gen1.count
        assert deployment_live == 4  # gen2-only traffic
        assert merged.count == gen1.count + live  # count conservation
        # no bucket loss: per-bucket totals still sum to the count
        assert sum(merged.counts) == merged.count
        # every gen1 bucket is still fully present in the merge
        assert all(
            m >= g for m, g in zip(merged.counts, gen1.counts)
        )
        assert stats["retired_replicas"] == 1
        (lane,) = stats["lanes"]
        assert lane["name"] == "default"
        assert lane["served"] == merged.count
        assert lane["latency"]["count"] == merged.count
        # quantiles are monotone under merge-with-more-data: they stay
        # within the global envelope of recorded buckets
        assert 0.0 <= lane["latency"]["p50_ms"] <= lane["latency"]["p99_ms"]

    def test_merge_accumulates_over_repeated_reloads(
        self, model_path, serve_data
    ):
        """Three generations: totals keep up, never reset, never double."""
        spec = DeploymentSpec(
            model_path, replicas=1, serve=ServeConfig(workers=0)
        )
        per_generation = 3
        with Router({"m": spec}) as router:
            deployment = router.deployment("m")
            for generation in range(3):
                for _ in range(per_generation):
                    router.predict("m", serve_data.test_images[:1])
                snap = deployment.lane_snapshots()["default"]
                assert snap.count == per_generation * (generation + 1)
                if generation < 2:
                    router.reload("m")
            stats = deployment.stats()
        assert stats["retired_replicas"] == 2
        (lane,) = stats["lanes"]
        assert lane["latency"]["count"] == 3 * per_generation
        assert sum(lane["latency"]["counts"]) == 3 * per_generation
