"""Worker lifecycle under failure: crash mid-batch, restart budget, bootstrap.

The crash is injected deterministically through the server's private
``_crash_next`` hook: the next N dispatched batches carry a flag that
makes the owning worker ``os._exit(1)`` *before* predicting — exactly
the mid-batch crash the restart path must survive without dropping the
request.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import ServeConfig, ServeError, UHDServer, WorkerCrashError


class TestCrashRecovery:
    def test_crash_mid_batch_restarts_and_retries(
        self, model_path, serve_data, direct_labels, start_method
    ):
        config = ServeConfig(
            workers=1, max_batch=16, restart_limit=2,
            start_method=start_method,
            # a non-heap store keeps respawn warm-starts O(1) under spawn
            # too; under fork it matches the copy-on-write behavior
            table_store="shm",
        )
        with UHDServer(model_path, config) as server:
            server._crash_next = 1
            got = server.predict(serve_data.test_images[:10], timeout=60.0)
            stats = server.stats()
        # the request was answered bit-exactly despite the crash...
        assert np.array_equal(got, direct_labels[:10])
        # ...because the worker was respawned and the batch re-dispatched
        assert stats.restarts == 1
        # both generations (bootstrap and respawn) attached, never rebuilt
        assert stats.worker_table_builds == (0,)

    def test_two_crashes_within_budget_still_answer(
        self, model_path, serve_data, direct_labels
    ):
        config = ServeConfig(workers=1, max_batch=16, restart_limit=3)
        with UHDServer(model_path, config) as server:
            server._crash_next = 2
            got = server.predict(serve_data.test_images[:6], timeout=60.0)
            stats = server.stats()
        assert np.array_equal(got, direct_labels[:6])
        assert stats.restarts == 2

    def test_server_survives_crash_for_later_requests(
        self, model_path, serve_data, direct_labels
    ):
        config = ServeConfig(workers=1, max_batch=16, restart_limit=2)
        with UHDServer(model_path, config) as server:
            server._crash_next = 1
            first = server.predict(serve_data.test_images[:4], timeout=60.0)
            second = server.predict(serve_data.test_images[4:8], timeout=60.0)
        assert np.array_equal(first, direct_labels[:4])
        assert np.array_equal(second, direct_labels[4:8])

    def test_exhausted_restart_budget_fails_loudly(
        self, model_path, serve_data
    ):
        config = ServeConfig(workers=1, max_batch=16, restart_limit=0)
        with UHDServer(model_path, config) as server:
            server._crash_next = 1
            with pytest.raises(WorkerCrashError, match="restart budget"):
                server.predict(serve_data.test_images[:4], timeout=60.0)

    def test_pool_with_spare_worker_masks_single_crash(
        self, model_path, serve_data, direct_labels
    ):
        config = ServeConfig(workers=2, max_batch=16, restart_limit=2)
        with UHDServer(model_path, config) as server:
            server._crash_next = 1
            got = server.predict(serve_data.test_images, timeout=60.0)
        assert np.array_equal(got, direct_labels)


class TestBootstrapFailure:
    def test_missing_model_file_fails_startup(self, tmp_path):
        config = ServeConfig(workers=1, ready_timeout_s=30.0)
        server = UHDServer(str(tmp_path / "missing.npz"), config)
        with pytest.raises((ServeError, FileNotFoundError)):
            server.start()
        server.close()

    def test_corrupt_model_file_fails_startup(self, tmp_path):
        from repro.api.persistence import ModelFormatError

        path = tmp_path / "corrupt.npz"
        path.write_bytes(b"not a model at all")
        server = UHDServer(str(path), ServeConfig(workers=1))
        with pytest.raises((ServeError, ModelFormatError)):
            server.start()
        server.close()
