"""UHDConfig and the Sobol level-only encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SobolLevelEncoder, UHDConfig
from repro.lds.quantize import quantize_intensity, quantize_unit


class TestConfig:
    def test_defaults(self):
        config = UHDConfig()
        assert config.dim == 1024
        assert config.levels == 16
        assert config.quantized

    def test_derived_properties(self):
        config = UHDConfig(levels=16)
        assert config.quantization_bits == 4
        assert config.stream_length == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            UHDConfig(dim=0)
        with pytest.raises(ValueError):
            UHDConfig(levels=1)
        with pytest.raises(ValueError):
            UHDConfig(lds="latin")

    def test_frozen(self):
        with pytest.raises(Exception):
            UHDConfig().dim = 2048

    def test_non_power_of_two_levels_warns_and_rounds_up(self):
        with pytest.warns(UserWarning, match="not a power of two"):
            config = UHDConfig(levels=20)
        # M rounds up to the next integer bit width; N never rounds
        assert config.quantization_bits == 5
        assert config.stream_length == 20

    def test_power_of_two_levels_do_not_warn(self, recwarn):
        for levels in (2, 16, 256):
            config = UHDConfig(levels=levels)
            assert config.stream_length == levels
        assert not [w for w in recwarn if w.category is UserWarning]


class TestEncoderConstruction:
    def test_sequences_shape(self):
        enc = SobolLevelEncoder(49, UHDConfig(dim=128))
        assert enc.sequences.shape == (49, 128)
        assert enc.sequences.dtype == np.float32

    def test_quantized_codes_present(self):
        enc = SobolLevelEncoder(10, UHDConfig(dim=64))
        assert enc.quantized_codes is not None
        assert enc.quantized_codes.shape == (10, 64)

    def test_full_precision_has_no_codes(self):
        enc = SobolLevelEncoder(10, UHDConfig(dim=64, quantized=False))
        assert enc.quantized_codes is None

    def test_halton_family(self):
        enc = SobolLevelEncoder(10, UHDConfig(dim=64, lds="halton"))
        assert enc.sequences.shape == (10, 64)

    def test_bad_pixels(self):
        with pytest.raises(ValueError):
            SobolLevelEncoder(0, UHDConfig())


class TestEncodeCorrectness:
    def test_matches_manual_threshold_count(self):
        config = UHDConfig(dim=64, levels=16)
        enc = SobolLevelEncoder(5, config)
        image = np.array([0, 60, 120, 200, 255], dtype=np.uint8)
        codes = quantize_intensity(image, 16)
        expected = np.zeros(64, dtype=np.int64)
        for p in range(5):
            ge = codes[p] >= enc.quantized_codes[p]
            expected += np.where(ge, 1, -1)
        np.testing.assert_array_equal(enc.encode(image), expected)

    def test_full_precision_manual(self):
        config = UHDConfig(dim=32, quantized=False)
        enc = SobolLevelEncoder(3, config)
        image = np.array([0, 128, 255], dtype=np.uint8)
        x = image.astype(np.float32) / np.float32(255.0)
        expected = np.zeros(32, dtype=np.int64)
        for p in range(3):
            expected += np.where(x[p] >= enc.sequences[p], 1, -1)
        np.testing.assert_array_equal(enc.encode(image), expected)

    def test_batch_matches_single(self):
        enc = SobolLevelEncoder(16, UHDConfig(dim=64))
        rng = np.random.default_rng(0)
        images = rng.integers(0, 256, size=(7, 16), dtype=np.uint8)
        batch = enc.encode_batch(images, chunk=3)
        for row, image in zip(batch, images):
            np.testing.assert_array_equal(row, enc.encode(image))

    def test_accumulator_range(self):
        enc = SobolLevelEncoder(9, UHDConfig(dim=32))
        image = np.zeros(9, dtype=np.uint8)
        encoded = enc.encode(image)
        assert np.abs(encoded).max() <= 9

    @given(intensity=st.integers(0, 255))
    @settings(max_examples=30, deadline=None)
    def test_ones_count_proportional(self, intensity):
        # A (0,1)-sequence guarantees the ones-count of L_p tracks the
        # quantized intensity to within rounding over a dyadic prefix.
        config = UHDConfig(dim=256, levels=16)
        enc = SobolLevelEncoder(2, config)
        hv = enc.level_hypervector(intensity / 255.0, pixel=1)
        ones = int((hv == 1).sum())
        code = int(quantize_unit(np.array([intensity / 255.0]), 16)[0])
        # Codes 0..15 threshold against quantized sobol codes; ones-rate
        # is (code + 1) * 16 of 256 entries at xi = 16 resolution.
        expected = (code + 1) * 16
        assert abs(ones - expected) <= 16

    def test_extreme_intensities(self):
        enc = SobolLevelEncoder(2, UHDConfig(dim=64))
        bright = enc.level_hypervector(1.0, pixel=0)
        assert (bright == 1).all()  # max code >= every sobol code

    def test_deterministic_given_seed(self):
        a = SobolLevelEncoder(8, UHDConfig(dim=64, seed=1))
        b = SobolLevelEncoder(8, UHDConfig(dim=64, seed=1))
        np.testing.assert_array_equal(a.sequences, b.sequences)

    def test_seed_changes_sequences(self):
        a = SobolLevelEncoder(8, UHDConfig(dim=64, seed=1))
        b = SobolLevelEncoder(8, UHDConfig(dim=64, seed=2))
        assert not np.array_equal(a.sequences, b.sequences)


class TestEncodeValidation:
    def test_wrong_pixel_count(self):
        enc = SobolLevelEncoder(10, UHDConfig(dim=32))
        with pytest.raises(ValueError):
            enc.encode(np.zeros(9, dtype=np.uint8))

    def test_level_hypervector_validation(self):
        enc = SobolLevelEncoder(4, UHDConfig(dim=32))
        with pytest.raises(ValueError):
            enc.level_hypervector(0.5, pixel=4)
        with pytest.raises(ValueError):
            enc.level_hypervector(1.5, pixel=0)
