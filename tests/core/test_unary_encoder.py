"""The unary-domain encoder and its bit-exact equivalence (Fig. 3-5)."""

import numpy as np
import pytest

from repro.core import (
    SobolLevelEncoder,
    UHDConfig,
    UnaryDomainEncoder,
    masking_binarize,
)
from repro.hdc.ops import binarize


class TestEquivalence:
    """The central hardware-functional claim: unary == arithmetic."""

    def test_bit_exact_small(self):
        config = UHDConfig(dim=128, levels=16)
        unary = UnaryDomainEncoder(36, config)
        arithmetic = SobolLevelEncoder(36, config)
        rng = np.random.default_rng(0)
        for _ in range(3):
            image = rng.integers(0, 256, size=36, dtype=np.uint8)
            np.testing.assert_array_equal(
                unary.encode(image), arithmetic.encode(image)
            )

    def test_bit_exact_other_levels(self):
        config = UHDConfig(dim=64, levels=8)
        unary = UnaryDomainEncoder(16, config)
        arithmetic = SobolLevelEncoder(16, config)
        image = np.linspace(0, 255, 16).astype(np.uint8)
        np.testing.assert_array_equal(unary.encode(image), arithmetic.encode(image))

    def test_level_bits_shape(self):
        config = UHDConfig(dim=64)
        unary = UnaryDomainEncoder(9, config)
        bits = unary.level_bits(np.zeros(9, dtype=np.uint8))
        assert bits.shape == (9, 64)
        assert bits.dtype == np.bool_

    def test_dim_chunking_invariant(self):
        config = UHDConfig(dim=96)
        unary = UnaryDomainEncoder(4, config)
        image = np.array([10, 100, 200, 250], dtype=np.uint8)
        a = unary.level_bits(image, dim_chunk=7)
        b = unary.level_bits(image, dim_chunk=96)
        np.testing.assert_array_equal(a, b)


class TestValidation:
    def test_requires_quantized(self):
        with pytest.raises(ValueError, match="quantized"):
            UnaryDomainEncoder(4, UHDConfig(dim=32, quantized=False))

    def test_wrong_pixel_count(self):
        unary = UnaryDomainEncoder(4, UHDConfig(dim=32))
        with pytest.raises(ValueError):
            unary.encode(np.zeros(5, dtype=np.uint8))


class TestMaskingBinarize:
    @pytest.mark.parametrize("h", [1, 2, 3, 8, 9, 10, 784, 785])
    def test_matches_sign_rule_all_parities(self, h):
        # every reachable accumulator value (V = 2*count - H)
        accumulators = np.arange(-h, h + 1, 2)
        np.testing.assert_array_equal(
            masking_binarize(accumulators, h), binarize(accumulators)
        )

    @pytest.mark.parametrize("h", [2, 8, 100])
    def test_tie_sets_sign_even_h(self, h):
        # V = 0 means popcount exactly H/2: the masking AND fires (ties -> +1).
        assert masking_binarize(np.array([0]), h)[0] == 1

    @pytest.mark.parametrize("h", [1, 9, 101])
    def test_odd_h_has_no_tie(self, h):
        # odd H cannot reach V = 0; the nearest values straddle the threshold
        assert masking_binarize(np.array([1]), h)[0] == 1
        assert masking_binarize(np.array([-1]), h)[0] == -1

    @pytest.mark.parametrize("h", [1, 2, 9, 10, 784])
    def test_collapsed_threshold_equals_branchy_rule(self, h):
        # the old implementation special-cased parity; both reduce to
        # ceil(H/2) = (H + 1) // 2
        legacy = (h + 1) // 2 if h % 2 else h // 2
        assert legacy == (h + 1) // 2
        counts = (np.arange(-h, h + 1, 2) + h) // 2
        np.testing.assert_array_equal(
            masking_binarize(np.arange(-h, h + 1, 2), h),
            np.where(counts >= legacy, 1, -1),
        )

    def test_encode_binarized(self):
        config = UHDConfig(dim=32)
        unary = UnaryDomainEncoder(4, config)
        image = np.array([0, 255, 128, 64], dtype=np.uint8)
        signs = unary.encode_binarized(image)
        np.testing.assert_array_equal(signs, binarize(unary.encode(image)))
