"""Property-based invariants of the uHD encoding pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import SobolLevelEncoder, UHDConfig, masking_binarize
from repro.hdc import CentroidClassifier
from repro.hdc.ops import binarize

_PIXELS = 16
_CONFIG = UHDConfig(dim=64, levels=16)

images = hnp.arrays(np.uint8, (_PIXELS,), elements=st.integers(0, 255))


@pytest.fixture(scope="module")
def encoder():
    return SobolLevelEncoder(_PIXELS, _CONFIG)


class TestEncoderProperties:
    @given(image=images)
    @settings(max_examples=40, deadline=None)
    def test_accumulator_bounds(self, encoder, image):
        encoded = encoder.encode(image)
        assert np.abs(encoded).max() <= _PIXELS
        # Parity: sum of +-1 over H pixels shares H's parity.
        assert ((encoded + _PIXELS) % 2 == 0).all()

    @given(image=images)
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_intensity(self, encoder, image):
        # Brightening every pixel can only increase each accumulator lane.
        brighter = np.minimum(image.astype(np.int64) + 60, 255).astype(np.uint8)
        np.testing.assert_array_less(
            encoder.encode(image) - 1, encoder.encode(brighter) + 1
        )

    @given(image=images)
    @settings(max_examples=30, deadline=None)
    def test_batch_consistency(self, encoder, image):
        batch = encoder.encode_batch(np.stack([image, image]))
        np.testing.assert_array_equal(batch[0], batch[1])
        np.testing.assert_array_equal(batch[0], encoder.encode(image))

    def test_all_black_all_white_extremes(self, encoder):
        black = encoder.encode(np.zeros(_PIXELS, dtype=np.uint8))
        white = encoder.encode(np.full(_PIXELS, 255, dtype=np.uint8))
        assert (white == _PIXELS).all()  # every comparison passes
        assert black.sum() < white.sum()

    @given(h=st.integers(2, 64))
    @settings(max_examples=30)
    def test_masking_binarize_matches_sign(self, h):
        accumulators = np.arange(-h, h + 1, 2)
        np.testing.assert_array_equal(
            masking_binarize(accumulators, h), binarize(accumulators)
        )


class TestClassifierProperties:
    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_training_order_invariance(self, seed):
        rng = np.random.default_rng(seed)
        encoded = rng.integers(-20, 20, size=(30, 64))
        labels = rng.integers(0, 3, size=30)
        forward = CentroidClassifier(3, 64).fit(encoded, labels)
        order = rng.permutation(30)
        shuffled = CentroidClassifier(3, 64).fit(encoded[order], labels[order])
        np.testing.assert_array_equal(forward.accumulators,
                                      shuffled.accumulators)

    @given(scale=st.integers(2, 10))
    @settings(max_examples=10, deadline=None)
    def test_prediction_scale_invariance(self, scale):
        # Cosine inference is invariant to scaling the queries.
        rng = np.random.default_rng(0)
        encoded = rng.integers(-20, 20, size=(30, 64))
        labels = rng.integers(0, 3, size=30)
        clf = CentroidClassifier(3, 64).fit(encoded, labels)
        queries = rng.integers(-20, 20, size=(8, 64))
        np.testing.assert_array_equal(
            clf.predict(queries), clf.predict(queries * scale)
        )
