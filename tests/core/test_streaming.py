"""Streaming (online) uHD training."""

import numpy as np
import pytest

from repro.core import StreamingUHD, UHDClassifier, UHDConfig


class TestPartialFit:
    def test_incremental_equals_batch(self, tiny_digits):
        config = UHDConfig(dim=256)
        online = StreamingUHD(784, 10, config)
        half = tiny_digits.train_images.shape[0] // 2
        online.partial_fit(tiny_digits.train_images[:half],
                           tiny_digits.train_labels[:half])
        online.partial_fit(tiny_digits.train_images[half:],
                           tiny_digits.train_labels[half:])

        batch = UHDClassifier(784, 10, config)
        batch.fit(tiny_digits.train_images, tiny_digits.train_labels)

        np.testing.assert_array_equal(
            online.classifier.accumulators, batch.classifier.accumulators
        )
        np.testing.assert_array_equal(
            online.predict(tiny_digits.test_images),
            batch.predict(tiny_digits.test_images),
        )

    def test_samples_seen(self, tiny_digits):
        model = StreamingUHD(784, 10, UHDConfig(dim=128))
        model.partial_fit(tiny_digits.train_images[:30],
                          tiny_digits.train_labels[:30])
        assert model.samples_seen == 30

    def test_predict_before_fit_raises(self, tiny_digits):
        model = StreamingUHD(784, 10, UHDConfig(dim=128))
        with pytest.raises(RuntimeError):
            model.predict(tiny_digits.test_images)
        with pytest.raises(RuntimeError):
            model.score(tiny_digits.test_images, tiny_digits.test_labels)


class TestPrequential:
    def test_accuracy_improves_along_stream(self, tiny_digits):
        model = StreamingUHD(784, 10, UHDConfig(dim=512))
        accuracies = model.evaluate_prequential(
            tiny_digits.train_images, tiny_digits.train_labels, batch_size=25
        )
        assert len(accuracies) == tiny_digits.train_images.shape[0] // 25 - 1
        # Later batches should beat the early ones on average.
        assert np.mean(accuracies[-2:]) >= np.mean(accuracies[:2]) - 0.1

    def test_final_model_beats_chance(self, tiny_digits):
        model = StreamingUHD(784, 10, UHDConfig(dim=512))
        model.evaluate_prequential(tiny_digits.train_images,
                                   tiny_digits.train_labels, batch_size=40)
        assert model.score(tiny_digits.test_images,
                           tiny_digits.test_labels) > 0.3

    def test_batch_size_validation(self, tiny_digits):
        model = StreamingUHD(784, 10, UHDConfig(dim=128))
        with pytest.raises(ValueError):
            model.evaluate_prequential(tiny_digits.train_images,
                                       tiny_digits.train_labels, batch_size=0)

    def test_count_mismatch(self, tiny_digits):
        model = StreamingUHD(784, 10, UHDConfig(dim=128))
        with pytest.raises(ValueError):
            model.evaluate_prequential(tiny_digits.train_images,
                                       tiny_digits.train_labels[:5])
