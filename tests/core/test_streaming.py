"""Streaming (online) uHD training."""

import numpy as np
import pytest

from repro.core import StreamingUHD, UHDClassifier, UHDConfig


class TestPartialFit:
    def test_incremental_equals_batch(self, tiny_digits):
        config = UHDConfig(dim=256)
        online = StreamingUHD(784, 10, config)
        half = tiny_digits.train_images.shape[0] // 2
        online.partial_fit(tiny_digits.train_images[:half],
                           tiny_digits.train_labels[:half])
        online.partial_fit(tiny_digits.train_images[half:],
                           tiny_digits.train_labels[half:])

        batch = UHDClassifier(784, 10, config)
        batch.fit(tiny_digits.train_images, tiny_digits.train_labels)

        np.testing.assert_array_equal(
            online.classifier.accumulators, batch.classifier.accumulators
        )
        np.testing.assert_array_equal(
            online.predict(tiny_digits.test_images),
            batch.predict(tiny_digits.test_images),
        )

    def test_samples_seen(self, tiny_digits):
        model = StreamingUHD(784, 10, UHDConfig(dim=128))
        model.partial_fit(tiny_digits.train_images[:30],
                          tiny_digits.train_labels[:30])
        assert model.samples_seen == 30

    def test_predict_before_fit_raises(self, tiny_digits):
        model = StreamingUHD(784, 10, UHDConfig(dim=128))
        with pytest.raises(RuntimeError):
            model.predict(tiny_digits.test_images)
        with pytest.raises(RuntimeError):
            model.score(tiny_digits.test_images, tiny_digits.test_labels)


class TestInputNormalization:
    """partial_fit / predict / score share one accepted-shapes policy.

    Regression: predict/score used to skip the single-image promotion
    partial_fit performed, so a shape accepted at train time blew up (or
    silently meant something else) at predict time.
    """

    def _fitted(self, tiny_digits, config=None):
        model = StreamingUHD(784, 10, config or UHDConfig(dim=128))
        model.partial_fit(tiny_digits.train_images[:40],
                          tiny_digits.train_labels[:40])
        return model

    def test_flat_single_image_round_trips(self, tiny_digits):
        model = self._fitted(tiny_digits)
        flat = tiny_digits.test_images[0].reshape(-1)  # (784,)
        batch_of_one = model.predict(tiny_digits.test_images[:1])
        assert model.predict(flat).shape == (1,)
        np.testing.assert_array_equal(model.predict(flat), batch_of_one)
        assert model.score(flat, tiny_digits.test_labels[:1]) in (0.0, 1.0)

    def test_square_single_image_round_trips(self, tiny_digits):
        model = self._fitted(tiny_digits)
        square = tiny_digits.test_images[0]  # (28, 28)
        assert square.shape == (28, 28)
        np.testing.assert_array_equal(
            model.predict(square), model.predict(tiny_digits.test_images[:1])
        )

    def test_single_image_partial_fit_counts_one_sample(self, tiny_digits):
        model = StreamingUHD(784, 10, UHDConfig(dim=128))
        model.partial_fit(tiny_digits.train_images[0],  # (28, 28) image
                          tiny_digits.train_labels[0])
        assert model.samples_seen == 1
        model.partial_fit(tiny_digits.train_images[1].reshape(-1),  # (784,)
                          tiny_digits.train_labels[1])
        assert model.samples_seen == 2

    def test_fit_and_predict_agree_on_every_shape(self, tiny_digits):
        """The same physical samples, three shapes, identical labels."""
        model = self._fitted(tiny_digits)
        imgs = tiny_digits.test_images[:4]  # (4, 28, 28)
        want = model.predict(imgs)
        np.testing.assert_array_equal(
            model.predict(imgs.reshape(4, -1)), want
        )
        np.testing.assert_array_equal(
            np.concatenate([model.predict(img) for img in imgs]), want
        )

    def test_wrong_pixel_count_rejected_everywhere(self, tiny_digits):
        model = self._fitted(tiny_digits)
        bad = np.zeros((2, 9), dtype=np.uint8)
        with pytest.raises(ValueError, match="pixels"):
            model.partial_fit(bad, np.zeros(2, dtype=np.int64))
        with pytest.raises(ValueError, match="pixels"):
            model.predict(bad)
        # a non-square 2-D array totalling num_pixels is a malformed
        # batch, not one image
        with pytest.raises(ValueError, match="pixels"):
            model.predict(np.zeros((2, 392), dtype=np.uint8))

    def test_label_count_mismatch_rejected(self, tiny_digits):
        model = StreamingUHD(784, 10, UHDConfig(dim=128))
        with pytest.raises(ValueError, match="label"):
            model.partial_fit(tiny_digits.train_images[:3],
                              tiny_digits.train_labels[:2])


class TestPrequential:
    def test_accuracy_improves_along_stream(self, tiny_digits):
        model = StreamingUHD(784, 10, UHDConfig(dim=512))
        accuracies = model.evaluate_prequential(
            tiny_digits.train_images, tiny_digits.train_labels, batch_size=25
        )
        assert len(accuracies) == tiny_digits.train_images.shape[0] // 25 - 1
        # Later batches should beat the early ones on average.
        assert np.mean(accuracies[-2:]) >= np.mean(accuracies[:2]) - 0.1

    def test_final_model_beats_chance(self, tiny_digits):
        model = StreamingUHD(784, 10, UHDConfig(dim=512))
        model.evaluate_prequential(tiny_digits.train_images,
                                   tiny_digits.train_labels, batch_size=40)
        assert model.score(tiny_digits.test_images,
                           tiny_digits.test_labels) > 0.3

    def test_batch_size_validation(self, tiny_digits):
        model = StreamingUHD(784, 10, UHDConfig(dim=128))
        with pytest.raises(ValueError):
            model.evaluate_prequential(tiny_digits.train_images,
                                       tiny_digits.train_labels, batch_size=0)

    def test_count_mismatch(self, tiny_digits):
        model = StreamingUHD(784, 10, UHDConfig(dim=128))
        with pytest.raises(ValueError):
            model.evaluate_prequential(tiny_digits.train_images,
                                       tiny_digits.train_labels[:5])
