"""End-to-end UHDClassifier."""

import numpy as np
import pytest

from repro.core import UHDClassifier, UHDConfig


class TestTraining:
    def test_beats_chance(self, tiny_digits):
        model = UHDClassifier(784, 10, UHDConfig(dim=512))
        model.fit(tiny_digits.train_images, tiny_digits.train_labels)
        acc = model.score(tiny_digits.test_images, tiny_digits.test_labels)
        assert acc > 0.3

    def test_deterministic(self, tiny_digits):
        scores = []
        for _ in range(2):
            model = UHDClassifier(784, 10, UHDConfig(dim=256))
            model.fit(tiny_digits.train_images, tiny_digits.train_labels)
            scores.append(model.score(tiny_digits.test_images,
                                      tiny_digits.test_labels))
        assert scores[0] == scores[1]

    def test_accuracy_grows_with_dim(self, tiny_digits):
        accs = {}
        for dim in (64, 1024):
            model = UHDClassifier(784, 10, UHDConfig(dim=dim))
            model.fit(tiny_digits.train_images, tiny_digits.train_labels)
            accs[dim] = model.score(tiny_digits.test_images,
                                    tiny_digits.test_labels)
        assert accs[1024] >= accs[64] - 0.05  # no collapse at higher D

    def test_predict_shape(self, tiny_digits):
        model = UHDClassifier(784, 10, UHDConfig(dim=256))
        model.fit(tiny_digits.train_images, tiny_digits.train_labels)
        preds = model.predict(tiny_digits.test_images)
        assert preds.shape == (tiny_digits.test_images.shape[0],)
        assert preds.min() >= 0 and preds.max() < 10

    def test_default_config(self):
        model = UHDClassifier(16, 2)
        assert model.config.dim == 1024

    def test_retrain_does_not_hurt_train_accuracy(self, tiny_digits):
        model = UHDClassifier(784, 10, UHDConfig(dim=256))
        model.fit(tiny_digits.train_images, tiny_digits.train_labels)
        before = model.score(tiny_digits.train_images, tiny_digits.train_labels)
        model.retrain(tiny_digits.train_images, tiny_digits.train_labels, epochs=2)
        after = model.score(tiny_digits.train_images, tiny_digits.train_labels)
        assert after >= before - 0.05


class TestValidation:
    def test_unfitted(self, tiny_digits):
        model = UHDClassifier(784, 10, UHDConfig(dim=256))
        with pytest.raises(RuntimeError):
            model.predict(tiny_digits.test_images)
        with pytest.raises(RuntimeError):
            model.score(tiny_digits.test_images, tiny_digits.test_labels)
        with pytest.raises(RuntimeError):
            model.retrain(tiny_digits.test_images, tiny_digits.test_labels)
        with pytest.raises(RuntimeError):
            _ = model.classifier

    def test_wrong_image_size(self, tiny_digits):
        model = UHDClassifier(100, 10, UHDConfig(dim=256))
        with pytest.raises(ValueError):
            model.fit(tiny_digits.train_images, tiny_digits.train_labels)

    def test_binarized_policy_plumbed(self, tiny_digits):
        model = UHDClassifier(784, 10, UHDConfig(dim=256, binarize=True))
        model.fit(tiny_digits.train_images, tiny_digits.train_labels)
        assert model.classifier.binarize is True
