"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import synthetic_mnist


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session-wide deterministic RNG for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_digits():
    """A small, session-cached digit dataset (fast enough for any test)."""
    return synthetic_mnist(n_train=200, n_test=100, seed=7)
