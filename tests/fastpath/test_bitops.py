"""Packed-word primitives: packing round-trips and popcount kernels."""

import numpy as np
import pytest

from repro.fastpath import bitops
from repro.fastpath.bitops import (
    pack_bipolar,
    pack_bits,
    packed_dot,
    packed_hamming,
    popcount,
    unpack_bipolar,
    unpack_bits,
    words_for_bits,
)


class TestPacking:
    @pytest.mark.parametrize("n", [1, 7, 63, 64, 65, 100, 127, 128, 1024])
    def test_roundtrip(self, n, rng):
        bits = rng.random((3, n)) < 0.5
        words = pack_bits(bits)
        assert words.dtype == np.uint64
        assert words.shape == (3, words_for_bits(n))
        np.testing.assert_array_equal(unpack_bits(words, n), bits)

    def test_pad_bits_are_zero(self, rng):
        bits = np.ones((2, 65), dtype=bool)
        words = pack_bits(bits)
        # bit 64 set in word 1, bits 65..127 clear
        assert int(words[0, 1]) == 1

    def test_little_bit_order(self):
        bits = np.zeros(64, dtype=bool)
        bits[3] = True
        assert int(pack_bits(bits)[0]) == 8

    def test_bipolar_roundtrip(self, rng):
        hv = np.where(rng.random((4, 70)) < 0.5, 1, -1).astype(np.int8)
        np.testing.assert_array_equal(unpack_bipolar(pack_bipolar(hv), 70), hv)


class TestPopcount:
    def test_matches_python_bin(self, rng):
        words = rng.integers(0, 2**63, size=(5, 7), dtype=np.uint64)
        expected = np.vectorize(lambda w: bin(int(w)).count("1"))(words)
        np.testing.assert_array_equal(popcount(words), expected)

    def test_lut_fallback_matches_fast_path(self, rng):
        """The pre-NumPy-2.0 byte-table path must agree with bitwise_count."""
        words = rng.integers(0, 2**63, size=(3, 11), dtype=np.uint64)
        words[0, 0] = 0
        words[0, 1] = np.uint64(0xFFFFFFFFFFFFFFFF)
        np.testing.assert_array_equal(bitops._popcount_lut(words), popcount(words))


class TestKernels:
    @pytest.mark.parametrize("dim", [8, 64, 100, 129])
    def test_hamming_matches_elementwise(self, dim, rng):
        q = np.where(rng.random((6, dim)) < 0.5, 1, -1)
        r = np.where(rng.random((4, dim)) < 0.5, 1, -1)
        expected = (q[:, None, :] != r[None, :, :]).sum(axis=2)
        got = packed_hamming(pack_bipolar(q), pack_bipolar(r))
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("dim", [8, 64, 100, 129])
    def test_dot_matches_integer_matmul(self, dim, rng):
        q = np.where(rng.random((6, dim)) < 0.5, 1, -1).astype(np.int64)
        r = np.where(rng.random((4, dim)) < 0.5, 1, -1).astype(np.int64)
        got = packed_dot(pack_bipolar(q), pack_bipolar(r), dim)
        np.testing.assert_array_equal(got, q @ r.T)

    def test_hamming_chunking_invariant(self, rng):
        q = np.where(rng.random((10, 64)) < 0.5, 1, -1)
        qw = pack_bipolar(q)
        np.testing.assert_array_equal(
            packed_hamming(qw, qw, chunk=3), packed_hamming(qw, qw)
        )

    def test_word_count_mismatch_raises(self):
        with pytest.raises(ValueError, match="word-count"):
            packed_hamming(
                np.zeros((1, 2), dtype=np.uint64), np.zeros((1, 3), dtype=np.uint64)
            )

    def test_vector_inputs_promote_to_matrix(self):
        a = pack_bipolar(np.array([1, -1, 1, -1]))
        assert a.shape == (1,)  # 1D hypervector -> 1D words
        assert packed_hamming(a, a).shape == (1, 1)
        assert packed_hamming(a, a)[0, 0] == 0
