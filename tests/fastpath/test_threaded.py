"""Threaded backend: bit-exactness with packed, registry wiring, sharding."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api import get_backend
from repro.core import UHDConfig
from repro.fastpath.bitops import pack_bits, packed_hamming
from repro.fastpath.encoder import PackedLevelEncoder
from repro.fastpath.threaded import (
    ThreadedBackend,
    ThreadedLevelEncoder,
    threaded_packed_hamming,
)
from repro.hdc.classifier import CentroidClassifier


@pytest.fixture()
def rng():
    """Function-scoped stream: leaves the session ``rng`` fixture untouched
    (several existing tests assert statistical properties at fixed positions
    of that shared stream)."""
    return np.random.default_rng(2718)


def _images(rng, count, pixels=49):
    return rng.integers(0, 256, size=(count, pixels), dtype=np.uint8).astype(np.uint8)


class TestThreadedEncoder:
    @pytest.mark.parametrize("batch", [1, 7, 33, 70])
    def test_bit_exact_with_packed(self, rng, batch):
        config = UHDConfig(dim=128)
        packed = PackedLevelEncoder(49, config)
        threaded = ThreadedLevelEncoder(49, config, max_workers=4)
        images = _images(rng, batch)
        np.testing.assert_array_equal(
            threaded.encode_batch(images, chunk=16),
            packed.encode_batch(images, chunk=16),
        )

    def test_bit_exact_across_pair_promotion(self, rng):
        config = UHDConfig(dim=128)
        packed = PackedLevelEncoder(49, config)
        threaded = ThreadedLevelEncoder(49, config, max_workers=3)
        for _ in range(3):  # crosses PAIR_PROMOTE_IMAGES on both encoders
            images = _images(rng, PackedLevelEncoder.PAIR_PROMOTE_IMAGES)
            np.testing.assert_array_equal(
                threaded.encode_batch(images), packed.encode_batch(images)
            )

    def test_single_worker_stays_serial(self, rng):
        config = UHDConfig(dim=64)
        threaded = ThreadedLevelEncoder(49, config, max_workers=1)
        reference = PackedLevelEncoder(49, config)
        images = _images(rng, 40)
        np.testing.assert_array_equal(
            threaded.encode_batch(images), reference.encode_batch(images)
        )
        assert threaded._pool is None  # never fanned out

    def test_worker_count_floor(self):
        encoder = ThreadedLevelEncoder(16, UHDConfig(dim=64), max_workers=0)
        assert encoder.max_workers == 1
        default = ThreadedLevelEncoder(16, UHDConfig(dim=64))
        assert default.max_workers >= 1


class TestThreadedRegistryWiring:
    def test_config_selects_threaded_encoder(self):
        backend = get_backend("threaded")
        encoder = backend.make_encoder(49, UHDConfig(dim=64, backend="threaded"))
        assert isinstance(encoder, ThreadedLevelEncoder)
        assert backend.encoder_kind(UHDConfig(dim=64, backend="threaded"), 49) == (
            "packed"
        )

    def test_forced_like_packed(self):
        backend = get_backend("threaded")
        with pytest.raises(ValueError, match="quantized"):
            backend.encoder_kind(
                UHDConfig(dim=64, quantized=False, backend="threaded"), 49
            )
        with pytest.raises(ValueError, match="pixels"):
            backend.encoder_kind(
                UHDConfig(dim=64, backend="threaded"),
                PackedLevelEncoder.MAX_PIXELS + 1,
            )

    def test_inference_policy_matches_packed(self):
        backend = get_backend("threaded")
        assert backend.use_packed_inference(True)
        assert not backend.use_packed_inference(False)


class TestThreadedHamming:
    def test_matches_serial_kernel(self, rng):
        queries = pack_bits(rng.integers(0, 2, size=(700, 256)).astype(bool))
        references = pack_bits(rng.integers(0, 2, size=(10, 256)).astype(bool))
        with ThreadPoolExecutor(max_workers=4) as pool:
            sharded = threaded_packed_hamming(
                queries, references, pool, min_rows_per_worker=64
            )
        np.testing.assert_array_equal(
            sharded, packed_hamming(queries, references)
        )

    def test_small_inputs_fall_through_serial(self, rng):
        queries = pack_bits(rng.integers(0, 2, size=(8, 128)).astype(bool))
        references = pack_bits(rng.integers(0, 2, size=(4, 128)).astype(bool))
        with ThreadPoolExecutor(max_workers=4) as pool:
            np.testing.assert_array_equal(
                threaded_packed_hamming(queries, references, pool),
                packed_hamming(queries, references),
            )


class TestThreadedInference:
    def test_predictions_equal_packed_on_every_row(self, rng):
        dim = 256
        encoded = rng.integers(-30, 31, size=(600, dim)).astype(np.int64)
        labels = rng.integers(0, 7, size=600)
        packed_clf = CentroidClassifier(
            7, dim, binarize=True, backend=get_backend("packed")
        ).fit(encoded, labels)
        threaded_clf = CentroidClassifier(
            7, dim, binarize=True, backend=ThreadedBackend(max_workers=3)
        ).fit(encoded, labels)
        np.testing.assert_array_equal(
            threaded_clf.predict(encoded), packed_clf.predict(encoded)
        )
        np.testing.assert_allclose(
            threaded_clf.similarities(encoded),
            packed_clf.similarities(encoded),
            rtol=0,
            atol=0,
        )


class TestLazyPoolForkSafety:
    """A pool started pre-fork must not be submitted to post-fork."""

    def test_executor_recreated_when_pid_changes(self):
        from repro.fastpath.threaded import _LazyPool

        pool = _LazyPool(max_workers=2, thread_name_prefix="t")
        first = pool.executor()
        assert pool.executor() is first  # same process: cached
        pool._pool_pid = -1  # simulate an inherited post-fork copy
        second = pool.executor()
        assert second is not first  # dead inherited executor was dropped
        assert second.submit(lambda: 21 * 2).result(timeout=5.0) == 42
        pool.shutdown()

    def test_shutdown_skips_joining_inherited_threads(self):
        from repro.fastpath.threaded import _LazyPool

        pool = _LazyPool(max_workers=1, thread_name_prefix="t")
        pool.executor()
        pool._pool_pid = -1  # not ours: shutdown must not join, only drop
        pool.shutdown()
        assert not pool.started
