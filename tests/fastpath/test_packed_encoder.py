"""Bit-exactness of the packed encoder against the reference quantized path.

The property mirrors the paper's hardware-substitution claim the same way
the unary-domain tests do: every accumulator bit must match, across
dimensions not divisible by 64, odd/even pixel counts, both gather tables
and the lazy pair promotion.
"""

import numpy as np
import pytest

from repro.core import SobolLevelEncoder, UHDConfig
from repro.fastpath import PackedLevelEncoder, encoder_backend, make_encoder


def _images(rng, n, pixels):
    return rng.integers(0, 256, size=(n, pixels), dtype=np.uint8)


class TestBitExactness:
    @pytest.mark.parametrize("pixels", [9, 16, 25, 36])  # odd and even H
    @pytest.mark.parametrize("dim", [37, 64, 100])       # incl. D % 64 != 0
    @pytest.mark.parametrize("levels", [4, 16])
    def test_matches_reference(self, pixels, dim, levels, rng):
        config = UHDConfig(dim=dim, levels=levels)
        reference = SobolLevelEncoder(pixels, config)
        packed = PackedLevelEncoder(pixels, config)
        images = _images(rng, 6, pixels)
        np.testing.assert_array_equal(
            packed.encode_batch(images), reference.encode_batch(images)
        )

    @pytest.mark.parametrize("pixels", [7, 12])
    def test_single_and_pair_tables_agree(self, pixels, rng):
        config = UHDConfig(dim=96, levels=16)
        reference = SobolLevelEncoder(pixels, config)
        single = PackedLevelEncoder(pixels, config, pair_lut_budget=0)
        paired = PackedLevelEncoder(pixels, config)
        paired.PAIR_PROMOTE_IMAGES = 0
        images = _images(rng, 5, pixels)
        expected = reference.encode_batch(images)
        np.testing.assert_array_equal(single.encode_batch(images), expected)
        np.testing.assert_array_equal(paired.encode_batch(images), expected)
        assert single._table.group == 1
        assert paired._table.group == 2

    def test_pair_promotion_mid_stream(self, rng):
        """Crossing the promotion threshold must not change a single bit."""
        config = UHDConfig(dim=64, levels=16)
        reference = SobolLevelEncoder(10, config)
        packed = PackedLevelEncoder(10, config)
        packed.PAIR_PROMOTE_IMAGES = 8
        images = _images(rng, 5, 10)
        for _ in range(3):  # 5, 10, 15 images seen: promotes on the third call
            np.testing.assert_array_equal(
                packed.encode_batch(images), reference.encode_batch(images)
            )
        assert packed._table.group == 2

    def test_float_images(self, rng):
        config = UHDConfig(dim=80, levels=16)
        reference = SobolLevelEncoder(12, config)
        packed = PackedLevelEncoder(12, config)
        images = rng.random((4, 12)).astype(np.float32)
        np.testing.assert_array_equal(
            packed.encode_batch(images), reference.encode_batch(images)
        )

    def test_single_image_encode(self, rng):
        config = UHDConfig(dim=48)
        reference = SobolLevelEncoder(9, config)
        packed = PackedLevelEncoder(9, config)
        image = _images(rng, 1, 9)[0]
        np.testing.assert_array_equal(packed.encode(image), reference.encode(image))

    def test_batch_chunking_invariant(self, rng):
        config = UHDConfig(dim=64)
        packed = PackedLevelEncoder(25, config)
        images = _images(rng, 11, 25)
        np.testing.assert_array_equal(
            packed.encode_batch(images, chunk=3), packed.encode_batch(images, chunk=32)
        )

    def test_extreme_images(self):
        """All-black / all-white hit the count bounds 0 and H exactly."""
        config = UHDConfig(dim=70, levels=16)
        reference = SobolLevelEncoder(33, config)
        packed = PackedLevelEncoder(33, config)
        images = np.stack([
            np.zeros(33, dtype=np.uint8), np.full(33, 255, dtype=np.uint8)
        ])
        np.testing.assert_array_equal(
            packed.encode_batch(images), reference.encode_batch(images)
        )


class TestValidationAndSelection:
    def test_requires_quantized(self):
        with pytest.raises(ValueError, match="quantized"):
            PackedLevelEncoder(4, UHDConfig(dim=32, quantized=False))

    def test_wrong_pixel_count(self):
        packed = PackedLevelEncoder(4, UHDConfig(dim=32))
        with pytest.raises(ValueError, match="pixels"):
            packed.encode_batch(np.zeros((1, 5), dtype=np.uint8))

    def test_auto_selects_packed_when_quantized(self):
        config = UHDConfig(dim=32)
        assert encoder_backend(config, 16) == "packed"
        assert isinstance(make_encoder(16, config), PackedLevelEncoder)

    def test_auto_falls_back_when_not_quantized(self):
        config = UHDConfig(dim=32, quantized=False)
        assert encoder_backend(config, 16) == "reference"
        encoder = make_encoder(16, config)
        assert not isinstance(encoder, PackedLevelEncoder)

    def test_forced_packed_without_quantization_raises(self):
        config = UHDConfig(dim=32, quantized=False, backend="packed")
        with pytest.raises(ValueError, match="quantized"):
            encoder_backend(config, 16)

    def test_reference_backend_respected(self):
        config = UHDConfig(dim=32, backend="reference")
        assert encoder_backend(config, 16) == "reference"

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            UHDConfig(backend="gpu")
