"""Packed binarized inference vs the reference cosine classifier."""

import numpy as np
import pytest

from repro.core import StreamingUHD, UHDClassifier, UHDConfig
from repro.fastpath import use_packed_inference
from repro.fastpath.inference import (
    pack_accumulators,
    packed_cosine,
    packed_dot_similarity,
    packed_predict,
)
from repro.hdc.classifier import CentroidClassifier
from repro.hdc.ops import binarize


def _fitted_pair(rng, dim, n=40, classes=4):
    encoded = rng.integers(-100, 101, size=(n, dim), dtype=np.int64)
    labels = rng.integers(0, classes, size=n)
    reference = CentroidClassifier(classes, dim, binarize=True, backend="reference")
    packed = CentroidClassifier(classes, dim, binarize=True, backend="packed")
    return reference.fit(encoded, labels), packed.fit(encoded, labels), encoded


def _untied_rows(queries, classifier):
    """Rows whose binarized ranking is well-defined (unique max dot).

    On exact integer-dot ties the reference argmax follows float rounding
    that can differ across BLAS builds, so cross-backend equality is only
    a deterministic property off those rows (see CentroidClassifier.predict).
    """
    dots = (
        binarize(queries).astype(np.int64)
        @ binarize(classifier.accumulators).astype(np.int64).T
    )
    return (dots == dots.max(axis=1, keepdims=True)).sum(axis=1) == 1


class TestPackedPredict:
    @pytest.mark.parametrize("dim", [37, 64, 100, 1024])  # incl. D % 64 != 0
    def test_predictions_match_reference(self, dim, rng):
        reference, packed, encoded = _fitted_pair(rng, dim)
        queries = rng.integers(-100, 101, size=(25, dim), dtype=np.int64)
        untied = _untied_rows(queries, reference)
        assert untied.sum() >= 20  # the property covers essentially all rows
        np.testing.assert_array_equal(
            packed.predict(queries)[untied], reference.predict(queries)[untied]
        )

    def test_tie_handling_contract(self):
        """Disagreements can only happen on exact integer-dot ties.

        D = 128 makes sqrt(D) inexact, so the reference's float cosines
        break exact ties by rounding noise (batch-shape dependent via BLAS
        blocking) rather than by any reproducible rule; 512 queries
        reliably produce such ties.  The packed contract: identical labels
        on every well-defined row, lowest tied class index otherwise.
        """
        local = np.random.default_rng(0)
        dim = 128
        encoded = local.integers(-784, 785, size=(512, dim), dtype=np.int64)
        labels = local.integers(0, 10, size=512)
        reference = CentroidClassifier(10, dim, binarize=True, backend="reference")
        packed = CentroidClassifier(10, dim, binarize=True, backend="packed")
        reference.fit(encoded, labels)
        packed.fit(encoded, labels)
        dots = (
            binarize(encoded).astype(np.int64)
            @ binarize(reference.accumulators).astype(np.int64).T
        )
        tied = (dots == dots.max(axis=1, keepdims=True)).sum(axis=1) > 1
        assert tied.any()  # the scenario actually exercises ties
        ref_pred = reference.predict(encoded)
        packed_pred = packed.predict(encoded)
        np.testing.assert_array_equal(packed_pred[~tied], ref_pred[~tied])
        # tied rows: deterministic lowest-index rule, and still a max dot
        np.testing.assert_array_equal(packed_pred[tied], dots[tied].argmax(axis=1))

    def test_dots_match_integer_matmul(self, rng):
        dim = 100
        reference, packed, encoded = _fitted_pair(rng, dim)
        queries = rng.integers(-100, 101, size=(9, dim), dtype=np.int64)
        dots = packed_dot_similarity(
            pack_accumulators(queries), packed._packed_class_words(), dim
        )
        expected = (
            binarize(queries).astype(np.int64)
            @ binarize(reference.accumulators).astype(np.int64).T
        )
        np.testing.assert_array_equal(dots, expected)

    def test_similarities_match_cosine_closely(self, rng):
        reference, packed, encoded = _fitted_pair(rng, 64)
        queries = rng.integers(-100, 101, size=(9, 64), dtype=np.int64)
        np.testing.assert_allclose(
            packed.similarities(queries),
            reference.similarities(queries),
            rtol=0,
            atol=1e-12,
        )

    def test_empty_class_zero_accumulator(self, rng):
        """A class nobody trained stays all-zero: ties-to-+1 on every bit."""
        dim = 70
        encoded = rng.integers(-50, 51, size=(10, dim), dtype=np.int64)
        labels = np.zeros(10, dtype=np.int64)  # class 1 never seen
        reference = CentroidClassifier(2, dim, binarize=True, backend="reference")
        packed = CentroidClassifier(2, dim, binarize=True, backend="packed")
        reference.fit(encoded, labels)
        packed.fit(encoded, labels)
        untied = _untied_rows(encoded, reference)
        np.testing.assert_array_equal(
            packed.predict(encoded)[untied], reference.predict(encoded)[untied]
        )
        # the zero accumulator binarizes to all +1 = all bits set
        words = packed._packed_class_words()
        np.testing.assert_array_equal(
            packed_dot_similarity(words[1:], words[1:], dim), [[dim]]
        )

    def test_zero_query_accumulator(self, rng):
        reference, packed, _ = _fitted_pair(rng, 48)
        queries = np.zeros((2, 48), dtype=np.int64)
        untied = _untied_rows(queries, reference)
        np.testing.assert_array_equal(
            packed.predict(queries)[untied], reference.predict(queries)[untied]
        )

    def test_packed_cache_invalidated_by_retrain(self, rng):
        dim = 64
        reference, packed, encoded = _fitted_pair(rng, dim)
        labels = rng.integers(0, 4, size=encoded.shape[0])
        packed.predict(encoded)  # build the cache
        reference.retrain(encoded, labels, epochs=2)
        packed.retrain(encoded, labels, epochs=2)
        np.testing.assert_array_equal(
            packed.predict(encoded), reference.predict(encoded)
        )

    def test_packed_predict_function_direct(self, rng):
        dim = 100
        acc = rng.integers(-30, 31, size=(3, dim), dtype=np.int64)
        queries = rng.integers(-30, 31, size=(6, dim), dtype=np.int64)
        words = pack_accumulators(acc)
        expected = (
            binarize(queries).astype(np.int64) @ binarize(acc).astype(np.int64).T
        ).argmax(axis=1)
        np.testing.assert_array_equal(packed_predict(queries, words, dim), expected)
        cos = packed_cosine(pack_accumulators(queries), words, dim)
        assert cos.shape == (6, 3)
        assert np.abs(cos).max() <= 1.0


class TestBackendPolicy:
    def test_non_binarized_stays_on_reference(self):
        assert not use_packed_inference("auto", binarize=False)
        assert not use_packed_inference("packed", binarize=False)
        assert use_packed_inference("auto", binarize=True)
        assert not use_packed_inference("reference", binarize=True)

    def test_classifier_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            CentroidClassifier(2, 8, backend="simd")

    def test_non_binarized_predictions_unchanged_by_backend(self, rng):
        dim = 64
        encoded = rng.integers(-50, 51, size=(30, dim), dtype=np.int64)
        labels = rng.integers(0, 3, size=30)
        default = CentroidClassifier(3, dim, backend="auto").fit(encoded, labels)
        reference = CentroidClassifier(3, dim, backend="reference").fit(encoded, labels)
        np.testing.assert_array_equal(
            default.predict(encoded), reference.predict(encoded)
        )


class TestEndToEndBackends:
    def test_uhd_classifier_backends_agree(self, rng):
        images = rng.integers(0, 256, size=(40, 25), dtype=np.uint8)
        labels = rng.integers(0, 3, size=40)
        results = {}
        # dim a power of 4: sqrt(D) and all cosine partial sums are exact
        # in float64, so even tied rows agree deterministically across BLAS
        for backend in ("auto", "packed", "reference"):
            config = UHDConfig(dim=64, binarize=True, backend=backend)
            model = UHDClassifier(25, 3, config).fit(images, labels)
            results[backend] = model.predict(images)
        np.testing.assert_array_equal(results["auto"], results["reference"])
        np.testing.assert_array_equal(results["packed"], results["reference"])

    def test_streaming_backends_agree(self, rng):
        images = rng.integers(0, 256, size=(30, 16), dtype=np.uint8)
        labels = rng.integers(0, 2, size=30)
        scores = {}
        for backend in ("packed", "reference"):
            config = UHDConfig(dim=64, backend=backend)
            stream = StreamingUHD(16, 2, config)
            accs = stream.evaluate_prequential(images, labels, batch_size=10)
            scores[backend] = accs
        assert scores["packed"] == scores["reference"]
