"""Table stores: byte-identical round-trips, attach semantics, guards."""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.core.config import UHDConfig
from repro.fastpath import PackedLevelEncoder, ThreadedLevelEncoder
from repro.fastpath.tablestore import (
    HeapStore,
    MmapStore,
    SharedMemoryStore,
    TableFormatError,
    attach_handle,
    make_store,
    read_table_file,
    table_key,
    write_table_file,
)

PIXELS = 64
CONFIG = UHDConfig(dim=128, backend="packed", binarize=True)


@pytest.fixture(scope="module")
def warm_encoder():
    """A pair-promoted encoder plus reference accumulators to compare to."""
    encoder = PackedLevelEncoder(PIXELS, CONFIG)
    rng = np.random.default_rng(7)
    images = rng.integers(0, 256, size=(160, PIXELS), dtype=np.uint8)
    expected = encoder.encode_batch(images)
    assert encoder._table.group == 2  # promoted: the big-table case
    return encoder, images, expected


def _stores(tmp_path):
    return [HeapStore(), MmapStore(tmp_path / "tables"), SharedMemoryStore()]


class TestStoreRoundTrip:
    def test_attached_tables_are_byte_identical(self, warm_encoder, tmp_path):
        """The sixth bit-exactness contract, at the byte level."""
        encoder, _, _ = warm_encoder
        exported = encoder.export_tables()
        for store in _stores(tmp_path):
            with store:
                attached = attach_handle(store.publish(exported))
                assert attached is not None, store.name
                assert attached.kind == exported.kind
                assert attached.key == exported.key
                assert np.array_equal(
                    np.asarray(attached.flat), np.asarray(exported.flat)
                ), store.name

    def test_attached_encoder_is_bit_exact(self, warm_encoder, tmp_path):
        encoder, images, expected = warm_encoder
        exported = encoder.export_tables()
        for store in _stores(tmp_path):
            with store:
                cold = PackedLevelEncoder(PIXELS, CONFIG)
                cold.attach_tables(attach_handle(store.publish(exported)))
                assert np.array_equal(cold.encode_batch(images), expected)
                assert cold.table_builds == 0  # attached, never built

    def test_threaded_encoder_attaches_packed_tables(self, warm_encoder, tmp_path):
        """backend is excluded from the table key: packed tables serve
        threaded encoders byte-for-byte."""
        encoder, images, expected = warm_encoder
        with SharedMemoryStore() as store:
            handle = store.publish(encoder.export_tables())
            threaded = ThreadedLevelEncoder(PIXELS, CONFIG, max_workers=2)
            threaded.attach_tables(attach_handle(handle))
            assert np.array_equal(threaded.encode_batch(images), expected)
            assert threaded.table_builds == 0

    def test_handles_survive_pickling(self, warm_encoder, tmp_path):
        """Handles cross the worker handshake as pickled tuples."""
        encoder, _, _ = warm_encoder
        exported = encoder.export_tables()
        for store in _stores(tmp_path):
            with store:
                handle = store.publish(exported)
                clone = pickle.loads(pickle.dumps(handle))
                attached = attach_handle(clone)
                assert attached is not None
                assert np.array_equal(
                    np.asarray(attached.flat), np.asarray(exported.flat)
                )

    def test_released_handle_attaches_to_none(self, warm_encoder, tmp_path):
        """A released publication resolves to None — callers build instead."""
        encoder, _, _ = warm_encoder
        exported = encoder.export_tables()
        for store in _stores(tmp_path):
            handle = store.publish(exported)
            store.release(handle)
            assert attach_handle(handle) is None, store.name
            store.close()

    def test_single_table_attach_then_promotes_locally(self, tmp_path):
        """Attaching a pre-promotion (single) table still allows the
        local lazy pair promotion — built on top of the attached bytes."""
        encoder = PackedLevelEncoder(PIXELS, CONFIG)
        rng = np.random.default_rng(3)
        few = rng.integers(0, 256, size=(8, PIXELS), dtype=np.uint8)
        many = rng.integers(0, 256, size=(200, PIXELS), dtype=np.uint8)
        expected_few = encoder.encode_batch(few)
        exported = encoder.export_tables()  # still single: 8 < promote point
        assert exported.kind == "single"
        path = tmp_path / "single.uhdtbl"
        write_table_file(path, exported)
        cold = PackedLevelEncoder(PIXELS, CONFIG)
        cold.attach_tables(read_table_file(path))
        assert np.array_equal(cold.encode_batch(few), expected_few)
        assert cold.table_builds == 0
        expected_many = PackedLevelEncoder(PIXELS, CONFIG).encode_batch(many)
        assert np.array_equal(cold.encode_batch(many), expected_many)
        assert cold._table.group == 2  # promoted past the attached table
        assert cold.table_builds == 1  # exactly the pair build, nothing else


class TestGuards:
    def test_attach_refuses_warm_encoder(self, warm_encoder):
        encoder, _, _ = warm_encoder
        with pytest.raises(RuntimeError, match="already has a gather table"):
            encoder.attach_tables(encoder.export_tables())

    def test_attach_refuses_mismatched_key(self, warm_encoder):
        encoder, _, _ = warm_encoder
        exported = encoder.export_tables()
        other = PackedLevelEncoder(PIXELS, UHDConfig(dim=128, seed=99))
        with pytest.raises(TableFormatError, match="cannot attach"):
            other.attach_tables(exported)

    def test_backend_not_part_of_key(self):
        threaded = UHDConfig(dim=128, backend="threaded", binarize=True)
        assert table_key(PIXELS, CONFIG) == table_key(PIXELS, threaded)
        assert table_key(PIXELS, CONFIG) != table_key(PIXELS + 1, CONFIG)

    def test_unknown_store_name_rejected(self):
        with pytest.raises(ValueError, match="unknown table store"):
            make_store("cloud")

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.uhdtbl"
        path.write_bytes(b"definitely not a table file")
        with pytest.raises(TableFormatError, match="bad magic"):
            read_table_file(path)

    def test_truncated_file_raises(self, warm_encoder, tmp_path):
        encoder, _, _ = warm_encoder
        path = tmp_path / "trunc.uhdtbl"
        write_table_file(path, encoder.export_tables())
        full = path.read_bytes()
        path.write_bytes(full[: len(full) // 2])
        with pytest.raises(TableFormatError, match="truncated"):
            read_table_file(path)

    def test_attached_file_is_read_only_memmap(self, warm_encoder, tmp_path):
        encoder, _, _ = warm_encoder
        path = tmp_path / "ro.uhdtbl"
        write_table_file(path, encoder.export_tables())
        attached = read_table_file(path)
        assert isinstance(attached.flat, np.memmap)
        assert not attached.flat.flags.writeable

    def test_shm_attach_is_read_only(self, warm_encoder):
        encoder, _, _ = warm_encoder
        with SharedMemoryStore() as store:
            attached = attach_handle(store.publish(encoder.export_tables()))
            assert not attached.flat.flags.writeable
            del attached  # drop the segment view before the store unlinks


class TestExport:
    def test_cold_export_builds_then_exports(self):
        encoder = PackedLevelEncoder(PIXELS, CONFIG)
        assert not encoder.tables_ready
        exported = encoder.export_tables()
        assert encoder.tables_ready
        assert exported.kind == "single"
        assert exported.flat.shape[0] == PIXELS

    def test_promote_export_forces_pair_table(self):
        encoder = PackedLevelEncoder(PIXELS, CONFIG)
        exported = encoder.export_tables(promote=True)
        assert exported.kind == "pair"
        assert exported.flat.shape[0] == (PIXELS + 1) // 2
        # an attacher inherits the promoted state: no later re-promotion
        assert exported.images_seen >= PackedLevelEncoder.PAIR_PROMOTE_IMAGES

    def test_table_nbytes_tracks_current_table(self):
        encoder = PackedLevelEncoder(PIXELS, CONFIG)
        assert encoder.table_nbytes == 0
        encoder.export_tables()
        single = encoder.table_nbytes
        assert single > 0
        encoder.export_tables(promote=True)
        assert encoder.table_nbytes > single  # pair table is xi x larger


class TestTruncationEdges:
    def test_file_cut_inside_header_length_field(self, tmp_path):
        from repro.fastpath.tablestore import TABLE_FILE_MAGIC

        path = tmp_path / "tiny.uhdtbl"
        path.write_bytes(TABLE_FILE_MAGIC + b"\x10\x00")  # magic + 2 bytes
        with pytest.raises(TableFormatError, match="truncated"):
            read_table_file(path)

    def test_file_cut_inside_header_json(self, tmp_path, warm_encoder):
        encoder, _, _ = warm_encoder
        path = tmp_path / "cut.uhdtbl"
        write_table_file(path, encoder.export_tables())
        full = path.read_bytes()
        path.write_bytes(full[:20])  # magic + length + header fragment
        with pytest.raises(TableFormatError, match="truncated"):
            read_table_file(path)
