"""Command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig6" in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "uhd" in out and "baseline" in out

    def test_table2_custom_dims(self, capsys):
        assert main(["table2", "--dims", "1024"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "1024" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "This work (measured)" in out
        assert "Semi-HD" in out

    def test_checkpoints(self, capsys):
        assert main(["checkpoints"]) == 0
        out = capsys.readouterr().out
        assert "checkpoint1" in out and "checkpoint3" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_bench_writes_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "bench.json"
        assert main(["bench", "--dims", "64", "--repeats", "2",
                     "--out", str(out_path)]) == 0
        printed = capsys.readouterr().out
        assert "uhd_encode_packed" in printed
        results = json.loads(out_path.read_text())
        names = [b["name"] for b in results["benchmarks"]]
        assert "uhd_encode_reference" in names
        packed = next(b for b in results["benchmarks"]
                      if b["name"] == "uhd_encode_packed")
        assert packed["speedup_vs_reference"] > 0

    def test_backend_flag_accepted(self, capsys):
        with pytest.raises(SystemExit):
            main(["table4", "--backend", "gpu"])

    def test_backend_choices_come_from_registry(self, capsys):
        with pytest.raises(SystemExit):
            main(["table4", "--help"])
        assert "threaded" in capsys.readouterr().out


class TestModelLifecycleCli:
    def _save(self, tmp_path, capsys, backend="packed"):
        path = tmp_path / "model.npz"
        assert main([
            "save", "--out", str(path), "--dim", "128",
            "--n-train", "200", "--n-test", "80", "--backend", backend,
        ]) == 0
        return path, capsys.readouterr().out

    def test_save_then_load_round_trip(self, tmp_path, capsys):
        path, saved_out = self._save(tmp_path, capsys)
        assert "saved model to" in saved_out
        assert path.exists()
        saved_accuracy = saved_out.split("test accuracy ")[1].split("%")[0]
        assert main([
            "load", "--model", str(path), "--n-train", "200", "--n-test", "80",
        ]) == 0
        loaded_out = capsys.readouterr().out
        assert "without retraining" in loaded_out
        # same split, warm-loaded model: bit-exact accuracy
        assert f"test accuracy on mnist: {saved_accuracy}%" in loaded_out

    def test_load_with_backend_override(self, tmp_path, capsys):
        path, saved_out = self._save(tmp_path, capsys, backend="reference")
        saved_accuracy = saved_out.split("test accuracy ")[1].split("%")[0]
        assert main([
            "load", "--model", str(path), "--n-train", "200", "--n-test", "80",
            "--backend", "threaded",
        ]) == 0
        loaded_out = capsys.readouterr().out
        assert "backend=threaded" in loaded_out
        assert f"test accuracy on mnist: {saved_accuracy}%" in loaded_out

    def test_serve_check(self, tmp_path, capsys):
        path, _ = self._save(tmp_path, capsys, backend="threaded")
        assert main([
            "serve-check", "--model", str(path), "--batch", "16",
            "--repeats", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "serve-check OK" in out
        assert "deterministic" in out

    def test_list_mentions_lifecycle(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "serve-check" in out
