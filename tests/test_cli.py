"""Command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig6" in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "uhd" in out and "baseline" in out

    def test_table2_custom_dims(self, capsys):
        assert main(["table2", "--dims", "1024"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "1024" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "This work (measured)" in out
        assert "Semi-HD" in out

    def test_checkpoints(self, capsys):
        assert main(["checkpoints"]) == 0
        out = capsys.readouterr().out
        assert "checkpoint1" in out and "checkpoint3" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_bench_writes_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "bench.json"
        assert main(["bench", "--dims", "64", "--repeats", "2",
                     "--out", str(out_path)]) == 0
        printed = capsys.readouterr().out
        assert "uhd_encode_packed" in printed
        results = json.loads(out_path.read_text())
        names = [b["name"] for b in results["benchmarks"]]
        assert "uhd_encode_reference" in names
        packed = next(b for b in results["benchmarks"]
                      if b["name"] == "uhd_encode_packed")
        assert packed["speedup_vs_reference"] > 0

    def test_backend_flag_accepted(self, capsys):
        with pytest.raises(SystemExit):
            main(["table4", "--backend", "gpu"])
