"""Docs stay navigable: the markdown link checker runs as a tier-1 test."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
SCRIPT = REPO / "scripts" / "check_md_links.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_md_links", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_md_links", module)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


class TestRepoDocs:
    def test_all_repo_markdown_links_resolve(self, capsys):
        targets = [str(p) for p in sorted(REPO.glob("*.md"))] + [
            str(REPO / "docs")
        ]
        assert checker.main(targets) == 0, capsys.readouterr().out

    def test_docs_exist(self):
        assert (REPO / "docs" / "ARCHITECTURE.md").is_file()
        assert (REPO / "docs" / "serving.md").is_file()

    def test_readme_links_the_docs_set(self):
        text = (REPO / "README.md").read_text(encoding="utf-8")
        assert "docs/serving.md" in text
        assert "docs/ARCHITECTURE.md" in text


class TestCheckerBehaviour:
    def test_broken_relative_link_detected(self, tmp_path):
        md = tmp_path / "page.md"
        md.write_text("see [missing](nope/gone.md)\n", encoding="utf-8")
        problems = checker.check_file(md)
        assert len(problems) == 1 and "gone.md" in problems[0]

    def test_caret_in_link_text_still_checked(self, tmp_path):
        md = tmp_path / "page.md"
        md.write_text("[x^2 scaling](missing.md)\n", encoding="utf-8")
        problems = checker.check_file(md)
        assert len(problems) == 1 and "missing.md" in problems[0]

    def test_good_relative_link_and_anchor_pass(self, tmp_path):
        (tmp_path / "other.md").write_text("# other\n", encoding="utf-8")
        md = tmp_path / "page.md"
        md.write_text(
            "[ok](other.md) [anchored](other.md#other) [self](#here)\n",
            encoding="utf-8",
        )
        assert checker.check_file(md) == []

    def test_absolute_urls_skipped_without_network(self, tmp_path):
        md = tmp_path / "page.md"
        md.write_text(
            "[web](https://example.com/x) [mail](mailto:a@b.c)\n",
            encoding="utf-8",
        )
        assert checker.check_file(md) == []

    def test_code_fences_ignored(self, tmp_path):
        md = tmp_path / "page.md"
        md.write_text(
            "```python\nx = d[key](arg)  # looks like a [link](target)\n```\n",
            encoding="utf-8",
        )
        assert checker.check_file(md) == []

    def test_missing_root_reported(self, capsys):
        assert checker.main([str(REPO / "no-such-dir")]) == 2

    def test_cli_exit_codes(self, tmp_path):
        good = tmp_path / "good.md"
        good.write_text("no links here\n", encoding="utf-8")
        assert checker.main([str(good)]) == 0
        bad = tmp_path / "bad.md"
        bad.write_text("[x](missing.md)\n", encoding="utf-8")
        assert checker.main([str(bad)]) == 1


@pytest.mark.parametrize("doc", ["ARCHITECTURE.md", "serving.md"])
def test_docs_mention_their_siblings(doc):
    """The two docs cross-link each other (one navigable set)."""
    text = (REPO / "docs" / doc).read_text(encoding="utf-8")
    sibling = "serving.md" if doc == "ARCHITECTURE.md" else "ARCHITECTURE.md"
    assert sibling in text
