"""Energy accounting, area sums, critical path, synthesis reports."""

import pytest

from repro.hardware import (
    LIBRARY,
    Netlist,
    Simulator,
    area_by_kind,
    area_um2,
    arrival_times_ps,
    cell,
    characterize,
    critical_path_ps,
    dynamic_energy_fj,
    rom_area_um2,
)
from repro.hardware.cells import DFF_CLOCK_ENERGY_FJ


def inverter_netlist() -> Netlist:
    nl = Netlist(name="inv")
    a = nl.add_input("a")
    nl.add_output("y", nl.add_gate("INV", a))
    return nl


class TestCellLibrary:
    def test_lookup(self):
        assert cell("AND2").inputs == 2

    def test_unknown(self):
        with pytest.raises(KeyError):
            cell("AND9")

    def test_sane_ranges(self):
        for spec in LIBRARY.values():
            assert spec.area_um2 >= 0.0
            assert spec.delay_ps >= 0.0
            assert spec.energy_fj >= 0.0

    def test_complex_cells_cost_more(self):
        assert cell("XOR2").energy_fj > cell("NAND2").energy_fj
        assert cell("DFF").area_um2 > cell("INV").area_um2


class TestEnergy:
    def test_manual_toggle_accounting(self):
        nl = inverter_netlist()
        sim = Simulator(nl)
        sim.evaluate({"a": 0})  # out 0->1
        sim.evaluate({"a": 1})  # out 1->0
        breakdown = dynamic_energy_fj(sim)
        assert breakdown.combinational_fj == pytest.approx(2 * cell("INV").energy_fj)
        assert breakdown.total_fj == breakdown.combinational_fj

    def test_flop_clock_energy_charged_per_cycle(self):
        nl = Netlist()
        d = nl.add_input("d")
        nl.add_output("q", nl.add_flop(d))
        sim = Simulator(nl)
        for _ in range(5):
            sim.step({"d": 0})
        breakdown = dynamic_energy_fj(sim)
        assert breakdown.flop_clock_fj == pytest.approx(5 * DFF_CLOCK_ENERGY_FJ)
        assert breakdown.flop_data_fj == 0.0

    def test_flop_data_energy(self):
        nl = Netlist()
        d = nl.add_input("d")
        nl.add_output("q", nl.add_flop(d))
        sim = Simulator(nl)
        for bit in (1, 0, 1):
            sim.step({"d": bit})
        assert dynamic_energy_fj(sim).flop_data_fj == pytest.approx(
            3 * cell("DFF").energy_fj
        )

    def test_memory_charge(self):
        sim = Simulator(inverter_netlist())
        breakdown = dynamic_energy_fj(sim)
        breakdown.add_memory_access(12.5)
        assert breakdown.memory_fj == 12.5
        assert breakdown.by_kind["MEM"] == 12.5
        with pytest.raises(ValueError):
            breakdown.add_memory_access(-1.0)

    def test_total_pj_unit(self):
        sim = Simulator(inverter_netlist())
        sim.evaluate({"a": 0})
        breakdown = dynamic_energy_fj(sim)
        assert breakdown.total_pj == pytest.approx(breakdown.total_fj / 1000.0)


class TestArea:
    def test_sum_of_cells(self):
        nl = Netlist()
        a = nl.add_input("a")
        b = nl.add_input("b")
        nl.add_gate("AND2", a, b)
        nl.add_flop(a)
        expected = cell("AND2").area_um2 + cell("DFF").area_um2
        assert area_um2(nl) == pytest.approx(expected)

    def test_by_kind(self):
        nl = Netlist()
        a = nl.add_input("a")
        nl.add_gate("INV", a)
        nl.add_gate("INV", a)
        assert area_by_kind(nl)["INV"] == pytest.approx(2 * cell("INV").area_um2)

    def test_rom_macro(self):
        assert rom_area_um2(0) == 0.0
        assert rom_area_um2(256) > 0.0
        with pytest.raises(ValueError):
            rom_area_um2(-1)

    def test_memory_bits_included(self):
        nl = inverter_netlist()
        assert area_um2(nl, memory_bits=256) == pytest.approx(
            area_um2(nl) + rom_area_um2(256)
        )


class TestTiming:
    def test_chain_adds_delays(self):
        nl = Netlist()
        a = nl.add_input("a")
        x = nl.add_gate("INV", a)
        y = nl.add_gate("INV", x)
        nl.add_output("y", y)
        assert critical_path_ps(nl) == pytest.approx(2 * cell("INV").delay_ps)

    def test_parallel_takes_max(self):
        nl = Netlist()
        a = nl.add_input("a")
        slow = nl.add_gate("XOR2", a, nl.add_gate("INV", a))
        nl.add_output("y", slow)
        expected = cell("INV").delay_ps + cell("XOR2").delay_ps
        assert critical_path_ps(nl) == pytest.approx(expected)

    def test_flop_launch_includes_clk_to_q(self):
        nl = Netlist()
        q = nl.add_flop(nl.add_input("d"))
        out = nl.add_gate("INV", q)
        nl.add_output("y", out)
        expected = cell("DFF").delay_ps + cell("INV").delay_ps
        assert arrival_times_ps(nl)[out] == pytest.approx(expected)

    def test_empty_netlist(self):
        assert critical_path_ps(Netlist()) == 0.0


class TestCharacterize:
    def test_report_fields(self):
        report = characterize(inverter_netlist(),
                              [{"a": 0}, {"a": 1}, {"a": 0}])
        assert report.cycles == 3
        assert report.area_um2 > 0
        assert report.energy.total_fj > 0
        assert "INV" in report.render()

    def test_extra_memory_charged(self):
        plain = characterize(inverter_netlist(), [{"a": 1}])
        charged = characterize(inverter_netlist(), [{"a": 1}],
                               extra_memory_fj=100.0)
        assert charged.energy.total_fj == pytest.approx(
            plain.energy.total_fj + 100.0
        )

    def test_area_delay_product(self):
        report = characterize(inverter_netlist(), [{"a": 1}])
        expected = report.area_um2 * report.critical_path_ps * 1e-12
        assert report.area_delay_um2_s == pytest.approx(expected)
