"""Stuck-at fault injection on the paper's datapaths."""

import pytest

from repro.hardware import Netlist, Simulator
from repro.hardware.circuits import (
    build_masking_binarizer,
    build_unary_comparator,
    unary_comparator_stimulus,
)


class TestForceApi:
    def test_force_overrides_input(self):
        nl = Netlist()
        a = nl.add_input("a")
        nl.add_output("y", nl.add_gate("BUF", a))
        sim = Simulator(nl)
        sim.force(a, 1)
        assert sim.evaluate({"a": 0})["y"] == 1

    def test_release_restores(self):
        nl = Netlist()
        a = nl.add_input("a")
        nl.add_output("y", nl.add_gate("BUF", a))
        sim = Simulator(nl)
        sim.force(a, 1).release(a)
        assert sim.evaluate({"a": 0})["y"] == 0

    def test_force_gate_output(self):
        nl = Netlist()
        a = nl.add_input("a")
        out = nl.add_gate("INV", a)
        nl.add_output("y", out)
        sim = Simulator(nl)
        sim.force(out, 0)
        assert sim.evaluate({"a": 0})["y"] == 0  # INV would drive 1

    def test_force_flop(self):
        nl = Netlist()
        d = nl.add_input("d")
        q = nl.add_flop(d)
        nl.add_output("q", q)
        sim = Simulator(nl)
        sim.force(q, 1)
        sim.step({"d": 0})
        assert sim.outputs()["q"] == 1  # stuck despite D=0

    def test_forced_nets_property(self):
        nl = Netlist()
        a = nl.add_input("a")
        nl.add_output("y", nl.add_gate("BUF", a))
        sim = Simulator(nl)
        sim.force(a, 1)
        assert sim.forced_nets == {a: 1}

    def test_reset_clears_faults(self):
        nl = Netlist()
        a = nl.add_input("a")
        nl.add_output("y", nl.add_gate("BUF", a))
        sim = Simulator(nl)
        sim.force(a, 1).reset()
        assert sim.forced_nets == {}

    def test_validation(self):
        nl = Netlist()
        a = nl.add_input("a")
        nl.add_output("y", nl.add_gate("BUF", a))
        sim = Simulator(nl)
        with pytest.raises(ValueError):
            sim.force(99, 1)
        with pytest.raises(ValueError):
            sim.force(a, 2)


class TestComparatorFaults:
    def test_stuck_data_bit_biases_ge(self):
        # Stuck-at-1 on a data bit can only flip comparisons toward ge=1.
        n = 8
        netlist = build_unary_comparator(n)
        healthy = Simulator(netlist)
        faulty = Simulator(netlist)
        faulty.force(netlist.inputs["d0"], 1)
        changed = 0
        for a in range(n + 1):
            for b in range(n + 1):
                stim = unary_comparator_stimulus(n, [(a, b)])[0]
                good = healthy.step(stim)["ge"]
                bad = faulty.step(stim)["ge"]
                if good != bad:
                    changed += 1
                    assert bad == 1  # monotone fault direction
        assert changed > 0  # the fault is observable

    def test_stuck_sobol_bit_biases_ge_low(self):
        n = 8
        netlist = build_unary_comparator(n)
        faulty = Simulator(netlist)
        healthy = Simulator(netlist)
        faulty.force(netlist.inputs[f"s{0}"], 1)
        flipped_to_zero = 0
        for a in range(n + 1):
            for b in range(n + 1):
                stim = unary_comparator_stimulus(n, [(a, b)])[0]
                good = healthy.step(stim)["ge"]
                bad = faulty.step(stim)["ge"]
                if good != bad:
                    assert bad == 0
                    flipped_to_zero += 1
        assert flipped_to_zero > 0


class TestBinarizerFaults:
    def test_stuck_enable_freezes_count(self):
        h = 16
        netlist = build_masking_binarizer(h)
        sim = Simulator(netlist)
        sim.force(netlist.inputs["bit"], 0)
        out = sim.run([{"bit": 1}] * h)[-1]
        assert out["sign"] == 0  # never counts, never fires

    def test_stuck_sign_flop(self):
        h = 16
        netlist = build_masking_binarizer(h)
        sim = Simulator(netlist)
        sign_net = netlist.outputs["sign"]
        sim.force(sign_net, 1)
        out = sim.run([{"bit": 0}] * h)[-1]
        assert out["sign"] == 1  # stuck high despite zero ones
