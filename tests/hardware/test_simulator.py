"""Cycle simulator: truth tables, sequential behaviour, activity capture."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import Netlist, Simulator
from repro.hardware.simulator import TruthTableError, evaluate_gate
from repro.hardware.netlist import Gate

_TRUTH = {
    "INV": lambda v: 1 - v[0],
    "BUF": lambda v: v[0],
    "AND2": lambda v: v[0] & v[1],
    "OR2": lambda v: v[0] | v[1],
    "NAND2": lambda v: 1 - (v[0] & v[1]),
    "NOR2": lambda v: 1 - (v[0] | v[1]),
    "XOR2": lambda v: v[0] ^ v[1],
    "XNOR2": lambda v: 1 - (v[0] ^ v[1]),
    "AND3": lambda v: v[0] & v[1] & v[2],
    "OR3": lambda v: v[0] | v[1] | v[2],
    "AND4": lambda v: v[0] & v[1] & v[2] & v[3],
    "OR4": lambda v: v[0] | v[1] | v[2] | v[3],
    "MUX2": lambda v: v[1] if v[2] else v[0],
}

_ARITY = {"INV": 1, "BUF": 1, "AND2": 2, "OR2": 2, "NAND2": 2, "NOR2": 2,
          "XOR2": 2, "XNOR2": 2, "AND3": 3, "OR3": 3, "AND4": 4, "OR4": 4,
          "MUX2": 3}


class TestTruthTables:
    @pytest.mark.parametrize("kind", sorted(_TRUTH))
    def test_exhaustive(self, kind):
        arity = _ARITY[kind]
        nl = Netlist()
        nets = [nl.add_input(f"i{k}") for k in range(arity)]
        out = nl.add_gate(kind, *nets)
        nl.add_output("y", out)
        sim = Simulator(nl)
        for bits in itertools.product((0, 1), repeat=arity):
            result = sim.evaluate({f"i{k}": b for k, b in enumerate(bits)})
            assert result["y"] == _TRUTH[kind](bits), (kind, bits)

    def test_consts(self):
        nl = Netlist()
        nl.add_output("zero", nl.add_const(0))
        nl.add_output("one", nl.add_const(1))
        outs = Simulator(nl).evaluate()
        assert outs == {"zero": 0, "one": 1}

    def test_unknown_kind_raises(self):
        with pytest.raises(TruthTableError):
            evaluate_gate(Gate("FOO", (), 0), [0])


class TestSequential:
    def test_shift_register(self):
        nl = Netlist()
        d = nl.add_input("d")
        q1 = nl.add_flop(d)
        q2 = nl.add_flop(q1)
        nl.add_output("q2", q2)
        sim = Simulator(nl)
        seen = [sim.step({"d": bit})["q2"] for bit in (1, 0, 1, 1, 0)]
        # Reading right after edge k shows the input applied at edge k-1
        # (two flops = two-edge latency input-to-q2).
        assert seen == [0, 1, 0, 1, 1]

    def test_two_phase_update(self):
        # A swap circuit: two flops exchanging values each cycle must not
        # race; both D pins sample the pre-edge values.
        nl = Netlist()
        qa = nl.add_flop_placeholder(init=1)
        qb = nl.add_flop_placeholder(init=0)
        nl.connect_flop(qa, nl.add_gate("BUF", qb))
        nl.connect_flop(qb, nl.add_gate("BUF", qa))
        nl.add_output("a", qa)
        nl.add_output("b", qb)
        sim = Simulator(nl)
        assert sim.step() == {"a": 0, "b": 1}
        assert sim.step() == {"a": 1, "b": 0}

    def test_flop_init(self):
        nl = Netlist()
        q = nl.add_flop(nl.add_const(0), init=1)
        nl.add_output("q", q)
        sim = Simulator(nl)
        assert sim.value(q) == 1
        sim.step()
        assert sim.value(q) == 0


class TestActivity:
    def test_toggle_counting(self):
        nl = Netlist()
        a = nl.add_input("a")
        out = nl.add_gate("INV", a)
        nl.add_output("y", out)
        sim = Simulator(nl)
        sim.evaluate({"a": 0})   # INV output goes 0 -> 1: one toggle
        sim.evaluate({"a": 1})   # 1 -> 0: second toggle
        sim.evaluate({"a": 1})   # stable: no toggle
        assert sim.total_gate_toggles() == 2

    def test_flop_toggles(self):
        nl = Netlist()
        d = nl.add_input("d")
        nl.add_output("q", nl.add_flop(d))
        sim = Simulator(nl)
        for bit in (1, 0, 0, 1):
            sim.step({"d": bit})
        assert sim.total_flop_toggles() == 3  # 0->1, 1->0, stay, 0->1

    def test_reset_clears_counters(self):
        nl = Netlist()
        a = nl.add_input("a")
        nl.add_output("y", nl.add_gate("INV", a))
        sim = Simulator(nl)
        sim.step({"a": 0})
        sim.reset()
        assert sim.total_gate_toggles() == 0
        assert sim.cycles == 0


class TestInputHandling:
    def test_unknown_input_name(self):
        nl = Netlist()
        nl.add_input("a")
        sim = Simulator(nl)
        with pytest.raises(KeyError):
            sim.step({"bogus": 1})

    def test_non_binary_value(self):
        nl = Netlist()
        nl.add_input("a")
        sim = Simulator(nl)
        with pytest.raises(ValueError):
            sim.step({"a": 2})

    @given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_run_equals_steps(self, bits):
        def build():
            nl = Netlist()
            d = nl.add_input("d")
            nl.add_output("q", nl.add_flop(nl.add_gate("INV", d)))
            return nl

        run_sim = Simulator(build())
        outs_run = run_sim.run([{"d": b} for b in bits])
        step_sim = Simulator(build())
        outs_step = [step_sim.step({"d": b}) for b in bits]
        assert outs_run == outs_step
