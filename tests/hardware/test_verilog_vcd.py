"""Verilog emission and VCD waveform export."""

import pytest

from repro.hardware import Netlist, Simulator, VcdRecorder, to_verilog
from repro.hardware.circuits import build_masking_binarizer, build_unary_comparator


class TestVerilog:
    def test_combinational_module(self):
        nl = Netlist(name="demo")
        a = nl.add_input("a")
        b = nl.add_input("b")
        nl.add_output("y", nl.add_gate("AND2", a, b))
        text = to_verilog(nl)
        assert text.startswith("module demo (")
        assert "input a;" in text
        assert "output y;" in text
        assert "and g0" in text
        assert text.rstrip().endswith("endmodule")
        assert "clk" not in text  # purely combinational

    def test_sequential_module_has_clock_and_init(self):
        nl = Netlist(name="seq")
        d = nl.add_input("d")
        q = nl.add_flop(d, init=1)
        nl.add_output("q", q)
        text = to_verilog(nl)
        assert "input clk;" in text
        assert "always @(posedge clk)" in text
        assert "initial n1 = 1'b1;" in text

    def test_mux_and_const_as_assigns(self):
        nl = Netlist(name="muxy")
        a = nl.add_input("a")
        b = nl.add_input("b")
        s = nl.add_input("s")
        one = nl.add_const(1)
        mux = nl.add_gate("MUX2", a, b, s)
        nl.add_output("y", nl.add_gate("AND2", mux, one))
        text = to_verilog(nl)
        assert "? b : a;" in text
        assert "= 1'b1;" in text

    def test_module_name_override(self):
        nl = Netlist(name="has-dash")
        a = nl.add_input("a")
        nl.add_output("y", nl.add_gate("BUF", a))
        assert "module custom (" in to_verilog(nl, module_name="custom")
        assert "module has_dash (" in to_verilog(nl)

    def test_paper_circuits_emit(self):
        for netlist in (build_unary_comparator(8), build_masking_binarizer(16)):
            text = to_verilog(netlist)
            assert "endmodule" in text
            # every primary output appears
            for name in netlist.outputs:
                assert name in text


class TestVcd:
    def _counter(self):
        from repro.hardware.components import sync_counter

        nl = Netlist(name="cnt")
        bus = sync_counter(nl, 2)
        nl.add_output("q0", bus[0])
        nl.add_output("q1", bus[1])
        return nl

    def test_records_cycles(self):
        recorder = VcdRecorder(Simulator(self._counter()))
        recorder.run([{}] * 4)
        assert recorder.cycles_recorded == 4

    def test_render_structure(self):
        recorder = VcdRecorder(Simulator(self._counter()))
        recorder.run([{}] * 3)
        text = recorder.render()
        assert "$timescale 1ns $end" in text
        assert "$var wire 1" in text
        assert "$enddefinitions $end" in text
        assert "#0" in text

    def test_only_changes_emitted(self):
        nl = Netlist(name="hold")
        d = nl.add_input("d")
        nl.add_output("q", nl.add_flop(d))
        recorder = VcdRecorder(Simulator(nl))
        recorder.run([{"d": 0}] * 5)  # q never changes after cycle 0
        text = recorder.render()
        # exactly one timestamp with changes (the initial dump) plus final marker
        change_lines = [line for line in text.splitlines()
                        if line.startswith("#")]
        assert len(change_lines) == 2

    def test_write_file(self, tmp_path):
        recorder = VcdRecorder(Simulator(self._counter()))
        recorder.run([{}] * 2)
        path = recorder.write(tmp_path / "trace.vcd")
        assert path.read_text().startswith("$date")

    def test_empty_render_rejected(self):
        recorder = VcdRecorder(Simulator(self._counter()))
        with pytest.raises(ValueError):
            recorder.render()

    def test_no_signals_rejected(self):
        nl = Netlist(name="empty")
        with pytest.raises(ValueError):
            VcdRecorder(Simulator(nl), signals={})

    def test_custom_signals(self):
        nl = self._counter()
        sim = Simulator(nl)
        recorder = VcdRecorder(sim, signals={"bit0": nl.outputs["q0"]})
        recorder.run([{}] * 2)
        assert "bit0" in recorder.render()


class TestAdders:
    def test_ripple_adder_exhaustive(self):
        from repro.hardware.components import ripple_adder

        width = 3
        nl = Netlist()
        a = [nl.add_input(f"a{i}") for i in range(width)]
        b = [nl.add_input(f"b{i}") for i in range(width)]
        out = ripple_adder(nl, a, b)
        for i, net in enumerate(out):
            nl.add_output(f"s{i}", net)
        sim = Simulator(nl)
        for x in range(8):
            for y in range(8):
                vec = {f"a{i}": (x >> i) & 1 for i in range(width)}
                vec.update({f"b{i}": (y >> i) & 1 for i in range(width)})
                sim.evaluate(vec)
                total = sum(sim.value(net) << i for i, net in enumerate(out))
                assert total == x + y

    def test_adder_width_mismatch(self):
        from repro.hardware.components import ripple_adder

        nl = Netlist()
        a = [nl.add_input("a0")]
        b = [nl.add_input("b0"), nl.add_input("b1")]
        with pytest.raises(ValueError):
            ripple_adder(nl, a, b)

    def test_popcount_tree_exhaustive(self):
        from repro.hardware.components import popcount_tree

        n = 5
        nl = Netlist()
        bits = [nl.add_input(f"i{k}") for k in range(n)]
        out = popcount_tree(nl, bits)
        for i, net in enumerate(out):
            nl.add_output(f"c{i}", net)
        sim = Simulator(nl)
        for pattern in range(1 << n):
            vec = {f"i{k}": (pattern >> k) & 1 for k in range(n)}
            sim.evaluate(vec)
            count = sum(sim.value(net) << i for i, net in enumerate(out))
            assert count == bin(pattern).count("1")

    def test_popcount_empty_rejected(self):
        from repro.hardware.components import popcount_tree

        with pytest.raises(ValueError):
            popcount_tree(Netlist(), [])
